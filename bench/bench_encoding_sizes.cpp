// E7 — Ablation of the unified-cube design: CNF size (indexing Booleans
// per CSP variable, clauses per conflict edge, structural clauses per
// variable) for every registered encoding across domain sizes. This makes
// the space/width trade-offs behind Table 2 visible: e.g. log/ITE-log use
// few variables but long conflict clauses; direct/muldirect are the
// opposite; the hierarchical encodings sit in between.
//
// The final section compares the two encode->solve paths on unroutable
// MCNC instances (W = W*-1): materialize a Cnf then AddCnf (collector)
// versus streaming the encoder into the solver (direct), reporting encode
// time and peak resident clause bytes for each.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "graph/graph.h"
#include "sat/clause_sink.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"

int main() {
  using namespace satfr;
  const std::vector<int> domain_sizes = {4, 8, 13, 16, 32, 64};

  std::printf("== Encoding size ablation ==\n\n");
  for (const int k : domain_sizes) {
    std::printf("domain size K = %d\n", k);
    std::printf("  %-26s  %10s  %16s  %18s\n", "encoding", "vars/vertex",
                "structural/vtx", "conflict lits/val");
    for (const encode::EncodingSpec& spec : encode::AllEncodings()) {
      const encode::DomainEncoding domain = EncodeDomain(spec, k);
      // A conflict clause for value d has |cube(d)| literals per endpoint.
      std::size_t conflict_lits = 0;
      for (const encode::Cube& cube : domain.value_cubes) {
        conflict_lits += 2 * cube.size();
      }
      std::printf("  %-26s  %10d  %16zu  %18.2f\n", spec.name.c_str(),
                  domain.num_vars, domain.structural.size(),
                  static_cast<double>(conflict_lits) /
                      static_cast<double>(k));
    }
    std::printf("\n");
  }

  // Clause-length profile of a full coloring instance per encoding. The
  // binary share is what justifies the solver's binary-implication layer
  // (routing conflict graphs are even denser in binaries than this sample).
  graph::Graph g(80);
  for (graph::VertexId v = 0; v < 80; ++v) {
    for (const int offset : {1, 2, 5, 11}) {
      g.AddEdge(v, (v + offset) % 80);
    }
  }
  const int k = 8;
  std::printf(
      "== Clause-length profile (circulant graph, 80 vertices, K = %d) "
      "==\n\n",
      k);
  std::printf("  %-26s  %10s  %10s  %10s  %10s  %8s\n", "encoding", "clauses",
              "unit", "binary", "ternary", "binary%");
  for (const encode::EncodingSpec& spec : encode::AllEncodings()) {
    // CountingSink: the profile without ever materializing the formula.
    sat::CountingSink counting;
    encode::EncodeColoringToSink(g, k, spec, {}, counting);
    const std::uint64_t total = counting.num_clauses();
    std::printf("  %-26s  %10llu  %10llu  %10llu  %10llu  %7.1f%%\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(counting.NumClausesOfSize(1)),
                static_cast<unsigned long long>(counting.NumClausesOfSize(2)),
                static_cast<unsigned long long>(counting.NumClausesOfSize(3)),
                total == 0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(counting.NumClausesOfSize(2)) /
                          static_cast<double>(total));
  }

  // Collector vs direct encode->solve path on unroutable MCNC instances
  // (W = W*-1, the paper's hard configuration). "peak clause bytes" is the
  // resident clause storage while loading the solver: the collector path
  // holds the Cnf AND the solver copy at its peak; the direct path only
  // ever holds the solver copy.
  std::printf("\n== Encode->solve path: collector vs direct (W = W*-1) ==\n\n");
  satfr::bench::TablePrinter table({10, 26, 4, 9, 11, 11, 12, 12, 7});
  table.Row({"instance", "encoding", "W", "clauses", "collect ms", "direct ms",
             "collect MiB", "direct MiB", "saved"});
  table.Separator();
  for (const std::string& name : {std::string("alu2"),
                                  std::string("too_large")}) {
    const satfr::bench::Instance inst = satfr::bench::LoadInstance(name);
    const int width = inst.min_width - 1;
    if (width < 1) continue;
    const auto sequence = symmetry::SymmetrySequence(
        inst.conflict, width, symmetry::Heuristic::kS1);
    for (const char* encoding_name :
         {"ITE-linear-2+muldirect", "direct", "log"}) {
      const encode::EncodingSpec spec = encode::GetEncoding(encoding_name);

      Stopwatch collect_watch;
      sat::Solver collect_solver;
      std::size_t collect_peak = 0;
      std::size_t num_clauses = 0;
      {
        const encode::EncodedColoring enc =
            EncodeColoring(inst.conflict, width, spec, sequence);
        collect_solver.AddCnf(enc.cnf);
        num_clauses = enc.cnf.num_clauses();
        collect_peak =
            enc.cnf.ApproxHeapBytes() + collect_solver.ClauseMemoryBytes();
      }
      const double collect_ms = collect_watch.Seconds() * 1e3;

      Stopwatch direct_watch;
      sat::Solver direct_solver;
      sat::SolverSink sink(direct_solver);
      encode::EncodeColoringToSink(inst.conflict, width, spec, sequence,
                                   sink);
      sink.Finish();
      const double direct_ms = direct_watch.Seconds() * 1e3;
      const std::size_t direct_peak = direct_solver.ClauseMemoryBytes();

      char buffer[32];
      const auto mib = [&buffer](std::size_t bytes) {
        std::snprintf(buffer, sizeof(buffer), "%.2f",
                      static_cast<double>(bytes) / (1024.0 * 1024.0));
        return std::string(buffer);
      };
      std::snprintf(buffer, sizeof(buffer), "%.1f", collect_ms);
      const std::string collect_ms_text = buffer;
      std::snprintf(buffer, sizeof(buffer), "%.1f", direct_ms);
      const std::string direct_ms_text = buffer;
      std::snprintf(
          buffer, sizeof(buffer), "%.0f%%",
          collect_peak == 0
              ? 0.0
              : 100.0 * (1.0 - static_cast<double>(direct_peak) /
                                   static_cast<double>(collect_peak)));
      const std::string saved_text = buffer;
      table.Row({name, encoding_name, std::to_string(width),
                 std::to_string(num_clauses), collect_ms_text, direct_ms_text,
                 mib(collect_peak), mib(direct_peak), saved_text});
    }
  }
  return 0;
}
