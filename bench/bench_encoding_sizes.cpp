// E7 — Ablation of the unified-cube design: CNF size (indexing Booleans
// per CSP variable, clauses per conflict edge, structural clauses per
// variable) for every registered encoding across domain sizes. This makes
// the space/width trade-offs behind Table 2 visible: e.g. log/ITE-log use
// few variables but long conflict clauses; direct/muldirect are the
// opposite; the hierarchical encodings sit in between.
#include <cstdio>
#include <vector>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "graph/graph.h"

int main() {
  using namespace satfr;
  const std::vector<int> domain_sizes = {4, 8, 13, 16, 32, 64};

  std::printf("== Encoding size ablation ==\n\n");
  for (const int k : domain_sizes) {
    std::printf("domain size K = %d\n", k);
    std::printf("  %-26s  %10s  %16s  %18s\n", "encoding", "vars/vertex",
                "structural/vtx", "conflict lits/val");
    for (const encode::EncodingSpec& spec : encode::AllEncodings()) {
      const encode::DomainEncoding domain = EncodeDomain(spec, k);
      // A conflict clause for value d has |cube(d)| literals per endpoint.
      std::size_t conflict_lits = 0;
      for (const encode::Cube& cube : domain.value_cubes) {
        conflict_lits += 2 * cube.size();
      }
      std::printf("  %-26s  %10d  %16zu  %18.2f\n", spec.name.c_str(),
                  domain.num_vars, domain.structural.size(),
                  static_cast<double>(conflict_lits) /
                      static_cast<double>(k));
    }
    std::printf("\n");
  }

  // Clause-length profile of a full coloring instance per encoding. The
  // binary share is what justifies the solver's binary-implication layer
  // (routing conflict graphs are even denser in binaries than this sample).
  graph::Graph g(80);
  for (graph::VertexId v = 0; v < 80; ++v) {
    for (const int offset : {1, 2, 5, 11}) {
      g.AddEdge(v, (v + offset) % 80);
    }
  }
  const int k = 8;
  std::printf(
      "== Clause-length profile (circulant graph, 80 vertices, K = %d) "
      "==\n\n",
      k);
  std::printf("  %-26s  %10s  %10s  %10s  %10s  %8s\n", "encoding", "clauses",
              "unit", "binary", "ternary", "binary%");
  for (const encode::EncodingSpec& spec : encode::AllEncodings()) {
    const encode::EncodedColoring enc = EncodeColoring(g, k, spec);
    const std::size_t total = enc.cnf.num_clauses();
    std::printf("  %-26s  %10zu  %10zu  %10zu  %10zu  %7.1f%%\n",
                spec.name.c_str(), total, enc.cnf.num_unit(),
                enc.cnf.num_binary(), enc.cnf.num_ternary(),
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(enc.cnf.num_binary()) /
                                 static_cast<double>(total));
  }
  return 0;
}
