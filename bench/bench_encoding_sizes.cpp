// E7 — Ablation of the unified-cube design: CNF size (indexing Booleans
// per CSP variable, clauses per conflict edge, structural clauses per
// variable) for every registered encoding across domain sizes. This makes
// the space/width trade-offs behind Table 2 visible: e.g. log/ITE-log use
// few variables but long conflict clauses; direct/muldirect are the
// opposite; the hierarchical encodings sit in between.
#include <cstdio>
#include <vector>

#include "encode/registry.h"

int main() {
  using namespace satfr;
  const std::vector<int> domain_sizes = {4, 8, 13, 16, 32, 64};

  std::printf("== Encoding size ablation ==\n\n");
  for (const int k : domain_sizes) {
    std::printf("domain size K = %d\n", k);
    std::printf("  %-26s  %10s  %16s  %18s\n", "encoding", "vars/vertex",
                "structural/vtx", "conflict lits/val");
    for (const encode::EncodingSpec& spec : encode::AllEncodings()) {
      const encode::DomainEncoding domain = EncodeDomain(spec, k);
      // A conflict clause for value d has |cube(d)| literals per endpoint.
      std::size_t conflict_lits = 0;
      for (const encode::Cube& cube : domain.value_cubes) {
        conflict_lits += 2 * cube.size();
      }
      std::printf("  %-26s  %10d  %16zu  %18.2f\n", spec.name.c_str(),
                  domain.num_vars, domain.structural.size(),
                  static_cast<double>(conflict_lits) /
                      static_cast<double>(k));
    }
    std::printf("\n");
  }
  return 0;
}
