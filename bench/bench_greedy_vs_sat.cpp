// E9 — Quantifies the paper's §1 motivation: SAT-based detailed routing
// "considers all nets simultaneously" and proves optimality, while
// one-net-at-a-time routers (our greedy baseline, standing in for the
// SEGA/CGE family) may need extra tracks and can never certify
// unroutability. For every benchmark: the SAT optimum W* (with its W*-1
// UNSAT proof re-verified by the RUP checker) vs the greedy width without
// and with rip-up.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "flow/detailed_router.h"
#include "route/greedy_track_assigner.h"

int main() {
  using namespace satfr;
  const std::vector<std::string> names = bench::BenchInstanceNames();

  std::printf(
      "== One-net-at-a-time greedy baseline vs SAT detailed routing ==\n\n");
  std::printf("%-12s  %8s  %10s  %12s  %14s  %16s\n", "benchmark",
              "SAT W*", "greedy W", "greedy+ripup", "extra tracks",
              "UNSAT proof ok");

  int total_extra = 0;
  for (const std::string& name : names) {
    const bench::Instance inst = bench::LoadInstance(name);
    const int greedy_plain =
        route::GreedyMinimumWidth(inst.conflict, inst.peak_congestion);
    route::GreedyAssignOptions ripup;
    ripup.max_ripups = 200;
    const int greedy_ripup = route::GreedyMinimumWidth(
        inst.conflict, inst.peak_congestion, ripup);

    // Re-prove W*-1 unroutable with proof verification on.
    std::string proof_cell = "n/a (W*=1)";
    if (inst.min_width > 1) {
      flow::DetailedRouteOptions options;
      options.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
      options.heuristic = symmetry::Heuristic::kS1;
      options.timeout_seconds = 60.0 * bench::BenchTimeoutSeconds();
      options.verify_unsat_proof = true;
      const auto result = flow::RouteDetailedOnGraph(
          inst.conflict, inst.min_width - 1, options);
      if (result.status == sat::SolveResult::kUnsat) {
        proof_cell = result.proof_verified
                         ? "verified (" +
                               std::to_string(result.proof_clauses) +
                               " steps)"
                         : "FAILED";
      } else {
        proof_cell = "timeout";
      }
    }
    const int extra = greedy_ripup - inst.min_width;
    total_extra += extra;
    std::printf("%-12s  %8d  %10d  %12d  %14d  %16s\n", name.c_str(),
                inst.min_width, greedy_plain, greedy_ripup, extra,
                proof_cell.c_str());
    std::fflush(stdout);
  }
  std::printf(
      "\nTotal extra tracks required by the greedy router: %d\n"
      "The greedy router can never produce the unroutability certificates "
      "in the last column.\n",
      total_extra);
  return 0;
}
