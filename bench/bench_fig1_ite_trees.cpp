// E2 — Reproduces Figure 1 of the paper: the four ITE trees for a CSP
// variable with 13 domain values, as tree renderings plus the per-value
// indexing Boolean patterns (cubes) each encoding assigns.
#include <cstdio>
#include <string>

#include "encode/ite_tree.h"
#include "encode/registry.h"

namespace {

using namespace satfr;
using encode::Cube;

std::string CubeText(const Cube& cube) {
  if (cube.empty()) return "(true)";
  std::string out;
  for (std::size_t i = 0; i < cube.size(); ++i) {
    if (i > 0) out += " & ";
    out += (cube[i].negated() ? "~i" : "i") + std::to_string(cube[i].var());
  }
  return out;
}

void PrintPatterns(const char* title, const encode::DomainEncoding& domain) {
  std::printf("%s  (%d indexing Booleans)\n", title, domain.num_vars);
  for (int v = 0; v < domain.domain_size; ++v) {
    std::printf("  v%-2d <- %s\n", v,
                CubeText(domain.value_cubes[static_cast<std::size_t>(v)])
                    .c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  constexpr int kDomain = 13;
  std::printf(
      "== Figure 1: ITE trees for a CSP variable with 13 domain values "
      "==\n\n");

  std::printf("(a) ITE-linear tree:\n%s\n",
              encode::RenderIteTree(*encode::BuildLinearIteTree(kDomain))
                  .c_str());
  std::printf("(b) ITE-log (balanced) tree:\n%s\n",
              encode::RenderIteTree(*encode::BuildBalancedIteTree(kDomain))
                  .c_str());

  PrintPatterns("(a) ITE-linear patterns",
                EncodeDomain(encode::GetEncoding("ITE-linear"), kDomain));
  PrintPatterns("(b) ITE-log patterns",
                EncodeDomain(encode::GetEncoding("ITE-log"), kDomain));
  PrintPatterns(
      "(c) ITE-log-1+ITE-linear patterns",
      EncodeDomain(encode::GetEncoding("ITE-log-1+ITE-linear"), kDomain));
  PrintPatterns(
      "(d) ITE-log-2+ITE-linear patterns",
      EncodeDomain(encode::GetEncoding("ITE-log-2+ITE-linear"), kDomain));

  std::printf(
      "Paper cross-check (Fig. 1.d): v4 <- i0 & ~i1 & i2 ; v5 <- i0 & ~i1 & "
      "~i2 & i3 ;\nv6 <- i0 & ~i1 & ~i2 & ~i3.\n");
  return 0;
}
