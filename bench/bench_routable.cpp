// E4 — Reproduces the §6 routable-configuration result: "most of the
// encodings had comparable and very efficient performance when finding
// solutions for configurations that were routable — with either siege_v4 or
// MiniSat", with MiniSat holding a small edge on satisfiable formulas.
// Runs all 14 evaluated encodings at W = W* with heuristic s1 under both
// solver presets and reports per-encoding totals.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "encode/csp_to_cnf.h"
#include "flow/detailed_router.h"
#include "flow/track_checker.h"
#include "sat/walksat.h"

int main() {
  using namespace satfr;
  const double timeout = bench::BenchTimeoutSeconds();
  const std::vector<std::string> names = bench::BenchInstanceNames();

  std::printf(
      "== Routable configurations (W = W*): total time [s] over %zu "
      "benchmarks, per encoding and solver ==\n\n",
      names.size());

  std::vector<bench::Instance> instances;
  for (const std::string& name : names) {
    instances.push_back(bench::LoadInstance(name));
  }

  std::printf("%-26s  %14s  %14s  %14s\n", "encoding", "siege-like",
              "minisat-like", "walksat");
  for (const std::string& encoding_name :
       encode::EvaluatedEncodingNames()) {
    std::printf("%-26s", encoding_name.c_str());
    for (const bool siege : {true, false}) {
      double total = 0.0;
      bool any_timeout = false;
      for (const bench::Instance& inst : instances) {
        flow::DetailedRouteOptions options;
        options.encoding = encode::GetEncoding(encoding_name);
        options.heuristic = symmetry::Heuristic::kS1;
        options.solver = siege ? sat::SolverOptions::SiegeLike()
                               : sat::SolverOptions::MiniSatLike();
        options.timeout_seconds = timeout;
        const flow::DetailedRouteResult result =
            flow::RouteDetailedOnGraph(inst.conflict, inst.min_width,
                                       options);
        if (result.status == sat::SolveResult::kUnknown) {
          any_timeout = true;
          total += timeout;
          continue;
        }
        if (result.status != sat::SolveResult::kSat) {
          std::printf("\nbench: %s at W*=%d must be SAT!\n",
                      inst.name.c_str(), inst.min_width);
          return 1;
        }
        std::string error;
        if (!flow::ValidateTrackAssignment(inst.arch, inst.routing,
                                           result.tracks, inst.min_width,
                                           &error)) {
          std::printf("\nbench: invalid detailed routing for %s: %s\n",
                      inst.name.c_str(), error.c_str());
          return 1;
        }
        total += result.TotalSeconds();
      }
      std::printf("  %14s", bench::TimeCell(total, any_timeout).c_str());
      std::fflush(stdout);
    }
    // Extension column: stochastic local search (incomplete, SAT-only),
    // the solver family the paper's local-search citations use.
    {
      double total = 0.0;
      bool any_timeout = false;
      for (const bench::Instance& inst : instances) {
        const auto sequence = symmetry::SymmetrySequence(
            inst.conflict, inst.min_width, symmetry::Heuristic::kS1);
        const encode::EncodedColoring enc =
            encode::EncodeColoring(inst.conflict, inst.min_width,
                                   encode::GetEncoding(encoding_name),
                                   sequence);
        // Local search gets a small fixed budget: it either cracks the
        // satisfiable instance quickly or is not competitive on it.
        const double walksat_budget = std::min(timeout, 3.0);
        Stopwatch watch;
        sat::WalkSat walksat(enc.cnf);
        const sat::SolveResult result =
            walksat.Solve(Deadline::After(walksat_budget));
        if (result == sat::SolveResult::kSat) {
          total += watch.Seconds();
        } else {
          any_timeout = true;
          total += walksat_budget;
        }
      }
      std::printf("  %14s", bench::TimeCell(total, any_timeout).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper reference: satisfiable formulas were solved in usually a "
      "fraction of a second\nby either solver, with MiniSat slightly "
      "ahead. (The walksat column is an extension:\nstochastic local "
      "search is incomplete and only applicable to the routable side.)\n");
  return 0;
}
