// E10 — Ablation (engineering extension): incremental minimum-width search
// (one solver, guard-literal assumptions, clause reuse across widths)
// versus the scratch search that re-encodes and re-solves every width.
// Both use the paper's best strategy (ITE-linear-2+muldirect / s1).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "flow/incremental_min_width.h"
#include "flow/min_width.h"

int main() {
  using namespace satfr;
  const double timeout = bench::BenchTimeoutSeconds();
  const std::vector<std::string> names = bench::BenchInstanceNames();

  std::printf("== Incremental vs scratch minimum-width search ==\n\n");
  std::printf("%-12s  %4s  %12s  %12s  %14s  %14s\n", "benchmark", "W*",
              "scratch[s]", "increm[s]", "scratch confl", "increm confl");

  double total_scratch = 0.0;
  double total_incremental = 0.0;
  for (const std::string& name : names) {
    const bench::Instance inst = bench::LoadInstance(name);

    flow::MinWidthOptions scratch_options;
    scratch_options.route.encoding =
        encode::GetEncoding("ITE-linear-2+muldirect");
    scratch_options.route.heuristic = symmetry::Heuristic::kS1;
    scratch_options.route.timeout_seconds = timeout;
    Stopwatch scratch_watch;
    const flow::MinWidthResult scratch = flow::FindMinimumWidthOnGraph(
        inst.conflict, inst.peak_congestion, scratch_options);
    const double scratch_seconds = scratch_watch.Seconds();
    const std::uint64_t scratch_conflicts =
        scratch.routable.solver_stats.conflicts +
        scratch.unroutable.solver_stats.conflicts;

    flow::IncrementalMinWidthOptions inc_options;
    inc_options.timeout_seconds = timeout * 4.0;
    const flow::IncrementalMinWidthResult incremental =
        flow::FindMinimumWidthIncremental(inst.conflict,
                                          inst.peak_congestion, inc_options);

    if (scratch.min_width != incremental.min_width &&
        scratch.min_width > 0 && incremental.min_width > 0) {
      std::printf("bench: W* disagreement on %s (%d vs %d)!\n", name.c_str(),
                  scratch.min_width, incremental.min_width);
      return 1;
    }
    total_scratch += scratch_seconds;
    total_incremental += incremental.total_seconds;
    std::printf("%-12s  %4d  %12s  %12s  %14llu  %14llu\n", name.c_str(),
                incremental.min_width,
                FormatSecondsPaperStyle(scratch_seconds).c_str(),
                FormatSecondsPaperStyle(incremental.total_seconds).c_str(),
                static_cast<unsigned long long>(scratch_conflicts),
                static_cast<unsigned long long>(
                    incremental.solver_stats.conflicts));
    std::fflush(stdout);
  }
  std::printf("%-12s  %4s  %12s  %12s\n", "Total", "",
              FormatSecondsPaperStyle(total_scratch).c_str(),
              FormatSecondsPaperStyle(total_incremental).c_str());
  if (total_incremental > 0.0) {
    std::printf("scratch / incremental: %.2fx\n",
                total_scratch / total_incremental);
  }
  return 0;
}
