// Shared infrastructure for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md §5). Instances are produced by the same pipeline the library
// exposes: synthetic MCNC benchmark -> negotiated global routing ->
// conflict graph; the minimum routable width W* is then established with a
// fast reference strategy so that "routable" (W*) and "unroutable" (W*-1)
// configurations match the paper's setup.
//
// Environment knobs (all optional):
//   SATFR_BENCH_TIMEOUT   per-solve timeout in seconds (default 10)
//   SATFR_BENCH_SET       "table2" (default) | "small" — which benchmarks
//                         the heavy benches iterate over
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"
#include "flow/conflict_graph.h"
#include "flow/min_width.h"
#include "graph/coloring_bounds.h"
#include "netlist/mcnc_suite.h"
#include "obs/json.h"
#include "route/global_router.h"

namespace satfr::bench {

/// Writes a bench report document through the shared JSON model
/// (obs::JsonValue) instead of hand-rolled fprintf: key order is the
/// insertion order, so the emitted schema is deterministic and parseable by
/// the same code that reads run reports. Returns false after printing the
/// bench-style error.
inline bool WriteJsonReport(const std::string& path,
                            const obs::JsonValue& doc) {
  std::string error;
  if (!obs::WriteJsonFile(path, doc, &error)) {
    std::fprintf(stderr, "bench: cannot write '%s': %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

inline double BenchTimeoutSeconds() {
  if (const char* env = std::getenv("SATFR_BENCH_TIMEOUT")) {
    const double value = std::atof(env);
    if (value > 0.0) return value;
  }
  return 10.0;
}

inline std::vector<std::string> BenchInstanceNames() {
  if (const char* env = std::getenv("SATFR_BENCH_SET")) {
    if (std::string(env) == "small") {
      return {"tiny", "9symml", "term1", "example2"};
    }
  }
  return netlist::Table2BenchmarkNames();
}

/// A fully prepared routing instance.
struct Instance {
  std::string name;
  fpga::Arch arch{1};
  route::GlobalRouting routing;
  graph::Graph conflict;
  int peak_congestion = 0;   // lower bound on W*
  int dsatur_width = 0;      // upper bound on W*
  int min_width = -1;        // W* (exact, established by SAT)
};

/// Builds the instance and establishes W* with the paper's best strategy
/// (ITE-linear-2+muldirect / s1). Exits the process if W* cannot be
/// established within 60x the bench timeout (mis-calibrated instance).
inline Instance LoadInstance(const std::string& name) {
  Instance inst;
  inst.name = name;
  const netlist::McncBenchmark bench = netlist::GenerateMcncBenchmark(name);
  inst.arch = fpga::Arch(bench.params.grid_size);
  const fpga::DeviceGraph device(inst.arch);
  inst.routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  inst.conflict = flow::BuildConflictGraph(inst.arch, inst.routing);
  inst.peak_congestion = route::PeakCongestion(inst.arch, inst.routing);
  inst.dsatur_width =
      graph::NumColorsUsed(graph::DsaturColoring(inst.conflict));

  flow::MinWidthOptions options;
  options.route.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
  options.route.heuristic = symmetry::Heuristic::kS1;
  options.route.timeout_seconds = 60.0 * BenchTimeoutSeconds();
  const flow::MinWidthResult result = flow::FindMinimumWidthOnGraph(
      inst.conflict, inst.peak_congestion, options);
  if (result.min_width < 0) {
    std::fprintf(stderr,
                 "bench: failed to establish W* for '%s' within budget\n",
                 name.c_str());
    std::exit(1);
  }
  inst.min_width = result.min_width;
  return inst;
}

/// Fixed-width ASCII table writer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<int> widths) : widths_(std::move(widths)) {}

  void Row(const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const int width = i < widths_.size() ? widths_[i] : 12;
      std::string cell = cells[i];
      if (static_cast<int>(cell.size()) < width) {
        cell = std::string(static_cast<std::size_t>(width) - cell.size(),
                           ' ') +
               cell;
      }
      line += cell;
      line += (i + 1 < cells.size()) ? "  " : "";
    }
    std::printf("%s\n", line.c_str());
  }

  void Separator() const {
    std::size_t total = 0;
    for (const int w : widths_) total += static_cast<std::size_t>(w) + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
  }

 private:
  std::vector<int> widths_;
};

/// Formats a solve outcome for a table cell: seconds, or ">limit" on
/// timeout.
inline std::string TimeCell(double seconds, bool timed_out) {
  if (timed_out) return ">" + FormatSecondsPaperStyle(seconds);
  return FormatSecondsPaperStyle(seconds);
}

}  // namespace satfr::bench
