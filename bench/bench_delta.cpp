// Delta-latency benchmark for the incremental RoutingSession (DESIGN.md
// §14): replays a seeded synthetic rip-up/re-route trace on each MCNC
// instance twice — once through a long-lived session (assumption flips on a
// resident solver) and once through the paper's flow (fresh extract +
// encode + solve per query) — and reports per-delta latency distributions.
// The headline ratio compares the work the session eliminates: applying a
// delta (group emission) vs the fresh flow's symmetry-coloring + encode of
// the same mutated netlist; the solve columns show the search cost both
// flows still pay.
//
//   bench_delta [out.json] [instance...]
//
// With no instances the SATFR_BENCH_SET suite is used. SATFR_BENCH_DELTAS
// overrides the per-instance event count (default 24). Every pair of runs
// is also checked for verdict equivalence: the session and the fresh flow
// must agree on SAT/UNSAT after every delta, or the report flags the
// instance and the binary exits nonzero.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "flow/detailed_router.h"
#include "flow/routing_session.h"

namespace {

using namespace satfr;

int DeltaCount() {
  if (const char* env = std::getenv("SATFR_BENCH_DELTAS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return 24;
}

double PercentileMs(std::vector<double> seconds, double p) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(seconds.size() - 1) + 0.5);
  return seconds[std::min(rank, seconds.size() - 1)] * 1e3;
}

// Per-delta samples, split the way the two flows actually differ: applying
// a delta (the session's group emission) replaces the fresh flow's
// symmetry-coloring + encode; both then pay a solver descent. The headline
// ratio — and the CI gate — compares what the session eliminated
// (apply vs fresh encode); the solve columns show the common search cost.
struct InstanceResult {
  std::string name;
  int width = 0;
  int deltas = 0;
  std::vector<double> apply_seconds;         // session: rip/reroute emission
  std::vector<double> session_solve_seconds; // session: resident-solver solve
  std::vector<double> fresh_encode_seconds;  // fresh: coloring + encode
  std::vector<double> fresh_solve_seconds;   // fresh: cold-solver solve
  bool equivalent = true;
  /// First delta index where session and fresh verdicts disagreed; -1 when
  /// the instance stayed equivalent. Surfaced in the JSON report and the
  /// final error so a CI failure names the exact reproducer.
  int first_mismatch_delta = -1;
  std::string mismatch_detail;  // "session SAT != fresh UNSAT"
  flow::SessionStats stats;
};

// A planned synthetic delta. Planning happens OUTSIDE the timed region —
// the benchmark times only what a real router would pay per move: the
// session's apply + solve against the fresh flow's extract-equivalent
// encode + solve on the same mutated netlist.
struct DeltaEvent {
  bool rip_only = false;
  graph::VertexId net = -1;
  std::vector<graph::VertexId> partners;  // ignored when rip_only
};

// Three event kinds keep the edge set moving in both directions: rip a net
// out entirely, re-route an active net with one conflict dropped, or bring
// a ripped net back against a random sample of active nets.
DeltaEvent PlanRandomDelta(const flow::RoutingSession& session, Rng& rng) {
  const int n = session.num_nets();
  const graph::Graph current = session.ActiveConflictGraph();
  std::vector<graph::VertexId> active;
  std::vector<graph::VertexId> inactive;
  for (graph::VertexId v = 0; v < n; ++v) {
    (session.NetActive(v) ? active : inactive).push_back(v);
  }
  DeltaEvent event;
  const double roll = rng.NextDouble();
  if (!inactive.empty() && roll < 0.25) {
    // Revive a ripped net against up to 4 random active partners.
    event.net = inactive[rng.NextBelow(inactive.size())];
    for (const std::uint32_t i : rng.Permutation(
             static_cast<std::uint32_t>(active.size()))) {
      event.partners.push_back(active[i]);
      if (event.partners.size() == 4) break;
    }
  } else if (active.size() > 1 && roll < 0.5) {
    event.rip_only = true;
    event.net = active[rng.NextBelow(active.size())];
  } else {
    // Re-route with one conflict dropped: the common RRR move.
    event.net = active[rng.NextBelow(active.size())];
    event.partners = current.Neighbors(event.net);
    if (!event.partners.empty()) {
      event.partners.erase(event.partners.begin() +
                           static_cast<std::ptrdiff_t>(
                               rng.NextBelow(event.partners.size())));
    }
  }
  return event;
}

InstanceResult RunInstance(const std::string& name, int deltas,
                           double timeout) {
  const bench::Instance inst = bench::LoadInstance(name);
  InstanceResult out;
  out.name = name;
  out.width = inst.min_width;
  out.deltas = deltas;

  flow::RoutingSessionOptions session_options;
  session_options.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
  session_options.heuristic = symmetry::Heuristic::kS1;
  session_options.timeout_seconds = timeout;
  session_options.run_label = name;
  const int max_width = std::max(inst.dsatur_width, inst.min_width);
  flow::RoutingSession session(inst.conflict, max_width, session_options);
  if (!session.ok()) {
    std::fprintf(stderr, "bench: session for '%s' failed: %s\n",
                 name.c_str(), session.error().c_str());
    std::exit(1);
  }
  session.Solve(inst.min_width);  // warm the resident solver once

  flow::DetailedRouteOptions fresh_options;
  fresh_options.encoding = session_options.encoding;
  fresh_options.heuristic = session_options.heuristic;
  fresh_options.timeout_seconds = timeout;
  fresh_options.run_label = name;

  Rng rng(StableHash64(name) ^ 0xD617A5ULL);
  for (int d = 0; d < deltas; ++d) {
    const DeltaEvent event = PlanRandomDelta(session, rng);
    Stopwatch apply_watch;
    const bool applied = event.rip_only
                             ? session.RipUp(event.net)
                             : session.Reroute(event.net, event.partners);
    out.apply_seconds.push_back(apply_watch.Seconds());
    const flow::SessionSolveResult incremental =
        session.Solve(inst.min_width);
    out.session_solve_seconds.push_back(incremental.solve_seconds);
    if (!applied) {
      std::fprintf(stderr, "bench: '%s' delta %d: %s\n", name.c_str(), d,
                   session.error().c_str());
      std::exit(1);
    }
    if (!incremental.error.empty()) {
      std::fprintf(stderr, "bench: '%s' delta %d: %s\n", name.c_str(), d,
                   incremental.error.c_str());
      std::exit(1);
    }

    // The paper's flow answers the same query from scratch. The mutated
    // graph is materialized outside the timed region — the fresh flow is
    // charged for coloring + encode (what the session's delta replaces)
    // plus its own cold solve.
    const graph::Graph mutated = session.ActiveConflictGraph();
    const flow::DetailedRouteResult fresh = flow::RouteDetailedOnGraph(
        mutated, inst.min_width, fresh_options);
    out.fresh_encode_seconds.push_back(fresh.coloring_seconds +
                                       fresh.encode_seconds);
    out.fresh_solve_seconds.push_back(fresh.solve_seconds);
    if (incremental.status != fresh.status) {
      std::fprintf(stderr,
                   "bench: '%s' delta %d: session %s != fresh %s\n",
                   name.c_str(), d, sat::ToString(incremental.status),
                   sat::ToString(fresh.status));
      out.equivalent = false;
      if (out.first_mismatch_delta < 0) {
        out.first_mismatch_delta = d;
        out.mismatch_detail = std::string("session ") +
                              sat::ToString(incremental.status) +
                              " != fresh " + sat::ToString(fresh.status);
      }
    }
  }
  out.stats = session.session_stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pr9.json";
  std::vector<std::string> names;
  for (int i = 2; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = bench::BenchInstanceNames();
  const int deltas = DeltaCount();
  const double timeout = bench::BenchTimeoutSeconds();

  std::printf("Incremental session vs fresh encode, %d deltas/instance "
              "(timeout %.0fs)\n\n", deltas, timeout);
  const bench::TablePrinter table({10, 5, 11, 11, 11, 11, 8, 8, 6});
  table.Row({"circuit", "W*", "delta p50", "delta p99", "enc p50",
             "enc p99", "ratio", "total", "equiv"});
  table.Separator();

  obs::JsonArray instances;
  bool all_equivalent = true;
  bool all_fast = true;
  std::string first_mismatch;  // "instance:delta (detail)" of the first one
  for (const std::string& name : names) {
    const InstanceResult r = RunInstance(name, deltas, timeout);
    const double apply_p50 = PercentileMs(r.apply_seconds, 0.50);
    const double apply_p99 = PercentileMs(r.apply_seconds, 0.99);
    const double session_solve_p50 =
        PercentileMs(r.session_solve_seconds, 0.50);
    const double fresh_encode_p50 =
        PercentileMs(r.fresh_encode_seconds, 0.50);
    const double fresh_encode_p99 =
        PercentileMs(r.fresh_encode_seconds, 0.99);
    const double fresh_solve_p50 = PercentileMs(r.fresh_solve_seconds, 0.50);
    // The gate: applying a delta must cost < 10% of what the fresh flow
    // spends producing the formula the delta made unnecessary.
    const double ratio =
        fresh_encode_p50 > 0.0 ? apply_p50 / fresh_encode_p50 : 0.0;
    // Context: whole-query latency ratio, search included on both sides.
    const double total_ratio =
        fresh_encode_p50 + fresh_solve_p50 > 0.0
            ? (apply_p50 + session_solve_p50) /
                  (fresh_encode_p50 + fresh_solve_p50)
            : 0.0;
    all_equivalent = all_equivalent && r.equivalent;
    all_fast = all_fast && ratio < 0.10;
    if (!r.equivalent && first_mismatch.empty()) {
      first_mismatch = r.name + ":delta " +
                       std::to_string(r.first_mismatch_delta) + " (" +
                       r.mismatch_detail + ")";
    }

    char buffer[32];
    auto ms = [&](double v) {
      std::snprintf(buffer, sizeof buffer, "%.3fms", v);
      return std::string(buffer);
    };
    std::snprintf(buffer, sizeof buffer, "%.3f", ratio);
    const std::string ratio_cell = buffer;
    std::snprintf(buffer, sizeof buffer, "%.3f", total_ratio);
    const std::string total_cell = buffer;
    table.Row({r.name, std::to_string(r.width), ms(apply_p50),
               ms(apply_p99), ms(fresh_encode_p50), ms(fresh_encode_p99),
               ratio_cell, total_cell, r.equivalent ? "yes" : "NO"});

    obs::JsonObject o;
    o.emplace_back("instance", obs::JsonValue(r.name));
    o.emplace_back("width", obs::JsonValue(r.width));
    o.emplace_back("deltas", obs::JsonValue(r.deltas));
    obs::JsonObject session;
    session.emplace_back("apply_p50_ms", obs::JsonValue(apply_p50));
    session.emplace_back("apply_p99_ms", obs::JsonValue(apply_p99));
    session.emplace_back("solve_p50_ms", obs::JsonValue(session_solve_p50));
    o.emplace_back("session", obs::JsonValue(std::move(session)));
    obs::JsonObject fresh;
    fresh.emplace_back("encode_p50_ms", obs::JsonValue(fresh_encode_p50));
    fresh.emplace_back("encode_p99_ms", obs::JsonValue(fresh_encode_p99));
    fresh.emplace_back("solve_p50_ms", obs::JsonValue(fresh_solve_p50));
    o.emplace_back("fresh", obs::JsonValue(std::move(fresh)));
    o.emplace_back("median_ratio", obs::JsonValue(ratio));
    o.emplace_back("median_total_ratio", obs::JsonValue(total_ratio));
    o.emplace_back("equivalent", obs::JsonValue(r.equivalent));
    o.emplace_back("first_mismatch_delta",
                   obs::JsonValue(r.first_mismatch_delta));
    obs::JsonObject stats;
    stats.emplace_back("full_encodes", obs::JsonValue(r.stats.full_encodes));
    stats.emplace_back("graph_extractions",
                       obs::JsonValue(r.stats.graph_extractions));
    stats.emplace_back("groups_emitted",
                       obs::JsonValue(r.stats.groups_emitted));
    stats.emplace_back("groups_retired",
                       obs::JsonValue(r.stats.groups_retired));
    stats.emplace_back("partner_detachments",
                       obs::JsonValue(r.stats.partner_detachments));
    o.emplace_back("session_stats", obs::JsonValue(std::move(stats)));
    instances.emplace_back(std::move(o));
  }
  table.Separator();
  std::printf("ratio = delta-apply p50 / fresh-encode p50 (CI smoke gate "
              "< 0.10); total = whole-query ratio, search included\n");

  obs::JsonObject doc;
  doc.emplace_back("bench", obs::JsonValue(std::string("delta")));
  doc.emplace_back("deltas_per_instance", obs::JsonValue(deltas));
  doc.emplace_back("timeout_seconds", obs::JsonValue(timeout));
  doc.emplace_back("equivalent", obs::JsonValue(all_equivalent));
  doc.emplace_back("instances", obs::JsonValue(std::move(instances)));
  if (!bench::WriteJsonReport(out_path, obs::JsonValue(std::move(doc)))) {
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_equivalent) {
    std::fprintf(stderr,
                 "bench: verdict mismatch between session and fresh flow, "
                 "first at %s\n",
                 first_mismatch.c_str());
    return 1;
  }
  (void)all_fast;  // informational here; the CI smoke asserts the ratio
  return 0;
}
