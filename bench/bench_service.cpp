// Heavy-traffic benchmark for the batched routing service (DESIGN.md §15):
// replays a seeded synthetic traffic trace — a mix of fresh routing
// queries, exact repeats, and per-client session delta bursts — first
// through the paper's flow one query at a time (cold encode + solve per
// event), then through the RoutingService worker pool at each worker count
// in {1, hw}. Reports solves/sec, the queueing-included latency
// distribution (p50/p95/p99 off the service's log2 histograms), the cache
// hit ratios, and the warm-hit cost of a repeated query relative to its
// cold solve.
//
//   bench_service [out.json] [instance...]
//
// Every route response is checked against the instance's known verdict
// (SAT at W*, UNSAT at W*-1) and every session solve against its restored
// state; a contradiction flags the run and the binary exits nonzero.
//
// Environment knobs (besides the bench_util ones):
//   SATFR_BENCH_TRAFFIC    route-query count in the trace (default 64)
//   SATFR_SERVICE_WORKERS  top worker count (default: hardware threads)
//   SATFR_SERVICE_ARRIVAL  "burst" (default): submit everything, then
//                          drain; "paced": sleep ~200us between submits
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "flow/detailed_router.h"
#include "obs/metrics.h"
#include "service/cache.h"
#include "service/routing_service.h"

namespace {

using namespace satfr;

int TrafficCount() {
  if (const char* env = std::getenv("SATFR_BENCH_TRAFFIC")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return 64;
}

int TopWorkerCount() {
  if (const char* env = std::getenv("SATFR_SERVICE_WORKERS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool PacedArrival() {
  const char* env = std::getenv("SATFR_SERVICE_ARRIVAL");
  return env != nullptr && std::string(env) == "paced";
}

// One trace event. Session bursts come as rip-up / restore / solve triples
// on the instance's dedicated client, so every session solve lands on the
// instance's original conflict graph (verdict: SAT at W*).
struct Event {
  enum Kind { kRoute, kRipUp, kReroute, kSolve } kind = kRoute;
  int instance = 0;
  int width = 0;                           // route / session solve
  graph::VertexId net = 0;                 // session deltas
  std::vector<graph::VertexId> partners;   // reroute restore set
};

// The seeded mix: ~45% fresh-or-repeat splits, ~55% exact repeats once
// history exists, and every 8th slot expands into a session triple. The
// same plan replays identically against the baseline and every service
// run.
std::vector<Event> PlanTraffic(const std::vector<bench::Instance>& instances,
                               int route_events, Rng& rng) {
  std::vector<Event> plan;
  std::vector<Event> route_history;
  int routes = 0;
  while (routes < route_events) {
    if (plan.size() % 8 == 7) {
      const int i = static_cast<int>(rng.NextBelow(instances.size()));
      const graph::Graph& g = instances[static_cast<std::size_t>(i)].conflict;
      if (g.num_vertices() > 0) {
        Event rip{Event::kRipUp, i, 0, 0, {}};
        rip.net = static_cast<graph::VertexId>(
            rng.NextBelow(static_cast<std::size_t>(g.num_vertices())));
        Event restore{Event::kReroute, i, 0, rip.net, g.Neighbors(rip.net)};
        Event solve{Event::kSolve, i,
                    instances[static_cast<std::size_t>(i)].min_width, 0, {}};
        plan.push_back(rip);
        plan.push_back(restore);
        plan.push_back(solve);
        continue;
      }
    }
    Event event;
    if (!route_history.empty() && rng.NextDouble() < 0.55) {
      event = route_history[rng.NextBelow(route_history.size())];
    } else {
      event.instance = static_cast<int>(rng.NextBelow(instances.size()));
      const bench::Instance& inst =
          instances[static_cast<std::size_t>(event.instance)];
      // W* and W*-1 in a 70/30 mix; W*-1 only when it stays >= 1.
      event.width = inst.min_width;
      if (inst.min_width > 1 && rng.NextDouble() < 0.30) {
        event.width = inst.min_width - 1;
      }
      route_history.push_back(event);
    }
    plan.push_back(event);
    ++routes;
  }
  return plan;
}

struct BaselineResult {
  double seconds = 0.0;
  // Cold (encode + solve) cost per route key, for the warm-hit ratio.
  std::vector<double> cold_seconds;  // indexed like `keys`
  std::vector<std::string> keys;
  bool equivalent = true;
  std::string first_mismatch;
};

std::string RouteKey(const std::vector<bench::Instance>& instances,
                     const Event& e) {
  return instances[static_cast<std::size_t>(e.instance)].name + "/W" +
         std::to_string(e.width);
}

sat::SolveResult ExpectedVerdict(const bench::Instance& inst, int width) {
  return width >= inst.min_width ? sat::SolveResult::kSat
                                 : sat::SolveResult::kUnsat;
}

// The paper's flow, one cold query per route event, on the calling thread.
// Session events cost the baseline nothing — the comparison charges the
// service for all its traffic but the baseline only for the solves.
BaselineResult RunBaseline(const std::vector<bench::Instance>& instances,
                           const std::vector<Event>& plan, double timeout) {
  BaselineResult out;
  flow::DetailedRouteOptions options;
  options.encoding = encode::GetEncoding("muldirect");
  options.heuristic = symmetry::Heuristic::kNone;
  options.timeout_seconds = timeout;
  Stopwatch wall;
  for (const Event& e : plan) {
    if (e.kind != Event::kRoute) continue;
    const bench::Instance& inst =
        instances[static_cast<std::size_t>(e.instance)];
    options.run_label = inst.name;
    Stopwatch query;
    const flow::DetailedRouteResult result =
        flow::RouteDetailedOnGraph(inst.conflict, e.width, options);
    const double cold = query.Seconds();
    const std::string key = RouteKey(instances, e);
    const auto it = std::find(out.keys.begin(), out.keys.end(), key);
    if (it == out.keys.end()) {
      out.keys.push_back(key);
      out.cold_seconds.push_back(cold);
    }
    const sat::SolveResult expected = ExpectedVerdict(inst, e.width);
    if (result.status != sat::SolveResult::kUnknown &&
        result.status != expected && out.first_mismatch.empty()) {
      out.equivalent = false;
      out.first_mismatch = key + ": baseline " +
                           sat::ToString(result.status) + " != expected " +
                           sat::ToString(expected);
    }
  }
  out.seconds = wall.Seconds();
  return out;
}

struct ServiceRunResult {
  int workers = 0;
  double seconds = 0.0;
  double solves_per_sec = 0.0;
  std::uint64_t verdict_lookups = 0;
  std::uint64_t verdict_hits = 0;
  std::uint64_t instance_hits = 0;
  std::uint64_t summary_hits = 0;
  std::uint64_t latency_p50_us = 0;
  std::uint64_t latency_p95_us = 0;
  std::uint64_t latency_p99_us = 0;
  std::uint64_t apply_p50_us = 0;
  bool equivalent = true;
  std::string first_mismatch;
};

ServiceRunResult RunService(const std::vector<bench::Instance>& instances,
                            const std::vector<Event>& plan, int workers,
                            double timeout, bool paced) {
  obs::MetricsRegistry registry;
  service::ServiceOptions options;
  options.scheduler.num_workers = workers;
  options.timeout_seconds = timeout;
  options.metrics = &registry;
  service::RoutingService svc(options);

  // Graphs are shared across events; sessions open outside the timed
  // region (their one-time encode is the price of admission, not traffic).
  std::vector<std::shared_ptr<const graph::Graph>> graphs;
  std::vector<std::uint64_t> fingerprints;
  for (const bench::Instance& inst : instances) {
    graphs.push_back(std::make_shared<graph::Graph>(inst.conflict));
    fingerprints.push_back(service::FingerprintGraph(inst.conflict));
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const int max_width =
        std::max(instances[i].dsatur_width, instances[i].min_width);
    std::string error;
    if (!svc.OpenSession("bench-" + instances[i].name, graphs[i], max_width,
                         "muldirect", "none", &error)) {
      std::fprintf(stderr, "bench: session for '%s' failed: %s\n",
                   instances[i].name.c_str(), error.c_str());
      std::exit(1);
    }
  }

  ServiceRunResult out;
  out.workers = svc.num_workers();
  std::vector<service::RoutingService::Ticket> tickets;
  tickets.reserve(plan.size());
  Stopwatch wall;
  for (const Event& e : plan) {
    const bench::Instance& inst =
        instances[static_cast<std::size_t>(e.instance)];
    const std::string client = "bench-" + inst.name;
    switch (e.kind) {
      case Event::kRoute: {
        service::RouteRequest request;
        request.label = inst.name;
        request.graph = graphs[static_cast<std::size_t>(e.instance)];
        request.fingerprint =
            fingerprints[static_cast<std::size_t>(e.instance)];
        request.width = e.width;
        request.encoding = "muldirect";
        request.symmetry = "none";
        tickets.push_back(svc.Submit(std::move(request)));
        break;
      }
      case Event::kRipUp:
        tickets.push_back(svc.SubmitRipUp(client, e.net));
        break;
      case Event::kReroute:
        tickets.push_back(svc.SubmitReroute(client, e.net, e.partners));
        break;
      case Event::kSolve:
        tickets.push_back(svc.SubmitSessionSolve(client, e.width));
        break;
    }
    if (paced) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::size_t routes = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const service::Response& r = svc.Wait(tickets[i]);
    const Event& e = plan[i];
    const bench::Instance& inst =
        instances[static_cast<std::size_t>(e.instance)];
    if (!r.ok) {
      std::fprintf(stderr, "bench: event %zu (%s): %s\n", i,
                   inst.name.c_str(), r.error.c_str());
      std::exit(1);
    }
    if (e.kind == Event::kRoute || e.kind == Event::kSolve) {
      if (e.kind == Event::kRoute) ++routes;
      const sat::SolveResult expected = ExpectedVerdict(inst, e.width);
      if (r.status != sat::SolveResult::kUnknown && r.status != expected &&
          out.first_mismatch.empty()) {
        out.equivalent = false;
        out.first_mismatch = RouteKey(instances, e) + " event " +
                             std::to_string(i) + ": service " +
                             sat::ToString(r.status) + " != expected " +
                             sat::ToString(expected);
      }
    }
  }
  out.seconds = wall.Seconds();
  out.solves_per_sec =
      out.seconds > 0.0 ? static_cast<double>(routes) / out.seconds : 0.0;

  const service::ServiceStats stats = svc.stats();
  out.verdict_lookups = stats.verdicts.lookups;
  out.verdict_hits = stats.verdicts.hits;
  out.instance_hits = stats.instances.hits;
  out.summary_hits = stats.summary_hits;
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  if (const obs::MetricSnapshot* h = snapshot.Find("service.latency_us")) {
    out.latency_p50_us = h->ApproxPercentile(0.50);
    out.latency_p95_us = h->ApproxPercentile(0.95);
    out.latency_p99_us = h->ApproxPercentile(0.99);
  }
  if (const obs::MetricSnapshot* h = snapshot.Find("service.apply_us")) {
    out.apply_p50_us = h->ApproxPercentile(0.50);
  }
  return out;
}

// Warm-hit cost: the service already holds the verdict for `key`; one more
// repeat must cost < 5% of the cold (encode + solve) time. Measured on a
// fresh service warmed with exactly one cold solve so the repeat can only
// be served by the cache.
struct WarmHit {
  std::string key;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  double ratio = 0.0;
};

WarmHit MeasureWarmHit(const std::vector<bench::Instance>& instances,
                       const BaselineResult& baseline, double timeout) {
  // The slowest cold key gives the ratio the most headroom to be honest.
  std::size_t slowest = 0;
  for (std::size_t i = 1; i < baseline.cold_seconds.size(); ++i) {
    if (baseline.cold_seconds[i] > baseline.cold_seconds[slowest]) {
      slowest = i;
    }
  }
  const std::string key = baseline.keys[slowest];
  const std::size_t slash = key.rfind("/W");
  const std::string name = key.substr(0, slash);
  const int width = std::atoi(key.c_str() + slash + 2);
  const bench::Instance* inst = nullptr;
  for (const bench::Instance& candidate : instances) {
    if (candidate.name == name) inst = &candidate;
  }

  service::ServiceOptions options;
  options.scheduler.num_workers = 1;
  options.timeout_seconds = timeout;
  service::RoutingService svc(options);
  auto graph = std::make_shared<graph::Graph>(inst->conflict);
  auto request = [&]() {
    service::RouteRequest r;
    r.label = inst->name;
    r.graph = graph;
    r.width = width;
    r.encoding = "muldirect";
    r.symmetry = "none";
    return r;
  };
  WarmHit out;
  out.key = key;
  Stopwatch cold_watch;
  svc.Wait(svc.Submit(request()));
  out.cold_seconds = cold_watch.Seconds();
  Stopwatch warm_watch;
  const service::Response& warm = svc.Wait(svc.Submit(request()));
  out.warm_seconds = warm_watch.Seconds();
  if (!warm.verdict_hit) {
    std::fprintf(stderr, "bench: warm repeat of %s missed the cache\n",
                 key.c_str());
    std::exit(1);
  }
  out.ratio = out.cold_seconds > 0.0 ? out.warm_seconds / out.cold_seconds
                                     : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pr10.json";
  std::vector<std::string> names;
  for (int i = 2; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = bench::BenchInstanceNames();
  const int route_events = TrafficCount();
  const double timeout = bench::BenchTimeoutSeconds();
  const int top_workers = TopWorkerCount();
  const bool paced = PacedArrival();

  std::vector<bench::Instance> instances;
  for (const std::string& name : names) {
    instances.push_back(bench::LoadInstance(name));
  }
  Rng rng(0x5E41CEULL);
  const std::vector<Event> plan = PlanTraffic(instances, route_events, rng);
  std::size_t session_events = 0;
  for (const Event& e : plan) session_events += e.kind != Event::kRoute;
  std::printf("Service traffic: %d route quer%s + %zu session op(s) over "
              "%zu instance(s), %s arrival (timeout %.0fs)\n\n",
              route_events, route_events == 1 ? "y" : "ies", session_events,
              instances.size(), paced ? "paced" : "burst", timeout);

  const BaselineResult baseline = RunBaseline(instances, plan, timeout);
  std::printf("sequential baseline: %d quer%s in %.3fs (%.1f solves/s), "
              "%zu unique key(s)\n",
              route_events, route_events == 1 ? "y" : "ies",
              baseline.seconds,
              baseline.seconds > 0.0 ? route_events / baseline.seconds : 0.0,
              baseline.keys.size());

  std::vector<int> worker_counts = {1};
  if (top_workers > 1) worker_counts.push_back(top_workers);
  const bench::TablePrinter table({8, 9, 11, 10, 10, 10, 10});
  table.Row({"workers", "seconds", "solves/s", "hit%", "p50us", "p95us",
             "p99us"});
  table.Separator();
  std::vector<ServiceRunResult> runs;
  for (const int workers : worker_counts) {
    runs.push_back(RunService(instances, plan, workers, timeout, paced));
    const ServiceRunResult& r = runs.back();
    char cell[32];
    std::snprintf(cell, sizeof cell, "%.1f%%",
                  r.verdict_lookups > 0
                      ? 100.0 * static_cast<double>(r.verdict_hits) /
                            static_cast<double>(r.verdict_lookups)
                      : 0.0);
    table.Row({std::to_string(r.workers),
               std::to_string(r.seconds).substr(0, 7),
               std::to_string(r.solves_per_sec).substr(0, 9),
               std::string(cell), std::to_string(r.latency_p50_us),
               std::to_string(r.latency_p95_us),
               std::to_string(r.latency_p99_us)});
  }
  table.Separator();

  const ServiceRunResult& best = runs.back();
  const double speedup =
      best.seconds > 0.0 ? baseline.seconds / best.seconds : 0.0;
  const WarmHit warm = MeasureWarmHit(instances, baseline, timeout);
  const double hit_ratio =
      best.verdict_lookups > 0
          ? static_cast<double>(best.verdict_hits) /
                static_cast<double>(best.verdict_lookups)
          : 0.0;
  std::printf("batched vs sequential: %.2fx; warm repeat of %s: %.0fus vs "
              "%.0fus cold (%.1f%% — target < 5%%)\n",
              speedup, warm.key.c_str(), warm.warm_seconds * 1e6,
              warm.cold_seconds * 1e6, warm.ratio * 100.0);

  bool equivalent = baseline.equivalent;
  std::string first_mismatch = baseline.first_mismatch;
  for (const ServiceRunResult& r : runs) {
    if (!r.equivalent && first_mismatch.empty()) {
      first_mismatch = r.first_mismatch;
    }
    equivalent = equivalent && r.equivalent;
  }

  obs::JsonObject doc;
  doc.emplace_back("bench", obs::JsonValue(std::string("service")));
  doc.emplace_back("route_events", obs::JsonValue(route_events));
  doc.emplace_back("session_events",
                   obs::JsonValue(static_cast<std::uint64_t>(session_events)));
  doc.emplace_back("arrival", obs::JsonValue(std::string(
                                  paced ? "paced" : "burst")));
  doc.emplace_back(
      "hardware_concurrency",
      obs::JsonValue(static_cast<std::uint64_t>(
          std::max(1u, std::thread::hardware_concurrency()))));
  doc.emplace_back("timeout_seconds", obs::JsonValue(timeout));
  doc.emplace_back("sequential_seconds", obs::JsonValue(baseline.seconds));
  doc.emplace_back("speedup_vs_sequential", obs::JsonValue(speedup));
  doc.emplace_back("verdict_hit_ratio", obs::JsonValue(hit_ratio));
  doc.emplace_back("equivalent", obs::JsonValue(equivalent));
  if (!first_mismatch.empty()) {
    doc.emplace_back("first_mismatch", obs::JsonValue(first_mismatch));
  }
  obs::JsonObject warm_obj;
  warm_obj.emplace_back("key", obs::JsonValue(warm.key));
  warm_obj.emplace_back("cold_seconds", obs::JsonValue(warm.cold_seconds));
  warm_obj.emplace_back("warm_seconds", obs::JsonValue(warm.warm_seconds));
  warm_obj.emplace_back("ratio", obs::JsonValue(warm.ratio));
  doc.emplace_back("warm_hit", obs::JsonValue(std::move(warm_obj)));
  obs::JsonArray scaling;
  for (const ServiceRunResult& r : runs) {
    obs::JsonObject o;
    o.emplace_back("workers", obs::JsonValue(r.workers));
    o.emplace_back("service_seconds", obs::JsonValue(r.seconds));
    o.emplace_back("solves_per_sec", obs::JsonValue(r.solves_per_sec));
    o.emplace_back("verdict_hits", obs::JsonValue(r.verdict_hits));
    o.emplace_back("verdict_lookups", obs::JsonValue(r.verdict_lookups));
    o.emplace_back("instance_hits", obs::JsonValue(r.instance_hits));
    o.emplace_back("summary_hits", obs::JsonValue(r.summary_hits));
    o.emplace_back("latency_p50_us", obs::JsonValue(r.latency_p50_us));
    o.emplace_back("latency_p95_us", obs::JsonValue(r.latency_p95_us));
    o.emplace_back("latency_p99_us", obs::JsonValue(r.latency_p99_us));
    o.emplace_back("apply_p50_us", obs::JsonValue(r.apply_p50_us));
    scaling.emplace_back(std::move(o));
  }
  doc.emplace_back("scaling", obs::JsonValue(std::move(scaling)));
  if (!bench::WriteJsonReport(out_path, obs::JsonValue(std::move(doc)))) {
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!equivalent) {
    std::fprintf(stderr, "bench: verdict mismatch, first at %s\n",
                 first_mismatch.c_str());
    return 1;
  }
  return 0;
}
