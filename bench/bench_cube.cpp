// E11 — Cube-and-conquer parallel scaling on the unroutable (W = W*-1)
// MCNC-style configurations: the hard UNSAT proofs the paper's Table 2 is
// built around, re-run through the cube worker pool at 1/2/4/8 workers
// with the lock-free clause exchange on.
//
// Each instance is also solved monolithically (same encoding/heuristic/
// solver preset) as the single-search reference. Verdicts must agree —
// a cube run that is not UNSAT on an unroutable configuration aborts the
// bench. With a JSON output path the per-cell wall times land in a report
// (BENCH_pr6.json in CI) that tools/check_parallel_speedup.py gates,
// scaling its expectation by the machine's core count: per-worker speedup
// is only measurable when the cores exist (this bench records
// hardware_concurrency in the report for exactly that reason).
//
// Usage: bench_cube [report.json]
// Env:   SATFR_BENCH_TIMEOUT, SATFR_BENCH_SET (see bench_util.h),
//        SATFR_BENCH_WORKERS  comma-free max worker count (default 8)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cube/cube_solver.h"
#include "flow/detailed_router.h"

namespace {

using namespace satfr;

int MaxWorkers() {
  if (const char* env = std::getenv("SATFR_BENCH_WORKERS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return 8;
}

struct Cell {
  double seconds = 0.0;
  bool timed_out = false;
  std::size_t cubes = 0;
  std::size_t stolen = 0;
};

struct InstanceRow {
  std::string name;
  int width = 0;
  Cell monolithic;
  std::vector<Cell> by_workers;  // parallel to the worker-count list
};

}  // namespace

int main(int argc, char** argv) {
  const double timeout = bench::BenchTimeoutSeconds();
  const int max_workers = MaxWorkers();
  std::vector<int> worker_counts;
  for (int w = 1; w <= max_workers; w *= 2) worker_counts.push_back(w);
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf(
      "== Cube-and-conquer scaling on unroutable configurations (W = W*-1) "
      "==\n   encoding ITE-linear-2+muldirect/s1, per-solve timeout %.1fs, "
      "%u hardware threads\n\n",
      timeout, cores);
  std::printf("%-12s %6s %12s", "benchmark", "W", "monolithic");
  for (const int w : worker_counts) {
    std::printf(" %9s", ("cube x" + std::to_string(w)).c_str());
  }
  std::printf(" %9s\n", "speedup");

  std::vector<InstanceRow> rows;
  for (const std::string& name : bench::BenchInstanceNames()) {
    const bench::Instance inst = bench::LoadInstance(name);
    const int width = inst.min_width - 1;
    if (width < 1) {
      std::printf("%-12s  (W*=1: no unroutable configuration)\n",
                  name.c_str());
      continue;
    }
    InstanceRow row;
    row.name = name;
    row.width = width;

    flow::DetailedRouteOptions mono;
    mono.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
    mono.heuristic = symmetry::Heuristic::kS1;
    mono.timeout_seconds = timeout;
    const flow::DetailedRouteResult mono_result =
        flow::RouteDetailedOnGraph(inst.conflict, width, mono);
    row.monolithic.timed_out =
        mono_result.status == sat::SolveResult::kUnknown;
    row.monolithic.seconds =
        row.monolithic.timed_out ? timeout : mono_result.TotalSeconds();
    std::printf("%-12s %6d %12s", name.c_str(), width,
                bench::TimeCell(row.monolithic.seconds,
                                row.monolithic.timed_out)
                    .c_str());
    std::fflush(stdout);

    for (const int workers : worker_counts) {
      cube::CubeSolveOptions options;
      options.pool.num_workers = workers;
      options.timeout_seconds = timeout;
      const cube::CubeSolveResult result = cube::SolveColoringWithCubes(
          inst.conflict, width, encode::GetEncoding("ITE-linear-2+muldirect"),
          symmetry::Heuristic::kS1, options);
      Cell cell;
      cell.timed_out = result.status == sat::SolveResult::kUnknown;
      cell.seconds = cell.timed_out ? timeout : result.wall_seconds;
      cell.cubes = result.num_cubes;
      cell.stolen = result.cubes_stolen;
      if (!cell.timed_out && result.status != sat::SolveResult::kUnsat) {
        std::printf("\nbench: cube run on %s at W=%d was not UNSAT!\n",
                    name.c_str(), width);
        return 1;
      }
      row.by_workers.push_back(cell);
      std::printf(" %9s",
                  bench::TimeCell(cell.seconds, cell.timed_out).c_str());
      std::fflush(stdout);
    }
    const Cell& one = row.by_workers.front();
    const Cell& top = row.by_workers.back();
    if (top.seconds > 0.0 && !one.timed_out && !top.timed_out) {
      std::printf(" %8.2fx\n", one.seconds / top.seconds);
    } else {
      std::printf(" %9s\n", "n/a");
    }
    rows.push_back(std::move(row));
  }

  if (argc > 1) {
    std::FILE* out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench: cannot open '%s' for writing\n", argv[1]);
      return 1;
    }
    std::fprintf(out, "{\n  \"hardware_concurrency\": %u,\n", cores);
    std::fprintf(out, "  \"timeout_seconds\": %g,\n  \"workers\": [", timeout);
    for (std::size_t i = 0; i < worker_counts.size(); ++i) {
      std::fprintf(out, "%s%d", i ? ", " : "", worker_counts[i]);
    }
    std::fprintf(out, "],\n  \"instances\": [");
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const InstanceRow& row = rows[r];
      std::fprintf(out,
                   "%s\n    {\"name\": \"%s\", \"width\": %d, "
                   "\"monolithic_seconds\": %.6f, \"monolithic_timeout\": %s, "
                   "\"cubes\": %zu, \"cube_seconds\": [",
                   r ? "," : "", row.name.c_str(), row.width,
                   row.monolithic.seconds,
                   row.monolithic.timed_out ? "true" : "false",
                   row.by_workers.front().cubes);
      for (std::size_t i = 0; i < row.by_workers.size(); ++i) {
        std::fprintf(out, "%s%.6f", i ? ", " : "",
                     row.by_workers[i].seconds);
      }
      std::fprintf(out, "], \"cube_timeouts\": [");
      for (std::size_t i = 0; i < row.by_workers.size(); ++i) {
        std::fprintf(out, "%s%s", i ? ", " : "",
                     row.by_workers[i].timed_out ? "true" : "false");
      }
      std::fprintf(out, "], \"cubes_stolen\": [");
      for (std::size_t i = 0; i < row.by_workers.size(); ++i) {
        std::fprintf(out, "%s%zu", i ? ", " : "", row.by_workers[i].stolen);
      }
      std::fprintf(out, "]}");
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote %s\n", argv[1]);
  }
  return 0;
}
