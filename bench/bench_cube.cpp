// E11 — Cube-and-conquer parallel scaling on the unroutable (W = W*-1)
// MCNC-style configurations: the hard UNSAT proofs the paper's Table 2 is
// built around, re-run through the cube worker pool at 1/2/4/8 workers
// with the lock-free clause exchange on.
//
// Each instance is also solved monolithically (same encoding/heuristic/
// solver preset) as the single-search reference. Verdicts must agree —
// a cube run that is not UNSAT on an unroutable configuration aborts the
// bench. With a JSON output path the per-cell wall times land in a report
// (BENCH_pr6.json in CI) that tools/check_parallel_speedup.py gates,
// scaling its expectation by the machine's core count: per-worker speedup
// is only measurable when the cores exist (this bench records
// hardware_concurrency in the report for exactly that reason).
//
// Usage: bench_cube [report.json]
// Env:   SATFR_BENCH_TIMEOUT, SATFR_BENCH_SET (see bench_util.h),
//        SATFR_BENCH_WORKERS  comma-free max worker count (default 8)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cube/cube_solver.h"
#include "flow/detailed_router.h"

namespace {

using namespace satfr;

int MaxWorkers() {
  if (const char* env = std::getenv("SATFR_BENCH_WORKERS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return 8;
}

struct Cell {
  double seconds = 0.0;
  bool timed_out = false;
  std::size_t cubes = 0;
  std::size_t stolen = 0;
};

struct InstanceRow {
  std::string name;
  int width = 0;
  Cell monolithic;
  std::vector<Cell> by_workers;  // parallel to the worker-count list
};

}  // namespace

int main(int argc, char** argv) {
  const double timeout = bench::BenchTimeoutSeconds();
  const int max_workers = MaxWorkers();
  std::vector<int> worker_counts;
  for (int w = 1; w <= max_workers; w *= 2) worker_counts.push_back(w);
  const unsigned cores = std::thread::hardware_concurrency();
  // Oversubscribed workers time-slice one another: "speedup" columns beyond
  // the core count measure scheduler fairness, not the cube pool. Flag it
  // loudly and in the report so downstream tooling can discount the run.
  const bool degraded =
      cores > 0 && max_workers > static_cast<int>(cores);
  if (degraded) {
    std::fprintf(stderr,
                 "bench: WARNING: %d workers requested but only %u hardware "
                 "thread(s) available — parallel speedups will be degraded "
                 "and the report is marked degraded_parallelism\n",
                 max_workers, cores);
  }

  std::printf(
      "== Cube-and-conquer scaling on unroutable configurations (W = W*-1) "
      "==\n   encoding ITE-linear-2+muldirect/s1, per-solve timeout %.1fs, "
      "%u hardware threads\n\n",
      timeout, cores);
  std::printf("%-12s %6s %12s", "benchmark", "W", "monolithic");
  for (const int w : worker_counts) {
    std::printf(" %9s", ("cube x" + std::to_string(w)).c_str());
  }
  std::printf(" %9s\n", "speedup");

  std::vector<InstanceRow> rows;
  for (const std::string& name : bench::BenchInstanceNames()) {
    const bench::Instance inst = bench::LoadInstance(name);
    const int width = inst.min_width - 1;
    if (width < 1) {
      std::printf("%-12s  (W*=1: no unroutable configuration)\n",
                  name.c_str());
      continue;
    }
    InstanceRow row;
    row.name = name;
    row.width = width;

    flow::DetailedRouteOptions mono;
    mono.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
    mono.heuristic = symmetry::Heuristic::kS1;
    mono.timeout_seconds = timeout;
    const flow::DetailedRouteResult mono_result =
        flow::RouteDetailedOnGraph(inst.conflict, width, mono);
    row.monolithic.timed_out =
        mono_result.status == sat::SolveResult::kUnknown;
    row.monolithic.seconds =
        row.monolithic.timed_out ? timeout : mono_result.TotalSeconds();
    std::printf("%-12s %6d %12s", name.c_str(), width,
                bench::TimeCell(row.monolithic.seconds,
                                row.monolithic.timed_out)
                    .c_str());
    std::fflush(stdout);

    for (const int workers : worker_counts) {
      cube::CubeSolveOptions options;
      options.pool.num_workers = workers;
      options.timeout_seconds = timeout;
      const cube::CubeSolveResult result = cube::SolveColoringWithCubes(
          inst.conflict, width, encode::GetEncoding("ITE-linear-2+muldirect"),
          symmetry::Heuristic::kS1, options);
      Cell cell;
      cell.timed_out = result.status == sat::SolveResult::kUnknown;
      cell.seconds = cell.timed_out ? timeout : result.wall_seconds;
      cell.cubes = result.num_cubes;
      cell.stolen = result.cubes_stolen;
      if (!cell.timed_out && result.status != sat::SolveResult::kUnsat) {
        std::printf("\nbench: cube run on %s at W=%d was not UNSAT!\n",
                    name.c_str(), width);
        return 1;
      }
      row.by_workers.push_back(cell);
      std::printf(" %9s",
                  bench::TimeCell(cell.seconds, cell.timed_out).c_str());
      std::fflush(stdout);
    }
    const Cell& one = row.by_workers.front();
    const Cell& top = row.by_workers.back();
    if (top.seconds > 0.0 && !one.timed_out && !top.timed_out) {
      std::printf(" %8.2fx\n", one.seconds / top.seconds);
    } else {
      std::printf(" %9s\n", "n/a");
    }
    rows.push_back(std::move(row));
  }

  if (argc > 1) {
    // Same schema as the historical fprintf emitter (consumed by
    // tools/check_parallel_speedup.py), plus degraded_parallelism.
    obs::JsonObject doc;
    doc.emplace_back("hardware_concurrency",
                     obs::JsonValue(static_cast<std::uint64_t>(cores)));
    doc.emplace_back("degraded_parallelism", obs::JsonValue(degraded));
    doc.emplace_back("timeout_seconds", obs::JsonValue(timeout));
    obs::JsonArray workers_json;
    for (const int w : worker_counts) {
      workers_json.emplace_back(w);
    }
    doc.emplace_back("workers", obs::JsonValue(std::move(workers_json)));
    obs::JsonArray instances;
    for (const InstanceRow& row : rows) {
      obs::JsonObject inst_json;
      inst_json.emplace_back("name", obs::JsonValue(row.name));
      inst_json.emplace_back("width", obs::JsonValue(row.width));
      inst_json.emplace_back("monolithic_seconds",
                             obs::JsonValue(row.monolithic.seconds));
      inst_json.emplace_back("monolithic_timeout",
                             obs::JsonValue(row.monolithic.timed_out));
      inst_json.emplace_back(
          "cubes", obs::JsonValue(static_cast<std::uint64_t>(
                       row.by_workers.front().cubes)));
      obs::JsonArray seconds_json;
      obs::JsonArray timeouts_json;
      obs::JsonArray stolen_json;
      for (const Cell& cell : row.by_workers) {
        seconds_json.emplace_back(cell.seconds);
        timeouts_json.emplace_back(cell.timed_out);
        stolen_json.emplace_back(static_cast<std::uint64_t>(cell.stolen));
      }
      inst_json.emplace_back("cube_seconds",
                             obs::JsonValue(std::move(seconds_json)));
      inst_json.emplace_back("cube_timeouts",
                             obs::JsonValue(std::move(timeouts_json)));
      inst_json.emplace_back("cubes_stolen",
                             obs::JsonValue(std::move(stolen_json)));
      instances.emplace_back(std::move(inst_json));
    }
    doc.emplace_back("instances", obs::JsonValue(std::move(instances)));
    if (!bench::WriteJsonReport(argv[1], obs::JsonValue(std::move(doc)))) {
      return 1;
    }
    std::printf("\nwrote %s\n", argv[1]);
  }
  return 0;
}
