// E11 — Ablation (extension): star vs chain decomposition of multi-pin
// nets (§2 of the paper only requires *some* 2-pin decomposition). The
// choice changes global wirelength, channel congestion, the conflict
// graph, and ultimately the minimum routable width W*.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "flow/detailed_router.h"

int main() {
  using namespace satfr;
  const std::vector<std::string> names = bench::BenchInstanceNames();

  std::printf("== Star vs chain 2-pin decomposition ==\n\n");
  std::printf("%-12s  %6s  %10s  %8s  %6s      %6s  %10s  %8s  %6s\n",
              "benchmark", "[star]", "wirelen", "edges", "W*", "[chain]",
              "wirelen", "edges", "W*");

  for (const std::string& name : names) {
    const netlist::McncBenchmark bench =
        netlist::GenerateMcncBenchmark(name);
    const fpga::Arch arch(bench.params.grid_size);
    const fpga::DeviceGraph device(arch);
    std::printf("%-12s", name.c_str());
    for (const route::Decomposition decomposition :
         {route::Decomposition::kStar, route::Decomposition::kChain}) {
      route::GlobalRouterOptions router_options;
      router_options.decomposition = decomposition;
      const route::GlobalRouting routing = route::RouteGlobally(
          device, bench.netlist, bench.placement, router_options);
      const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);
      flow::MinWidthOptions mw;
      mw.route.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
      mw.route.heuristic = symmetry::Heuristic::kS1;
      mw.route.timeout_seconds = 60.0 * bench::BenchTimeoutSeconds();
      const flow::MinWidthResult result = flow::FindMinimumWidthOnGraph(
          conflict, route::PeakCongestion(arch, routing), mw);
      std::printf("  %6s  %10zu  %8zu  %6d",
                  route::ToString(decomposition), routing.TotalWirelength(),
                  conflict.num_edges(), result.min_width);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nStar keeps every connection anchored at the driver (long spokes, "
      "heavier channels near\nthe source); the chain trades that for "
      "serial detours. Which one needs fewer tracks is\nbenchmark-"
      "dependent — the SAT flow answers it exactly either way.\n");
  return 0;
}
