// E5 — Reproduces the §6 solver comparison: "siege_v4 was faster by at
// least a factor of 2 when proving the unsatisfiability of formulas from
// unroutable configurations". Runs the siege-like and minisat-like presets
// on the unroutable configurations (W*-1) under the paper's best encoding.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "flow/detailed_router.h"

int main() {
  using namespace satfr;
  const double timeout = bench::BenchTimeoutSeconds();
  const std::vector<std::string> names = bench::BenchInstanceNames();

  std::printf(
      "== Solver presets on unroutable configurations (W = W*-1), encoding "
      "ITE-linear-2+muldirect / s1 ==\n\n");
  std::printf("%-12s  %14s  %14s\n", "benchmark", "siege-like",
              "minisat-like");

  double total_siege = 0.0;
  double total_minisat = 0.0;
  for (const std::string& name : names) {
    const bench::Instance inst = bench::LoadInstance(name);
    const int width = inst.min_width - 1;
    std::printf("%-12s", name.c_str());
    if (width < 1) {
      std::printf("  (W*=1: skipped)\n");
      continue;
    }
    for (const bool siege : {true, false}) {
      flow::DetailedRouteOptions options;
      options.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
      options.heuristic = symmetry::Heuristic::kS1;
      options.solver = siege ? sat::SolverOptions::SiegeLike()
                             : sat::SolverOptions::MiniSatLike();
      options.timeout_seconds = timeout;
      const flow::DetailedRouteResult result =
          flow::RouteDetailedOnGraph(inst.conflict, width, options);
      const bool timed_out = result.status == sat::SolveResult::kUnknown;
      const double seconds = timed_out ? timeout : result.TotalSeconds();
      (siege ? total_siege : total_minisat) += seconds;
      std::printf("  %14s", bench::TimeCell(seconds, timed_out).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("%-12s  %14s  %14s\n", "Total",
              FormatSecondsPaperStyle(total_siege).c_str(),
              FormatSecondsPaperStyle(total_minisat).c_str());
  if (total_siege > 0.0) {
    std::printf("minisat-like / siege-like ratio: %.2fx\n",
                total_minisat / total_siege);
  }
  std::printf(
      "\nPaper reference: siege_v4 at least 2x faster than MiniSat on the "
      "UNSAT formulas.\n");
  return 0;
}
