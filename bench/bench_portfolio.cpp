// E6 — Reproduces the §6 portfolio experiment: portfolios of 2 and 3
// parallel strategies versus the best single strategy
// (ITE-linear-2+muldirect / s1) on the unroutable configurations.
// The paper reports 1.84x (2 strategies) and 2.30x (3 strategies)
// additional speedup on an (otherwise idle) multicore CPU; on a machine
// with fewer cores the threads time-slice and the measured gain shrinks
// accordingly — the bench prints the hardware parallelism so results can
// be read in context.
//
// A second section measures learnt-clause sharing: a diversified portfolio
// (identical encoding/symmetry, so every member shares one variable
// numbering) with the clause exchange off vs. on.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "flow/detailed_router.h"
#include "portfolio/portfolio.h"

int main() {
  using namespace satfr;
  const double timeout = bench::BenchTimeoutSeconds();
  const std::vector<std::string> names = bench::BenchInstanceNames();

  // The min-width search in LoadInstance is expensive; do it once and share
  // the instances between the two sections.
  std::vector<bench::Instance> instances;
  instances.reserve(names.size());
  for (const std::string& name : names) {
    instances.push_back(bench::LoadInstance(name));
  }

  std::printf(
      "== Portfolios on unroutable configurations (W = W*-1) ==\n"
      "   hardware threads available: %u\n\n",
      std::thread::hardware_concurrency());
  std::printf("%-12s  %14s  %14s  %14s\n", "benchmark", "best single",
              "portfolio-2", "portfolio-3");

  double total_single = 0.0;
  double total_p2 = 0.0;
  double total_p3 = 0.0;
  for (const bench::Instance& inst : instances) {
    const int width = inst.min_width - 1;
    std::printf("%-12s", inst.name.c_str());
    if (width < 1) {
      std::printf("  (W*=1: skipped)\n");
      continue;
    }

    flow::DetailedRouteOptions single;
    single.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
    single.heuristic = symmetry::Heuristic::kS1;
    single.timeout_seconds = timeout;
    const auto single_result =
        flow::RouteDetailedOnGraph(inst.conflict, width, single);
    const bool single_timeout =
        single_result.status == sat::SolveResult::kUnknown;
    const double single_seconds =
        single_timeout ? timeout : single_result.TotalSeconds();
    total_single += single_seconds;
    std::printf("  %14s",
                bench::TimeCell(single_seconds, single_timeout).c_str());
    std::fflush(stdout);

    for (const bool three : {false, true}) {
      const auto strategies = three ? portfolio::PaperPortfolio3()
                                    : portfolio::PaperPortfolio2();
      const portfolio::PortfolioResult result =
          portfolio::RunPortfolio(inst.conflict, width, strategies, timeout);
      const bool timed_out = result.winner < 0;
      const double seconds = timed_out ? timeout : result.wall_seconds;
      (three ? total_p3 : total_p2) += seconds;
      std::printf("  %14s", bench::TimeCell(seconds, timed_out).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("%-12s  %14s  %14s  %14s\n", "Total",
              FormatSecondsPaperStyle(total_single).c_str(),
              FormatSecondsPaperStyle(total_p2).c_str(),
              FormatSecondsPaperStyle(total_p3).c_str());
  if (total_p2 > 0.0 && total_p3 > 0.0) {
    std::printf("speedup vs best single: portfolio-2 %.2fx, portfolio-3 "
                "%.2fx\n",
                total_single / total_p2, total_single / total_p3);
  }
  std::printf(
      "\nPaper reference (dual-core testbed): portfolio-2 1.84x, "
      "portfolio-3 2.30x vs the best\nsingle strategy.\n");

  std::printf(
      "\n== Learnt-clause sharing (diversified 3-way portfolio, W = W*-1) "
      "==\n\n");
  std::printf("%-12s  %14s  %14s  %10s  %10s\n", "benchmark", "sharing off",
              "sharing on", "exported", "imported");
  double total_off = 0.0;
  double total_on = 0.0;
  std::uint64_t total_dup = 0;
  std::uint64_t total_blocker_hits = 0;
  std::uint64_t total_inspections = 0;
  std::uint64_t total_gc = 0;
  std::uint64_t total_vivified = 0;
  for (const bench::Instance& inst : instances) {
    const int width = inst.min_width - 1;
    if (width < 1) continue;
    std::printf("%-12s", inst.name.c_str());
    const auto strategies = portfolio::DiversifiedPortfolio(3);
    std::uint64_t exported = 0;
    std::uint64_t imported = 0;
    for (const bool share : {false, true}) {
      portfolio::PortfolioOptions options;
      options.share_clauses = share;
      const portfolio::PortfolioResult result = portfolio::RunPortfolio(
          inst.conflict, width, strategies, timeout, options);
      const bool timed_out = result.winner < 0;
      const double seconds = timed_out ? timeout : result.wall_seconds;
      (share ? total_on : total_off) += seconds;
      if (share) {
        for (const sat::SolverStats& stats : result.strategy_stats) {
          exported += stats.exported_clauses;
          imported += stats.imported_clauses;
          total_dup += stats.import_duplicates;
          total_blocker_hits += stats.blocker_hits;
          total_inspections += stats.watch_inspections;
          total_gc += stats.gc_runs;
          total_vivified += stats.clauses_vivified;
        }
      }
      std::printf("  %14s", bench::TimeCell(seconds, timed_out).c_str());
      std::fflush(stdout);
    }
    std::printf("  %10llu  %10llu\n",
                static_cast<unsigned long long>(exported),
                static_cast<unsigned long long>(imported));
  }
  std::printf("%-12s  %14s  %14s\n", "Total",
              FormatSecondsPaperStyle(total_off).c_str(),
              FormatSecondsPaperStyle(total_on).c_str());
  if (total_on > 0.0) {
    std::printf("sharing speedup: %.2fx\n", total_off / total_on);
  }
  // Aggregate solver-internals for the sharing-on runs: how often the
  // blocking literal short-circuits a watch inspection, how much arena GC
  // and inprocessing ran, and how many re-offered clauses the literal-hash
  // dedup caught (nonzero whenever members exchange overlapping learnts).
  if (total_inspections > 0) {
    std::printf("solver internals (sharing on): blocker hit rate %.1f%%, "
                "%llu gc runs, %llu clauses vivified, %llu duplicate "
                "imports dropped\n",
                100.0 * static_cast<double>(total_blocker_hits) /
                    static_cast<double>(total_inspections),
                static_cast<unsigned long long>(total_gc),
                static_cast<unsigned long long>(total_vivified),
                static_cast<unsigned long long>(total_dup));
  }
  return 0;
}
