// E12 — Ablation (extension): CNF preprocessing (unit propagation +
// subsumption + self-subsuming resolution) applied to the unroutable
// instances before solving. Reports the formula shrinkage and the effect
// on total solve time for the previously used muldirect encoding and the
// paper's best strategy.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sat/preprocess.h"
#include "sat/solver.h"

namespace {

using namespace satfr;

struct Cell {
  double direct_seconds = 0.0;
  double preprocessed_seconds = 0.0;  // includes preprocessing time
  std::size_t literals_before = 0;
  std::size_t literals_after = 0;
};

Cell RunOne(const graph::Graph& conflict, int width,
            const std::string& encoding, symmetry::Heuristic heuristic,
            double timeout) {
  Cell cell;
  const auto sequence =
      symmetry::SymmetrySequence(conflict, width, heuristic);
  const encode::EncodedColoring enc = encode::EncodeColoring(
      conflict, width, encode::GetEncoding(encoding), sequence);
  cell.literals_before = enc.cnf.num_literals();

  {
    Stopwatch watch;
    sat::Solver solver(sat::SolverOptions::SiegeLike());
    sat::SolveResult status = sat::SolveResult::kUnsat;
    if (solver.AddCnf(enc.cnf)) {
      status = solver.Solve(Deadline::After(timeout));
    }
    cell.direct_seconds =
        status == sat::SolveResult::kUnknown ? timeout : watch.Seconds();
  }
  {
    Stopwatch watch;
    const sat::PreprocessResult pre = sat::Preprocess(enc.cnf);
    cell.literals_after = pre.simplified.num_literals();
    sat::SolveResult status = sat::SolveResult::kUnsat;
    if (!pre.contradiction) {
      sat::Solver solver(sat::SolverOptions::SiegeLike());
      if (solver.AddCnf(pre.simplified)) {
        status = solver.Solve(Deadline::After(timeout));
      }
    }
    cell.preprocessed_seconds =
        status == sat::SolveResult::kUnknown ? timeout : watch.Seconds();
  }
  return cell;
}

}  // namespace

int main() {
  const double timeout = bench::BenchTimeoutSeconds();
  const std::vector<std::string> names = bench::BenchInstanceNames();

  std::printf(
      "== CNF preprocessing ablation on unroutable configurations "
      "(W = W*-1) ==\n   per-cell times include preprocessing itself\n\n");
  std::printf("%-12s  %28s  %28s\n", "", "muldirect/s1",
              "ITE-linear-2+muldirect/s1");
  std::printf("%-12s  %9s %9s %8s  %9s %9s %8s\n", "benchmark", "plain[s]",
              "pre[s]", "shrink", "plain[s]", "pre[s]", "shrink");

  for (const std::string& name : names) {
    const bench::Instance inst = bench::LoadInstance(name);
    const int width = inst.min_width - 1;
    std::printf("%-12s", name.c_str());
    if (width < 1) {
      std::printf("  (W*=1: skipped)\n");
      continue;
    }
    for (const char* encoding :
         {"muldirect", "ITE-linear-2+muldirect"}) {
      const Cell cell = RunOne(inst.conflict, width, encoding,
                               symmetry::Heuristic::kS1, timeout);
      const double shrink =
          cell.literals_before > 0
              ? 100.0 * (1.0 - static_cast<double>(cell.literals_after) /
                                   static_cast<double>(cell.literals_before))
              : 0.0;
      std::printf("  %9.3f %9.3f %7.1f%%", cell.direct_seconds,
                  cell.preprocessed_seconds, shrink);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\n'shrink' is the literal-count reduction from unit propagation, "
      "subsumption and\nself-subsuming resolution.\n");
  return 0;
}
