// E1 — Reproduces Table 1 of the paper: the exact clause sets the log,
// direct, and muldirect encodings generate for a graph-coloring problem
// with two adjacent vertices v and w, each with domain {0, 1, 2} (i.e. two
// electrically distinct 2-pin nets through a 3-track connection block).
#include <cstdio>
#include <string>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "sat/clause_sink.h"

namespace {

using namespace satfr;

// Pretty-prints a literal in the paper's x_{v i} style: variables of vertex
// v are x_v0.., of vertex w x_w0.. (log encoding uses l_v1/l_v2 naming).
std::string LitName(sat::Lit l, int vars_per_vertex, bool log_style) {
  const int vertex = l.var() / vars_per_vertex;
  const int local = l.var() % vars_per_vertex;
  const char vertex_name = vertex == 0 ? 'v' : 'w';
  std::string name;
  if (log_style) {
    name = std::string("l_") + vertex_name + std::to_string(local + 1);
  } else {
    name = std::string("x_") + vertex_name + std::to_string(local);
  }
  return (l.negated() ? "~" : "") + name;
}

void PrintEncoding(const char* encoding_name, bool log_style) {
  graph::Graph g(2);
  g.AddEdge(0, 1);
  const encode::EncodedColoring enc =
      EncodeColoring(g, 3, encode::GetEncoding(encoding_name));
  std::printf("Encoding: %s  (%d Boolean vars, %zu clauses)\n",
              encoding_name, enc.cnf.num_vars(), enc.cnf.num_clauses());
  for (const sat::Clause& clause : enc.cnf.clauses()) {
    std::string line = "  (";
    for (std::size_t i = 0; i < clause.size(); ++i) {
      if (i > 0) line += " \\/ ";
      line += LitName(clause[i], enc.domain.num_vars, log_style);
    }
    line += ")";
    std::printf("%s\n", line.c_str());
  }
  const std::vector<std::size_t> histogram = enc.cnf.ClauseLengthHistogram();
  std::string profile = "  clause lengths:";
  for (std::size_t len = 0; len < histogram.size(); ++len) {
    if (histogram[len] == 0) continue;
    profile += " " + std::to_string(histogram[len]) + "x" +
               std::to_string(len);
  }
  // Cross-check: the allocation-free CountingSink sees the same stream the
  // collector materialized (Table 1 counts are sink-independent).
  sat::CountingSink counting;
  encode::EncodeColoringToSink(g, 3, encode::GetEncoding(encoding_name), {},
                               counting);
  bool counts_match = counting.num_clauses() == enc.cnf.num_clauses();
  for (std::size_t len = 0; len < histogram.size(); ++len) {
    counts_match =
        counts_match && counting.NumClausesOfSize(len) == histogram[len];
  }
  profile += counts_match ? "  [counting-sink: match]"
                          : "  [counting-sink: MISMATCH]";
  std::printf("%s\n\n", profile.c_str());
}

}  // namespace

int main() {
  std::printf(
      "== Table 1: previously used CSP-to-SAT encodings on the 2-vertex, "
      "3-value example ==\n\n");
  PrintEncoding("log", /*log_style=*/true);
  PrintEncoding("direct", /*log_style=*/false);
  PrintEncoding("muldirect", /*log_style=*/false);
  std::printf(
      "Expected per Table 1: log = 3 conflict + 2 excluded-illegal-value "
      "clauses;\n"
      "direct = 2 at-least-one + 6 at-most-one + 3 conflict; muldirect = "
      "direct\nwithout the at-most-one clauses.\n");
  return 0;
}
