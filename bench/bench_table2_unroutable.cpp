// E3 — Reproduces Table 2 of the paper: total CPU time (graph-coloring
// generation + CNF translation + SAT solving) on the challenging
// *unroutable* configurations (W = W* - 1) of the MCNC-style benchmarks,
// for the seven best-performing encodings, each without symmetry breaking
// (muldirect only, as in the paper) and with heuristics b1 and s1.
// The final rows give the total per strategy and the speedup relative to
// muldirect without symmetry breaking — the paper's headline 1,139x cell.
//
// Instances are scaled-down synthetic stand-ins (DESIGN.md §3): absolute
// seconds differ from the paper's testbed, but the comparison shape (which
// encodings win, by what order of magnitude) is what this bench reproduces.
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "flow/detailed_router.h"

namespace {

using namespace satfr;
using bench::Instance;

struct StrategyColumn {
  std::string encoding;
  symmetry::Heuristic heuristic;
  std::string Label() const {
    return encoding + "/" + symmetry::ToString(heuristic);
  }
};

std::vector<StrategyColumn> Table2Columns() {
  std::vector<StrategyColumn> cols;
  cols.push_back({"muldirect", symmetry::Heuristic::kNone});
  for (const std::string& enc : encode::Table2EncodingNames()) {
    cols.push_back({enc, symmetry::Heuristic::kB1});
    cols.push_back({enc, symmetry::Heuristic::kS1});
  }
  return cols;
}

}  // namespace

int main() {
  const double timeout = bench::BenchTimeoutSeconds();
  const std::vector<std::string> names = bench::BenchInstanceNames();
  const std::vector<StrategyColumn> columns = Table2Columns();

  std::printf(
      "== Table 2: total time [s] (coloring + CNF + SAT) on unroutable "
      "configurations (W = W*-1) ==\n"
      "   per-solve timeout: %.1fs; timed-out cells count as the timeout "
      "and are marked '>'\n\n",
      timeout);

  std::vector<double> totals(columns.size(), 0.0);
  std::vector<bool> any_timeout(columns.size(), false);

  // Header (two stacked lines: encoding, heuristic).
  std::printf("%-12s", "benchmark");
  for (const auto& col : columns) {
    std::printf("  %22s", col.Label().c_str());
  }
  std::printf("\n");

  for (const std::string& name : names) {
    const Instance inst = bench::LoadInstance(name);
    const int width = inst.min_width - 1;
    std::printf("%-12s", name.c_str());
    if (width < 1) {
      std::printf("  (W*=1: no unroutable configuration)\n");
      continue;
    }
    for (std::size_t c = 0; c < columns.size(); ++c) {
      flow::DetailedRouteOptions options;
      options.encoding = encode::GetEncoding(columns[c].encoding);
      options.heuristic = columns[c].heuristic;
      options.solver = sat::SolverOptions::SiegeLike();
      options.timeout_seconds = timeout;
      const flow::DetailedRouteResult result =
          flow::RouteDetailedOnGraph(inst.conflict, width, options);
      const bool timed_out = result.status == sat::SolveResult::kUnknown;
      const double seconds =
          timed_out ? timeout : result.TotalSeconds();
      totals[c] += seconds;
      any_timeout[c] = any_timeout[c] || timed_out;
      std::printf("  %22s", bench::TimeCell(seconds, timed_out).c_str());
      std::fflush(stdout);
      if (!timed_out && result.status != sat::SolveResult::kUnsat) {
        std::printf("\nbench: instance %s at W=%d was not UNSAT!\n",
                    name.c_str(), width);
        return 1;
      }
    }
    std::printf("\n");
  }

  std::printf("%-12s", "Total");
  for (const double total : totals) {
    std::printf("  %22s", FormatSecondsPaperStyle(total).c_str());
  }
  std::printf("\n%-12s", "Speedup");
  const double baseline = totals[0];
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::string cell =
        totals[c] > 0.0
            ? FormatWithCommas(baseline / totals[c], 2) + "x"
            : "inf";
    if (any_timeout[c] && c == 0) cell += " (floor)";
    std::printf("  %22s", cell.c_str());
  }
  std::printf(
      "\n\nPaper reference: muldirect/- total 1,531,524s; best strategy "
      "ITE-linear-2+muldirect/s1\nwith 1,139x total speedup; max individual "
      "speedup 9,499x (vda, ITE-linear-2+direct/s1).\n");
  return 0;
}
