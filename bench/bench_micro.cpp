// E8 — Micro-benchmarks (google-benchmark) for the hot paths of the
// pipeline: domain encoding, coloring->CNF compilation, conflict-graph
// extraction, maze routing, and the SAT solver on a fixed instance family.
#include <benchmark/benchmark.h>

#include <map>

#include "analysis/runner.h"
#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "flow/conflict_graph.h"
#include "flow/min_width.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"
#include "sat/clause_sink.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"

namespace {

using namespace satfr;

void BM_EncodeDomain(benchmark::State& state,
                     const std::string& encoding_name) {
  const encode::EncodingSpec spec = encode::GetEncoding(encoding_name);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeDomain(spec, k));
  }
}
BENCHMARK_CAPTURE(BM_EncodeDomain, muldirect, std::string("muldirect"))
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_EncodeDomain, ite_linear_2_muldirect,
                  std::string("ITE-linear-2+muldirect"))
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_EncodeDomain, ite_log, std::string("ITE-log"))
    ->Arg(8)
    ->Arg(32);

void BM_EncodeColoring(benchmark::State& state,
                       const std::string& encoding_name) {
  // A fixed random-ish graph: circulant on 80 vertices.
  graph::Graph g(80);
  for (graph::VertexId v = 0; v < 80; ++v) {
    for (int offset : {1, 2, 5, 11}) {
      g.AddEdge(v, (v + offset) % 80);
    }
  }
  const encode::EncodingSpec spec = encode::GetEncoding(encoding_name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeColoring(g, 6, spec));
  }
}
BENCHMARK_CAPTURE(BM_EncodeColoring, muldirect, std::string("muldirect"));
BENCHMARK_CAPTURE(BM_EncodeColoring, ite_linear_2_muldirect,
                  std::string("ITE-linear-2+muldirect"));

// The two encode->solve paths on the same instance: materialize a Cnf and
// AddCnf it (collector) versus streaming the encoder into the solver
// (direct). The delta is the cost of the intermediate Cnf.
void BM_EncodeColoringCollectorToSolver(benchmark::State& state,
                                        const std::string& encoding_name) {
  graph::Graph g(80);
  for (graph::VertexId v = 0; v < 80; ++v) {
    for (int offset : {1, 2, 5, 11}) {
      g.AddEdge(v, (v + offset) % 80);
    }
  }
  const encode::EncodingSpec spec = encode::GetEncoding(encoding_name);
  for (auto _ : state) {
    sat::Solver solver;
    const encode::EncodedColoring enc = EncodeColoring(g, 6, spec);
    solver.AddCnf(enc.cnf);
    benchmark::DoNotOptimize(solver.num_vars());
  }
}
BENCHMARK_CAPTURE(BM_EncodeColoringCollectorToSolver, muldirect,
                  std::string("muldirect"));
BENCHMARK_CAPTURE(BM_EncodeColoringCollectorToSolver, ite_linear_2_muldirect,
                  std::string("ITE-linear-2+muldirect"));

void BM_EncodeColoringDirectToSolver(benchmark::State& state,
                                     const std::string& encoding_name) {
  graph::Graph g(80);
  for (graph::VertexId v = 0; v < 80; ++v) {
    for (int offset : {1, 2, 5, 11}) {
      g.AddEdge(v, (v + offset) % 80);
    }
  }
  const encode::EncodingSpec spec = encode::GetEncoding(encoding_name);
  for (auto _ : state) {
    sat::Solver solver;
    sat::SolverSink sink(solver);
    benchmark::DoNotOptimize(
        encode::EncodeColoringToSink(g, 6, spec, {}, sink));
    sink.Finish();
    benchmark::DoNotOptimize(solver.num_vars());
  }
}
BENCHMARK_CAPTURE(BM_EncodeColoringDirectToSolver, muldirect,
                  std::string("muldirect"));
BENCHMARK_CAPTURE(BM_EncodeColoringDirectToSolver, ite_linear_2_muldirect,
                  std::string("ITE-linear-2+muldirect"));

void BM_LintEncodedColoring(benchmark::State& state,
                            const std::string& encoding_name) {
  // Same circulant instance as BM_EncodeColoring, so the two benchmarks
  // together give the lint/encode overhead ratio of --selfcheck.
  graph::Graph g(80);
  for (graph::VertexId v = 0; v < 80; ++v) {
    for (int offset : {1, 2, 5, 11}) {
      g.AddEdge(v, (v + offset) % 80);
    }
  }
  const encode::EncodingSpec spec = encode::GetEncoding(encoding_name);
  const std::vector<graph::VertexId> sequence =
      symmetry::SymmetrySequence(g, 6, symmetry::Heuristic::kS1);
  const encode::EncodedColoring encoded =
      encode::EncodeColoring(g, 6, spec, sequence);
  const analysis::AnalysisRunner runner = analysis::MakeDefaultRunner();
  analysis::AnalysisInput input;
  input.cnf = &encoded.cnf;
  input.conflict_graph = &g;
  input.encoded = &encoded;
  input.spec = &spec;
  input.symmetry_sequence = &sequence;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.Run(input));
  }
}
BENCHMARK_CAPTURE(BM_LintEncodedColoring, muldirect,
                  std::string("muldirect"));
BENCHMARK_CAPTURE(BM_LintEncodedColoring, ite_linear_2_muldirect,
                  std::string("ITE-linear-2+muldirect"));

void BM_GlobalRoute(benchmark::State& state) {
  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark("9symml");
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        route::RouteGlobally(device, bench.netlist, bench.placement));
  }
}
BENCHMARK(BM_GlobalRoute);

void BM_ConflictGraph(benchmark::State& state) {
  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark("term1");
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::BuildConflictGraph(arch, routing));
  }
}
BENCHMARK(BM_ConflictGraph);

void BM_SolverPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const int pigeons = holes + 1;
  std::uint64_t propagations = 0;
  double solve_seconds = 0.0;
  for (auto _ : state) {
    sat::Solver solver;
    sat::Cnf cnf(pigeons * holes);
    const auto var = [holes](int p, int h) { return p * holes + h; };
    for (int p = 0; p < pigeons; ++p) {
      sat::Clause alo;
      for (int h = 0; h < holes; ++h) {
        alo.push_back(sat::Lit::Pos(var(p, h)));
      }
      cnf.AddClause(std::move(alo));
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          cnf.AddBinary(sat::Lit::Neg(var(p1, h)),
                        sat::Lit::Neg(var(p2, h)));
        }
      }
    }
    solver.AddCnf(cnf);
    benchmark::DoNotOptimize(solver.Solve());
    propagations += solver.stats().propagations;
    solve_seconds += solver.stats().solve_seconds;
  }
  if (solve_seconds > 0.0) {
    state.counters["props/s"] =
        static_cast<double>(propagations) / solve_seconds;
  }
}
BENCHMARK(BM_SolverPigeonhole)->Arg(5)->Arg(7);

// Unroutable (W = W*-1) MCNC routing instance under a chosen encoding.
// The direct encoding yields the clause profile the binary-implication
// layer targets (>95% binary clauses); ITE-linear-2+muldirect is the
// paper's best strategy and exercises the long-clause watchers too.
// Building the instance needs a min-width search, so it is cached across
// benchmark registrations and iterations.
const encode::EncodedColoring& UnroutableInstance(
    const std::string& name, const std::string& encoding) {
  static std::map<std::string, encode::EncodedColoring>* cache =
      new std::map<std::string, encode::EncodedColoring>();
  const std::string key = name + "/" + encoding;
  const auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  const netlist::McncBenchmark bench = netlist::GenerateMcncBenchmark(name);
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);

  flow::MinWidthOptions options;
  options.route.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
  options.route.heuristic = symmetry::Heuristic::kS1;
  options.route.timeout_seconds = 300.0;
  const flow::MinWidthResult mw = flow::FindMinimumWidthOnGraph(
      conflict, route::PeakCongestion(arch, routing), options);
  const int width = mw.min_width - 1;

  const auto sequence =
      symmetry::SymmetrySequence(conflict, width, symmetry::Heuristic::kS1);
  return cache
      ->emplace(key, encode::EncodeColoring(conflict, width,
                                            encode::GetEncoding(encoding),
                                            sequence))
      .first->second;
}

void BM_SolverRoutingUnsat(benchmark::State& state, const std::string& name,
                           const std::string& encoding,
                           const sat::SolverOptions& options) {
  const encode::EncodedColoring& encoded = UnroutableInstance(name, encoding);
  std::uint64_t propagations = 0;
  std::uint64_t binary_propagations = 0;
  double solve_seconds = 0.0;
  std::size_t peak_clause_bytes = 0;
  for (auto _ : state) {
    sat::Solver solver(options);
    solver.AddCnf(encoded.cnf);
    benchmark::DoNotOptimize(solver.Solve());
    propagations += solver.stats().propagations;
    binary_propagations += solver.stats().binary_propagations;
    solve_seconds += solver.stats().solve_seconds;
    peak_clause_bytes = std::max(peak_clause_bytes,
                                 solver.ClauseMemoryBytes());
  }
  if (solve_seconds > 0.0) {
    state.counters["props/s"] =
        static_cast<double>(propagations) / solve_seconds;
    state.counters["bin_props/s"] =
        static_cast<double>(binary_propagations) / solve_seconds;
  }
  state.counters["clause_KiB"] =
      static_cast<double>(peak_clause_bytes) / 1024.0;
}

// The W*-1 suite of ISSUE 5: {alu2, alu4, too_large} x {direct,
// ITE-linear-2+muldirect}, all under s1 symmetry breaking.
#define SATFR_ROUTING_UNSAT_SUITE(config_name, options)                     \
  BENCHMARK_CAPTURE(BM_SolverRoutingUnsat, alu2_direct_s1_##config_name,    \
                    std::string("alu2"), std::string("direct"), options)    \
      ->Unit(benchmark::kMillisecond);                                      \
  BENCHMARK_CAPTURE(BM_SolverRoutingUnsat, alu4_direct_s1_##config_name,    \
                    std::string("alu4"), std::string("direct"), options)    \
      ->Unit(benchmark::kMillisecond);                                      \
  BENCHMARK_CAPTURE(BM_SolverRoutingUnsat,                                  \
                    too_large_direct_s1_##config_name,                      \
                    std::string("too_large"), std::string("direct"),        \
                    options)                                                \
      ->Unit(benchmark::kMillisecond);                                      \
  BENCHMARK_CAPTURE(BM_SolverRoutingUnsat, alu2_ite2md_s1_##config_name,    \
                    std::string("alu2"),                                    \
                    std::string("ITE-linear-2+muldirect"), options)         \
      ->Unit(benchmark::kMillisecond);                                      \
  BENCHMARK_CAPTURE(BM_SolverRoutingUnsat, alu4_ite2md_s1_##config_name,    \
                    std::string("alu4"),                                    \
                    std::string("ITE-linear-2+muldirect"), options)         \
      ->Unit(benchmark::kMillisecond);                                      \
  BENCHMARK_CAPTURE(BM_SolverRoutingUnsat,                                  \
                    too_large_ite2md_s1_##config_name,                      \
                    std::string("too_large"),                               \
                    std::string("ITE-linear-2+muldirect"), options)         \
      ->Unit(benchmark::kMillisecond)

// Per-feature ablation ladder for the BCP overhaul (ISSUE 5): each config
// switches one more hot-path feature on, so adjacent columns isolate the
// contribution of blocking literals, arena GC, the tiered learnt database,
// and restart-time vivification. `default` (above) equals `abl_vivify`.
sat::SolverOptions AblationOptions(bool blockers, bool gc, bool tiers,
                                   bool vivify) {
  sat::SolverOptions options;
  options.use_blocking_literals = blockers;
  options.gc_enabled = gc;
  options.use_tiers = tiers;
  options.vivify = vivify;
  return options;
}

SATFR_ROUTING_UNSAT_SUITE(default, sat::SolverOptions());
SATFR_ROUTING_UNSAT_SUITE(abl_none, AblationOptions(false, false, false,
                                                    false));
SATFR_ROUTING_UNSAT_SUITE(abl_blocker, AblationOptions(true, false, false,
                                                       false));
SATFR_ROUTING_UNSAT_SUITE(abl_gc, AblationOptions(true, true, false, false));
SATFR_ROUTING_UNSAT_SUITE(abl_tiers, AblationOptions(true, true, true,
                                                     false));
SATFR_ROUTING_UNSAT_SUITE(abl_vivify, AblationOptions(true, true, true,
                                                      true));

}  // namespace

BENCHMARK_MAIN();
