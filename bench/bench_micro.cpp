// E8 — Micro-benchmarks (google-benchmark) for the hot paths of the
// pipeline: domain encoding, coloring->CNF compilation, conflict-graph
// extraction, maze routing, and the SAT solver on a fixed instance family.
#include <benchmark/benchmark.h>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "flow/conflict_graph.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"
#include "sat/solver.h"

namespace {

using namespace satfr;

void BM_EncodeDomain(benchmark::State& state,
                     const std::string& encoding_name) {
  const encode::EncodingSpec spec = encode::GetEncoding(encoding_name);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeDomain(spec, k));
  }
}
BENCHMARK_CAPTURE(BM_EncodeDomain, muldirect, std::string("muldirect"))
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_EncodeDomain, ite_linear_2_muldirect,
                  std::string("ITE-linear-2+muldirect"))
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_EncodeDomain, ite_log, std::string("ITE-log"))
    ->Arg(8)
    ->Arg(32);

void BM_EncodeColoring(benchmark::State& state,
                       const std::string& encoding_name) {
  // A fixed random-ish graph: circulant on 80 vertices.
  graph::Graph g(80);
  for (graph::VertexId v = 0; v < 80; ++v) {
    for (int offset : {1, 2, 5, 11}) {
      g.AddEdge(v, (v + offset) % 80);
    }
  }
  const encode::EncodingSpec spec = encode::GetEncoding(encoding_name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeColoring(g, 6, spec));
  }
}
BENCHMARK_CAPTURE(BM_EncodeColoring, muldirect, std::string("muldirect"));
BENCHMARK_CAPTURE(BM_EncodeColoring, ite_linear_2_muldirect,
                  std::string("ITE-linear-2+muldirect"));

void BM_GlobalRoute(benchmark::State& state) {
  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark("9symml");
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        route::RouteGlobally(device, bench.netlist, bench.placement));
  }
}
BENCHMARK(BM_GlobalRoute);

void BM_ConflictGraph(benchmark::State& state) {
  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark("term1");
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::BuildConflictGraph(arch, routing));
  }
}
BENCHMARK(BM_ConflictGraph);

void BM_SolverPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const int pigeons = holes + 1;
  for (auto _ : state) {
    sat::Solver solver;
    sat::Cnf cnf(pigeons * holes);
    const auto var = [holes](int p, int h) { return p * holes + h; };
    for (int p = 0; p < pigeons; ++p) {
      sat::Clause alo;
      for (int h = 0; h < holes; ++h) {
        alo.push_back(sat::Lit::Pos(var(p, h)));
      }
      cnf.AddClause(std::move(alo));
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          cnf.AddBinary(sat::Lit::Neg(var(p1, h)),
                        sat::Lit::Neg(var(p2, h)));
        }
      }
    }
    solver.AddCnf(cnf);
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_SolverPigeonhole)->Arg(5)->Arg(7);

}  // namespace

BENCHMARK_MAIN();
