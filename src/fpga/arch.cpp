#include "fpga/arch.h"

#include <cassert>
#include <cstdlib>

namespace satfr::fpga {

Arch::Arch(int grid_size) : grid_size_(grid_size) {
  assert(grid_size >= 1);
}

NodeId Arch::NodeAt(int x, int y) const {
  assert(IsValidNodeCoord(x, y));
  return static_cast<NodeId>(y * nodes_per_side() + x);
}

Coord Arch::NodeCoord(NodeId node) const {
  assert(node >= 0 && node < num_nodes());
  return Coord{static_cast<int>(node) % nodes_per_side(),
               static_cast<int>(node) / nodes_per_side()};
}

bool Arch::IsValidNodeCoord(int x, int y) const {
  return x >= 0 && x < nodes_per_side() && y >= 0 && y < nodes_per_side();
}

SegmentIndex Arch::HorizontalSegment(int x, int y) const {
  assert(x >= 0 && x < grid_size_ && y >= 0 && y < nodes_per_side());
  return static_cast<SegmentIndex>(y * grid_size_ + x);
}

SegmentIndex Arch::VerticalSegment(int x, int y) const {
  assert(x >= 0 && x < nodes_per_side() && y >= 0 && y < grid_size_);
  return static_cast<SegmentIndex>(num_horizontal_segments() +
                                   x * grid_size_ + y);
}

SegmentIndex Arch::SegmentBetween(NodeId a, NodeId b) const {
  const Coord ca = NodeCoord(a);
  const Coord cb = NodeCoord(b);
  const int dx = cb.x - ca.x;
  const int dy = cb.y - ca.y;
  if (dy == 0 && (dx == 1 || dx == -1)) {
    return HorizontalSegment(dx == 1 ? ca.x : cb.x, ca.y);
  }
  if (dx == 0 && (dy == 1 || dy == -1)) {
    return VerticalSegment(ca.x, dy == 1 ? ca.y : cb.y);
  }
  return kInvalidSegment;
}

void Arch::SegmentEndpoints(SegmentIndex segment, NodeId* a, NodeId* b) const {
  assert(segment >= 0 && segment < num_segments());
  if (IsHorizontal(segment)) {
    const int y = static_cast<int>(segment) / grid_size_;
    const int x = static_cast<int>(segment) % grid_size_;
    *a = NodeAt(x, y);
    *b = NodeAt(x + 1, y);
  } else {
    const int local = static_cast<int>(segment) - num_horizontal_segments();
    const int x = local / grid_size_;
    const int y = local % grid_size_;
    *a = NodeAt(x, y);
    *b = NodeAt(x, y + 1);
  }
}

std::string Arch::SegmentName(SegmentIndex segment) const {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  SegmentEndpoints(segment, &a, &b);
  const Coord c = NodeCoord(a);
  return std::string(IsHorizontal(segment) ? "H(" : "V(") +
         std::to_string(c.x) + "," + std::to_string(c.y) + ")";
}

}  // namespace satfr::fpga
