// Island-style FPGA architecture model (§2 of the paper).
//
// An N x N array of logic blocks (CLBs) is surrounded by routing channels.
// We model the routing fabric at the granularity the detailed-routing
// reduction needs: switch blocks sit at the (N+1) x (N+1) channel crossing
// points, and a *channel segment* is the stretch of channel between two
// adjacent switch blocks. Every channel segment carries W parallel tracks
// (W is a flow parameter, not an architecture constant). Switch blocks are
// subset (planar) switches: a connection entering on track t leaves on
// track t, so a 2-pin net occupies the same track index along its entire
// route — which is what makes detailed routing a graph-coloring problem.
//
// A CLB at (x, y) attaches to the routing fabric through the connection
// block at its lower-left switch point, i.e. switch node (x, y). This keeps
// coordinates of blocks and fabric aligned and preserves the property the
// reduction relies on: two nets conflict iff their routes share a channel
// segment.
#pragma once

#include <cstdint>
#include <string>

namespace satfr::fpga {

/// Dense id of a switch node (channel crossing point).
using NodeId = std::int32_t;

/// Dense id of a channel segment.
using SegmentIndex = std::int32_t;

constexpr NodeId kInvalidNode = -1;
constexpr SegmentIndex kInvalidSegment = -1;

struct Coord {
  int x = 0;
  int y = 0;

  friend bool operator==(const Coord& a, const Coord& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Geometry and id arithmetic of an N x N island-style array.
class Arch {
 public:
  explicit Arch(int grid_size);

  int grid_size() const { return grid_size_; }

  /// Switch nodes form an (N+1) x (N+1) lattice.
  int nodes_per_side() const { return grid_size_ + 1; }
  int num_nodes() const { return nodes_per_side() * nodes_per_side(); }

  /// Channel segments: horizontal (x,y)-(x+1,y) and vertical (x,y)-(x,y+1).
  int num_horizontal_segments() const {
    return grid_size_ * nodes_per_side();
  }
  int num_vertical_segments() const { return grid_size_ * nodes_per_side(); }
  int num_segments() const {
    return num_horizontal_segments() + num_vertical_segments();
  }

  NodeId NodeAt(int x, int y) const;
  Coord NodeCoord(NodeId node) const;
  bool IsValidNodeCoord(int x, int y) const;

  /// Segment between two *adjacent* switch nodes; kInvalidSegment otherwise.
  SegmentIndex SegmentBetween(NodeId a, NodeId b) const;

  /// Segment id helpers (x, y are the lower/left endpoint's coordinates).
  SegmentIndex HorizontalSegment(int x, int y) const;  // (x,y)-(x+1,y)
  SegmentIndex VerticalSegment(int x, int y) const;    // (x,y)-(x,y+1)

  /// Endpoint switch nodes of a segment.
  void SegmentEndpoints(SegmentIndex segment, NodeId* a, NodeId* b) const;

  bool IsHorizontal(SegmentIndex segment) const {
    return segment < num_horizontal_segments();
  }

  /// Human-readable segment description, e.g. "H(3,2)" or "V(0,5)".
  std::string SegmentName(SegmentIndex segment) const;

  /// Switch node a CLB at block coordinates (bx, by) attaches to.
  /// Valid block coordinates are 0..grid_size-1.
  NodeId BlockAccessNode(int bx, int by) const { return NodeAt(bx, by); }

 private:
  int grid_size_;
};

}  // namespace satfr::fpga
