#include "fpga/device_graph.h"

#include <cstdlib>

namespace satfr::fpga {

DeviceGraph::DeviceGraph(const Arch& arch) : arch_(arch) {
  hops_.resize(static_cast<std::size_t>(arch_.num_nodes()));
  const int side = arch_.nodes_per_side();
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      const NodeId node = arch_.NodeAt(x, y);
      auto& list = hops_[static_cast<std::size_t>(node)];
      const int deltas[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
      for (const auto& d : deltas) {
        const int nx = x + d[0];
        const int ny = y + d[1];
        if (!arch_.IsValidNodeCoord(nx, ny)) continue;
        const NodeId to = arch_.NodeAt(nx, ny);
        list.push_back(Hop{to, arch_.SegmentBetween(node, to)});
      }
    }
  }
}

int DeviceGraph::ManhattanDistance(NodeId a, NodeId b) const {
  const Coord ca = arch_.NodeCoord(a);
  const Coord cb = arch_.NodeCoord(b);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

}  // namespace satfr::fpga
