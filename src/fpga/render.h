// ASCII rendering of the FPGA fabric: congestion heat maps and per-segment
// track occupancy. Used by examples and for debugging global routings.
//
// Layout (for a 2x2 array): switch nodes are '+', logic blocks are the
// bracketed cells, channel segments print a digit (their value under the
// chosen view, '.' for zero, '*' for >= 10):
//
//     +-2-+-.-+
//     1[ ].[ ]3
//     +-.-+-4-+
//     .[ ]2[ ].
//     +-1-+-.-+
#pragma once

#include <string>
#include <vector>

#include "fpga/arch.h"

namespace satfr::fpga {

/// Renders one integer per segment (e.g. congestion). `per_segment` is
/// indexed by SegmentIndex and must cover arch.num_segments().
std::string RenderSegmentValues(const Arch& arch,
                                const std::vector<int>& per_segment);

}  // namespace satfr::fpga
