#include "fpga/render.h"

#include <cassert>

namespace satfr::fpga {
namespace {

char ValueGlyph(int value) {
  if (value <= 0) return '.';
  if (value < 10) return static_cast<char>('0' + value);
  return '*';
}

}  // namespace

std::string RenderSegmentValues(const Arch& arch,
                                const std::vector<int>& per_segment) {
  assert(per_segment.size() >=
         static_cast<std::size_t>(arch.num_segments()));
  std::string out;
  const int n = arch.grid_size();
  // Rows are printed top (y = n) to bottom (y = 0) so the origin sits at
  // the lower left, as in the architecture diagrams.
  for (int y = n; y >= 0; --y) {
    // Switch-node row with horizontal segments.
    out.push_back('+');
    for (int x = 0; x < n; ++x) {
      out.push_back('-');
      out.push_back(ValueGlyph(
          per_segment[static_cast<std::size_t>(arch.HorizontalSegment(x, y))]));
      out.push_back('-');
      out.push_back('+');
    }
    out.push_back('\n');
    if (y == 0) break;
    // Block row with vertical segments (these span y-1 .. y).
    for (int x = 0; x <= n; ++x) {
      out.push_back(ValueGlyph(per_segment[static_cast<std::size_t>(
          arch.VerticalSegment(x, y - 1))]));
      if (x < n) out.append("[ ]");
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace satfr::fpga
