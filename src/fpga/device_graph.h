// Adjacency view of the routing fabric: which segments leave each switch
// node. Built once per architecture and shared by the maze router and the
// routing checkers.
#pragma once

#include <vector>

#include "fpga/arch.h"

namespace satfr::fpga {

class DeviceGraph {
 public:
  struct Hop {
    NodeId to = kInvalidNode;
    SegmentIndex via = kInvalidSegment;
  };

  explicit DeviceGraph(const Arch& arch);

  const Arch& arch() const { return arch_; }

  /// Up to four hops (N/E/S/W) out of `node`.
  const std::vector<Hop>& Hops(NodeId node) const {
    return hops_[static_cast<std::size_t>(node)];
  }

  /// Manhattan distance between two switch nodes (admissible A* heuristic,
  /// exact lower bound on path length in segments).
  int ManhattanDistance(NodeId a, NodeId b) const;

 private:
  Arch arch_;
  std::vector<std::vector<Hop>> hops_;
};

}  // namespace satfr::fpga
