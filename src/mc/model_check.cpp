// Cooperative-scheduler model checker behind the mc:: shim.
//
// Execution model
// ---------------
// Each schedule runs the litmus body on real std::threads, but a
// mutex+condvar baton guarantees exactly one of them executes at any
// moment. Every shim operation is a *schedule point*: before it executes,
// the scheduler decides which registered thread runs next, and — for loads
// — which store the load observes. Both decisions are appended to a trail
// of (chosen, options) pairs, which makes any schedule a pure function of
// its decision sequence: replay = force the same sequence.
//
// Exploration
// -----------
// Phase 1 enumerates decision sequences depth-first: run with a forced
// prefix (defaults beyond it), then backtrack by incrementing the rightmost
// decision that has an unexplored alternative whose cost fits the budget.
// Costs: choosing to preempt a runnable thread (kind kPreempt, chosen > 0)
// costs one preemption; choosing a stale store for a load (kind kRead,
// chosen > 0) costs one stale read; everything else (switches at yields,
// blocks, and thread exits) is free. Phase 2 is a seeded random walk with
// no budget: each schedule draws every decision uniformly from an mt19937_64
// seeded with random_seed + k, so a failure reproduces from its seed alone.
//
// Memory model (C++11-ish, per location, vector clocks)
// -----------------------------------------------------
// Every store appends {value, hb, rel} to the location's history, where hb
// is the storing thread's vector clock and rel is the clock a reader
// synchronizes with (the full clock for release stores, the clock of the
// latest earlier release *fence* for relaxed stores, empty otherwise;
// RMWs additionally join the clock of the store they read — the C++20
// release-sequence rule). A load may observe any store from a candidate
// window [min .. newest] where min is forced up by:
//   * write-read coherence: the newest store whose hb-clock the reader
//     already covers (it happened-before the load),
//   * read coherence: the newest store this thread has already observed
//     (last_seen),
//   * seq_cst fences: a per-location published frontier (sc_front). An sc
//     fence first adopts every location's frontier into the thread's floor
//     (sc_min) and then publishes the thread's own latest stores — the
//     fence-pair rule that makes e.g. the Chase-Lev owner/thief protocol
//     come out right,
//   * seq_cst loads additionally cannot see anything older than the latest
//     seq_cst store (last_sc_store).
// Acquire loads join the observed store's rel clock into the thread clock;
// relaxed loads park it in acq_pending, which a later acquire fence joins.
// RMWs always read the newest store; a failed CAS reads the newest store.
//
// Deliberate simplifications (all on the *conservative* side for the
// structures under test, each asserted against the known-bad litmus tests
// in mc_litmus_test.cpp):
//   * modification order == execution order (stores serialize at schedule
//     points, so coherence-order races collapse),
//   * compare_exchange_weak cannot fail spuriously,
//   * non-atomic accesses are invisible — plain-data races stay TSan's job.
#include "mc/model_check.h"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mc/shim.h"

namespace satfr::mc {

namespace {

// ---------------------------------------------------------------------------
// Passthrough failure plumbing (used by non-SATFR_MODEL_CHECK builds, and by
// Fail() calls landing outside an active schedule in instrumented builds).
// ---------------------------------------------------------------------------

struct PassthroughAbort {};

std::mutex g_passthrough_mu;
bool g_passthrough_active = false;
bool g_passthrough_failed = false;
std::string g_passthrough_failure;

[[noreturn]] void PassthroughFail(const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(g_passthrough_mu);
    if (g_passthrough_active) {
      if (!g_passthrough_failed) {
        g_passthrough_failed = true;
        g_passthrough_failure = message;
      }
    } else {
      std::fprintf(stderr, "mc::Fail outside any Check: %s\n", message.c_str());
      std::abort();
    }
  }
  throw PassthroughAbort{};
}

}  // namespace

std::string ModelCheckResult::FailureSummary() const {
  if (ok) return "model check passed";
  std::ostringstream out;
  out << "model check FAILED after " << schedules_explored
      << " schedule(s): " << failure << "\n";
  if (failing_seed != 0) {
    out << "  replay: ModelCheckOptions::replay_seed = " << failing_seed
        << "\n";
  }
  out << "  replay: ModelCheckOptions::replay_trail = {";
  for (std::size_t i = 0; i < failing_trail.size(); ++i) {
    if (i != 0) out << ",";
    out << failing_trail[i];
  }
  out << "}";
  return out.str();
}

#if defined(SATFR_MODEL_CHECK)

namespace {

constexpr int kMaxThreads = 8;
using Vc = std::array<std::uint32_t, kMaxThreads>;

void VcJoin(Vc& into, const Vc& from) {
  for (int i = 0; i < kMaxThreads; ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

bool VcLeq(const Vc& a, const Vc& b) {
  for (int i = 0; i < kMaxThreads; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

bool IsAcquire(std::memory_order order) {
  return order == std::memory_order_acquire ||
         order == std::memory_order_consume ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

bool IsRelease(std::memory_order order) {
  return order == std::memory_order_release ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

// Thrown to unwind a litmus body when the schedule is over (failure or
// abort); never escapes ThreadMain.
struct AbortSchedule {};

struct Store {
  std::uint64_t value = 0;
  Vc hb{};   // storing thread's clock: readers covering it must not see older
  Vc rel{};  // what an acquire reader synchronizes with
};

struct Location {
  std::vector<Store> stores;
  // Per-thread floors on the candidate window, as store indices (-1 none).
  std::array<int, kMaxThreads> last_seen;
  std::array<int, kMaxThreads> sc_min;
  std::array<int, kMaxThreads> last_store_by;
  int sc_front = -1;       // newest index published by an sc store/fence
  int last_sc_store = -1;  // floor for seq_cst loads

  Location() {
    last_seen.fill(-1);
    sc_min.fill(-1);
    last_store_by.fill(-1);
  }
};

struct MutexState {
  int owner = -1;
  Vc clock{};  // release clock of the latest unlock
};

enum class ThreadState { kRunnable, kRunning, kBlockedJoin, kBlockedMutex, kDone };

enum DecisionKind : std::uint8_t { kFree = 0, kPreempt = 1, kRead = 2 };

struct Decision {
  std::uint32_t chosen = 0;
  std::uint32_t options = 1;
  std::uint8_t kind = kFree;
};

enum class Mode { kExhaustive, kRandom, kReplayTrail };

struct Session;

struct ThreadRec {
  int tid = 0;
  Session* session = nullptr;
  ThreadState state = ThreadState::kRunnable;
  Vc clock{};
  Vc acq_pending{};  // rel clocks of relaxed-read stores, armed by acquire fences
  Vc fence_rel{};    // thread clock at the latest release fence
  bool has_fence_rel = false;
  int wait_join = -1;              // kBlockedJoin target tid
  const void* wait_mutex = nullptr;  // kBlockedMutex target
  std::condition_variable cv;
  std::function<void()> body;
  std::thread os;
};

struct Session {
  explicit Session(const ModelCheckOptions& options, Mode m)
      : opt(options), mode(m) {}

  const ModelCheckOptions& opt;
  Mode mode;
  std::vector<std::uint32_t> forced;  // decision prefix to reproduce
  std::mt19937_64 rng;

  std::mutex mu;
  std::condition_variable master_cv;
  std::vector<std::unique_ptr<ThreadRec>> threads;
  std::unordered_map<const void*, Location> locations;
  std::unordered_map<const void*, MutexState> mutexes;
  std::vector<Decision> trail;
  int current = -1;
  std::uint64_t steps = 0;
  bool aborting = false;
  bool failed = false;
  std::string failure;
  std::vector<std::uint32_t> failing_trail;
  bool schedule_done = false;
};

thread_local ThreadRec* tl_self = nullptr;

// Records the failure (first one wins) and wakes every waiter so the
// schedule can unwind. Does not throw — callable from catch blocks.
void RecordFailureLocked(Session& s, const std::string& message) {
  if (!s.failed) {
    s.failed = true;
    s.failure = message;
    s.failing_trail.clear();
    s.failing_trail.reserve(s.trail.size());
    for (const Decision& d : s.trail) s.failing_trail.push_back(d.chosen);
  }
  s.aborting = true;
  for (auto& rec : s.threads) rec->cv.notify_all();
  s.master_cv.notify_all();
}

[[noreturn]] void FailLocked(Session& s, const std::string& message) {
  RecordFailureLocked(s, message);
  throw AbortSchedule{};
}

// Appends one decision to the trail and returns the choice: forced prefix
// first, then uniform-random (random mode) or the default 0 (exhaustive
// default suffix / replay beyond the trail).
std::uint32_t PickLocked(Session& s, std::uint32_t options, std::uint8_t kind) {
  std::uint32_t chosen = 0;
  if (s.trail.size() < s.forced.size()) {
    chosen = std::min(s.forced[s.trail.size()], options - 1);
  } else if (s.mode == Mode::kRandom && options > 1) {
    chosen = static_cast<std::uint32_t>(s.rng() % options);
  }
  s.trail.push_back(Decision{chosen, options, kind});
  return chosen;
}

void SwitchToLocked(Session& s, std::unique_lock<std::mutex>& lock, int next) {
  ThreadRec& self = *tl_self;
  self.state = ThreadState::kRunnable;
  s.current = next;
  s.threads[next]->cv.notify_all();
  self.cv.wait(lock, [&] { return s.current == self.tid || s.aborting; });
  if (s.aborting) throw AbortSchedule{};
  self.state = ThreadState::kRunning;
}

// The per-operation decision point: pick who runs the operation about to
// execute. `yielding` flips the default away from the current thread, which
// is what makes mc::Yield hand spin-waited-on threads the processor.
void SchedulePointLocked(Session& s, std::unique_lock<std::mutex>& lock,
                         bool yielding) {
  if (s.aborting) throw AbortSchedule{};
  if (++s.steps > s.opt.max_steps) {
    FailLocked(s,
               "step budget exceeded — livelock? (spin loops must mc::Yield)");
  }
  ThreadRec& self = *tl_self;
  const int n = static_cast<int>(s.threads.size());
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::uint8_t kind = kFree;
  if (!yielding) order.push_back(self.tid);
  for (int i = 1; i < n; ++i) {
    const int t = (self.tid + i) % n;
    if (s.threads[t]->state == ThreadState::kRunnable) order.push_back(t);
  }
  if (yielding) {
    order.push_back(self.tid);  // staying put is the last alternative
  } else if (order.size() > 1) {
    kind = kPreempt;  // alternatives move us off a running thread: budgeted
  }
  const std::uint32_t chosen =
      PickLocked(s, static_cast<std::uint32_t>(order.size()), kind);
  const int next = order[chosen];
  if (next != self.tid) SwitchToLocked(s, lock, next);
}

// Hands the processor over while `self` is blocked (join/mutex); fails the
// schedule as a deadlock if nobody is runnable.
void BlockedHandOffLocked(Session& s, std::unique_lock<std::mutex>& lock) {
  ThreadRec& self = *tl_self;
  const int n = static_cast<int>(s.threads.size());
  std::vector<int> runnable;
  for (int i = 1; i <= n; ++i) {
    const int t = (self.tid + i) % n;
    if (s.threads[t]->state == ThreadState::kRunnable) runnable.push_back(t);
  }
  if (runnable.empty()) {
    FailLocked(s, "deadlock: every live thread is blocked");
  }
  const std::uint32_t chosen =
      PickLocked(s, static_cast<std::uint32_t>(runnable.size()), kFree);
  const int next = runnable[chosen];
  s.current = next;
  s.threads[next]->cv.notify_all();
  self.cv.wait(lock, [&] { return s.current == self.tid || s.aborting; });
  if (s.aborting) throw AbortSchedule{};
  self.state = ThreadState::kRunning;
}

Location& LocationLocked(Session& s, const void* loc, std::uint64_t seed) {
  auto [it, inserted] = s.locations.try_emplace(loc);
  if (inserted) {
    Store initial;
    initial.value = seed;  // pre-schedule value, visible to everyone
    it->second.stores.push_back(initial);
  }
  return it->second;
}

// Exit protocol for a finishing thread: wake joiners, hand off or finish
// the schedule, and notify the master when every thread is done.
void ExitLocked(Session& s, ThreadRec& self) {
  self.state = ThreadState::kDone;
  for (auto& rec : s.threads) {
    if (rec->state == ThreadState::kBlockedJoin && rec->wait_join == self.tid) {
      rec->state = ThreadState::kRunnable;
    }
  }
  bool all_done = true;
  for (auto& rec : s.threads) {
    if (rec->state != ThreadState::kDone) all_done = false;
  }
  if (!s.aborting && !all_done) {
    std::vector<int> runnable;
    const int n = static_cast<int>(s.threads.size());
    for (int i = 1; i <= n; ++i) {
      const int t = (self.tid + i) % n;
      if (s.threads[t]->state == ThreadState::kRunnable) runnable.push_back(t);
    }
    if (runnable.empty()) {
      RecordFailureLocked(
          s, "deadlock: thread exited leaving only blocked threads");
    } else {
      const std::uint32_t chosen =
          PickLocked(s, static_cast<std::uint32_t>(runnable.size()), kFree);
      s.current = runnable[chosen];
      s.threads[s.current]->cv.notify_all();
    }
  }
  if (all_done) {
    s.schedule_done = true;
    s.master_cv.notify_all();
  }
}

void ThreadMain(Session* s, ThreadRec* rec) {
  tl_self = rec;
  bool run_body = true;
  {
    std::unique_lock<std::mutex> lock(s->mu);
    rec->cv.wait(lock, [&] { return s->current == rec->tid || s->aborting; });
    if (s->aborting) {
      run_body = false;
    } else {
      rec->state = ThreadState::kRunning;
    }
  }
  if (run_body) {
    try {
      rec->body();
    } catch (const AbortSchedule&) {
    } catch (const std::exception& e) {
      std::unique_lock<std::mutex> lock(s->mu);
      RecordFailureLocked(
          *s, std::string("uncaught exception in model-checked thread: ") +
                  e.what());
    } catch (...) {
      std::unique_lock<std::mutex> lock(s->mu);
      RecordFailureLocked(*s,
                          "uncaught non-std exception in model-checked thread");
    }
  }
  {
    std::unique_lock<std::mutex> lock(s->mu);
    ExitLocked(*s, *rec);
  }
  tl_self = nullptr;
}

// Runs one schedule to completion: spawns the root thread over `body`,
// waits for every participant to finish, joins the OS threads.
void RunOneSchedule(Session& s, const std::function<void()>& body) {
  auto root = std::make_unique<ThreadRec>();
  root->tid = 0;
  root->session = &s;
  root->state = ThreadState::kRunnable;
  root->clock[0] = 1;
  root->body = body;
  ThreadRec* root_raw = root.get();
  {
    std::unique_lock<std::mutex> lock(s.mu);
    s.threads.push_back(std::move(root));
    s.current = 0;
  }
  root_raw->os = std::thread(ThreadMain, &s, root_raw);
  {
    std::unique_lock<std::mutex> lock(s.mu);
    s.master_cv.wait(lock, [&] { return s.schedule_done; });
  }
  for (auto& rec : s.threads) {
    if (rec->os.joinable()) rec->os.join();
  }
}

// Preemption/staleness cost of forcing prefix trail[0..i-1] plus the
// incremented alternative at i.
bool IncrementFitsBudget(const std::vector<Decision>& trail, std::size_t i,
                         const ModelCheckOptions& opt) {
  int preemptions = trail[i].kind == kPreempt ? 1 : 0;
  int stale = trail[i].kind == kRead ? 1 : 0;
  for (std::size_t j = 0; j < i; ++j) {
    if (trail[j].chosen == 0) continue;
    if (trail[j].kind == kPreempt) ++preemptions;
    if (trail[j].kind == kRead) ++stale;
  }
  return preemptions <= opt.max_preemptions && stale <= opt.max_stale_reads;
}

void FillFailure(const Session& s, ModelCheckResult* result) {
  result->ok = false;
  result->failure = s.failure;
  result->failing_trail = s.failing_trail;
}

}  // namespace

namespace detail {

bool Routed() { return tl_self != nullptr; }

std::uint64_t AtomicLoad(const void* loc, std::uint64_t seed,
                         std::memory_order order) {
  ThreadRec& self = *tl_self;
  Session& s = *self.session;
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.aborting) return seed;  // destructor during unwind: no scheduling
  SchedulePointLocked(s, lock, /*yielding=*/false);
  Location& location = LocationLocked(s, loc, seed);
  const int latest = static_cast<int>(location.stores.size()) - 1;
  int min_idx = 0;
  for (int i = latest; i > 0; --i) {
    if (VcLeq(location.stores[i].hb, self.clock)) {
      min_idx = i;  // this store happened-before us: nothing older is visible
      break;
    }
  }
  min_idx = std::max(min_idx, location.last_seen[self.tid]);
  min_idx = std::max(min_idx, location.sc_min[self.tid]);
  if (order == std::memory_order_seq_cst) {
    min_idx = std::max(min_idx, location.last_sc_store);
  }
  min_idx = std::clamp(min_idx, 0, latest);
  const std::uint32_t options = static_cast<std::uint32_t>(latest - min_idx + 1);
  const std::uint32_t ordinal = PickLocked(s, options, kRead);
  const int idx = latest - static_cast<int>(ordinal);
  const Store& observed = location.stores[static_cast<std::size_t>(idx)];
  location.last_seen[self.tid] = std::max(location.last_seen[self.tid], idx);
  self.clock[self.tid]++;
  if (IsAcquire(order)) {
    VcJoin(self.clock, observed.rel);
  } else {
    VcJoin(self.acq_pending, observed.rel);
  }
  return observed.value;
}

void AtomicStore(void* loc, std::uint64_t seed, std::uint64_t value,
                 std::memory_order order) {
  ThreadRec& self = *tl_self;
  Session& s = *self.session;
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.aborting) return;
  SchedulePointLocked(s, lock, /*yielding=*/false);
  Location& location = LocationLocked(s, loc, seed);
  self.clock[self.tid]++;
  Store store;
  store.value = value;
  store.hb = self.clock;
  if (IsRelease(order)) {
    store.rel = self.clock;
  } else if (self.has_fence_rel) {
    store.rel = self.fence_rel;  // release fence before a relaxed store
  }
  const int idx = static_cast<int>(location.stores.size());
  location.stores.push_back(store);
  location.last_seen[self.tid] = idx;
  location.last_store_by[self.tid] = idx;
  if (order == std::memory_order_seq_cst) {
    location.last_sc_store = idx;
    location.sc_front = std::max(location.sc_front, idx);
  }
}

std::uint64_t AtomicRmw(void* loc, std::uint64_t seed, std::memory_order order,
                        std::uint64_t (*op)(std::uint64_t, std::uint64_t),
                        std::uint64_t operand) {
  ThreadRec& self = *tl_self;
  Session& s = *self.session;
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.aborting) return seed;
  SchedulePointLocked(s, lock, /*yielding=*/false);
  Location& location = LocationLocked(s, loc, seed);
  const Store observed = location.stores.back();  // RMWs read the newest store
  if (IsAcquire(order)) {
    VcJoin(self.clock, observed.rel);
  } else {
    VcJoin(self.acq_pending, observed.rel);
  }
  self.clock[self.tid]++;
  Store store;
  store.value = op(observed.value, operand);
  store.hb = self.clock;
  if (IsRelease(order)) {
    store.rel = self.clock;
  } else if (self.has_fence_rel) {
    store.rel = self.fence_rel;
  }
  VcJoin(store.rel, observed.rel);  // C++20: RMW continues the release sequence
  const int idx = static_cast<int>(location.stores.size());
  location.stores.push_back(store);
  location.last_seen[self.tid] = idx;
  location.last_store_by[self.tid] = idx;
  if (order == std::memory_order_seq_cst) {
    location.last_sc_store = idx;
    location.sc_front = std::max(location.sc_front, idx);
  }
  return observed.value;
}

bool AtomicCas(void* loc, std::uint64_t seed, std::uint64_t* expected,
               std::uint64_t desired, std::memory_order success,
               std::memory_order failure) {
  ThreadRec& self = *tl_self;
  Session& s = *self.session;
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.aborting) {
    *expected = seed;
    return false;
  }
  SchedulePointLocked(s, lock, /*yielding=*/false);
  Location& location = LocationLocked(s, loc, seed);
  const int latest = static_cast<int>(location.stores.size()) - 1;
  const Store observed = location.stores.back();
  if (observed.value == *expected) {
    if (IsAcquire(success)) {
      VcJoin(self.clock, observed.rel);
    } else {
      VcJoin(self.acq_pending, observed.rel);
    }
    self.clock[self.tid]++;
    Store store;
    store.value = desired;
    store.hb = self.clock;
    if (IsRelease(success)) {
      store.rel = self.clock;
    } else if (self.has_fence_rel) {
      store.rel = self.fence_rel;
    }
    VcJoin(store.rel, observed.rel);
    const int idx = static_cast<int>(location.stores.size());
    location.stores.push_back(store);
    location.last_seen[self.tid] = idx;
    location.last_store_by[self.tid] = idx;
    if (success == std::memory_order_seq_cst) {
      location.last_sc_store = idx;
      location.sc_front = std::max(location.sc_front, idx);
    }
    return true;
  }
  // Failed CAS: a load of the newest store at the failure order.
  location.last_seen[self.tid] = latest;
  self.clock[self.tid]++;
  if (IsAcquire(failure)) {
    VcJoin(self.clock, observed.rel);
  } else {
    VcJoin(self.acq_pending, observed.rel);
  }
  *expected = observed.value;
  return false;
}

void FenceOp(std::memory_order order) {
  ThreadRec& self = *tl_self;
  Session& s = *self.session;
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.aborting) return;
  SchedulePointLocked(s, lock, /*yielding=*/false);
  self.clock[self.tid]++;
  if (IsAcquire(order)) {
    // Upgrade every earlier relaxed load to acquire strength.
    VcJoin(self.clock, self.acq_pending);
  }
  if (IsRelease(order)) {
    self.fence_rel = self.clock;
    self.has_fence_rel = true;
  }
  if (order == std::memory_order_seq_cst) {
    // Consume the published frontier, then publish our own stores: a later
    // sc fence on another thread is forced past everything we stored.
    for (auto& [ptr, location] : s.locations) {
      location.sc_min[self.tid] =
          std::max(location.sc_min[self.tid], location.sc_front);
      location.sc_front =
          std::max(location.sc_front, location.last_store_by[self.tid]);
    }
  }
}

void ResetLocation(void* loc) {
  ThreadRec& self = *tl_self;
  Session& s = *self.session;
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.aborting) return;
  s.locations.erase(loc);  // address reuse within a schedule: fresh history
}

void MutexLockOp(void* mutex) {
  ThreadRec& self = *tl_self;
  Session& s = *self.session;
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.aborting) return;
  SchedulePointLocked(s, lock, /*yielding=*/false);
  MutexState& m = s.mutexes[mutex];
  while (m.owner != -1) {
    if (m.owner == self.tid) {
      FailLocked(s, "recursive lock of non-recursive mc::Mutex");
    }
    self.state = ThreadState::kBlockedMutex;
    self.wait_mutex = mutex;
    BlockedHandOffLocked(s, lock);
  }
  m.owner = self.tid;
  VcJoin(self.clock, m.clock);  // synchronize with the previous unlock
  self.clock[self.tid]++;
}

void MutexUnlockOp(void* mutex) {
  ThreadRec& self = *tl_self;
  Session& s = *self.session;
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.aborting) return;
  SchedulePointLocked(s, lock, /*yielding=*/false);
  MutexState& m = s.mutexes[mutex];
  if (m.owner != self.tid) {
    FailLocked(s, "unlock of an mc::Mutex this thread does not hold");
  }
  self.clock[self.tid]++;
  m.clock = self.clock;
  m.owner = -1;
  for (auto& rec : s.threads) {
    if (rec->state == ThreadState::kBlockedMutex && rec->wait_mutex == mutex) {
      rec->state = ThreadState::kRunnable;  // they re-contend when scheduled
    }
  }
}

bool MutexTryLockOp(void* mutex) {
  ThreadRec& self = *tl_self;
  Session& s = *self.session;
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.aborting) return false;
  SchedulePointLocked(s, lock, /*yielding=*/false);
  MutexState& m = s.mutexes[mutex];
  if (m.owner != -1) return false;
  m.owner = self.tid;
  VcJoin(self.clock, m.clock);
  self.clock[self.tid]++;
  return true;
}

}  // namespace detail

bool InModelCheck() { return tl_self != nullptr; }

void Yield() {
  if (tl_self != nullptr) {
    ThreadRec& self = *tl_self;
    Session& s = *self.session;
    std::unique_lock<std::mutex> lock(s.mu);
    if (s.aborting) return;
    SchedulePointLocked(s, lock, /*yielding=*/true);
    return;
  }
  std::this_thread::yield();
}

void Fail(const std::string& message) {
  if (tl_self != nullptr) {
    Session& s = *tl_self->session;
    {
      std::unique_lock<std::mutex> lock(s.mu);
      RecordFailureLocked(s, message);
    }
    throw AbortSchedule{};
  }
  PassthroughFail(message);
}

Thread::Thread(std::function<void()> fn) {
  if (tl_self == nullptr) {
    // Instrumented build, but outside any schedule: plain thread.
    native_ = new std::thread(
        [body = std::move(fn)] {
          try {
            body();
          } catch (const PassthroughAbort&) {
          }
        });
    return;
  }
  ThreadRec& self = *tl_self;
  Session& s = *self.session;
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.aborting) throw AbortSchedule{};
  SchedulePointLocked(s, lock, /*yielding=*/false);
  if (s.threads.size() >= static_cast<std::size_t>(kMaxThreads)) {
    FailLocked(s, "too many mc::Threads in one schedule (max 8)");
  }
  auto rec = std::make_unique<ThreadRec>();
  tid_ = static_cast<int>(s.threads.size());
  native_ = &s;
  rec->tid = tid_;
  rec->session = &s;
  rec->state = ThreadState::kRunnable;
  rec->clock = self.clock;
  rec->clock[tid_]++;  // spawn happens-before everything the child does
  self.clock[self.tid]++;
  rec->body = std::move(fn);
  ThreadRec* raw = rec.get();
  s.threads.push_back(std::move(rec));
  raw->os = std::thread(ThreadMain, &s, raw);
}

Thread::~Thread() {
  if (!joined_) Join();
  if (tid_ < 0 && native_ != nullptr) {
    delete static_cast<std::thread*>(native_);
    native_ = nullptr;
  }
}

void Thread::Join() {
  if (joined_) return;
  joined_ = true;
  if (tid_ < 0) {
    auto* os_thread = static_cast<std::thread*>(native_);
    if (os_thread != nullptr && os_thread->joinable()) os_thread->join();
    return;
  }
  Session& s = *static_cast<Session*>(native_);
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.aborting) return;  // master joins the OS threads
  SchedulePointLocked(s, lock, /*yielding=*/false);
  ThreadRec& self = *tl_self;
  ThreadRec& target = *s.threads[static_cast<std::size_t>(tid_)];
  while (target.state != ThreadState::kDone) {
    self.state = ThreadState::kBlockedJoin;
    self.wait_join = tid_;
    BlockedHandOffLocked(s, lock);
  }
  VcJoin(self.clock, target.clock);  // everything the child did is visible
  self.clock[self.tid]++;
}

ModelCheckResult Check(const std::function<void()>& body,
                       const ModelCheckOptions& options) {
  static std::mutex check_mu;  // one schedule exploration at a time
  std::lock_guard<std::mutex> outer(check_mu);
  ModelCheckResult result;

  auto run = [&](Mode mode, const std::vector<std::uint32_t>& forced,
                 std::uint64_t seed, std::vector<Decision>* trail_out) {
    Session s(options, mode);
    s.forced = forced;
    if (mode == Mode::kRandom) s.rng.seed(seed);
    RunOneSchedule(s, body);
    ++result.schedules_explored;
    if (s.failed) FillFailure(s, &result);
    if (trail_out != nullptr) *trail_out = std::move(s.trail);
    return !s.failed;
  };

  if (!options.replay_trail.empty()) {
    run(Mode::kReplayTrail, options.replay_trail, 0, nullptr);
    return result;
  }
  if (options.replay_seed != 0) {
    if (!run(Mode::kRandom, {}, options.replay_seed, nullptr)) {
      result.failing_seed = options.replay_seed;
    }
    return result;
  }

  // Phase 1: bounded exhaustive DFS.
  std::vector<std::uint32_t> forced;
  std::vector<Decision> trail;
  while (result.schedules_explored < options.max_exhaustive_schedules) {
    if (!run(Mode::kExhaustive, forced, 0, &trail)) return result;
    // Backtrack: increment the rightmost decision with an unexplored,
    // within-budget alternative; defaults regenerate the suffix.
    std::size_t i = trail.size();
    while (i > 0) {
      --i;
      if (trail[i].chosen + 1 < trail[i].options &&
          IncrementFitsBudget(trail, i, options)) {
        break;
      }
      if (i == 0) {
        result.exhaustive_complete = true;
        break;
      }
    }
    if (result.exhaustive_complete || trail.empty()) {
      result.exhaustive_complete = true;
      break;
    }
    forced.clear();
    for (std::size_t j = 0; j < i; ++j) forced.push_back(trail[j].chosen);
    forced.push_back(trail[i].chosen + 1);
  }

  // Phase 2: seeded random walk, no budgets.
  for (std::uint64_t k = 0; k < options.random_schedules; ++k) {
    const std::uint64_t seed = options.random_seed + k;
    if (!run(Mode::kRandom, {}, seed, nullptr)) {
      result.failing_seed = seed;
      return result;
    }
  }
  return result;
}

#else  // !SATFR_MODEL_CHECK — passthrough: one real run, real threads.

bool InModelCheck() { return false; }

void Yield() { std::this_thread::yield(); }

void Fail(const std::string& message) { PassthroughFail(message); }

Thread::Thread(std::function<void()> fn) {
  native_ = new std::thread(
      [body = std::move(fn)] {
        try {
          body();
        } catch (const PassthroughAbort&) {
        }
      });
}

Thread::~Thread() {
  if (!joined_) Join();
  delete static_cast<std::thread*>(native_);
}

void Thread::Join() {
  if (joined_) return;
  joined_ = true;
  auto* os_thread = static_cast<std::thread*>(native_);
  if (os_thread != nullptr && os_thread->joinable()) os_thread->join();
}

ModelCheckResult Check(const std::function<void()>& body,
                       const ModelCheckOptions& options) {
  (void)options;
  ModelCheckResult result;
  {
    std::lock_guard<std::mutex> lock(g_passthrough_mu);
    g_passthrough_active = true;
    g_passthrough_failed = false;
    g_passthrough_failure.clear();
  }
  try {
    body();
  } catch (const PassthroughAbort&) {
  }
  {
    std::lock_guard<std::mutex> lock(g_passthrough_mu);
    g_passthrough_active = false;
    result.ok = !g_passthrough_failed;
    result.failure = g_passthrough_failure;
  }
  result.schedules_explored = 1;
  return result;
}

#endif  // SATFR_MODEL_CHECK

}  // namespace satfr::mc
