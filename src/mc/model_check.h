// Deterministic concurrency model checker for the lock-free layers
// (DESIGN.md §13).
//
// mc::Check runs a test body — which builds the structure under test,
// spawns mc::Thread workers that hammer it through the mc::Atomic /
// mc::Fence / mc::Mutex shim (src/mc/shim.h), joins them, and asserts
// invariants with MC_CHECK — under a cooperative scheduler that owns every
// interleaving decision:
//
//   * which thread executes the next shim operation (context switches are
//     only possible at shim operations — everything between two of them is
//     invisible to other threads, exactly the granularity that matters for
//     code whose shared state is all atomics), and
//   * which store a load observes, per a vector-clock model of the C++11
//     memory semantics: relaxed loads may return any coherent stale value,
//     acquire loads synchronize with the release (or release-fence-backed)
//     stores they read, seq_cst fences and operations are totally ordered
//     through a published store frontier. See model_check.cpp for the exact
//     rules and the (documented, slightly conservative) simplifications.
//
// Exploration is exhaustive DFS over both decision kinds up to a
// preemption/stale-read bound, then seeded random walk beyond it. The
// decision sequence of every schedule is recorded, so a failure is
// replayable two ways: re-run the failing random seed, or feed the printed
// decision trail back through ModelCheckOptions::replay_trail. Both re-run
// the identical interleaving.
//
// Without the SATFR_MODEL_CHECK build option the same API degrades to a
// plain one-shot run (real std::threads, real atomics): the litmus suite
// still executes as an ordinary smoke test and the shim compiles to
// std::atomic with zero overhead.
#ifndef SATFR_MC_MODEL_CHECK_H_
#define SATFR_MC_MODEL_CHECK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace satfr::mc {

struct ModelCheckOptions {
  /// Exhaustive phase: maximum forced context switches away from a runnable
  /// thread per schedule (switches at Yield(), blocks, and thread exits are
  /// free). 0 still explores every yield-point interleaving.
  int max_preemptions = 2;
  /// Exhaustive phase: maximum stale-read choices (a load returning
  /// anything but the newest coherent store) per schedule.
  int max_stale_reads = 3;
  /// Hard cap on exhaustively enumerated schedules; when hit,
  /// ModelCheckResult::exhaustive_complete stays false.
  std::uint64_t max_exhaustive_schedules = 20000;
  /// Random-walk phase: schedules beyond the bound (uniform choices, no
  /// preemption/staleness budget), seeded random_seed, random_seed + 1, ...
  std::uint64_t random_schedules = 2000;
  std::uint64_t random_seed = 1;
  /// Per-schedule step budget; exceeding it fails the schedule as a
  /// livelock (a legitimate spin loop must Yield(), which reschedules).
  std::uint64_t max_steps = 200000;
  /// Non-empty: skip exploration and replay exactly this decision trail.
  std::vector<std::uint32_t> replay_trail;
  /// Nonzero: skip exploration and replay exactly this random seed.
  std::uint64_t replay_seed = 0;
};

struct ModelCheckResult {
  bool ok = true;
  /// True when the DFS exhausted every schedule within the bounds (false
  /// when max_exhaustive_schedules truncated it).
  bool exhaustive_complete = false;
  std::uint64_t schedules_explored = 0;
  /// First failure: MC_CHECK message, deadlock, or step-budget livelock.
  std::string failure;
  /// Decision trail of the failing schedule (replay_trail input format).
  std::vector<std::uint32_t> failing_trail;
  /// Seed of the failing random schedule; 0 when the exhaustive phase (or a
  /// trail replay) found it.
  std::uint64_t failing_seed = 0;

  /// Human-readable failure block including both replay recipes.
  std::string FailureSummary() const;
};

/// Explores interleavings of `body`. The body is re-invoked once per
/// schedule and must be self-contained: build state, spawn mc::Threads,
/// join, assert. Returns after the first failing schedule or when the
/// exploration budget is spent.
ModelCheckResult Check(const std::function<void()>& body,
                       const ModelCheckOptions& options = ModelCheckOptions());

/// A thread participating in the model-checked schedule. Under
/// SATFR_MODEL_CHECK its every shim operation is a scheduler decision
/// point; otherwise it is a plain std::thread.
class Thread {
 public:
  explicit Thread(std::function<void()> fn);
  ~Thread();
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  void Join();

 private:
  bool joined_ = false;
  int tid_ = -1;       // model-check mode
  void* native_ = nullptr;  // passthrough mode: owned std::thread
};

/// Fails the current schedule (throws through the body; Check catches it
/// and records the decision trail). Outside a Check body it records the
/// failure for the enclosing passthrough Check, or aborts if there is none.
[[noreturn]] void Fail(const std::string& message);

/// True while executing inside a model-checked schedule.
bool InModelCheck();

/// Cooperative reschedule hint. Spin loops MUST call this (via the shim's
/// mc::Yield) so the scheduler hands the processor to the thread being
/// waited on; under passthrough it is std::this_thread::yield().
void Yield();

}  // namespace satfr::mc

/// Schedule-failing assertion for litmus bodies. Evaluates `cond` once.
#define MC_CHECK(cond, message)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::satfr::mc::Fail(std::string("MC_CHECK failed: ") + #cond +   \
                        " — " + (message));                          \
    }                                                                \
  } while (0)

#endif  // SATFR_MC_MODEL_CHECK_H_
