// Instrumented atomics/fence/mutex shim for the lock-free layers.
//
// mc::Atomic<T>, mc::Fence and mc::Mutex are drop-in spellings of
// std::atomic<T>, std::atomic_thread_fence and std::mutex with one extra
// property: under the SATFR_MODEL_CHECK build option, every operation
// issued from inside an mc::Check schedule routes through the model
// checker's cooperative scheduler (src/mc/model_check.h), which owns the
// interleaving and — for loads — the choice of which store to observe.
//
// In normal builds every method is an inline forward to the std
// counterpart: same memory orders, same codegen, zero cost (the PR 5
// bench-regression gate is the enforcement). In SATFR_MODEL_CHECK builds,
// operations executed OUTSIDE a model-check schedule (other tests, tools)
// still pass through to the real atomic, so an instrumented binary behaves
// normally everywhere except inside mc::Check.
//
// The shim carries the clang thread-safety annotations
// (src/mc/annotations.h): mutex-guarded state anywhere in the tree is
// declared SATFR_GUARDED_BY(an mc::Mutex) and locked through mc::MutexLock,
// which is what lets the `thread-safety` CI job prove locking discipline
// statically.
//
// Model-check caveats (documented, deliberate):
//   * Only shim operations are visible to the checker. Plain loads/stores
//     are not instrumented — data races on non-atomics remain TSan's job.
//   * compare_exchange_weak never fails spuriously in-model.
//   * A structure must not be handed mid-lifetime from uninstrumented
//     threads into a schedule: create it inside the mc::Check body.
#ifndef SATFR_MC_SHIM_H_
#define SATFR_MC_SHIM_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <type_traits>

#include "mc/annotations.h"

namespace satfr::mc {

#if defined(SATFR_MODEL_CHECK)

namespace detail {

// True when the calling thread is a registered participant of an active
// mc::Check schedule; every shim fast path checks this first.
bool Routed();

// Raw-word operations on a scheduler-owned location, keyed by object
// address. `seed` is the location's current passthrough value, used to
// initialize its store history on first in-schedule touch.
std::uint64_t AtomicLoad(const void* loc, std::uint64_t seed, std::memory_order order);
void AtomicStore(void* loc, std::uint64_t seed, std::uint64_t value, std::memory_order order);
// Applies `op` to the newest store (C++ RMW atomicity) and returns the old
// raw value. `op` must be pure.
std::uint64_t AtomicRmw(void* loc, std::uint64_t seed, std::memory_order order,
                        std::uint64_t (*op)(std::uint64_t, std::uint64_t), std::uint64_t operand);
// Returns true and performs an RMW write of `desired` when the newest
// store equals *expected; otherwise loads the newest store into *expected.
bool AtomicCas(void* loc, std::uint64_t seed, std::uint64_t* expected, std::uint64_t desired,
               std::memory_order success, std::memory_order failure);
void FenceOp(std::memory_order order);
// Clears any stale history a prior object at this address left behind.
void ResetLocation(void* loc);
void MutexLockOp(void* mutex);
void MutexUnlockOp(void* mutex);
bool MutexTryLockOp(void* mutex);

}  // namespace detail

#endif  // SATFR_MODEL_CHECK

namespace detail {

/// T <-> raw-word conversions for the model-checked store history.
/// Integrals are value-cast (truncating on read-back, so arithmetic done in
/// the T domain round-trips exactly); pointers go through uintptr_t.
template <typename T>
inline std::uint64_t ToRaw(T v) {
  if constexpr (std::is_pointer_v<T>) {
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(v));
  } else {
    return static_cast<std::uint64_t>(v);
  }
}

template <typename T>
inline T FromRaw(std::uint64_t raw) {
  if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<T>(static_cast<std::uintptr_t>(raw));
  } else {
    return static_cast<T>(raw);
  }
}

/// The failure order implied by a one-order compare_exchange call.
constexpr std::memory_order CasFailureOrder(std::memory_order success) {
  switch (success) {
    case std::memory_order_acq_rel:
      return std::memory_order_acquire;
    case std::memory_order_release:
      return std::memory_order_relaxed;
    default:
      return success == std::memory_order_seq_cst ? std::memory_order_seq_cst
                                                  : success;
  }
}

}  // namespace detail

template <typename T>
class Atomic {
 public:
#if defined(SATFR_MODEL_CHECK)
  Atomic() noexcept : value_(T{}) {
    if (detail::Routed()) detail::ResetLocation(this);
  }
  Atomic(T v) noexcept : value_(v) {  // NOLINT(google-explicit-constructor): mirrors std::atomic
    if (detail::Routed()) detail::ResetLocation(this);
  }
#else
  constexpr Atomic() noexcept : value_(T{}) {}
  constexpr Atomic(T v) noexcept : value_(v) {}  // NOLINT(google-explicit-constructor)
#endif

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
#if defined(SATFR_MODEL_CHECK)
    if (detail::Routed()) {
      return detail::FromRaw<T>(detail::AtomicLoad(
          this, detail::ToRaw(value_.load(std::memory_order_relaxed)),
          order));
    }
#endif
    return value_.load(order);
  }

  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
#if defined(SATFR_MODEL_CHECK)
    if (detail::Routed()) {
      detail::AtomicStore(
          this, detail::ToRaw(value_.load(std::memory_order_relaxed)),
          detail::ToRaw(v), order);
      value_.store(v, std::memory_order_relaxed);
      return;
    }
#endif
    value_.store(v, order);
  }

  T exchange(T v, std::memory_order order = std::memory_order_seq_cst) {
#if defined(SATFR_MODEL_CHECK)
    if (detail::Routed()) {
      const std::uint64_t old = detail::AtomicRmw(
          this, detail::ToRaw(value_.load(std::memory_order_relaxed)), order,
          [](std::uint64_t, std::uint64_t operand) { return operand; },
          detail::ToRaw(v));
      value_.store(v, std::memory_order_relaxed);
      return detail::FromRaw<T>(old);
    }
#endif
    return value_.exchange(v, order);
  }

  T fetch_add(T delta, std::memory_order order = std::memory_order_seq_cst) {
#if defined(SATFR_MODEL_CHECK)
    if (detail::Routed()) {
      const std::uint64_t old = detail::AtomicRmw(
          this, detail::ToRaw(value_.load(std::memory_order_relaxed)), order,
          [](std::uint64_t current, std::uint64_t operand) {
            // Arithmetic in the T domain so narrow types wrap correctly.
            return detail::ToRaw(
                static_cast<T>(detail::FromRaw<T>(current) +
                               detail::FromRaw<T>(operand)));
          },
          detail::ToRaw(delta));
      value_.store(static_cast<T>(detail::FromRaw<T>(old) + delta),
                   std::memory_order_relaxed);
      return detail::FromRaw<T>(old);
    }
#endif
    return value_.fetch_add(delta, order);
  }

  T fetch_sub(T delta, std::memory_order order = std::memory_order_seq_cst) {
#if defined(SATFR_MODEL_CHECK)
    if (detail::Routed()) {
      return fetch_add(static_cast<T>(T{} - delta), order);
    }
#endif
    return value_.fetch_sub(delta, order);
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
#if defined(SATFR_MODEL_CHECK)
    if (detail::Routed()) {
      std::uint64_t raw_expected = detail::ToRaw(expected);
      const bool won =
          detail::AtomicCas(this,
                            detail::ToRaw(value_.load(std::memory_order_relaxed)),
                            &raw_expected, detail::ToRaw(desired), success,
                            failure);
      if (won) {
        value_.store(desired, std::memory_order_relaxed);
      } else {
        expected = detail::FromRaw<T>(raw_expected);
      }
      return won;
    }
#endif
    return value_.compare_exchange_strong(expected, desired, success, failure);
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order order =
                                   std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, order,
                                   detail::CasFailureOrder(order));
  }

  /// In-model, weak == strong (no spurious failures; callers' retry loops
  /// are exercised through genuine interleavings instead).
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
#if defined(SATFR_MODEL_CHECK)
    if (detail::Routed()) {
      return compare_exchange_strong(expected, desired, success, failure);
    }
#endif
    return value_.compare_exchange_weak(expected, desired, success, failure);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order order =
                                 std::memory_order_seq_cst) {
    return compare_exchange_weak(expected, desired, order,
                                 detail::CasFailureOrder(order));
  }

 private:
  std::atomic<T> value_;
};

/// std::atomic_thread_fence through the scheduler when routed.
inline void Fence(std::memory_order order) {
#if defined(SATFR_MODEL_CHECK)
  if (detail::Routed()) {
    detail::FenceOp(order);
    return;
  }
#endif
  std::atomic_thread_fence(order);
}

/// Cooperative yield: the scheduler treats it as a "hand the processor to
/// someone else" point, which is what lets model-checked spin loops make
/// progress. std::this_thread::yield() otherwise. Defined out of line
/// (model_check.cpp) — it only ever sits on spin-wait paths that already
/// pay a syscall, never on the lock-free fast paths.
void Yield();

/// Annotated mutex. Under model check, lock ownership and blocking are
/// simulated by the scheduler (with release/acquire clock transfer), so
/// mutex-protected invariants are explored across interleavings too.
class SATFR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SATFR_ACQUIRE() {
#if defined(SATFR_MODEL_CHECK)
    if (detail::Routed()) {
      detail::MutexLockOp(this);
      return;
    }
#endif
    mutex_.lock();
  }

  void unlock() SATFR_RELEASE() {
#if defined(SATFR_MODEL_CHECK)
    if (detail::Routed()) {
      detail::MutexUnlockOp(this);
      return;
    }
#endif
    mutex_.unlock();
  }

  bool try_lock() SATFR_TRY_ACQUIRE(true) {
#if defined(SATFR_MODEL_CHECK)
    if (detail::Routed()) return detail::MutexTryLockOp(this);
#endif
    return mutex_.try_lock();
  }

 private:
  std::mutex mutex_;
};

/// Annotated lock_guard replacement; the only way annotated code should
/// take an mc::Mutex.
class SATFR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SATFR_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SATFR_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace satfr::mc

#endif  // SATFR_MC_SHIM_H_
