// Clang thread-safety-analysis attribute macros (-Wthread-safety).
//
// The macros expand to clang's capability attributes when the compiler
// supports them and to nothing otherwise, so annotated code builds
// unchanged under gcc. The CI `thread-safety` job compiles with clang and
// -Werror=thread-safety, which turns every GUARDED_BY / REQUIRES violation
// into a build failure.
//
// libstdc++'s std::mutex and std::lock_guard carry no annotations, so
// annotated state must be guarded by mc::Mutex and locked through
// mc::MutexLock (src/mc/shim.h) — that one substitution is what makes the
// static analysis see every acquire/release in the tree.
#ifndef SATFR_MC_ANNOTATIONS_H_
#define SATFR_MC_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define SATFR_TSA_HAS(x) __has_attribute(x)
#else
#define SATFR_TSA_HAS(x) 0
#endif

#if SATFR_TSA_HAS(capability)
#define SATFR_TSA(x) __attribute__((x))
#else
#define SATFR_TSA(x)
#endif

/// Marks a class as a lockable capability (mutex-like).
#define SATFR_CAPABILITY(name) SATFR_TSA(capability(name))

/// Marks an RAII class that acquires in its constructor and releases in its
/// destructor.
#define SATFR_SCOPED_CAPABILITY SATFR_TSA(scoped_lockable)

/// Declares that a member may only be touched while `mu` is held.
#define SATFR_GUARDED_BY(mu) SATFR_TSA(guarded_by(mu))

/// Declares that the pointed-to data (not the pointer) is guarded by `mu`.
#define SATFR_PT_GUARDED_BY(mu) SATFR_TSA(pt_guarded_by(mu))

/// Declares that the function must be called with `mu` held.
#define SATFR_REQUIRES(...) SATFR_TSA(requires_capability(__VA_ARGS__))

/// Declares that the function acquires `mu` and does not release it.
#define SATFR_ACQUIRE(...) SATFR_TSA(acquire_capability(__VA_ARGS__))

/// Declares that the function releases `mu`.
#define SATFR_RELEASE(...) SATFR_TSA(release_capability(__VA_ARGS__))

/// Declares a conditional acquire: holds `mu` iff the function returned
/// `result`.
#define SATFR_TRY_ACQUIRE(result, ...) \
  SATFR_TSA(try_acquire_capability(result, __VA_ARGS__))

/// Declares that the function must NOT be called with `mu` held.
#define SATFR_EXCLUDES(...) SATFR_TSA(locks_excluded(__VA_ARGS__))

/// Escape hatch: turns the analysis off for one function (used only with a
/// written justification at the call site).
#define SATFR_NO_THREAD_SAFETY_ANALYSIS SATFR_TSA(no_thread_safety_analysis)

#endif  // SATFR_MC_ANNOTATIONS_H_
