#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "mc/shim.h"

namespace satfr {
namespace {

mc::Atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
mc::Mutex g_write_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kSilent:
      return "SILENT";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  mc::MutexLock lock(g_write_mutex);
  std::fprintf(stderr, "[satfr %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace internal
}  // namespace satfr
