// Wall-clock timing and cooperative deadlines.
//
// The paper reports total CPU time per (benchmark, encoding, symmetry) cell;
// our benches report wall-clock via Stopwatch. Deadline is the cooperative
// timeout handed to the SAT solver so unroutable instances under a bad
// encoding terminate in bounded time (the paper let them run for up to 10^6
// seconds; we cap and report ">= limit").
#pragma once

#include <chrono>
#include <cstdint>

namespace satfr {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point in time after which cooperative loops should give up.
/// A default-constructed Deadline never expires.
class Deadline {
 public:
  Deadline() = default;

  /// Deadline `seconds` from now; non-positive values expire immediately.
  static Deadline After(double seconds) {
    Deadline d;
    d.has_deadline_ = true;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  /// Never-expiring deadline (same as default construction).
  static Deadline Infinite() { return Deadline(); }

  bool Expired() const {
    return has_deadline_ && Clock::now() >= when_;
  }

  /// Seconds remaining; +inf when infinite, 0 when already expired.
  double RemainingSeconds() const;

  bool IsInfinite() const { return !has_deadline_; }

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_ = false;
  Clock::time_point when_{};
};

}  // namespace satfr
