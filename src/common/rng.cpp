#include "common/rng.h"

#include <cassert>
#include <string>

namespace satfr {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double probability_true) {
  if (probability_true <= 0.0) return false;
  if (probability_true >= 1.0) return true;
  return NextDouble() < probability_true;
}

std::vector<std::uint32_t> Rng::Permutation(std::uint32_t n) {
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (std::uint32_t i = n; i > 1; --i) {
    const std::uint32_t j = static_cast<std::uint32_t>(NextBelow(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork() { return Rng((*this)() ^ 0xA5A5A5A55A5A5A5AULL); }

std::uint64_t StableHash64(const char* data, std::size_t size) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t StableHash64(const std::string& text) {
  return StableHash64(text.data(), text.size());
}

}  // namespace satfr
