#include "common/stopwatch.h"

#include <limits>

namespace satfr {

double Deadline::RemainingSeconds() const {
  if (!has_deadline_) {
    return std::numeric_limits<double>::infinity();
  }
  const double remaining =
      std::chrono::duration<double>(when_ - Clock::now()).count();
  return remaining > 0.0 ? remaining : 0.0;
}

}  // namespace satfr
