// Minimal leveled logging for the satfr library.
//
// Logging is intentionally tiny: benches and examples print their own tables;
// library code only emits diagnostics that a downstream user can silence by
// lowering the global level. Thread-safe (a single mutex serializes writes).
#pragma once

#include <sstream>
#include <string>

namespace satfr {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kSilent = 4,
};

/// Sets the global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// Returns the current global threshold.
LogLevel GetLogLevel();

namespace internal {

/// Writes one formatted line ("[level] message\n") to stderr if enabled.
void LogLine(LogLevel level, const std::string& message);

// Stream-style collector so call sites can write LOG(kInfo) << "x=" << x;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { LogLine(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace satfr

#define SATFR_LOG(level) \
  ::satfr::internal::LogMessage(::satfr::LogLevel::level)
