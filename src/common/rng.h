// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every randomized component in satfr (benchmark synthesis, property tests,
// solver tie-breaking) takes an explicit Rng so runs are reproducible from a
// single seed. The generator satisfies UniformRandomBitGenerator, so it also
// plugs into <random> distributions and std::shuffle.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace satfr {

class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  /// bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with the given probability (clamped to [0, 1]).
  bool NextBool(double probability_true);

  /// Fisher-Yates shuffle of an index vector 0..n-1.
  std::vector<std::uint32_t> Permutation(std::uint32_t n);

  /// Forks an independent stream (used to give each net / thread its own
  /// stream without sharing state).
  Rng Fork();

 private:
  std::uint64_t state_[4];
};

/// Stable 64-bit FNV-1a hash of a string; used to derive per-benchmark seeds
/// from benchmark names so the synthetic suite is stable across platforms.
std::uint64_t StableHash64(const char* data, std::size_t size);
std::uint64_t StableHash64(const std::string& text);

}  // namespace satfr
