// Small string utilities shared by DIMACS I/O, benches and examples.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace satfr {

/// Splits on any run of whitespace; no empty tokens are produced.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> SplitChar(std::string_view text, char sep);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items,
                 std::string_view separator);

/// Formats seconds the way the paper's tables do: "0.12", "1,443.80",
/// "1,054,417" (>= 1000 s rendered without decimals, with thousands commas).
std::string FormatSecondsPaperStyle(double seconds);

/// Formats a double with `digits` decimals and thousands separators.
std::string FormatWithCommas(double value, int digits);

}  // namespace satfr
