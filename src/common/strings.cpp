#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace satfr {

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      tokens.emplace_back(text.substr(start, i - start));
    }
  }
  return tokens;
}

std::vector<std::string> SplitChar(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(items[i]);
  }
  return out;
}

std::string FormatWithCommas(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  std::string raw(buffer);
  // Insert commas into the integer part only.
  std::size_t dot = raw.find('.');
  std::size_t int_end = (dot == std::string::npos) ? raw.size() : dot;
  std::size_t int_begin = (!raw.empty() && raw[0] == '-') ? 1 : 0;
  std::string out = raw.substr(0, int_begin);
  const std::size_t int_len = int_end - int_begin;
  for (std::size_t i = 0; i < int_len; ++i) {
    if (i > 0 && (int_len - i) % 3 == 0) out.push_back(',');
    out.push_back(raw[int_begin + i]);
  }
  out.append(raw.substr(int_end));
  return out;
}

std::string FormatSecondsPaperStyle(double seconds) {
  if (!(seconds >= 0.0) || std::isinf(seconds)) {
    return "-";
  }
  if (seconds >= 1000.0) {
    return FormatWithCommas(std::round(seconds), 0);
  }
  return FormatWithCommas(seconds, 2);
}

}  // namespace satfr
