#include "route/greedy_track_assigner.h"

#include <algorithm>
#include <cassert>

namespace satfr::route {

GreedyAssignResult GreedyAssignTracks(const graph::Graph& conflict_graph,
                                      int num_tracks,
                                      const GreedyAssignOptions& options) {
  using graph::VertexId;
  const VertexId n = conflict_graph.num_vertices();
  GreedyAssignResult result;
  result.tracks.assign(static_cast<std::size_t>(n), -1);

  // Hardest-first: descending degree, ties by id.
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (conflict_graph.Degree(a) != conflict_graph.Degree(b)) {
      return conflict_graph.Degree(a) > conflict_graph.Degree(b);
    }
    return a < b;
  });

  int ripup_budget = options.max_ripups;
  std::vector<VertexId> queue(order);  // nets still to place, FIFO by order
  std::size_t head = 0;
  while (head < queue.size()) {
    const VertexId v = queue[head++];
    if (result.tracks[static_cast<std::size_t>(v)] != -1) continue;
    // Tracks used by already-assigned neighbors, and per-track blocker.
    std::vector<VertexId> blocker(static_cast<std::size_t>(num_tracks), -1);
    std::vector<bool> used(static_cast<std::size_t>(num_tracks), false);
    for (const VertexId u : conflict_graph.Neighbors(v)) {
      const int t = result.tracks[static_cast<std::size_t>(u)];
      if (t >= 0) {
        used[static_cast<std::size_t>(t)] = true;
        blocker[static_cast<std::size_t>(t)] = u;
      }
    }
    int chosen = -1;
    for (int t = 0; t < num_tracks; ++t) {
      if (!used[static_cast<std::size_t>(t)]) {
        chosen = t;
        break;
      }
    }
    if (chosen == -1 && ripup_budget > 0) {
      // Evict the lowest-degree blocker and take its track.
      VertexId victim = -1;
      for (int t = 0; t < num_tracks; ++t) {
        const VertexId b = blocker[static_cast<std::size_t>(t)];
        if (b < 0) continue;
        if (victim < 0 ||
            conflict_graph.Degree(b) < conflict_graph.Degree(victim)) {
          victim = b;
          chosen = t;
        }
      }
      if (victim >= 0) {
        result.tracks[static_cast<std::size_t>(victim)] = -1;
        queue.push_back(victim);
        --ripup_budget;
        ++result.ripups;
      }
    }
    if (chosen == -1) continue;  // stays unassigned
    result.tracks[static_cast<std::size_t>(v)] = chosen;
  }

  for (const int t : result.tracks) {
    if (t < 0) ++result.unassigned;
  }
  result.success = (result.unassigned == 0);
  assert(!result.success || conflict_graph.IsProperColoring(result.tracks));
  return result;
}

int GreedyMinimumWidth(const graph::Graph& conflict_graph, int lower_bound,
                       const GreedyAssignOptions& options, int max_width) {
  for (int width = std::max(1, lower_bound); width <= max_width; ++width) {
    if (GreedyAssignTracks(conflict_graph, width, options).success) {
      return width;
    }
  }
  return -1;
}

}  // namespace satfr::route
