// Global-routing data model and validity/congestion queries.
//
// A GlobalRouting fixes, for every 2-pin net, the ordered list of channel
// segments its route traverses. This plays the role of the global routings
// that SEGA-1.1 ships with the MCNC benchmarks: the detailed-routing SAT
// instance is entirely determined by it (plus the track count W).
#pragma once

#include <string>
#include <vector>

#include "fpga/arch.h"
#include "netlist/placement.h"
#include "route/two_pin.h"

namespace satfr::route {

struct GlobalRouting {
  std::vector<TwoPinNet> two_pin_nets;
  /// routes[i] = ordered segments of two_pin_nets[i]'s path.
  std::vector<std::vector<fpga::SegmentIndex>> routes;

  std::size_t NumTwoPinNets() const { return two_pin_nets.size(); }

  /// Total routed wirelength in segments.
  std::size_t TotalWirelength() const;
};

/// Number of *distinct multi-pin nets* whose routes use each segment.
/// (2-pin nets of one multi-pin net may share a segment on the same track,
/// so capacity pressure counts parents, not routes.)
std::vector<int> SegmentParentUsage(const fpga::Arch& arch,
                                    const GlobalRouting& routing);

/// Peak of SegmentParentUsage — a lower bound on the detailed-routable
/// channel width W*.
int PeakCongestion(const fpga::Arch& arch, const GlobalRouting& routing);

/// Checks that every route is a connected switch-node path from its 2-pin
/// net's source block access point to its sink block access point.
bool ValidateGlobalRouting(const fpga::Arch& arch,
                           const netlist::Placement& placement,
                           const GlobalRouting& routing,
                           std::string* error = nullptr);

}  // namespace satfr::route
