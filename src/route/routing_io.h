// Text serialization of global routings.
//
// Plays the role of SEGA's shipped global-routing files: a fixed global
// routing can be written once and re-loaded for detailed-routing
// experiments. Format:
//
//     satfr_routing 1
//     grid <N>
//     route <parent_net_id> <source_block_id> <sink_block_id> : SEG...
//
// where each SEG is a segment name in the Arch convention, "H(x,y)" or
// "V(x,y)". '#' starts a comment. Routes appear in 2-pin-net order.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "fpga/arch.h"
#include "route/global_routing.h"

namespace satfr::route {

void WriteGlobalRouting(const fpga::Arch& arch, const GlobalRouting& routing,
                        std::ostream& out);

bool WriteGlobalRoutingFile(const fpga::Arch& arch,
                            const GlobalRouting& routing,
                            const std::string& path);

/// Parses a routing and the grid size it was written for. Segment names
/// must be on-grid; route connectivity is *not* validated here (use
/// ValidateGlobalRouting with the matching placement).
struct ParsedRouting {
  int grid_size = 0;
  GlobalRouting routing;
};

std::optional<ParsedRouting> ParseGlobalRouting(std::istream& in,
                                                std::string* error = nullptr);

std::optional<ParsedRouting> ParseGlobalRoutingString(
    const std::string& text, std::string* error = nullptr);

std::optional<ParsedRouting> ParseGlobalRoutingFile(
    const std::string& path, std::string* error = nullptr);

}  // namespace satfr::route
