// Negotiated-congestion global router (PathFinder-style).
//
// Stands in for the SEGA-1.1 global routings the paper builds on: given a
// placed netlist it produces one fixed global route per 2-pin net while
// minimizing peak channel congestion. The router first routes everything on
// shortest paths, then repeatedly tightens a capacity target and negotiates
// (rip-up & reroute with growing present-congestion penalties and
// accumulated history costs) until the target becomes infeasible; the best
// feasible routing is returned. Fully deterministic.
#pragma once

#include "fpga/device_graph.h"
#include "netlist/netlist.h"
#include "netlist/placement.h"
#include "route/global_routing.h"

namespace satfr::route {

struct GlobalRouterOptions {
  /// How multi-pin nets split into 2-pin nets (§2 leaves this open; star is
  /// the default and what the benches calibrate against).
  Decomposition decomposition = Decomposition::kStar;
  /// Rip-up-and-reroute sweeps attempted per capacity target.
  int negotiation_rounds = 25;
  /// Present-congestion penalty: starting weight and per-round growth.
  double present_factor_initial = 0.6;
  double present_factor_growth = 1.5;
  /// Weight of accumulated history costs.
  double history_factor = 0.35;
};

GlobalRouting RouteGlobally(const fpga::DeviceGraph& device,
                            const netlist::Netlist& nets,
                            const netlist::Placement& placement,
                            const GlobalRouterOptions& options = {});

}  // namespace satfr::route
