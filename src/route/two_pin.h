// Multi-pin net decomposition (§2 of the paper).
//
// "Each multi-pin net is decomposed into a collection of 2-pin nets": we use
// the star decomposition — one 2-pin net from the source to every sink.
// 2-pin nets remember their parent so that exclusivity constraints are only
// imposed between 2-pin nets of *different* multi-pin nets.
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "netlist/placement.h"

namespace satfr::route {

struct TwoPinNet {
  netlist::NetId parent = -1;
  netlist::BlockId source = -1;
  netlist::BlockId sink = -1;
};

/// Star decomposition, in net order then sink order (deterministic): one
/// 2-pin net from the multi-pin net's source to every sink.
std::vector<TwoPinNet> DecomposeToTwoPin(const netlist::Netlist& nets);

/// Chain decomposition: a nearest-neighbor walk over the sinks starting at
/// the source, yielding 2-pin nets source->s1, s1->s2, ... . Produces the
/// same number of 2-pin nets as the star but shorter ones on spread-out
/// nets; needs the placement for the distance metric. Deterministic.
std::vector<TwoPinNet> DecomposeToTwoPinChain(
    const netlist::Netlist& nets, const netlist::Placement& placement);

enum class Decomposition { kStar, kChain };

const char* ToString(Decomposition decomposition);

}  // namespace satfr::route
