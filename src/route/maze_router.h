// Point-to-point maze routing on the device graph.
//
// A* over switch nodes with per-segment costs supplied by the caller (the
// negotiated-congestion global router varies these between iterations).
// Costs must be >= 1 so the Manhattan-distance heuristic stays admissible
// and the search returns a minimum-cost path.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "fpga/device_graph.h"

namespace satfr::route {

using SegmentCostFn = std::function<double(fpga::SegmentIndex)>;

/// Minimum-cost path from `from` to `to` as the ordered list of traversed
/// segments; std::nullopt only if from/to are disconnected (never on our
/// grid). `from == to` yields an empty path.
std::optional<std::vector<fpga::SegmentIndex>> FindPath(
    const fpga::DeviceGraph& device, fpga::NodeId from, fpga::NodeId to,
    const SegmentCostFn& segment_cost);

/// Shortest path with unit costs.
std::optional<std::vector<fpga::SegmentIndex>> FindShortestPath(
    const fpga::DeviceGraph& device, fpga::NodeId from, fpga::NodeId to);

}  // namespace satfr::route
