// One-net-at-a-time detailed routing baseline.
//
// The paper's introduction contrasts SAT-based detailed routing — which
// "considers all nets simultaneously" and can prove unroutability — with
// "the one-net-at-a-time approach used in most non-SAT-based FPGA detailed
// routers" (SEGA, CGE, ...). This module implements that baseline for the
// track-assignment problem: process 2-pin nets in a heuristic order and
// give each the first track compatible with all previously assigned
// conflicting nets, with optional limited backtracking (rip-up of a
// bounded number of blockers).
//
// Being greedy it can (a) need more tracks than the SAT optimum W*, and
// (b) never prove unroutability — it only reports "failed with W tracks".
// bench/bench_greedy_vs_sat quantifies both gaps.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace satfr::route {

struct GreedyAssignOptions {
  /// Rip-up budget: how many times a blocked net may evict an already
  /// assigned neighbor (0 = pure greedy).
  int max_ripups = 0;
};

struct GreedyAssignResult {
  /// True if every 2-pin net received a track within num_tracks.
  bool success = false;
  /// Track per vertex of the conflict graph; entries are -1 on failure for
  /// the nets that could not be placed.
  std::vector<int> tracks;
  /// Number of nets left unassigned (0 on success).
  int unassigned = 0;
  /// Rip-ups performed.
  int ripups = 0;
};

/// Greedily K-colors the conflict graph, processing vertices in descending
/// degree order (hardest first). Deterministic.
GreedyAssignResult GreedyAssignTracks(const graph::Graph& conflict_graph,
                                      int num_tracks,
                                      const GreedyAssignOptions& options = {});

/// Smallest W for which the greedy assigner succeeds (scanning upward from
/// `lower_bound`). Contrast with flow::FindMinimumWidth: the greedy width
/// is an upper bound on W* with no optimality proof.
int GreedyMinimumWidth(const graph::Graph& conflict_graph, int lower_bound,
                       const GreedyAssignOptions& options = {},
                       int max_width = 64);

}  // namespace satfr::route
