#include "route/global_router.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "route/maze_router.h"

namespace satfr::route {
namespace {

using fpga::NodeId;
using fpga::SegmentIndex;
using netlist::NetId;

// Tracks, per segment, how many routes of each parent net cross it, so that
// distinct-parent usage is maintainable under rip-up.
class UsageTracker {
 public:
  explicit UsageTracker(int num_segments)
      : per_segment_(static_cast<std::size_t>(num_segments)) {}

  void Add(const std::vector<SegmentIndex>& route, NetId parent) {
    for (const SegmentIndex seg : route) {
      ++per_segment_[static_cast<std::size_t>(seg)][parent];
    }
  }

  void Remove(const std::vector<SegmentIndex>& route, NetId parent) {
    for (const SegmentIndex seg : route) {
      auto& counts = per_segment_[static_cast<std::size_t>(seg)];
      auto it = counts.find(parent);
      assert(it != counts.end());
      if (--it->second == 0) counts.erase(it);
    }
  }

  /// Distinct parents using `seg`.
  int Usage(SegmentIndex seg) const {
    return static_cast<int>(per_segment_[static_cast<std::size_t>(seg)].size());
  }

  /// Distinct parents other than `parent` using `seg`.
  int UsageExcluding(SegmentIndex seg, NetId parent) const {
    const auto& counts = per_segment_[static_cast<std::size_t>(seg)];
    return static_cast<int>(counts.size()) -
           (counts.count(parent) > 0 ? 1 : 0);
  }

  int Peak() const {
    int peak = 0;
    for (const auto& counts : per_segment_) {
      peak = std::max(peak, static_cast<int>(counts.size()));
    }
    return peak;
  }

  /// Total overuse above `capacity` across all segments.
  int TotalOveruse(int capacity) const {
    int total = 0;
    for (const auto& counts : per_segment_) {
      total += std::max(0, static_cast<int>(counts.size()) - capacity);
    }
    return total;
  }

 private:
  std::vector<std::unordered_map<NetId, int>> per_segment_;
};

}  // namespace

GlobalRouting RouteGlobally(const fpga::DeviceGraph& device,
                            const netlist::Netlist& nets,
                            const netlist::Placement& placement,
                            const GlobalRouterOptions& options) {
  const fpga::Arch& arch = device.arch();
  GlobalRouting routing;
  routing.two_pin_nets = options.decomposition == Decomposition::kChain
                             ? DecomposeToTwoPinChain(nets, placement)
                             : DecomposeToTwoPin(nets);
  const std::size_t num_routes = routing.two_pin_nets.size();
  routing.routes.resize(num_routes);

  // Endpoint switch nodes per 2-pin net.
  std::vector<NodeId> from(num_routes);
  std::vector<NodeId> to(num_routes);
  for (std::size_t i = 0; i < num_routes; ++i) {
    const TwoPinNet& net = routing.two_pin_nets[i];
    const fpga::Coord s = placement.LocationOf(net.source);
    const fpga::Coord t = placement.LocationOf(net.sink);
    from[i] = arch.BlockAccessNode(s.x, s.y);
    to[i] = arch.BlockAccessNode(t.x, t.y);
  }

  // Long nets first: they have the fewest detour options.
  std::vector<std::size_t> order(num_routes);
  for (std::size_t i = 0; i < num_routes; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int da = device.ManhattanDistance(from[a], to[a]);
    const int db = device.ManhattanDistance(from[b], to[b]);
    if (da != db) return da > db;
    return a < b;
  });

  // Initial shortest-path routing.
  UsageTracker usage(arch.num_segments());
  for (const std::size_t i : order) {
    auto path = FindShortestPath(device, from[i], to[i]);
    assert(path.has_value() && "grid is connected");
    routing.routes[i] = std::move(*path);
    usage.Add(routing.routes[i], routing.two_pin_nets[i].parent);
  }

  std::vector<double> history(static_cast<std::size_t>(arch.num_segments()),
                              0.0);
  GlobalRouting best = routing;

  // Tighten the capacity target until negotiation fails.
  for (int capacity = usage.Peak() - 1; capacity >= 1; --capacity) {
    double present_factor = options.present_factor_initial;
    bool feasible = false;
    for (int round = 0; round < options.negotiation_rounds && !feasible;
         ++round) {
      for (const std::size_t i : order) {
        const NetId parent = routing.two_pin_nets[i].parent;
        usage.Remove(routing.routes[i], parent);
        const auto cost = [&](SegmentIndex seg) {
          const int others = usage.UsageExcluding(seg, parent);
          const int overuse = std::max(0, others + 1 - capacity);
          return 1.0 + present_factor * overuse +
                 options.history_factor *
                     history[static_cast<std::size_t>(seg)];
        };
        auto path = FindPath(device, from[i], to[i], cost);
        assert(path.has_value());
        routing.routes[i] = std::move(*path);
        usage.Add(routing.routes[i], parent);
      }
      // Accumulate history on overused segments; raise the pressure.
      for (SegmentIndex seg = 0; seg < arch.num_segments(); ++seg) {
        const int overuse = std::max(0, usage.Usage(seg) - capacity);
        history[static_cast<std::size_t>(seg)] += overuse;
      }
      present_factor *= options.present_factor_growth;
      feasible = (usage.TotalOveruse(capacity) == 0);
    }
    if (feasible) {
      best = routing;
    } else {
      break;  // this capacity is out of reach; keep the last feasible one
    }
  }
  return best;
}

}  // namespace satfr::route
