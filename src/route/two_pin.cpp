#include "route/two_pin.h"

#include <cmath>
#include <cstdlib>

namespace satfr::route {

std::vector<TwoPinNet> DecomposeToTwoPin(const netlist::Netlist& nets) {
  std::vector<TwoPinNet> out;
  out.reserve(static_cast<std::size_t>(nets.NumTwoPinConnections()));
  for (netlist::NetId id = 0; id < nets.num_nets(); ++id) {
    const netlist::Net& net = nets.net(id);
    for (const netlist::BlockId sink : net.sinks) {
      out.push_back(TwoPinNet{id, net.source, sink});
    }
  }
  return out;
}

std::vector<TwoPinNet> DecomposeToTwoPinChain(
    const netlist::Netlist& nets, const netlist::Placement& placement) {
  std::vector<TwoPinNet> out;
  out.reserve(static_cast<std::size_t>(nets.NumTwoPinConnections()));
  const auto distance = [&placement](netlist::BlockId a,
                                     netlist::BlockId b) {
    const fpga::Coord ca = placement.LocationOf(a);
    const fpga::Coord cb = placement.LocationOf(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
  };
  for (netlist::NetId id = 0; id < nets.num_nets(); ++id) {
    const netlist::Net& net = nets.net(id);
    std::vector<netlist::BlockId> remaining = net.sinks;
    netlist::BlockId at = net.source;
    while (!remaining.empty()) {
      // Nearest unvisited sink; ties broken by block id for determinism.
      std::size_t best = 0;
      for (std::size_t i = 1; i < remaining.size(); ++i) {
        const int di = distance(at, remaining[i]);
        const int db = distance(at, remaining[best]);
        if (di < db || (di == db && remaining[i] < remaining[best])) {
          best = i;
        }
      }
      const netlist::BlockId next = remaining[best];
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
      out.push_back(TwoPinNet{id, at, next});
      at = next;
    }
  }
  return out;
}

const char* ToString(Decomposition decomposition) {
  switch (decomposition) {
    case Decomposition::kStar:
      return "star";
    case Decomposition::kChain:
      return "chain";
  }
  return "?";
}

}  // namespace satfr::route
