#include "route/routing_io.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace satfr::route {
namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

// Parses "H(x,y)" / "V(x,y)" back into a segment index.
std::optional<fpga::SegmentIndex> ParseSegmentName(const fpga::Arch& arch,
                                                   const std::string& token) {
  char kind = 0;
  int x = -1;
  int y = -1;
  if (std::sscanf(token.c_str(), "%c(%d,%d)", &kind, &x, &y) != 3) {
    return std::nullopt;
  }
  if (kind == 'H') {
    if (x < 0 || x >= arch.grid_size() || y < 0 ||
        y >= arch.nodes_per_side()) {
      return std::nullopt;
    }
    return arch.HorizontalSegment(x, y);
  }
  if (kind == 'V') {
    if (x < 0 || x >= arch.nodes_per_side() || y < 0 ||
        y >= arch.grid_size()) {
      return std::nullopt;
    }
    return arch.VerticalSegment(x, y);
  }
  return std::nullopt;
}

}  // namespace

void WriteGlobalRouting(const fpga::Arch& arch, const GlobalRouting& routing,
                        std::ostream& out) {
  out << "satfr_routing 1\n";
  out << "grid " << arch.grid_size() << '\n';
  for (std::size_t i = 0; i < routing.routes.size(); ++i) {
    const TwoPinNet& net = routing.two_pin_nets[i];
    out << "route " << net.parent << ' ' << net.source << ' ' << net.sink
        << " :";
    for (const fpga::SegmentIndex seg : routing.routes[i]) {
      out << ' ' << arch.SegmentName(seg);
    }
    out << '\n';
  }
}

bool WriteGlobalRoutingFile(const fpga::Arch& arch,
                            const GlobalRouting& routing,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteGlobalRouting(arch, routing, out);
  return static_cast<bool>(out);
}

std::optional<ParsedRouting> ParseGlobalRouting(std::istream& in,
                                                std::string* error) {
  std::string line;
  bool saw_header = false;
  ParsedRouting parsed;
  std::optional<fpga::Arch> arch;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = Trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto tokens = SplitWhitespace(stripped);
    const std::string where = " (line " + std::to_string(line_number) + ")";
    if (tokens[0] == "satfr_routing") {
      if (tokens.size() != 2 || tokens[1] != "1") {
        Fail(error, "unsupported routing format version" + where);
        return std::nullopt;
      }
      saw_header = true;
    } else if (!saw_header) {
      Fail(error, "missing satfr_routing header" + where);
      return std::nullopt;
    } else if (tokens[0] == "grid") {
      if (tokens.size() != 2) {
        Fail(error, "malformed grid line" + where);
        return std::nullopt;
      }
      parsed.grid_size = std::atoi(tokens[1].c_str());
      if (parsed.grid_size < 1) {
        Fail(error, "grid size must be >= 1" + where);
        return std::nullopt;
      }
      arch.emplace(parsed.grid_size);
    } else if (tokens[0] == "route") {
      if (!arch) {
        Fail(error, "route before grid" + where);
        return std::nullopt;
      }
      if (tokens.size() < 5 || tokens[4] != ":") {
        Fail(error, "malformed route line" + where);
        return std::nullopt;
      }
      TwoPinNet net;
      net.parent = std::atoi(tokens[1].c_str());
      net.source = std::atoi(tokens[2].c_str());
      net.sink = std::atoi(tokens[3].c_str());
      std::vector<fpga::SegmentIndex> segments;
      for (std::size_t t = 5; t < tokens.size(); ++t) {
        const auto seg = ParseSegmentName(*arch, tokens[t]);
        if (!seg) {
          Fail(error, "bad segment '" + tokens[t] + "'" + where);
          return std::nullopt;
        }
        segments.push_back(*seg);
      }
      parsed.routing.two_pin_nets.push_back(net);
      parsed.routing.routes.push_back(std::move(segments));
    } else {
      Fail(error, "unknown directive '" + tokens[0] + "'" + where);
      return std::nullopt;
    }
  }
  if (!saw_header || !arch) {
    Fail(error, "missing header or grid declaration");
    return std::nullopt;
  }
  return parsed;
}

std::optional<ParsedRouting> ParseGlobalRoutingString(const std::string& text,
                                                      std::string* error) {
  std::istringstream in(text);
  return ParseGlobalRouting(in, error);
}

std::optional<ParsedRouting> ParseGlobalRoutingFile(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return ParseGlobalRouting(in, error);
}

}  // namespace satfr::route
