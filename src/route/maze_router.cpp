#include "route/maze_router.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace satfr::route {

std::optional<std::vector<fpga::SegmentIndex>> FindPath(
    const fpga::DeviceGraph& device, fpga::NodeId from, fpga::NodeId to,
    const SegmentCostFn& segment_cost) {
  using fpga::NodeId;
  using fpga::SegmentIndex;
  if (from == to) return std::vector<SegmentIndex>{};

  const std::size_t n = static_cast<std::size_t>(device.arch().num_nodes());
  std::vector<double> best_cost(n, std::numeric_limits<double>::infinity());
  std::vector<NodeId> came_from(n, fpga::kInvalidNode);
  std::vector<SegmentIndex> came_via(n, fpga::kInvalidSegment);

  struct Entry {
    double priority;  // g + h
    double cost;      // g
    NodeId node;
    bool operator>(const Entry& other) const {
      return priority > other.priority;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> open;
  best_cost[static_cast<std::size_t>(from)] = 0.0;
  open.push(Entry{static_cast<double>(device.ManhattanDistance(from, to)),
                  0.0, from});

  while (!open.empty()) {
    const Entry current = open.top();
    open.pop();
    if (current.node == to) break;
    if (current.cost >
        best_cost[static_cast<std::size_t>(current.node)]) {
      continue;  // stale entry
    }
    for (const auto& hop : device.Hops(current.node)) {
      const double hop_cost = segment_cost(hop.via);
      assert(hop_cost >= 1.0 && "costs below 1 break the A* heuristic");
      const double next_cost = current.cost + hop_cost;
      if (next_cost < best_cost[static_cast<std::size_t>(hop.to)]) {
        best_cost[static_cast<std::size_t>(hop.to)] = next_cost;
        came_from[static_cast<std::size_t>(hop.to)] = current.node;
        came_via[static_cast<std::size_t>(hop.to)] = hop.via;
        open.push(Entry{
            next_cost +
                static_cast<double>(device.ManhattanDistance(hop.to, to)),
            next_cost, hop.to});
      }
    }
  }

  if (came_from[static_cast<std::size_t>(to)] == fpga::kInvalidNode) {
    return std::nullopt;
  }
  std::vector<SegmentIndex> path;
  for (NodeId node = to; node != from;
       node = came_from[static_cast<std::size_t>(node)]) {
    path.push_back(came_via[static_cast<std::size_t>(node)]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<std::vector<fpga::SegmentIndex>> FindShortestPath(
    const fpga::DeviceGraph& device, fpga::NodeId from, fpga::NodeId to) {
  return FindPath(device, from, to,
                  [](fpga::SegmentIndex) { return 1.0; });
}

}  // namespace satfr::route
