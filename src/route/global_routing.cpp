#include "route/global_routing.h"

#include <algorithm>
#include <set>

namespace satfr::route {

std::size_t GlobalRouting::TotalWirelength() const {
  std::size_t total = 0;
  for (const auto& route : routes) total += route.size();
  return total;
}

std::vector<int> SegmentParentUsage(const fpga::Arch& arch,
                                    const GlobalRouting& routing) {
  std::vector<std::set<netlist::NetId>> parents(
      static_cast<std::size_t>(arch.num_segments()));
  for (std::size_t i = 0; i < routing.routes.size(); ++i) {
    const netlist::NetId parent = routing.two_pin_nets[i].parent;
    for (const fpga::SegmentIndex seg : routing.routes[i]) {
      parents[static_cast<std::size_t>(seg)].insert(parent);
    }
  }
  std::vector<int> usage(parents.size(), 0);
  for (std::size_t s = 0; s < parents.size(); ++s) {
    usage[s] = static_cast<int>(parents[s].size());
  }
  return usage;
}

int PeakCongestion(const fpga::Arch& arch, const GlobalRouting& routing) {
  const std::vector<int> usage = SegmentParentUsage(arch, routing);
  return usage.empty() ? 0 : *std::max_element(usage.begin(), usage.end());
}

bool ValidateGlobalRouting(const fpga::Arch& arch,
                           const netlist::Placement& placement,
                           const GlobalRouting& routing,
                           std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  if (routing.routes.size() != routing.two_pin_nets.size()) {
    return fail("route/two-pin-net count mismatch");
  }
  for (std::size_t i = 0; i < routing.routes.size(); ++i) {
    const TwoPinNet& net = routing.two_pin_nets[i];
    const fpga::Coord src = placement.LocationOf(net.source);
    const fpga::Coord dst = placement.LocationOf(net.sink);
    fpga::NodeId at = arch.BlockAccessNode(src.x, src.y);
    const fpga::NodeId goal = arch.BlockAccessNode(dst.x, dst.y);
    for (const fpga::SegmentIndex seg : routing.routes[i]) {
      if (seg < 0 || seg >= arch.num_segments()) {
        return fail("route " + std::to_string(i) +
                    " uses an invalid segment id");
      }
      fpga::NodeId a = fpga::kInvalidNode;
      fpga::NodeId b = fpga::kInvalidNode;
      arch.SegmentEndpoints(seg, &a, &b);
      if (a == at) {
        at = b;
      } else if (b == at) {
        at = a;
      } else {
        return fail("route " + std::to_string(i) + " is disconnected at " +
                    arch.SegmentName(seg));
      }
    }
    if (at != goal) {
      return fail("route " + std::to_string(i) +
                  " does not end at its sink");
    }
  }
  return true;
}

}  // namespace satfr::route
