// Synthetic stand-ins for the MCNC FPGA routing benchmarks.
//
// The paper's experiments run on the MCNC circuits with the global routings
// shipped with SEGA-1.1 — artifacts we cannot redistribute. This module
// generates deterministic placed netlists whose scale and congestion profile
// follow the published relative hardness ordering of the eight Table 2
// circuits (alu2 < too_large < alu4 ~ C880 < apex7 < C1355 < vda < k2), so
// that the downstream conflict graphs exercise the identical code path
// (coloring -> encoding -> SAT) at laptop-scale runtimes. DESIGN.md §3
// documents the substitution.
//
// Generation is seeded from the benchmark name, so the suite is stable
// across platforms and runs.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "netlist/placement.h"

namespace satfr::netlist {

struct McncParams {
  std::string name;
  /// CLB array is grid_size x grid_size.
  int grid_size = 8;
  /// Number of multi-pin nets.
  int num_nets = 40;
  /// Fan-outs are 1 + Geometric(p) capped here.
  int max_fanout = 6;
  double fanout_geometric_p = 0.55;
  /// Fraction of sinks drawn from the source's neighborhood (Rent-style
  /// locality); the rest are uniform over all blocks.
  double locality = 0.7;
  /// Neighborhood radius for local sinks, in CLB units.
  int locality_radius = 3;
  /// Fraction of CLB sites occupied by blocks.
  double block_density = 0.45;
};

struct McncBenchmark {
  McncParams params;
  Netlist netlist;
  Placement placement{1, 0};
};

/// Names of the eight Table 2 circuits, in the paper's row order:
/// alu2, too_large, alu4, C880, apex7, C1355, vda, k2.
const std::vector<std::string>& Table2BenchmarkNames();

/// All registered benchmark names (Table 2 set plus small extras used by
/// tests and examples: tiny, 9symml, term1, example2).
const std::vector<std::string>& AllBenchmarkNames();

/// Parameters for a registered benchmark name; aborts on unknown names.
McncParams GetMcncParams(const std::string& name);

/// Deterministically generates the placed netlist for `params`.
McncBenchmark GenerateMcncBenchmark(const McncParams& params);

/// Convenience: GetMcncParams + GenerateMcncBenchmark.
McncBenchmark GenerateMcncBenchmark(const std::string& name);

}  // namespace satfr::netlist
