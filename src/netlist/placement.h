// Block placement: which CLB site each block occupies.
//
// The flow assumes placement is given (the paper routes pre-placed, pre-
// globally-routed benchmarks); the synthetic suite produces one placement
// per benchmark. At most one block per site.
#pragma once

#include <optional>
#include <vector>

#include "fpga/arch.h"
#include "netlist/netlist.h"

namespace satfr::netlist {

class Placement {
 public:
  Placement(int grid_size, int num_blocks);

  int grid_size() const { return grid_size_; }

  /// Places `block` at CLB site (x, y); returns false if the site is taken
  /// or coordinates are out of range.
  bool Place(BlockId block, int x, int y);

  /// Location of a block; blocks must be placed before being queried.
  fpga::Coord LocationOf(BlockId block) const;

  bool IsPlaced(BlockId block) const;

  /// Block at a site, if any.
  std::optional<BlockId> BlockAt(int x, int y) const;

  /// True if every block of `netlist` is placed.
  bool CoversNetlist(const Netlist& netlist) const;

 private:
  int grid_size_;
  std::vector<fpga::Coord> locations_;  // per block
  std::vector<bool> placed_;            // per block
  std::vector<BlockId> site_owner_;     // per site, -1 if free
};

}  // namespace satfr::netlist
