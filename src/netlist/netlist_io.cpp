#include "netlist/netlist_io.h"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace satfr::netlist {
namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

}  // namespace

void WritePlacedNetlist(const Netlist& nets, const Placement& placement,
                        const std::string& circuit_name, std::ostream& out) {
  out << "satfr_netlist 1\n";
  out << "circuit " << circuit_name << '\n';
  out << "grid " << placement.grid_size() << '\n';
  for (BlockId b = 0; b < nets.num_blocks(); ++b) {
    const fpga::Coord c = placement.LocationOf(b);
    out << "block " << nets.block(b).name << ' ' << c.x << ' ' << c.y
        << '\n';
  }
  for (NetId n = 0; n < nets.num_nets(); ++n) {
    const Net& net = nets.net(n);
    out << "net " << net.name << ' ' << nets.block(net.source).name;
    for (const BlockId sink : net.sinks) {
      out << ' ' << nets.block(sink).name;
    }
    out << '\n';
  }
}

bool WritePlacedNetlistFile(const Netlist& nets, const Placement& placement,
                            const std::string& circuit_name,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WritePlacedNetlist(nets, placement, circuit_name, out);
  return static_cast<bool>(out);
}

std::optional<PlacedNetlist> ParsePlacedNetlist(std::istream& in,
                                                std::string* error) {
  std::string line;
  bool saw_header = false;
  int grid = -1;
  std::string circuit_name = "unnamed";
  Netlist nets;
  std::map<std::string, BlockId> block_by_name;
  // Block sites are collected first; the Placement needs the final block
  // count up front.
  std::vector<fpga::Coord> sites;

  struct PendingNet {
    std::string name;
    std::vector<std::string> blocks;  // source first
  };
  std::vector<PendingNet> pending_nets;

  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = Trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto tokens = SplitWhitespace(stripped);
    const std::string where = " (line " + std::to_string(line_number) + ")";
    if (tokens[0] == "satfr_netlist") {
      if (tokens.size() != 2 || tokens[1] != "1") {
        Fail(error, "unsupported netlist format version" + where);
        return std::nullopt;
      }
      saw_header = true;
    } else if (!saw_header) {
      Fail(error, "missing satfr_netlist header" + where);
      return std::nullopt;
    } else if (tokens[0] == "circuit") {
      if (tokens.size() != 2) {
        Fail(error, "malformed circuit line" + where);
        return std::nullopt;
      }
      circuit_name = tokens[1];
    } else if (tokens[0] == "grid") {
      if (tokens.size() != 2) {
        Fail(error, "malformed grid line" + where);
        return std::nullopt;
      }
      grid = std::atoi(tokens[1].c_str());
      if (grid < 1) {
        Fail(error, "grid size must be >= 1" + where);
        return std::nullopt;
      }
    } else if (tokens[0] == "block") {
      if (grid < 1) {
        Fail(error, "block before grid" + where);
        return std::nullopt;
      }
      if (tokens.size() != 4) {
        Fail(error, "malformed block line" + where);
        return std::nullopt;
      }
      if (block_by_name.count(tokens[1]) != 0) {
        Fail(error, "duplicate block '" + tokens[1] + "'" + where);
        return std::nullopt;
      }
      const int x = std::atoi(tokens[2].c_str());
      const int y = std::atoi(tokens[3].c_str());
      if (x < 0 || y < 0 || x >= grid || y >= grid) {
        Fail(error, "block site off-grid" + where);
        return std::nullopt;
      }
      block_by_name[tokens[1]] = nets.AddBlock(tokens[1]);
      sites.push_back(fpga::Coord{x, y});
    } else if (tokens[0] == "net") {
      if (tokens.size() < 4) {
        Fail(error, "net needs a name, a source and >= 1 sink" + where);
        return std::nullopt;
      }
      PendingNet net;
      net.name = tokens[1];
      net.blocks.assign(tokens.begin() + 2, tokens.end());
      pending_nets.push_back(std::move(net));
    } else {
      Fail(error, "unknown directive '" + tokens[0] + "'" + where);
      return std::nullopt;
    }
  }
  if (!saw_header || grid < 1) {
    Fail(error, "missing header or grid declaration");
    return std::nullopt;
  }

  PlacedNetlist out;
  out.params.name = circuit_name;
  out.params.grid_size = grid;
  out.placement = Placement(grid, nets.num_blocks());
  for (BlockId b = 0; b < nets.num_blocks(); ++b) {
    const fpga::Coord c = sites[static_cast<std::size_t>(b)];
    if (!out.placement.Place(b, c.x, c.y)) {
      Fail(error, "two blocks share site (" + std::to_string(c.x) + "," +
                      std::to_string(c.y) + ")");
      return std::nullopt;
    }
  }
  for (const auto& pending : pending_nets) {
    Net net;
    net.name = pending.name;
    for (std::size_t i = 0; i < pending.blocks.size(); ++i) {
      const auto it = block_by_name.find(pending.blocks[i]);
      if (it == block_by_name.end()) {
        Fail(error, "net '" + pending.name + "' references unknown block '" +
                        pending.blocks[i] + "'");
        return std::nullopt;
      }
      if (i == 0) {
        net.source = it->second;
      } else {
        net.sinks.push_back(it->second);
      }
    }
    nets.AddNet(std::move(net));
  }
  std::string validate_error;
  if (!nets.Validate(&validate_error)) {
    Fail(error, validate_error);
    return std::nullopt;
  }
  out.netlist = std::move(nets);
  out.params.num_nets = out.netlist.num_nets();
  out.params.max_fanout = out.netlist.MaxFanout();
  return out;
}

std::optional<PlacedNetlist> ParsePlacedNetlistString(const std::string& text,
                                                      std::string* error) {
  std::istringstream in(text);
  return ParsePlacedNetlist(in, error);
}

std::optional<PlacedNetlist> ParsePlacedNetlistFile(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return ParsePlacedNetlist(in, error);
}

}  // namespace satfr::netlist
