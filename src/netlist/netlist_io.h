// Text serialization of placed netlists.
//
// The paper's flow is file-driven (MCNC circuits + SEGA global routings);
// this module gives the library an equivalent on-disk format so users can
// route their own circuits. The format is line-oriented:
//
//     satfr_netlist 1
//     grid <N>
//     block <name> <x> <y>
//     net <name> <source_block_name> <sink_block_name>...
//
// '#' starts a comment; blocks must be declared before nets reference
// them; block sites must be distinct and on the grid.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "netlist/mcnc_suite.h"  // McncBenchmark as the in-memory bundle

namespace satfr::netlist {

/// A parsed placed netlist (grid + netlist + placement). params.name is the
/// circuit name from the file; other params fields are defaulted.
using PlacedNetlist = McncBenchmark;

/// Writes the placed netlist. The netlist must validate and be fully
/// placed.
void WritePlacedNetlist(const Netlist& nets, const Placement& placement,
                        const std::string& circuit_name, std::ostream& out);

bool WritePlacedNetlistFile(const Netlist& nets, const Placement& placement,
                            const std::string& circuit_name,
                            const std::string& path);

/// Parses a placed netlist; std::nullopt (with a diagnostic in `error`) on
/// malformed input.
std::optional<PlacedNetlist> ParsePlacedNetlist(std::istream& in,
                                                std::string* error = nullptr);

std::optional<PlacedNetlist> ParsePlacedNetlistString(
    const std::string& text, std::string* error = nullptr);

std::optional<PlacedNetlist> ParsePlacedNetlistFile(
    const std::string& path, std::string* error = nullptr);

}  // namespace satfr::netlist
