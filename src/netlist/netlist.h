// Circuit netlist: blocks (CLB/pad instances) and multi-pin nets.
//
// This is the input of the routing flow: a set of placed blocks and nets,
// each net connecting one source block to one or more sink blocks. The
// structure intentionally mirrors the level of detail SEGA's benchmark files
// carry for routing purposes: names, connectivity, fan-out — no logic
// functions (routing does not need them).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace satfr::netlist {

using BlockId = std::int32_t;
using NetId = std::int32_t;

struct Block {
  std::string name;
};

struct Net {
  std::string name;
  BlockId source = -1;
  std::vector<BlockId> sinks;

  /// Pins = source + sinks.
  int NumPins() const { return 1 + static_cast<int>(sinks.size()); }
};

class Netlist {
 public:
  Netlist() = default;

  BlockId AddBlock(std::string name);
  NetId AddNet(Net net);

  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  int num_nets() const { return static_cast<int>(nets_.size()); }

  const Block& block(BlockId id) const {
    return blocks_[static_cast<std::size_t>(id)];
  }
  const Net& net(NetId id) const {
    return nets_[static_cast<std::size_t>(id)];
  }
  const std::vector<Net>& nets() const { return nets_; }

  /// Total 2-pin connections (sum of fan-outs).
  int NumTwoPinConnections() const;

  /// Largest net fan-out (0 if there are no nets).
  int MaxFanout() const;

  /// Structural sanity: every net has a valid source and >= 1 valid,
  /// source-distinct sink, and no duplicate sinks.
  bool Validate(std::string* error = nullptr) const;

 private:
  std::vector<Block> blocks_;
  std::vector<Net> nets_;
};

}  // namespace satfr::netlist
