#include "netlist/netlist.h"

#include <algorithm>

namespace satfr::netlist {

BlockId Netlist::AddBlock(std::string name) {
  blocks_.push_back(Block{std::move(name)});
  return static_cast<BlockId>(blocks_.size() - 1);
}

NetId Netlist::AddNet(Net net) {
  nets_.push_back(std::move(net));
  return static_cast<NetId>(nets_.size() - 1);
}

int Netlist::NumTwoPinConnections() const {
  int total = 0;
  for (const Net& net : nets_) {
    total += static_cast<int>(net.sinks.size());
  }
  return total;
}

int Netlist::MaxFanout() const {
  int max_fanout = 0;
  for (const Net& net : nets_) {
    max_fanout = std::max(max_fanout, static_cast<int>(net.sinks.size()));
  }
  return max_fanout;
}

bool Netlist::Validate(std::string* error) const {
  auto fail = [error](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  for (const Net& net : nets_) {
    if (net.source < 0 || net.source >= num_blocks()) {
      return fail("net '" + net.name + "' has an invalid source block");
    }
    if (net.sinks.empty()) {
      return fail("net '" + net.name + "' has no sinks");
    }
    std::vector<BlockId> sinks = net.sinks;
    std::sort(sinks.begin(), sinks.end());
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      if (sinks[i] < 0 || sinks[i] >= num_blocks()) {
        return fail("net '" + net.name + "' has an invalid sink block");
      }
      if (sinks[i] == net.source) {
        return fail("net '" + net.name + "' lists its source as a sink");
      }
      if (i > 0 && sinks[i] == sinks[i - 1]) {
        return fail("net '" + net.name + "' has duplicate sinks");
      }
    }
  }
  return true;
}

}  // namespace satfr::netlist
