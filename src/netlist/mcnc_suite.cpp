#include "netlist/mcnc_suite.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"

namespace satfr::netlist {
namespace {

std::vector<McncParams> BuildSuite() {
  // Scale knobs are tuned so that the minimum routable channel width W* of
  // each circuit's fixed global routing lands in the 4-10 range typical of
  // the MCNC suite, and the proven-unroutable W*-1 instances grow harder in
  // roughly the paper's row order.
  std::vector<McncParams> suite;
  auto add = [&suite](const char* name, int grid, int nets, int max_fanout,
                      double locality) {
    McncParams p;
    p.name = name;
    p.grid_size = grid;
    p.num_nets = nets;
    p.max_fanout = max_fanout;
    p.locality = locality;
    suite.push_back(p);
  };
  // Table 2 circuits, easiest to hardest.
  add("alu2", 10, 78, 5, 0.75);
  add("too_large", 12, 106, 5, 0.75);
  add("alu4", 14, 134, 6, 0.72);
  add("C880", 14, 158, 6, 0.70);
  add("apex7", 15, 182, 6, 0.70);
  add("C1355", 16, 185, 6, 0.68);
  add("vda", 16, 200, 7, 0.66);
  add("k2", 17, 230, 7, 0.65);
  // Small extras for tests, examples and quick experiments.
  add("tiny", 4, 8, 3, 0.8);
  add("9symml", 7, 25, 4, 0.78);
  add("term1", 8, 32, 4, 0.78);
  add("example2", 9, 40, 5, 0.76);
  return suite;
}

const std::vector<McncParams>& Suite() {
  static const std::vector<McncParams>* const kSuite =
      new std::vector<McncParams>(BuildSuite());
  return *kSuite;
}

}  // namespace

const std::vector<std::string>& Table2BenchmarkNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{"alu2", "too_large", "alu4", "C880",
                                   "apex7", "C1355",    "vda",  "k2"};
  return *kNames;
}

const std::vector<std::string>& AllBenchmarkNames() {
  static const std::vector<std::string>* const kNames = [] {
    auto* names = new std::vector<std::string>();
    for (const McncParams& p : Suite()) names->push_back(p.name);
    return names;
  }();
  return *kNames;
}

McncParams GetMcncParams(const std::string& name) {
  for (const McncParams& p : Suite()) {
    if (p.name == name) return p;
  }
  std::fprintf(stderr, "satfr: unknown benchmark '%s'\n", name.c_str());
  std::abort();
}

McncBenchmark GenerateMcncBenchmark(const McncParams& params) {
  assert(params.grid_size >= 2);
  assert(params.num_nets >= 1);
  Rng rng(StableHash64(params.name) ^ 0x5AFF5AFF12345678ULL);

  McncBenchmark bench;
  bench.params = params;

  // 1. Blocks on distinct sites: a random subset of the CLB array.
  const int n = params.grid_size;
  const int num_sites = n * n;
  int num_blocks = std::max(
      2, static_cast<int>(std::lround(num_sites * params.block_density)));
  num_blocks = std::min(num_blocks, num_sites);
  const auto site_order = rng.Permutation(static_cast<std::uint32_t>(num_sites));
  bench.placement = Placement(n, num_blocks);
  for (int b = 0; b < num_blocks; ++b) {
    const int site = static_cast<int>(site_order[static_cast<std::size_t>(b)]);
    const BlockId id =
        bench.netlist.AddBlock("blk_" + std::to_string(b));
    const bool placed = bench.placement.Place(id, site % n, site / n);
    assert(placed);
    (void)placed;
  }

  // 2. Nets: random source; sinks mostly from the source's neighborhood.
  auto blocks_near = [&](fpga::Coord center) {
    std::vector<BlockId> near;
    for (int dy = -params.locality_radius; dy <= params.locality_radius;
         ++dy) {
      for (int dx = -params.locality_radius; dx <= params.locality_radius;
           ++dx) {
        if (dx == 0 && dy == 0) continue;
        const auto owner =
            bench.placement.BlockAt(center.x + dx, center.y + dy);
        if (owner) near.push_back(*owner);
      }
    }
    return near;
  };

  for (int net_index = 0; net_index < params.num_nets; ++net_index) {
    Net net;
    net.name = "net_" + std::to_string(net_index);
    net.source = static_cast<BlockId>(
        rng.NextBelow(static_cast<std::uint64_t>(num_blocks)));
    // Fan-out: 1 + Geometric(p), capped.
    int fanout = 1;
    while (fanout < params.max_fanout &&
           !rng.NextBool(params.fanout_geometric_p)) {
      ++fanout;
    }
    const std::vector<BlockId> near =
        blocks_near(bench.placement.LocationOf(net.source));
    std::vector<bool> used(static_cast<std::size_t>(num_blocks), false);
    used[static_cast<std::size_t>(net.source)] = true;
    int attempts = 0;
    while (static_cast<int>(net.sinks.size()) < fanout &&
           attempts < 64 * fanout) {
      ++attempts;
      BlockId candidate = -1;
      if (!near.empty() && rng.NextBool(params.locality)) {
        candidate = near[rng.NextBelow(near.size())];
      } else {
        candidate = static_cast<BlockId>(
            rng.NextBelow(static_cast<std::uint64_t>(num_blocks)));
      }
      if (used[static_cast<std::size_t>(candidate)]) continue;
      used[static_cast<std::size_t>(candidate)] = true;
      net.sinks.push_back(candidate);
    }
    if (net.sinks.empty()) {
      // Degenerate corner (tiny dense grids): fall back to any other block.
      const BlockId fallback =
          (net.source + 1) % static_cast<BlockId>(num_blocks);
      net.sinks.push_back(fallback);
    }
    bench.netlist.AddNet(std::move(net));
  }

  std::string error;
  const bool valid = bench.netlist.Validate(&error);
  assert(valid && "generated netlist must validate");
  (void)valid;
  return bench;
}

McncBenchmark GenerateMcncBenchmark(const std::string& name) {
  return GenerateMcncBenchmark(GetMcncParams(name));
}

}  // namespace satfr::netlist
