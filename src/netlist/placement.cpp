#include "netlist/placement.h"

#include <cassert>

namespace satfr::netlist {

Placement::Placement(int grid_size, int num_blocks)
    : grid_size_(grid_size),
      locations_(static_cast<std::size_t>(num_blocks)),
      placed_(static_cast<std::size_t>(num_blocks), false),
      site_owner_(static_cast<std::size_t>(grid_size) *
                      static_cast<std::size_t>(grid_size),
                  -1) {
  assert(grid_size >= 1);
}

bool Placement::Place(BlockId block, int x, int y) {
  assert(block >= 0 &&
         static_cast<std::size_t>(block) < locations_.size());
  if (x < 0 || y < 0 || x >= grid_size_ || y >= grid_size_) return false;
  const std::size_t site = static_cast<std::size_t>(y) *
                               static_cast<std::size_t>(grid_size_) +
                           static_cast<std::size_t>(x);
  if (site_owner_[site] != -1) return false;
  assert(!placed_[static_cast<std::size_t>(block)] &&
         "block placed twice");
  site_owner_[site] = block;
  locations_[static_cast<std::size_t>(block)] = fpga::Coord{x, y};
  placed_[static_cast<std::size_t>(block)] = true;
  return true;
}

fpga::Coord Placement::LocationOf(BlockId block) const {
  assert(IsPlaced(block));
  return locations_[static_cast<std::size_t>(block)];
}

bool Placement::IsPlaced(BlockId block) const {
  return block >= 0 &&
         static_cast<std::size_t>(block) < placed_.size() &&
         placed_[static_cast<std::size_t>(block)];
}

std::optional<BlockId> Placement::BlockAt(int x, int y) const {
  if (x < 0 || y < 0 || x >= grid_size_ || y >= grid_size_) {
    return std::nullopt;
  }
  const BlockId owner =
      site_owner_[static_cast<std::size_t>(y) *
                      static_cast<std::size_t>(grid_size_) +
                  static_cast<std::size_t>(x)];
  if (owner == -1) return std::nullopt;
  return owner;
}

bool Placement::CoversNetlist(const Netlist& netlist) const {
  for (BlockId b = 0; b < netlist.num_blocks(); ++b) {
    if (!IsPlaced(b)) return false;
  }
  return true;
}

}  // namespace satfr::netlist
