#include "encode/registry.h"

#include <cstdio>
#include <cstdlib>

namespace satfr::encode {
namespace {

EncodingSpec Single(std::string name, LevelKind kind) {
  EncodingSpec spec;
  spec.name = std::move(name);
  spec.levels = {LevelSpec{kind, -1}};
  return spec;
}

EncodingSpec TwoLevel(std::string name, LevelKind top, int top_budget,
                      LevelKind bottom) {
  EncodingSpec spec;
  spec.name = std::move(name);
  spec.levels = {LevelSpec{top, top_budget}, LevelSpec{bottom, -1}};
  return spec;
}

std::vector<EncodingSpec> BuildRegistry() {
  std::vector<EncodingSpec> all;
  // The two encodings previously used for FPGA detailed routing (§2)...
  all.push_back(Single("log", LevelKind::kLog));
  all.push_back(Single("muldirect", LevelKind::kMuldirect));
  // ...the direct encoding muldirect derives from (Table 1)...
  all.push_back(Single("direct", LevelKind::kDirect));
  // ...and the 12 new encodings (§6).
  all.push_back(Single("ITE-linear", LevelKind::kIteLinear));
  all.push_back(Single("ITE-log", LevelKind::kIteLog));
  all.push_back(TwoLevel("ITE-log-1+ITE-linear", LevelKind::kIteLog, 1,
                         LevelKind::kIteLinear));
  all.push_back(TwoLevel("ITE-log-2+ITE-linear", LevelKind::kIteLog, 2,
                         LevelKind::kIteLinear));
  all.push_back(
      TwoLevel("ITE-log-2+direct", LevelKind::kIteLog, 2, LevelKind::kDirect));
  all.push_back(TwoLevel("ITE-log-2+muldirect", LevelKind::kIteLog, 2,
                         LevelKind::kMuldirect));
  all.push_back(TwoLevel("ITE-linear-2+direct", LevelKind::kIteLinear, 2,
                         LevelKind::kDirect));
  all.push_back(TwoLevel("ITE-linear-2+muldirect", LevelKind::kIteLinear, 2,
                         LevelKind::kMuldirect));
  all.push_back(
      TwoLevel("direct-3+direct", LevelKind::kDirect, 3, LevelKind::kDirect));
  all.push_back(TwoLevel("direct-3+muldirect", LevelKind::kDirect, 3,
                         LevelKind::kMuldirect));
  all.push_back(TwoLevel("muldirect-3+direct", LevelKind::kMuldirect, 3,
                         LevelKind::kDirect));
  all.push_back(TwoLevel("muldirect-3+muldirect", LevelKind::kMuldirect, 3,
                         LevelKind::kMuldirect));
  // Extensions beyond the paper's evaluated set (§4 allows any depth and
  // any per-level encoding; Kwon & Klieber's scheme is multi-level direct).
  all.push_back(TwoLevel("ITE-log-3+muldirect", LevelKind::kIteLog, 3,
                         LevelKind::kMuldirect));
  all.push_back(TwoLevel("ITE-linear-3+muldirect", LevelKind::kIteLinear, 3,
                         LevelKind::kMuldirect));
  all.push_back(
      TwoLevel("direct-4+direct", LevelKind::kDirect, 4, LevelKind::kDirect));
  {
    EncodingSpec spec;
    spec.name = "direct-2+direct-2+direct";
    spec.levels = {LevelSpec{LevelKind::kDirect, 2},
                   LevelSpec{LevelKind::kDirect, 2},
                   LevelSpec{LevelKind::kDirect, -1}};
    all.push_back(std::move(spec));
  }
  {
    EncodingSpec spec;
    spec.name = "ITE-log-1+ITE-log-1+ITE-linear";
    spec.levels = {LevelSpec{LevelKind::kIteLog, 1},
                   LevelSpec{LevelKind::kIteLog, 1},
                   LevelSpec{LevelKind::kIteLinear, -1}};
    all.push_back(std::move(spec));
  }
  return all;
}

}  // namespace

const std::vector<EncodingSpec>& AllEncodings() {
  static const std::vector<EncodingSpec>* const kAll =
      new std::vector<EncodingSpec>(BuildRegistry());
  return *kAll;
}

std::optional<EncodingSpec> FindEncoding(std::string_view name) {
  for (const EncodingSpec& spec : AllEncodings()) {
    if (spec.name == name) return spec;
  }
  return std::nullopt;
}

const EncodingSpec& GetEncoding(std::string_view name) {
  for (const EncodingSpec& spec : AllEncodings()) {
    if (spec.name == name) return spec;
  }
  std::fprintf(stderr, "satfr: unknown encoding '%.*s'\n",
               static_cast<int>(name.size()), name.data());
  std::abort();
}

std::vector<std::string> AllEncodingNames() {
  std::vector<std::string> names;
  for (const EncodingSpec& spec : AllEncodings()) names.push_back(spec.name);
  return names;
}

std::vector<std::string> NewEncodingNames() {
  return {
      "ITE-linear",
      "ITE-log",
      "ITE-log-1+ITE-linear",
      "ITE-log-2+ITE-linear",
      "ITE-log-2+direct",
      "ITE-log-2+muldirect",
      "ITE-linear-2+direct",
      "ITE-linear-2+muldirect",
      "direct-3+direct",
      "direct-3+muldirect",
      "muldirect-3+direct",
      "muldirect-3+muldirect",
  };
}

std::vector<std::string> EvaluatedEncodingNames() {
  std::vector<std::string> names = {"log", "muldirect"};
  for (std::string& name : NewEncodingNames()) {
    names.push_back(std::move(name));
  }
  return names;
}

std::vector<std::string> ExtensionEncodingNames() {
  return {
      "ITE-log-3+muldirect",
      "ITE-linear-3+muldirect",
      "direct-4+direct",
      "direct-2+direct-2+direct",
      "ITE-log-1+ITE-log-1+ITE-linear",
  };
}

std::vector<std::string> Table2EncodingNames() {
  return {
      "muldirect",
      "ITE-linear",
      "ITE-log",
      "ITE-linear-2+direct",
      "ITE-linear-2+muldirect",
      "muldirect-3+muldirect",
      "direct-3+muldirect",
  };
}

}  // namespace satfr::encode
