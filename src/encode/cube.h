// Cubes: conjunctions of literals over a CSP variable's indexing Booleans.
//
// Every encoding in the paper assigns each domain value an "indexing Boolean
// pattern" (§2) — a (possibly partial) assignment to the variable's indexing
// Booleans that selects the value. We represent a pattern as a cube: the
// conjunction of the literals forced true by the pattern. All machinery that
// is shared across encodings (conflict clauses, symmetry restrictions, model
// decoding) operates on cubes only:
//   * conflict clause for value d on edge {v, w}:  ~cube_v(d) \/ ~cube_w(d)
//   * forbidding value d at vertex v:              ~cube_v(d)
//   * decoding:                                    d selected iff cube true.
#pragma once

#include <vector>

#include "sat/types.h"

namespace satfr::sat {
class ClauseSink;
}

namespace satfr::encode {

/// A conjunction of literals over encoder-local variables 0..n-1.
using Cube = std::vector<sat::Lit>;

/// The clause ~l1 \/ ~l2 \/ ... for cube l1 /\ l2 /\ ..., with every
/// variable shifted by `var_offset` (to place encoder-local variables into
/// the global CNF variable space).
sat::Clause NegateCube(const Cube& cube, int var_offset);

/// Clause asserting that cubes `a` (at offset_a) and `b` (at offset_b) are
/// not simultaneously true — the paper's conflict clause (§4 example).
sat::Clause ConflictClause(const Cube& a, int offset_a, const Cube& b,
                           int offset_b);

/// True if every literal of `cube` (shifted by var_offset) holds in `model`.
bool CubeSatisfied(const Cube& cube, int var_offset,
                   const std::vector<bool>& model);

/// Concatenation a /\ b where b's variables are shifted by `b_offset`
/// relative to a's numbering (used to stack hierarchy levels).
Cube ConcatCubes(const Cube& a, const Cube& b, int b_offset);

/// Shifts every variable in the clause by `var_offset`.
sat::Clause ShiftClause(const sat::Clause& clause, int var_offset);

// Streaming variants: build the shifted clause in `scratch` (capacity reused
// across calls) and emit it into `sink`, producing the exact literal order
// of the materializing functions above. These are the inner loops of
// EncodeColoringToSink.

/// Emits ShiftClause(clause, var_offset) into `sink`.
void EmitShiftedClause(const sat::Clause& clause, int var_offset,
                       sat::ClauseSink& sink, sat::Clause& scratch);

/// Emits NegateCube(cube, var_offset) into `sink`.
void EmitNegatedCube(const Cube& cube, int var_offset, sat::ClauseSink& sink,
                     sat::Clause& scratch);

/// Emits ConflictClause(a, offset_a, b, offset_b) into `sink`.
void EmitConflictClause(const Cube& a, int offset_a, const Cube& b,
                        int offset_b, sat::ClauseSink& sink,
                        sat::Clause& scratch);

/// Emits ConflictClause(a, offset_a, b, offset_b) with `guard` appended —
/// the cross-group guard of the net-grouped emission (see
/// EmitNetGroup): the clause is vacuous whenever `guard` is true.
void EmitGuardedConflictClause(const Cube& a, int offset_a, const Cube& b,
                               int offset_b, sat::Lit guard,
                               sat::ClauseSink& sink, sat::Clause& scratch);

}  // namespace satfr::encode
