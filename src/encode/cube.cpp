#include "encode/cube.h"

#include "sat/clause_sink.h"

namespace satfr::encode {

sat::Clause NegateCube(const Cube& cube, int var_offset) {
  sat::Clause clause;
  clause.reserve(cube.size());
  for (const sat::Lit l : cube) {
    clause.push_back(~sat::Lit::Make(l.var() + var_offset, l.negated()));
  }
  return clause;
}

sat::Clause ConflictClause(const Cube& a, int offset_a, const Cube& b,
                           int offset_b) {
  sat::Clause clause = NegateCube(a, offset_a);
  const sat::Clause tail = NegateCube(b, offset_b);
  clause.insert(clause.end(), tail.begin(), tail.end());
  return clause;
}

bool CubeSatisfied(const Cube& cube, int var_offset,
                   const std::vector<bool>& model) {
  for (const sat::Lit l : cube) {
    const std::size_t v = static_cast<std::size_t>(l.var() + var_offset);
    if (model[v] == l.negated()) return false;
  }
  return true;
}

Cube ConcatCubes(const Cube& a, const Cube& b, int b_offset) {
  Cube out = a;
  out.reserve(a.size() + b.size());
  for (const sat::Lit l : b) {
    out.push_back(sat::Lit::Make(l.var() + b_offset, l.negated()));
  }
  return out;
}

sat::Clause ShiftClause(const sat::Clause& clause, int var_offset) {
  sat::Clause out;
  out.reserve(clause.size());
  for (const sat::Lit l : clause) {
    out.push_back(sat::Lit::Make(l.var() + var_offset, l.negated()));
  }
  return out;
}

namespace {

// Appends the literals of ShiftClause / NegateCube without emitting, so the
// two-cube conflict clause can be built in one scratch buffer.
void AppendShifted(const sat::Clause& clause, int var_offset,
                   sat::Clause& scratch) {
  for (const sat::Lit l : clause) {
    scratch.push_back(sat::Lit::Make(l.var() + var_offset, l.negated()));
  }
}

void AppendNegated(const Cube& cube, int var_offset, sat::Clause& scratch) {
  for (const sat::Lit l : cube) {
    scratch.push_back(~sat::Lit::Make(l.var() + var_offset, l.negated()));
  }
}

}  // namespace

void EmitShiftedClause(const sat::Clause& clause, int var_offset,
                       sat::ClauseSink& sink, sat::Clause& scratch) {
  scratch.clear();
  AppendShifted(clause, var_offset, scratch);
  sink.EmitClause(scratch);
}

void EmitNegatedCube(const Cube& cube, int var_offset, sat::ClauseSink& sink,
                     sat::Clause& scratch) {
  scratch.clear();
  AppendNegated(cube, var_offset, scratch);
  sink.EmitClause(scratch);
}

void EmitConflictClause(const Cube& a, int offset_a, const Cube& b,
                        int offset_b, sat::ClauseSink& sink,
                        sat::Clause& scratch) {
  scratch.clear();
  AppendNegated(a, offset_a, scratch);
  AppendNegated(b, offset_b, scratch);
  sink.EmitClause(scratch);
}

void EmitGuardedConflictClause(const Cube& a, int offset_a, const Cube& b,
                               int offset_b, sat::Lit guard,
                               sat::ClauseSink& sink, sat::Clause& scratch) {
  scratch.clear();
  AppendNegated(a, offset_a, scratch);
  AppendNegated(b, offset_b, scratch);
  scratch.push_back(guard);
  sink.EmitClause(scratch);
}

}  // namespace satfr::encode
