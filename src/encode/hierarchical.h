// Hierarchical composition of encodings (§4) and the complete per-domain
// encoding object consumed by the coloring->CNF compiler.
//
// An EncodingSpec names a stack of levels. A single level encodes the
// domain directly. With two or more levels, the top level (whose size is
// fixed by its indexing-variable budget, e.g. "direct-3" or "ITE-log-2")
// partitions the domain into equal contiguous subdomains of size
// ceil(k / top_count); the remaining levels select within a subdomain using
// one shared set of variables across all subdomains. A smaller trailing
// subdomain either gets a smaller ITE tree (ITE bottoms) or restriction
// clauses that forbid the non-existent values (log/direct/muldirect
// bottoms), exactly as §4 prescribes.
#pragma once

#include <string>
#include <vector>

#include "encode/level_encoder.h"

namespace satfr::encode {

struct LevelSpec {
  LevelKind kind;
  /// Indexing Booleans allotted to this level. Must be > 0 for every level
  /// except the last; the last level is sized to fit its subdomain and must
  /// use -1.
  int var_budget = -1;
};

struct EncodingSpec {
  /// Paper-style name, e.g. "ITE-linear-2+muldirect".
  std::string name;
  /// Top-to-bottom level stack; at least one entry.
  std::vector<LevelSpec> levels;
};

/// A fully instantiated encoding of one CSP variable's domain.
struct DomainEncoding {
  int domain_size = 0;
  /// Indexing Booleans per CSP variable.
  int num_vars = 0;
  /// Selection cube per domain value, over local variables 0..num_vars-1.
  std::vector<Cube> value_cubes;
  /// Per-variable structural clauses (ALO/AMO/illegal/restriction).
  std::vector<sat::Clause> structural;
  /// True if every total assignment selects exactly one domain value.
  bool exactly_one = false;
};

/// Instantiates `spec` for a domain of `domain_size` values.
DomainEncoding EncodeDomain(const EncodingSpec& spec, int domain_size);

/// Value selected by `model` for a CSP variable whose indexing Booleans
/// start at `var_offset`. With a non-exactly-one encoding several values may
/// be selected; the smallest is returned (any is valid, §2). Returns -1 if
/// no value is selected (cannot happen for a model of a correctly encoded
/// formula).
int DecodeValue(const DomainEncoding& domain, int var_offset,
                const std::vector<bool>& model);

}  // namespace satfr::encode
