#include "encode/net_group.h"

#include <cassert>

namespace satfr::encode {

sat::Var NetGroupedSink::BeginGroup(graph::VertexId net) {
  assert(!open_ && "net groups must not nest");
  assert(net >= 0);
  open_ = true;
  // The next id the sink chain would hand out; EnsureVars forwards it
  // downstream so solver/collector numberings stay aligned.
  const sat::Var activation = num_vars();
  EnsureVars(activation + 1);
  if (table_.first_activation_var < 0) {
    table_.first_activation_var = activation;
  }
  if (static_cast<std::size_t>(net) >= next_epoch_.size()) {
    next_epoch_.resize(static_cast<std::size_t>(net) + 1, 0);
  }
  NetGroup group;
  group.net = net;
  group.epoch = next_epoch_[static_cast<std::size_t>(net)]++;
  group.activation = activation;
  group.clause_begin = num_clauses();
  group.clause_end = group.clause_begin;
  table_.groups.push_back(group);
  return activation;
}

void NetGroupedSink::EndGroup() {
  assert(open_ && "EndGroup without BeginGroup");
  open_ = false;
}

void NetGroupedSink::DoEmit(const sat::Lit* lits, std::size_t n) {
  if (!open_) {
    down_.EmitClause(lits, n);
    return;
  }
  NetGroup& group = table_.groups.back();
  scratch_.clear();
  scratch_.reserve(n + 1);
  scratch_.push_back(sat::Lit::Neg(group.activation));
  scratch_.insert(scratch_.end(), lits, lits + n);
  down_.EmitClause(scratch_);
  // num_clauses_ was bumped by EmitClause before DoEmit, so the counter now
  // equals this clause's ordinal + 1 — exactly the exclusive range end.
  group.clause_end = num_clauses();
}

}  // namespace satfr::encode
