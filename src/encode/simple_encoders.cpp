#include "encode/simple_encoders.h"

#include <cassert>

#include "encode/ite_tree.h"

namespace satfr::encode {

const char* ToString(LevelKind kind) {
  switch (kind) {
    case LevelKind::kLog:
      return "log";
    case LevelKind::kDirect:
      return "direct";
    case LevelKind::kMuldirect:
      return "muldirect";
    case LevelKind::kIteLinear:
      return "ITE-linear";
    case LevelKind::kIteLog:
      return "ITE-log";
  }
  return "?";
}

std::vector<Cube> LevelEncoder::ReducedCubes(int count, int reduced) const {
  assert(reduced >= 1 && reduced <= count);
  LevelEncoding full = Encode(count);
  full.cubes.resize(static_cast<std::size_t>(reduced));
  return full.cubes;
}

namespace {

int BitsFor(int count) {
  int bits = 0;
  while ((1 << bits) < count) ++bits;
  return bits;
}

}  // namespace

LevelEncoding LogEncoder::Encode(int count) const {
  assert(count >= 1);
  LevelEncoding enc;
  const int bits = BitsFor(count);
  enc.num_vars = bits;
  enc.exactly_one = true;
  enc.cubes.reserve(static_cast<std::size_t>(count));
  for (int value = 0; value < count; ++value) {
    Cube cube;
    cube.reserve(static_cast<std::size_t>(bits));
    for (int b = 0; b < bits; ++b) {
      const bool bit_set = ((value >> b) & 1) != 0;
      cube.push_back(sat::Lit::Make(b, /*negated=*/!bit_set));
    }
    enc.cubes.push_back(std::move(cube));
  }
  // Exclude the unused patterns in [count, 2^bits).
  enc.structural.reserve(static_cast<std::size_t>((1 << bits) - count));
  for (int illegal = count; illegal < (1 << bits); ++illegal) {
    sat::Clause clause;
    clause.reserve(static_cast<std::size_t>(bits));
    for (int b = 0; b < bits; ++b) {
      const bool bit_set = ((illegal >> b) & 1) != 0;
      clause.push_back(sat::Lit::Make(b, /*negated=*/bit_set));
    }
    enc.structural.push_back(std::move(clause));
  }
  return enc;
}

LevelEncoding DirectEncoder::Encode(int count) const {
  assert(count >= 1);
  LevelEncoding enc;
  enc.num_vars = count;
  enc.exactly_one = true;
  enc.cubes.reserve(static_cast<std::size_t>(count));
  for (int value = 0; value < count; ++value) {
    enc.cubes.push_back(Cube{sat::Lit::Pos(value)});
  }
  // At-least-one.
  sat::Clause alo;
  alo.reserve(static_cast<std::size_t>(count));
  for (int value = 0; value < count; ++value) {
    alo.push_back(sat::Lit::Pos(value));
  }
  enc.structural.reserve(1 +
                         static_cast<std::size_t>(count) * (count - 1) / 2);
  enc.structural.push_back(std::move(alo));
  // Pairwise at-most-one.
  for (int i = 0; i < count; ++i) {
    for (int j = i + 1; j < count; ++j) {
      enc.structural.push_back({sat::Lit::Neg(i), sat::Lit::Neg(j)});
    }
  }
  return enc;
}

LevelEncoding MuldirectEncoder::Encode(int count) const {
  assert(count >= 1);
  LevelEncoding enc;
  enc.num_vars = count;
  enc.exactly_one = false;
  enc.cubes.reserve(static_cast<std::size_t>(count));
  for (int value = 0; value < count; ++value) {
    enc.cubes.push_back(Cube{sat::Lit::Pos(value)});
  }
  sat::Clause alo;
  alo.reserve(static_cast<std::size_t>(count));
  for (int value = 0; value < count; ++value) {
    alo.push_back(sat::Lit::Pos(value));
  }
  enc.structural.push_back(std::move(alo));
  return enc;
}

std::unique_ptr<LevelEncoder> MakeLevelEncoder(LevelKind kind) {
  switch (kind) {
    case LevelKind::kLog:
      return std::make_unique<LogEncoder>();
    case LevelKind::kDirect:
      return std::make_unique<DirectEncoder>();
    case LevelKind::kMuldirect:
      return std::make_unique<MuldirectEncoder>();
    case LevelKind::kIteLinear:
      return std::make_unique<IteLinearEncoder>();
    case LevelKind::kIteLog:
      return std::make_unique<IteLogEncoder>();
  }
  return nullptr;
}

}  // namespace satfr::encode
