// The per-level encoding interface.
//
// §4 of the paper composes encodings hierarchically: a level selects one of
// `count` children (domain values for a single-level encoding; subdomains
// for the top level of a hierarchy). Every simple encoding — log, direct,
// muldirect, ITE-linear, ITE-log — implements this interface, so the same
// five classes serve both as complete encodings and as building blocks of
// the hierarchical ones.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "encode/cube.h"
#include "sat/types.h"

namespace satfr::encode {

/// The CNF material a level contributes, over local variables 0..num_vars-1.
struct LevelEncoding {
  int num_vars = 0;
  /// One selection cube per child, in child order.
  std::vector<Cube> cubes;
  /// At-least-one / at-most-one / excluded-illegal-value clauses.
  std::vector<sat::Clause> structural;
  /// True when the structure guarantees that every total assignment to the
  /// level's variables selects exactly one child (ITE trees, log with
  /// exclusions, direct). False for muldirect (several children may be
  /// selected simultaneously).
  bool exactly_one = false;
};

enum class LevelKind {
  kLog,
  kDirect,
  kMuldirect,
  kIteLinear,
  kIteLog,
};

const char* ToString(LevelKind kind);

class LevelEncoder {
 public:
  virtual ~LevelEncoder() = default;

  virtual LevelKind kind() const = 0;

  /// Paper-style name fragment ("direct", "ITE-linear", ...).
  virtual std::string Name() const = 0;

  /// Number of children addressable with `var_budget` indexing Booleans
  /// (direct/muldirect: var_budget; ITE-linear: var_budget+1;
  /// ITE-log / log: 2^var_budget). Used to size hierarchy top levels such
  /// as "direct-3" or "ITE-log-2".
  virtual int CountForVarBudget(int var_budget) const = 0;

  /// Encodes the selection of one among `count` children. count >= 1.
  virtual LevelEncoding Encode(int count) const = 0;

  /// Selection cubes for a *reduced* child count (`reduced` < `count`) over
  /// the same variable numbering as Encode(count) — used for the smaller
  /// last subdomain of a hierarchy (§4). The default implementation reuses
  /// the first `reduced` cubes of Encode(count) and reports that the caller
  /// must add restriction clauses forbidding the remaining cubes; ITE
  /// encoders instead build a smaller tree, which needs no restrictions.
  virtual std::vector<Cube> ReducedCubes(int count, int reduced) const;

  /// Whether ReducedCubes requires the caller to forbid the unused cubes.
  virtual bool ReducedNeedsRestriction() const { return true; }
};

/// Factory for the five simple level encoders.
std::unique_ptr<LevelEncoder> MakeLevelEncoder(LevelKind kind);

}  // namespace satfr::encode
