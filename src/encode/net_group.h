// Net-grouped clause emission: the NetGroupedSink decorator and the group
// table it produces.
//
// The incremental routing session (flow/routing_session.h) needs every
// net's clauses to be individually retractable: activating a net means
// assuming its selector literal, ripping it up means adding the permanent
// unit ~selector. NetGroupedSink makes that shape a property of the clause
// *stream* rather than of any one encoder: between BeginGroup(net) and
// EndGroup() every emitted clause is forwarded downstream with the group's
// fresh activation literal ~a prepended (so the stored clause is the guarded
// implication a -> C), and the group's clause-ordinal range is recorded in a
// NetGroupTable. Clauses emitted outside a group (the width-ladder guards,
// activation toggles) pass through untouched.
//
// Invariants the table promises (checked by satlint's net-group-hygiene
// pass):
//   * every clause inside a group range carries exactly one activation
//     literal — the negated group selector, in first position;
//   * group ranges are pairwise disjoint;
//   * a deactivated group is vacuous under its literal: assigning the
//     selector false satisfies every clause of the range.
//
// A net may appear multiple times: each re-emission (a rip-up/re-route
// delta) opens a fresh *epoch* with a fresh activation variable; the retired
// epoch's clauses stay downstream but are permanently satisfied by the
// retirement unit.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sat/clause_sink.h"
#include "sat/types.h"

namespace satfr::encode {

/// One net's clause group: the guarded clauses occupy stream ordinals
/// [clause_begin, clause_end) of the NetGroupedSink that emitted them.
struct NetGroup {
  graph::VertexId net = -1;
  /// 0 for the initial emission, +1 per re-emission of the same net.
  int epoch = 0;
  sat::Var activation = -1;
  std::uint64_t clause_begin = 0;
  std::uint64_t clause_end = 0;  // one past the last clause
};

struct NetGroupTable {
  std::vector<NetGroup> groups;
  /// Smallest activation variable handed out (-1 before the first group).
  /// Every variable >= this is an activation variable of some group.
  sat::Var first_activation_var = -1;
};

/// ClauseSink decorator that tags clause ranges with net ids and injects
/// activation literals (see file comment). Variables allocated via
/// EnsureVars/EmitVar outside BeginGroup are ordinary passthrough
/// variables; BeginGroup itself allocates the group's activation variable.
class NetGroupedSink final : public sat::ClauseSink {
 public:
  explicit NetGroupedSink(sat::ClauseSink& down) : down_(down) {
    num_vars_ = down.num_vars();
  }

  void EnsureVars(int n) override {
    ClauseSink::EnsureVars(n);
    down_.EnsureVars(n);
  }
  void ReserveClauses(std::uint64_t n) override { down_.ReserveClauses(n); }
  bool Finish() override { return !open_ && down_.Finish(); }

  /// Opens a group for `net`: allocates a fresh activation variable,
  /// records the epoch, and returns the activation variable. Groups must
  /// not nest.
  sat::Var BeginGroup(graph::VertexId net);
  void EndGroup();

  bool group_open() const { return open_; }
  const NetGroupTable& table() const { return table_; }

 protected:
  void DoEmit(const sat::Lit* lits, std::size_t n) override;

 private:
  sat::ClauseSink& down_;
  NetGroupTable table_;
  sat::Clause scratch_;
  std::vector<int> next_epoch_;  // per net id, grown on demand
  bool open_ = false;
};

}  // namespace satfr::encode
