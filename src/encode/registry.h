// Registry of the paper's encodings, keyed by their published names.
//
// 15 encodings are registered: the 2 previously used for FPGA routing (log,
// muldirect), the direct encoding they derive from (Table 1), and the 12 new
// encodings of §6. Helper lists reproduce the groupings used in the
// evaluation (Table 2 columns, the "12 new" set, the full comparison set).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "encode/hierarchical.h"

namespace satfr::encode {

/// All registered encodings, in a stable presentation order.
const std::vector<EncodingSpec>& AllEncodings();

/// Looks an encoding up by its paper name (e.g. "ITE-linear-2+muldirect").
std::optional<EncodingSpec> FindEncoding(std::string_view name);

/// Like FindEncoding but aborts with a clear message on an unknown name.
const EncodingSpec& GetEncoding(std::string_view name);

/// Names of all registered encodings.
std::vector<std::string> AllEncodingNames();

/// The 12 encodings the paper introduces (§6).
std::vector<std::string> NewEncodingNames();

/// The 14 encodings evaluated in the paper (12 new + log + muldirect).
std::vector<std::string> EvaluatedEncodingNames();

/// The 7 best-performing encodings shown as Table 2 columns, in column
/// order: muldirect, ITE-linear, ITE-log, ITE-linear-2+direct,
/// ITE-linear-2+muldirect, muldirect-3+muldirect, direct-3+muldirect.
std::vector<std::string> Table2EncodingNames();

/// Extension encodings beyond the paper's evaluated set, exercising the
/// generality claims of §4: wider hierarchy tops and three-level stacks
/// (the multi-level direct hierarchy is the Kwon & Klieber scheme the paper
/// classifies as direct-i+direct). Registered alongside the paper set and
/// covered by the same property tests.
std::vector<std::string> ExtensionEncodingNames();

}  // namespace satfr::encode
