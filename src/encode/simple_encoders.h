// The three "flat" encodings of §2: log, direct, and muldirect.
//
// Table 1 of the paper specifies their clause sets exactly for a 2-vertex,
// 3-value example; tests/encode_simple_test.cpp pins our output to that
// table literal-for-literal.
#pragma once

#include "encode/level_encoder.h"

namespace satfr::encode {

/// Iwama & Miyazaki's log encoding: ceil(log2 count) Booleans per variable,
/// value = full binary pattern (LSB first), plus excluded-illegal-value
/// clauses for the unused patterns.
class LogEncoder final : public LevelEncoder {
 public:
  LevelKind kind() const override { return LevelKind::kLog; }
  std::string Name() const override { return "log"; }
  int CountForVarBudget(int var_budget) const override {
    return 1 << var_budget;
  }
  LevelEncoding Encode(int count) const override;
};

/// de Kleer's direct encoding: one Boolean per value, at-least-one plus
/// pairwise at-most-one clauses.
class DirectEncoder final : public LevelEncoder {
 public:
  LevelKind kind() const override { return LevelKind::kDirect; }
  std::string Name() const override { return "direct"; }
  int CountForVarBudget(int var_budget) const override { return var_budget; }
  LevelEncoding Encode(int count) const override;
};

/// Selman et al.'s multivalued direct encoding: direct without the
/// at-most-one clauses; several values may be selected and any one of them
/// is a valid extraction.
class MuldirectEncoder final : public LevelEncoder {
 public:
  LevelKind kind() const override { return LevelKind::kMuldirect; }
  std::string Name() const override { return "muldirect"; }
  int CountForVarBudget(int var_budget) const override { return var_budget; }
  LevelEncoding Encode(int count) const override;
};

}  // namespace satfr::encode
