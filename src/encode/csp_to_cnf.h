// Graph-coloring -> CNF compilation (the paper's second translation tool).
//
// Given a conflict graph, a color count K, an encoding, and an optional
// symmetry-breaking vertex sequence, produces the CNF that is satisfiable
// iff the graph is K-colorable under the added symmetry restrictions (which
// preserve K-colorability; see symmetry/symmetry.h). Every vertex gets its
// own block of indexing Booleans; all vertices share one DomainEncoding
// template since all domains have size K.
//
// Two entry points share one emission loop:
//   * EncodeColoringToSink streams clauses into any sat::ClauseSink — the
//     default solve path pairs it with a SolverSink so the formula never
//     materializes as a Cnf.
//   * EncodeColoring materializes a Cnf via CnfCollectorSink — the
//     back-compat path whose output (clause order, literal order, Table 1
//     counts) is identical to the historical monolithic encoder.
#pragma once

#include <cstdint>
#include <vector>

#include "encode/hierarchical.h"
#include "encode/net_group.h"
#include "graph/graph.h"
#include "sat/cnf.h"
#include "sat/clause_sink.h"

namespace satfr::encode {

struct ColoringCnfStats {
  std::size_t structural_clauses = 0;
  std::size_t conflict_clauses = 0;
  std::size_t symmetry_clauses = 0;

  // Inline-simplification effects (populated only when the emission went
  // through a SimplifyingSink; zero otherwise). The three categories above
  // always count clauses *as emitted by the encoder* — pre-simplification —
  // so Table 1 numbers are invariant under sink composition.
  std::size_t simplify_dropped_clauses = 0;
  std::size_t simplify_eliminated_literals = 0;
  std::size_t simplify_fixed_units = 0;

  /// Total clauses the encoder emitted (pre-simplification).
  std::size_t TotalEmitted() const {
    return structural_clauses + conflict_clauses + symmetry_clauses;
  }
};

/// Everything needed to interpret the encoded formula's variables — the
/// encoding result minus the clause storage. This is what streaming
/// consumers hold on to: the clauses themselves live wherever the sink put
/// them (solver arena, disk, nowhere).
struct ColoringLayout {
  int num_colors = 0;
  /// Shared per-vertex encoding template.
  DomainEncoding domain;
  /// First CNF variable of each vertex's indexing block.
  std::vector<int> vertex_offset;
  /// Total CNF variables (num_vertices * domain.num_vars).
  int num_vars = 0;
  ColoringCnfStats stats;
};

/// The materialized form: layout plus the collected Cnf.
struct EncodedColoring : ColoringLayout {
  sat::Cnf cnf;
};

/// Streams the K-coloring of `g` compiled with `spec` into `sink` and
/// returns the variable layout. Emission order (per-vertex structural, then
/// per-edge conflict, then symmetry restrictions) and literal order within
/// each clause match EncodeColoring exactly.
///
/// `symmetry_sequence` (possibly empty) lists vertices v_1..v_m (m <= K-1);
/// the i-th (1-based) is restricted to colors < i by negated-cube clauses.
ColoringLayout EncodeColoringToSink(
    const graph::Graph& g, int num_colors, const EncodingSpec& spec,
    const std::vector<graph::VertexId>& symmetry_sequence,
    sat::ClauseSink& sink);

/// Compiles the K-coloring of `g` to a materialized CNF with `spec`
/// (EncodeColoringToSink through a CnfCollectorSink).
EncodedColoring EncodeColoring(
    const graph::Graph& g, int num_colors, const EncodingSpec& spec,
    const std::vector<graph::VertexId>& symmetry_sequence = {});

/// Computes the variable layout of EncodeColoringToSink without emitting
/// anything: the shared domain template and per-vertex offsets. The
/// streaming entry points derive their layouts from this; callers that
/// interleave other variables with the emission (the guard ladder, net
/// groups) use it to fix the base numbering up front.
ColoringLayout MakeColoringLayout(const graph::Graph& g, int num_colors,
                                  const EncodingSpec& spec);

/// Emits one net's clause group into `sink`: BeginGroup(net), the vertex's
/// structural clauses, its symmetry restriction (if `symmetry_position` >
/// 0: the net is the symmetry sequence's `symmetry_position`-th vertex,
/// 1-based, so colors >= symmetry_position are forbidden), and one conflict
/// clause per owned edge per color — then EndGroup. Returns the group's
/// activation variable.
///
/// `owned_partners` are the *other* endpoints of the conflict edges this
/// net owns; every conflict edge must be owned by exactly one endpoint
/// across the whole emission or conflicts would be emitted twice (harmless)
/// or zero times (unsound). `partner_guards` is parallel to
/// `owned_partners`: the i-th guard (typically the negation of the
/// partner's own activation literal) is appended to every conflict clause
/// of that edge, so the edge dies when EITHER endpoint's group is retired —
/// a rip-up never needs to touch the surviving partner's clauses.
sat::Var EmitNetGroup(const ColoringLayout& layout, graph::VertexId net,
                      int symmetry_position,
                      const std::vector<graph::VertexId>& owned_partners,
                      const std::vector<sat::Lit>& partner_guards,
                      NetGroupedSink& sink, ColoringCnfStats* stats);

/// Streams the K-coloring of `g` grouped by net: every vertex's clauses —
/// structural, symmetry restriction, and the conflict clauses of the edges
/// it owns (owner = the larger endpoint id) — go into one NetGroupedSink
/// group guarded by that net's activation literal; conflict clauses
/// additionally carry the partner's guard (they die when either endpoint is
/// deactivated). The conjunction of all groups under their assumed
/// activation literals is equisatisfiable with EncodeColoringToSink's
/// output; total clause count matches ExpectedColoringClauses exactly
/// (grouping adds literals per clause, not clauses).
ColoringLayout EncodeColoringGrouped(
    const graph::Graph& g, int num_colors, const EncodingSpec& spec,
    const std::vector<graph::VertexId>& symmetry_sequence,
    NetGroupedSink& sink);

/// Exact number of clauses EncodeColoringToSink will emit for this
/// instance/domain/sequence combination — used for ReserveClauses up front.
std::uint64_t ExpectedColoringClauses(const graph::Graph& g,
                                      const DomainEncoding& domain,
                                      int num_colors,
                                      std::size_t symmetry_sequence_size);

/// Fingerprint of the CSP-variable -> SAT-variable numbering produced by
/// EncodeColoring: covers the color count, the per-vertex indexing-block
/// width, every value cube, and the symmetry-breaking sequence. Two encoded
/// instances with equal keys assign identical meaning to every SAT variable
/// AND impose identical symmetry restrictions, so learnt clauses derived
/// from one formula are satisfiability-preserving additions to the other
/// (used by the portfolio's clause exchange; see sat/clause_exchange.h).
/// Different symmetry sequences MUST yield different keys: clauses learnt
/// under one symmetry restriction are not implied consequences under
/// another, and mixing them can turn a colorable instance UNSAT.
std::uint64_t NumberingKey(
    const DomainEncoding& domain, int num_colors,
    const std::vector<graph::VertexId>& symmetry_sequence);

/// Extracts the color of every vertex from a SAT model of the encoded
/// formula. Works for both the materialized (EncodedColoring) and streamed
/// (ColoringLayout) paths — decoding needs only the layout. Entries are in
/// [0, K); -1 signals a malformed model (never for models produced by a
/// sound solver on a sound encoding).
std::vector<int> DecodeColoring(const ColoringLayout& layout,
                                const std::vector<bool>& model);

}  // namespace satfr::encode
