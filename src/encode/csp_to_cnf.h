// Graph-coloring -> CNF compilation (the paper's second translation tool).
//
// Given a conflict graph, a color count K, an encoding, and an optional
// symmetry-breaking vertex sequence, produces one monolithic CNF that is
// satisfiable iff the graph is K-colorable under the added symmetry
// restrictions (which preserve K-colorability; see symmetry/symmetry.h).
// Every vertex gets its own block of indexing Booleans; all vertices share
// one DomainEncoding template since all domains have size K.
#pragma once

#include <vector>

#include "encode/hierarchical.h"
#include "graph/graph.h"
#include "sat/cnf.h"

namespace satfr::encode {

struct ColoringCnfStats {
  std::size_t structural_clauses = 0;
  std::size_t conflict_clauses = 0;
  std::size_t symmetry_clauses = 0;
};

struct EncodedColoring {
  sat::Cnf cnf;
  int num_colors = 0;
  /// Shared per-vertex encoding template.
  DomainEncoding domain;
  /// First CNF variable of each vertex's indexing block.
  std::vector<int> vertex_offset;
  ColoringCnfStats stats;
};

/// Compiles the K-coloring of `g` to CNF with `spec`.
///
/// `symmetry_sequence` (possibly empty) lists vertices v_1..v_m (m <= K-1);
/// the i-th (1-based) is restricted to colors < i by negated-cube clauses.
EncodedColoring EncodeColoring(
    const graph::Graph& g, int num_colors, const EncodingSpec& spec,
    const std::vector<graph::VertexId>& symmetry_sequence = {});

/// Fingerprint of the CSP-variable -> SAT-variable numbering produced by
/// EncodeColoring: covers the color count, the per-vertex indexing-block
/// width, every value cube, and the symmetry-breaking sequence. Two encoded
/// instances with equal keys assign identical meaning to every SAT variable
/// AND impose identical symmetry restrictions, so learnt clauses derived
/// from one formula are satisfiability-preserving additions to the other
/// (used by the portfolio's clause exchange; see sat/clause_exchange.h).
/// Different symmetry sequences MUST yield different keys: clauses learnt
/// under one symmetry restriction are not implied consequences under
/// another, and mixing them can turn a colorable instance UNSAT.
std::uint64_t NumberingKey(
    const DomainEncoding& domain, int num_colors,
    const std::vector<graph::VertexId>& symmetry_sequence);

/// Extracts the color of every vertex from a SAT model of `encoded.cnf`.
/// Entries are in [0, K); -1 signals a malformed model (never for models
/// produced by a sound solver on a sound encoding).
std::vector<int> DecodeColoring(const EncodedColoring& encoded,
                                const std::vector<bool>& model);

}  // namespace satfr::encode
