#include "encode/ite_tree.h"

#include <algorithm>
#include <cassert>

namespace satfr::encode {
namespace {

std::unique_ptr<IteTreeNode> Leaf(int value) {
  auto node = std::make_unique<IteTreeNode>();
  node->leaf_value = value;
  return node;
}

std::unique_ptr<IteTreeNode> LinearRange(int lo, int hi) {
  if (lo == hi) return Leaf(lo);
  auto node = std::make_unique<IteTreeNode>();
  node->split_var = lo;  // chain position i is steered by variable i
  node->then_branch = Leaf(lo);
  node->else_branch = LinearRange(lo + 1, hi);
  return node;
}

std::unique_ptr<IteTreeNode> BalancedRange(int lo, int hi, int depth) {
  const int count = hi - lo + 1;
  if (count == 1) return Leaf(lo);
  auto node = std::make_unique<IteTreeNode>();
  node->split_var = depth;  // all nodes at one depth share a variable
  const int then_count = (count + 1) / 2;
  node->then_branch = BalancedRange(lo, lo + then_count - 1, depth + 1);
  node->else_branch = BalancedRange(lo + then_count, hi, depth + 1);
  return node;
}

void CollectCubes(const IteTreeNode& node, Cube& path,
                  std::vector<Cube>& out) {
  if (node.IsLeaf()) {
    out[static_cast<std::size_t>(node.leaf_value)] = path;
    return;
  }
  path.push_back(sat::Lit::Pos(node.split_var));
  CollectCubes(*node.then_branch, path, out);
  path.back() = sat::Lit::Neg(node.split_var);
  CollectCubes(*node.else_branch, path, out);
  path.pop_back();
}

void Render(const IteTreeNode& node, const std::string& prefix,
            const std::string& branch_label, std::string& out) {
  out += prefix;
  out += branch_label;
  if (node.IsLeaf()) {
    out += "v" + std::to_string(node.leaf_value) + "\n";
    return;
  }
  out += "ITE(i" + std::to_string(node.split_var) + ")\n";
  const std::string child_prefix =
      prefix + (branch_label.empty() ? "" : "|   ");
  Render(*node.then_branch, child_prefix, "+-1-", out);
  Render(*node.else_branch, child_prefix, "+-0-", out);
}

}  // namespace

std::unique_ptr<IteTreeNode> BuildLinearIteTree(int count) {
  assert(count >= 1);
  return LinearRange(0, count - 1);
}

std::unique_ptr<IteTreeNode> BuildBalancedIteTree(int count) {
  assert(count >= 1);
  return BalancedRange(0, count - 1, 0);
}

std::vector<Cube> TreeCubes(const IteTreeNode& root, int count) {
  std::vector<Cube> cubes(static_cast<std::size_t>(count));
  Cube path;
  path.reserve(static_cast<std::size_t>(TreeMaxDepth(root)));
  CollectCubes(root, path, cubes);
  return cubes;
}

int TreeMaxDepth(const IteTreeNode& root) {
  if (root.IsLeaf()) return 0;
  return 1 + std::max(TreeMaxDepth(*root.then_branch),
                      TreeMaxDepth(*root.else_branch));
}

int TreeMinDepth(const IteTreeNode& root) {
  if (root.IsLeaf()) return 0;
  return 1 + std::min(TreeMinDepth(*root.then_branch),
                      TreeMinDepth(*root.else_branch));
}

int TreeNumVars(const IteTreeNode& root) {
  if (root.IsLeaf()) return 0;
  return std::max({static_cast<int>(root.split_var) + 1,
                   TreeNumVars(*root.then_branch),
                   TreeNumVars(*root.else_branch)});
}

std::string RenderIteTree(const IteTreeNode& root) {
  std::string out;
  Render(root, "", "", out);
  return out;
}

LevelEncoding IteLinearEncoder::Encode(int count) const {
  assert(count >= 1);
  LevelEncoding enc;
  const auto tree = BuildLinearIteTree(count);
  enc.num_vars = count - 1;
  enc.cubes = TreeCubes(*tree, count);
  enc.exactly_one = true;
  return enc;
}

std::vector<Cube> IteLinearEncoder::ReducedCubes(int count, int reduced) const {
  assert(reduced >= 1 && reduced <= count);
  const auto tree = BuildLinearIteTree(reduced);
  return TreeCubes(*tree, reduced);
}

LevelEncoding IteLogEncoder::Encode(int count) const {
  assert(count >= 1);
  LevelEncoding enc;
  const auto tree = BuildBalancedIteTree(count);
  enc.num_vars = TreeNumVars(*tree);
  enc.cubes = TreeCubes(*tree, count);
  enc.exactly_one = true;
  return enc;
}

std::vector<Cube> IteLogEncoder::ReducedCubes(int count, int reduced) const {
  assert(reduced >= 1 && reduced <= count);
  const auto tree = BuildBalancedIteTree(reduced);
  return TreeCubes(*tree, reduced);
}

}  // namespace satfr::encode
