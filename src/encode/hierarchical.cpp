#include "encode/hierarchical.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace satfr::encode {
namespace {

// Adapts a (possibly multi-level) EncodingSpec tail so it can serve as the
// bottom "level" of an enclosing hierarchy. Reduced subdomains fall back to
// prefix-cubes + restriction clauses, which is sound for any inner encoding.
class SpecLevelEncoder final : public LevelEncoder {
 public:
  explicit SpecLevelEncoder(std::vector<LevelSpec> levels)
      : levels_(std::move(levels)) {}

  LevelKind kind() const override { return levels_.front().kind; }
  std::string Name() const override { return "nested"; }
  int CountForVarBudget(int) const override {
    throw std::logic_error("nested encodings cannot head a hierarchy");
  }

  LevelEncoding Encode(int count) const override {
    EncodingSpec spec;
    spec.name = "nested";
    spec.levels = levels_;
    const DomainEncoding domain = EncodeDomain(spec, count);
    LevelEncoding enc;
    enc.num_vars = domain.num_vars;
    enc.cubes = domain.value_cubes;
    enc.structural = domain.structural;
    enc.exactly_one = domain.exactly_one;
    return enc;
  }

 private:
  std::vector<LevelSpec> levels_;
};

DomainEncoding FromLevelEncoding(LevelEncoding enc, int domain_size) {
  DomainEncoding domain;
  domain.domain_size = domain_size;
  domain.num_vars = enc.num_vars;
  domain.value_cubes = std::move(enc.cubes);
  domain.structural = std::move(enc.structural);
  domain.exactly_one = enc.exactly_one;
  return domain;
}

}  // namespace

DomainEncoding EncodeDomain(const EncodingSpec& spec, int domain_size) {
  assert(domain_size >= 1);
  assert(!spec.levels.empty());

  if (spec.levels.size() == 1) {
    assert(spec.levels[0].var_budget < 0 &&
           "a single-level encoding is sized to the domain");
    const auto encoder = MakeLevelEncoder(spec.levels[0].kind);
    return FromLevelEncoding(encoder->Encode(domain_size), domain_size);
  }

  // Top level: size fixed by its variable budget.
  const LevelSpec& top_spec = spec.levels[0];
  assert(top_spec.var_budget > 0 &&
         "hierarchy top levels need an explicit variable budget");
  const auto top = MakeLevelEncoder(top_spec.kind);
  const int top_count = top->CountForVarBudget(top_spec.var_budget);
  const LevelEncoding top_enc = top->Encode(top_count);
  assert(top_enc.num_vars == top_spec.var_budget);

  // Bottom: the remaining levels. Values are distributed over the
  // subdomains as evenly as possible (the first `domain_size % top_count`
  // subdomains get one extra value), matching the paper's Fig. 1.d where 13
  // values over ITE-log-2's 4 subdomains split 4+3+3+3. The bottom encoding
  // is sized to the largest subdomain, i.e. ceil(k / count) — the variable
  // count §4 states for hierarchical muldirect.
  const int sub_size = (domain_size + top_count - 1) / top_count;
  const int base_size = domain_size / top_count;
  const int num_bigger = domain_size % top_count;
  std::unique_ptr<LevelEncoder> bottom;
  if (spec.levels.size() == 2) {
    assert(spec.levels[1].var_budget < 0 &&
           "the last level is sized to its subdomain");
    bottom = MakeLevelEncoder(spec.levels[1].kind);
  } else {
    bottom = std::make_unique<SpecLevelEncoder>(std::vector<LevelSpec>(
        spec.levels.begin() + 1, spec.levels.end()));
  }
  const LevelEncoding bottom_enc = bottom->Encode(sub_size);
  const int bottom_offset = top_enc.num_vars;

  DomainEncoding domain;
  domain.domain_size = domain_size;
  domain.num_vars = top_enc.num_vars + bottom_enc.num_vars;
  domain.exactly_one = top_enc.exactly_one && bottom_enc.exactly_one;
  domain.value_cubes.resize(static_cast<std::size_t>(domain_size));
  domain.structural = top_enc.structural;
  domain.structural.reserve(top_enc.structural.size() +
                            bottom_enc.structural.size());
  for (const sat::Clause& clause : bottom_enc.structural) {
    domain.structural.push_back(ShiftClause(clause, bottom_offset));
  }

  int lo = 0;
  for (int s = 0; s < top_count; ++s) {
    const int size = base_size + (s < num_bigger ? 1 : 0);
    const Cube& top_cube = top_enc.cubes[static_cast<std::size_t>(s)];
    if (size == sub_size) {
      // Full subdomain: pair the top cube with each bottom cube.
      for (int j = 0; j < size; ++j) {
        domain.value_cubes[static_cast<std::size_t>(lo + j)] = ConcatCubes(
            top_cube, bottom_enc.cubes[static_cast<std::size_t>(j)],
            bottom_offset);
      }
    } else if (size > 0) {
      // Smaller trailing subdomain (§4): smaller ITE tree, or prefix cubes
      // plus restriction clauses forbidding the non-existent values.
      const std::vector<Cube> reduced = bottom->ReducedCubes(sub_size, size);
      for (int j = 0; j < size; ++j) {
        domain.value_cubes[static_cast<std::size_t>(lo + j)] = ConcatCubes(
            top_cube, reduced[static_cast<std::size_t>(j)], bottom_offset);
      }
      if (bottom->ReducedNeedsRestriction()) {
        for (int j = size; j < sub_size; ++j) {
          domain.structural.push_back(ConflictClause(
              top_cube, 0, bottom_enc.cubes[static_cast<std::size_t>(j)],
              bottom_offset));
        }
      }
    } else {
      // Empty subdomain (domain smaller than the top fan-out): forbid it.
      domain.structural.push_back(NegateCube(top_cube, 0));
    }
    lo += size;
  }
  return domain;
}

int DecodeValue(const DomainEncoding& domain, int var_offset,
                const std::vector<bool>& model) {
  for (int value = 0; value < domain.domain_size; ++value) {
    if (CubeSatisfied(domain.value_cubes[static_cast<std::size_t>(value)],
                      var_offset, model)) {
      return value;
    }
  }
  return -1;
}

}  // namespace satfr::encode
