#include "encode/csp_to_cnf.h"

#include <cassert>

namespace satfr::encode {

std::uint64_t ExpectedColoringClauses(const graph::Graph& g,
                                      const DomainEncoding& domain,
                                      int num_colors,
                                      std::size_t symmetry_sequence_size) {
  std::uint64_t total =
      static_cast<std::uint64_t>(g.num_vertices()) * domain.structural.size();
  total += static_cast<std::uint64_t>(g.num_edges()) *
           static_cast<std::uint64_t>(num_colors);
  for (std::size_t j = 0; j < symmetry_sequence_size; ++j) {
    total += static_cast<std::uint64_t>(num_colors) - 1 - j;
  }
  return total;
}

ColoringLayout MakeColoringLayout(const graph::Graph& g, int num_colors,
                                  const EncodingSpec& spec) {
  assert(num_colors >= 1);
  ColoringLayout out;
  out.num_colors = num_colors;
  out.domain = EncodeDomain(spec, num_colors);

  const graph::VertexId n = g.num_vertices();
  out.vertex_offset.resize(static_cast<std::size_t>(n));
  for (graph::VertexId v = 0; v < n; ++v) {
    out.vertex_offset[static_cast<std::size_t>(v)] =
        static_cast<int>(v) * out.domain.num_vars;
  }
  out.num_vars = static_cast<int>(n) * out.domain.num_vars;
  return out;
}

ColoringLayout EncodeColoringToSink(
    const graph::Graph& g, int num_colors, const EncodingSpec& spec,
    const std::vector<graph::VertexId>& symmetry_sequence,
    sat::ClauseSink& sink) {
  ColoringLayout out = MakeColoringLayout(g, num_colors, spec);
  const graph::VertexId n = g.num_vertices();
  sink.EnsureVars(out.num_vars);
  sink.ReserveClauses(ExpectedColoringClauses(g, out.domain, num_colors,
                                              symmetry_sequence.size()));

  sat::Clause scratch;

  // Per-vertex structural clauses.
  for (graph::VertexId v = 0; v < n; ++v) {
    const int offset = out.vertex_offset[static_cast<std::size_t>(v)];
    for (const sat::Clause& clause : out.domain.structural) {
      EmitShiftedClause(clause, offset, sink, scratch);
      ++out.stats.structural_clauses;
    }
  }

  // Conflict clauses: one per edge per shared domain value (§2).
  for (const auto& [u, v] : g.Edges()) {
    const int offset_u = out.vertex_offset[static_cast<std::size_t>(u)];
    const int offset_v = out.vertex_offset[static_cast<std::size_t>(v)];
    for (int d = 0; d < num_colors; ++d) {
      const Cube& cube = out.domain.value_cubes[static_cast<std::size_t>(d)];
      EmitConflictClause(cube, offset_u, cube, offset_v, sink, scratch);
      ++out.stats.conflict_clauses;
    }
  }

  // Symmetry restrictions: the i-th sequence vertex (1-based) may only use
  // colors < i, enforced by forbidding every higher color's cube.
  assert(static_cast<int>(symmetry_sequence.size()) <= num_colors - 1 ||
         symmetry_sequence.empty());
  for (std::size_t j = 0; j < symmetry_sequence.size(); ++j) {
    const graph::VertexId v = symmetry_sequence[j];
    const int offset = out.vertex_offset[static_cast<std::size_t>(v)];
    for (int d = static_cast<int>(j) + 1; d < num_colors; ++d) {
      EmitNegatedCube(out.domain.value_cubes[static_cast<std::size_t>(d)],
                      offset, sink, scratch);
      ++out.stats.symmetry_clauses;
    }
  }
  return out;
}

sat::Var EmitNetGroup(const ColoringLayout& layout, graph::VertexId net,
                      int symmetry_position,
                      const std::vector<graph::VertexId>& owned_partners,
                      const std::vector<sat::Lit>& partner_guards,
                      NetGroupedSink& sink, ColoringCnfStats* stats) {
  assert(net >= 0 &&
         static_cast<std::size_t>(net) < layout.vertex_offset.size());
  assert(partner_guards.size() == owned_partners.size());
  sat::Clause scratch;
  const sat::Var activation = sink.BeginGroup(net);
  const int offset = layout.vertex_offset[static_cast<std::size_t>(net)];
  for (const sat::Clause& clause : layout.domain.structural) {
    EmitShiftedClause(clause, offset, sink, scratch);
    if (stats != nullptr) ++stats->structural_clauses;
  }
  // The restriction "sequence vertex j (1-based) uses colors < j" is sound
  // for any edge set — renaming the sequence vertices' color classes in
  // first-appearance order satisfies it for every proper coloring — so a
  // re-emitted group keeps its original position even after the graph
  // around it changed.
  if (symmetry_position > 0) {
    for (int d = symmetry_position; d < layout.num_colors; ++d) {
      EmitNegatedCube(layout.domain.value_cubes[static_cast<std::size_t>(d)],
                      offset, sink, scratch);
      if (stats != nullptr) ++stats->symmetry_clauses;
    }
  }
  for (std::size_t i = 0; i < owned_partners.size(); ++i) {
    const graph::VertexId u = owned_partners[i];
    const int offset_u = layout.vertex_offset[static_cast<std::size_t>(u)];
    for (int d = 0; d < layout.num_colors; ++d) {
      const Cube& cube = layout.domain.value_cubes[static_cast<std::size_t>(d)];
      EmitGuardedConflictClause(cube, offset_u, cube, offset,
                                partner_guards[i], sink, scratch);
      if (stats != nullptr) ++stats->conflict_clauses;
    }
  }
  sink.EndGroup();
  return activation;
}

ColoringLayout EncodeColoringGrouped(
    const graph::Graph& g, int num_colors, const EncodingSpec& spec,
    const std::vector<graph::VertexId>& symmetry_sequence,
    NetGroupedSink& sink) {
  ColoringLayout out = MakeColoringLayout(g, num_colors, spec);
  sink.EnsureVars(out.num_vars);
  sink.ReserveClauses(ExpectedColoringClauses(g, out.domain, num_colors,
                                              symmetry_sequence.size()));

  const graph::VertexId n = g.num_vertices();
  std::vector<int> position(static_cast<std::size_t>(n), 0);
  for (std::size_t j = 0; j < symmetry_sequence.size(); ++j) {
    position[static_cast<std::size_t>(symmetry_sequence[j])] =
        static_cast<int>(j) + 1;
  }
  // Owner = larger endpoint, so every partner's group (and therefore its
  // activation literal, used as the cross guard) exists before the owner's
  // conflict clauses reference it.
  std::vector<sat::Var> activation(static_cast<std::size_t>(n), -1);
  std::vector<graph::VertexId> owned;
  std::vector<sat::Lit> guards;
  for (graph::VertexId v = 0; v < n; ++v) {
    owned.clear();
    guards.clear();
    for (const graph::VertexId u : g.Neighbors(v)) {
      if (u < v) {
        owned.push_back(u);
        guards.push_back(
            sat::Lit::Neg(activation[static_cast<std::size_t>(u)]));
      }
    }
    activation[static_cast<std::size_t>(v)] =
        EmitNetGroup(out, v, position[static_cast<std::size_t>(v)], owned,
                     guards, sink, &out.stats);
  }
  return out;
}

EncodedColoring EncodeColoring(
    const graph::Graph& g, int num_colors, const EncodingSpec& spec,
    const std::vector<graph::VertexId>& symmetry_sequence) {
  EncodedColoring out;
  sat::CnfCollectorSink sink(out.cnf);
  static_cast<ColoringLayout&>(out) =
      EncodeColoringToSink(g, num_colors, spec, symmetry_sequence, sink);
  sink.Finish();
  return out;
}

std::uint64_t NumberingKey(
    const DomainEncoding& domain, int num_colors,
    const std::vector<graph::VertexId>& symmetry_sequence) {
  // FNV-1a over every ingredient that shapes variable meaning. Separators
  // between sections keep e.g. a cube boundary shift from colliding.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t value) {
    h ^= value;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(num_colors));
  mix(static_cast<std::uint64_t>(domain.num_vars));
  for (const Cube& cube : domain.value_cubes) {
    mix(0xC0DEull);  // cube separator
    for (const sat::Lit l : cube) {
      mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.code())));
    }
  }
  mix(0x5E9ull);  // sequence separator
  for (const graph::VertexId v : symmetry_sequence) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  return h;
}

std::vector<int> DecodeColoring(const ColoringLayout& layout,
                                const std::vector<bool>& model) {
  std::vector<int> colors(layout.vertex_offset.size(), -1);
  for (std::size_t v = 0; v < layout.vertex_offset.size(); ++v) {
    colors[v] = DecodeValue(layout.domain, layout.vertex_offset[v], model);
  }
  return colors;
}

}  // namespace satfr::encode
