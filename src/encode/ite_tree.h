// ITE-tree encodings (§3 of the paper).
//
// A CSP variable is represented by a tree of ITE (if-then-else) operators
// whose leaves are the domain values; the Booleans steering the ITEs are the
// variable's indexing Booleans. The tree structure guarantees that every
// assignment selects exactly one leaf, so no at-least-one / at-most-one
// clauses are needed — only conflict clauses. Two shapes are first-class:
//
//   * ITE-linear — a chain: ITE(i0, v0, ITE(i1, v1, ...)); k-1 variables,
//     one per chain position (Fig. 1.a).
//   * ITE-log — a balanced tree where all ITEs at the same depth share one
//     variable, giving ceil(log2 k) variables and path lengths of
//     ceil(log2 k) or ceil(log2 k) - 1 (Fig. 1.b).
//
// The explicit IteTreeNode structure is retained (rather than emitting cubes
// directly) so that Figure 1 can be regenerated and so tests can check the
// structural claims (path lengths, variable reuse) directly on the tree.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "encode/level_encoder.h"

namespace satfr::encode {

struct IteTreeNode {
  /// Domain value at a leaf; -1 for internal nodes.
  int leaf_value = -1;
  /// Indexing Boolean steering this ITE (internal nodes only).
  sat::Var split_var = sat::kUndefVar;
  std::unique_ptr<IteTreeNode> then_branch;  // taken when split_var is true
  std::unique_ptr<IteTreeNode> else_branch;

  bool IsLeaf() const { return leaf_value >= 0; }
};

/// Chain of ITEs over values 0..count-1; variable i steers chain position i.
std::unique_ptr<IteTreeNode> BuildLinearIteTree(int count);

/// Balanced tree over values 0..count-1 via ceil/floor halving; the variable
/// at depth d is d (shared across all nodes at that depth).
std::unique_ptr<IteTreeNode> BuildBalancedIteTree(int count);

/// Per-value selection cubes of a tree, indexed by leaf value.
std::vector<Cube> TreeCubes(const IteTreeNode& root, int count);

/// Longest and shortest root-to-leaf path length (number of ITEs).
int TreeMaxDepth(const IteTreeNode& root);
int TreeMinDepth(const IteTreeNode& root);

/// Largest split variable in the tree plus one (= indexing Booleans used).
int TreeNumVars(const IteTreeNode& root);

/// Multi-line ASCII rendering (for the Figure 1 bench and debugging).
/// Values print as "v<i>", variables as "i<j>".
std::string RenderIteTree(const IteTreeNode& root);

class IteLinearEncoder final : public LevelEncoder {
 public:
  LevelKind kind() const override { return LevelKind::kIteLinear; }
  std::string Name() const override { return "ITE-linear"; }
  int CountForVarBudget(int var_budget) const override {
    return var_budget + 1;
  }
  LevelEncoding Encode(int count) const override;
  /// A shorter chain over the first `reduced` values, reusing the leading
  /// chain variables; exact-one by construction, no restrictions needed.
  std::vector<Cube> ReducedCubes(int count, int reduced) const override;
  bool ReducedNeedsRestriction() const override { return false; }
};

class IteLogEncoder final : public LevelEncoder {
 public:
  LevelKind kind() const override { return LevelKind::kIteLog; }
  std::string Name() const override { return "ITE-log"; }
  int CountForVarBudget(int var_budget) const override {
    return 1 << var_budget;
  }
  LevelEncoding Encode(int count) const override;
  /// A smaller balanced tree over the first `reduced` values, reusing the
  /// shared per-depth variables; no restrictions needed.
  std::vector<Cube> ReducedCubes(int count, int reduced) const override;
  bool ReducedNeedsRestriction() const override { return false; }
};

}  // namespace satfr::encode
