// Parallel strategy portfolios (§6 of the paper).
//
// A strategy is (encoding, symmetry heuristic, solver preset). A portfolio
// runs several strategies on the same instance on different threads; the
// first to finish wins and the rest are cancelled through the solver's
// cooperative stop flag. The paper reports 1.84x / 2.30x additional speedup
// from 2- and 3-strategy portfolios over the best single strategy.
#pragma once

#include <string>
#include <vector>

#include "flow/detailed_router.h"
#include "sat/clause_exchange.h"

namespace satfr::portfolio {

struct Strategy {
  std::string encoding_name;
  symmetry::Heuristic heuristic = symmetry::Heuristic::kNone;
  sat::SolverOptions solver = sat::SolverOptions::SiegeLike();
  /// Run WalkSAT local search instead of CDCL. Incomplete: such a strategy
  /// can win SAT races but never returns UNSAT, so a portfolio aimed at
  /// unroutability proofs must also contain a CDCL member.
  bool use_walksat = false;
  /// Run cube-and-conquer (src/cube) with this many workers instead of a
  /// single CDCL search. Complete (exact SAT and UNSAT verdicts). A cube
  /// member shares clauses internally between its own workers but does not
  /// join the portfolio-level exchange: an exchange participant is one
  /// solver with one read cursor, and a pool is many solvers — the pool
  /// runs its own exchange instead.
  int cube_workers = 0;

  /// "encoding/heuristic" label for tables.
  std::string DisplayName() const;
};

/// The paper's 2-strategy portfolio: {ITE-linear-2+muldirect/s1,
/// muldirect-3+muldirect/s1}.
std::vector<Strategy> PaperPortfolio2();

/// The paper's 3-strategy portfolio: PaperPortfolio2 plus
/// ITE-linear-2+direct/s1.
std::vector<Strategy> PaperPortfolio3();

/// `n` copies of the paper's best single strategy
/// (ITE-linear-2+muldirect/s1) diversified by solver preset and seed.
/// Member 0 is the unmodified default. Because every member uses the same
/// encoding and symmetry heuristic, all of them share one variable
/// numbering — the configuration where clause sharing bites hardest.
std::vector<Strategy> DiversifiedPortfolio(int n);

struct PortfolioOptions {
  /// Exchange unit/low-LBD learnt clauses between CDCL strategies whose
  /// variable numberings are compatible (see encode::NumberingKey).
  bool share_clauses = false;
  /// Learnts with LBD <= this are exported (units always are).
  std::uint32_t share_max_lbd = 2;
  /// Bound on the exchange buffer (clauses); oldest entries are evicted.
  std::size_t exchange_capacity = sat::ClauseExchange::kDefaultCapacity;
  /// Telemetry label (trace spans / run-report records); empty is fine.
  std::string run_label;
};

struct PortfolioResult {
  /// Index of the winning strategy in the input vector; -1 if every
  /// strategy timed out.
  int winner = -1;
  /// The winner's result (status kUnknown when winner == -1).
  flow::DetailedRouteResult result;
  /// Wall-clock time until the first answer arrived.
  double wall_seconds = 0.0;
  /// Per-strategy status, for reporting.
  std::vector<sat::SolveResult> statuses;
  /// Per-strategy solver stats (export/import counters; empty entries for
  /// WalkSAT strategies).
  std::vector<sat::SolverStats> strategy_stats;
  /// Exchange traffic totals (all zero when sharing was disabled).
  sat::ClauseExchange::Totals exchange_totals;
};

/// Runs all strategies in parallel on the K-coloring of `conflict_graph`.
/// `timeout_seconds` <= 0 means unlimited.
PortfolioResult RunPortfolio(const graph::Graph& conflict_graph,
                             int num_tracks,
                             const std::vector<Strategy>& strategies,
                             double timeout_seconds = 0.0,
                             const PortfolioOptions& options = {});

}  // namespace satfr::portfolio
