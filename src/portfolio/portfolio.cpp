#include "portfolio/portfolio.h"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/stopwatch.h"
#include "cube/cube_solver.h"
#include "encode/csp_to_cnf.h"
#include "encode/hierarchical.h"
#include "obs/trace.h"
#include "sat/clause_sink.h"
#include "sat/walksat.h"

namespace satfr::portfolio {

std::string Strategy::DisplayName() const {
  std::string name = encoding_name;
  name += "/";
  name += symmetry::ToString(heuristic);
  if (use_walksat) name += " (walksat)";
  if (cube_workers > 0) {
    name += " (cube x" + std::to_string(cube_workers) + ")";
  }
  return name;
}

namespace {

// Runs one WalkSAT strategy on the encoded instance (SAT-or-give-up).
flow::DetailedRouteResult RunWalkSatStrategy(
    const graph::Graph& conflict_graph, int num_tracks,
    const Strategy& strategy, double timeout_seconds,
    const mc::Atomic<bool>* stop) {
  flow::DetailedRouteResult result;
  Stopwatch watch;
  const auto sequence = symmetry::SymmetrySequence(
      conflict_graph, num_tracks, strategy.heuristic);
  // WalkSAT flips against the clause list in place, so this is the one
  // strategy that still needs the formula materialized: collect the stream
  // into a Cnf explicitly.
  sat::Cnf cnf;
  sat::CnfCollectorSink collector(cnf);
  const encode::ColoringLayout layout = encode::EncodeColoringToSink(
      conflict_graph, num_tracks,
      encode::GetEncoding(strategy.encoding_name), sequence, collector);
  collector.Finish();
  result.conflict_vertices = conflict_graph.num_vertices();
  result.conflict_edges = conflict_graph.num_edges();
  result.cnf_vars = cnf.num_vars();
  result.cnf_clauses = cnf.num_clauses();
  result.encode_stats = layout.stats;
  result.encode_seconds = watch.Seconds();

  Stopwatch solve_watch;
  sat::WalkSat walksat(cnf);
  const Deadline deadline = timeout_seconds > 0.0
                                ? Deadline::After(timeout_seconds)
                                : Deadline::Infinite();
  result.status = walksat.Solve(deadline, stop);
  result.solve_seconds = solve_watch.Seconds();
  if (result.status == sat::SolveResult::kSat) {
    result.tracks = encode::DecodeColoring(layout, walksat.model());
  }
  return result;
}

// Runs one cube-and-conquer strategy (exact SAT/UNSAT via the cube pool).
flow::DetailedRouteResult RunCubeStrategy(const graph::Graph& conflict_graph,
                                          int num_tracks,
                                          const Strategy& strategy,
                                          double timeout_seconds,
                                          const mc::Atomic<bool>* stop,
                                          const std::string& run_label) {
  cube::CubeSolveOptions options;
  options.pool.num_workers = strategy.cube_workers;
  options.solver = strategy.solver;
  options.timeout_seconds = timeout_seconds;
  options.stop = stop;
  options.run_label = run_label;
  const cube::CubeSolveResult cube_result = cube::SolveColoringWithCubes(
      conflict_graph, num_tracks,
      encode::GetEncoding(strategy.encoding_name), strategy.heuristic,
      options);

  flow::DetailedRouteResult result;
  result.status = cube_result.status;
  result.tracks = cube_result.colors;
  result.conflict_vertices = conflict_graph.num_vertices();
  result.conflict_edges = conflict_graph.num_edges();
  result.solve_seconds = cube_result.wall_seconds;
  result.solver_stats = cube_result.solver_stats;
  result.streamed_encode = true;
  return result;
}

}  // namespace

std::vector<Strategy> PaperPortfolio2() {
  std::vector<Strategy> strategies(2);
  strategies[0].encoding_name = "ITE-linear-2+muldirect";
  strategies[0].heuristic = symmetry::Heuristic::kS1;
  strategies[1].encoding_name = "muldirect-3+muldirect";
  strategies[1].heuristic = symmetry::Heuristic::kS1;
  return strategies;
}

std::vector<Strategy> PaperPortfolio3() {
  std::vector<Strategy> strategies = PaperPortfolio2();
  Strategy third;
  third.encoding_name = "ITE-linear-2+direct";
  third.heuristic = symmetry::Heuristic::kS1;
  strategies.push_back(third);
  return strategies;
}

std::vector<Strategy> DiversifiedPortfolio(int n) {
  std::vector<Strategy> strategies(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Strategy& s = strategies[static_cast<std::size_t>(i)];
    s.encoding_name = "ITE-linear-2+muldirect";
    s.heuristic = symmetry::Heuristic::kS1;
    if (i == 0) continue;  // member 0: the unmodified paper-best strategy
    s.solver = (i % 2 == 1) ? sat::SolverOptions::MiniSatLike()
                            : sat::SolverOptions::SiegeLike();
    s.solver.seed = 91648253ull +
                    0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i);
    // Diversify inprocessing, not just search: members alternate between
    // eager vivification, vivification off, and sparse-but-deep passes, so
    // at least one member keeps raw search throughput while others invest
    // in simplification and feed the stronger clauses into the exchange.
    switch (i % 3) {
      case 1:
        s.solver.vivify = true;
        s.solver.vivify_interval = 4;
        break;
      case 2:
        s.solver.vivify = false;
        break;
      case 0:
        s.solver.vivify = true;
        s.solver.vivify_interval = 16;
        s.solver.vivify_propagation_budget = 1 << 16;
        break;
    }
  }
  return strategies;
}

PortfolioResult RunPortfolio(const graph::Graph& conflict_graph,
                             int num_tracks,
                             const std::vector<Strategy>& strategies,
                             double timeout_seconds,
                             const PortfolioOptions& options) {
  PortfolioResult out;
  out.statuses.assign(strategies.size(), sat::SolveResult::kUnknown);
  out.strategy_stats.assign(strategies.size(), sat::SolverStats{});
  if (strategies.empty()) return out;

  // With sharing on, register every CDCL strategy up front under its
  // numbering key (encoding + symmetry sequence), so compatibility is
  // settled before any thread starts. WalkSAT strategies learn nothing and
  // never join the exchange.
  sat::ClauseExchange exchange(options.exchange_capacity);
  std::vector<int> participants(strategies.size(), -1);
  if (options.share_clauses) {
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      // WalkSAT members learn nothing; cube members run their own internal
      // exchange (see Strategy::cube_workers).
      if (strategies[s].use_walksat || strategies[s].cube_workers > 0) {
        continue;
      }
      const auto sequence = symmetry::SymmetrySequence(
          conflict_graph, num_tracks, strategies[s].heuristic);
      const encode::DomainEncoding domain = encode::EncodeDomain(
          encode::GetEncoding(strategies[s].encoding_name), num_tracks);
      const std::uint64_t key =
          encode::NumberingKey(domain, num_tracks, sequence);
      // Unit-clause compatibility is kept as conservative as full
      // compatibility for now (same key both ways).
      participants[s] = exchange.Register(key, key);
    }
  }

  Stopwatch stopwatch;
  mc::Atomic<bool> stop{false};
  mc::Mutex winner_mutex;
  std::vector<std::thread> threads;
  threads.reserve(strategies.size());

  for (std::size_t s = 0; s < strategies.size(); ++s) {
    threads.emplace_back([&, s] {
      // Each strategy traces onto its own (OS-thread) track, named after
      // the strategy so the Perfetto timeline reads "which member won".
      obs::TraceWriter* const trace = obs::GlobalTrace();
      if (trace != nullptr) {
        trace->SetThreadName(obs::TraceWriter::CurrentTid(),
                             "strategy " + std::to_string(s) + ": " +
                                 strategies[s].DisplayName());
      }
      obs::TraceSpan strategy_span(trace, strategies[s].DisplayName(),
                                   "portfolio");
      flow::DetailedRouteResult result;
      if (strategies[s].use_walksat) {
        result = RunWalkSatStrategy(conflict_graph, num_tracks,
                                    strategies[s], timeout_seconds, &stop);
      } else if (strategies[s].cube_workers > 0) {
        result = RunCubeStrategy(conflict_graph, num_tracks, strategies[s],
                                 timeout_seconds, &stop, options.run_label);
      } else {
        flow::DetailedRouteOptions route_options;
        route_options.encoding =
            encode::GetEncoding(strategies[s].encoding_name);
        route_options.heuristic = strategies[s].heuristic;
        route_options.solver = strategies[s].solver;
        route_options.solver.share_max_lbd = options.share_max_lbd;
        route_options.timeout_seconds = timeout_seconds;
        route_options.stop = &stop;
        route_options.run_label = options.run_label;
        if (participants[s] >= 0) {
          route_options.exchange = &exchange;
          route_options.exchange_participant = participants[s];
        }
        result = flow::RouteDetailedOnGraph(conflict_graph, num_tracks,
                                            route_options);
      }
      strategy_span.AddArg("verdict",
                           obs::JsonValue(sat::ToString(result.status)));
      strategy_span.End();
      mc::MutexLock lock(winner_mutex);
      out.statuses[s] = result.status;
      out.strategy_stats[s] = result.solver_stats;
      if (result.status != sat::SolveResult::kUnknown && out.winner == -1) {
        out.winner = static_cast<int>(s);
        out.result = std::move(result);
        out.wall_seconds = stopwatch.Seconds();
        stop.store(true);  // cancel the other strategies
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (out.winner == -1) out.wall_seconds = stopwatch.Seconds();
  out.exchange_totals = exchange.totals();
  return out;
}

}  // namespace satfr::portfolio
