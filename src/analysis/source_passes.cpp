#include "analysis/source_passes.h"

#include <array>
#include <memory>
#include <string>
#include <string_view>

#include "analysis/pass.h"

namespace satfr::analysis {

namespace {

// A file is in the model-checked scope when its path lands in one of the
// lock-free directories. Paths are matched as substrings so absolute and
// repo-relative invocations both work; src/mc itself is exempt (the shim
// is the one place allowed to name std::atomic).
bool InModelCheckedScope(const std::string& path) {
  if (path.find("src/mc/") != std::string::npos) return false;
  return path.find("src/cube/") != std::string::npos ||
         path.find("src/obs/") != std::string::npos ||
         path.find("src/sat/clause_exchange") != std::string::npos;
}

// Raw primitives the shim replaces. `std::memory_order*` is deliberately
// absent: the shim's API takes the standard orders, so naming them is how
// call sites document themselves.
constexpr std::array<std::string_view, 8> kForbidden = {
    "std::atomic<",          "std::atomic_flag",
    "std::atomic_thread_fence", "std::atomic_signal_fence",
    "std::mutex",            "std::lock_guard",
    "std::unique_lock",      "std::scoped_lock",
};

std::string_view ShimReplacement(std::string_view token) {
  if (token.substr(0, 11) == "std::atomic") {
    return token.find("fence") != std::string_view::npos ? "mc::Fence"
                                                         : "mc::Atomic";
  }
  if (token == "std::mutex") return "mc::Mutex";
  return "mc::MutexLock";
}

// Scans the model-checked directories for concurrency primitives that
// bypass the mc:: shim. Comment text is ignored (the memory_order
// justification comments legitimately discuss the raw primitives).
class McCoveragePass : public AnalysisPass {
 public:
  std::string_view name() const override { return "mc-coverage"; }
  std::string_view description() const override {
    return "lock-free layers route atomics/mutexes through the mc:: shim";
  }

  bool Applicable(const AnalysisInput& input) const override {
    return input.sources != nullptr;
  }

  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    for (const SourceFile& file : *input.sources) {
      if (!InModelCheckedScope(file.path)) continue;
      ScanFile(file, sink);
    }
  }

 private:
  static void ScanFile(const SourceFile& file, DiagnosticSink& sink) {
    std::size_t line_no = 0;
    bool in_block_comment = false;
    std::string_view rest = file.content;
    while (!rest.empty()) {
      ++line_no;
      const std::size_t nl = rest.find('\n');
      std::string_view line = rest.substr(0, nl);
      rest = nl == std::string_view::npos ? std::string_view()
                                          : rest.substr(nl + 1);
      const std::string code = StripComments(line, &in_block_comment);
      // Includes are allowed: the shim's passthrough mode and the
      // memory_order constants live in <atomic>/<mutex>.
      if (code.find("#include") != std::string::npos) continue;
      for (const std::string_view token : kForbidden) {
        if (code.find(token) == std::string::npos) continue;
        sink.Report(file.path + ":" + std::to_string(line_no),
                    "raw " + std::string(token.back() == '<'
                                             ? token.substr(0, token.size() - 1)
                                             : token) +
                        " bypasses the model-check shim; use " +
                        std::string(ShimReplacement(token)) +
                        " (src/mc/shim.h)");
        break;  // one diagnostic per line is enough
      }
    }
  }

  // Removes // and /* */ comment text (tracking block comments across
  // lines). String literals are not parsed — a primitive named inside one
  // would flag, which is acceptable for a lint over our own sources.
  static std::string StripComments(std::string_view line, bool* in_block) {
    std::string out;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (*in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          *in_block = false;
          ++i;
        }
        continue;
      }
      if (line[i] == '/' && i + 1 < line.size()) {
        if (line[i + 1] == '/') break;
        if (line[i + 1] == '*') {
          *in_block = true;
          ++i;
          continue;
        }
      }
      out.push_back(line[i]);
    }
    return out;
  }
};

}  // namespace

void AddSourcePasses(AnalysisRunner& runner) {
  runner.AddPass(std::make_unique<McCoveragePass>());
}

}  // namespace satfr::analysis
