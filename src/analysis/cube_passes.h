// Cube-and-conquer lint pass: cube search must agree with monolithic CDCL.
//
// The cube layer (src/cube) splits an instance into assumption cubes and
// claims exact verdict aggregation: any-cube-SAT is SAT, all-cubes-refuted
// is UNSAT. This pass cross-checks that claim on the artifact under lint by
// solving a small width window twice — once monolithically, once through a
// single-worker deterministic cube pool — and reporting any verdict
// disagreement. It also runs the cube side twice and demands identical
// verdicts and models: deterministic mode promises bit-reproducible
// single-worker runs, and a drift here means the cube generator or the
// pool's verdict aggregation picked up hidden nondeterminism.
#pragma once

#include "analysis/runner.h"

namespace satfr::analysis {

/// Registers the cube pass:
///   cube-determinism (error) single-worker deterministic cube verdicts
///                            match monolithic CDCL and are run-to-run
///                            reproducible
void AddCubePasses(AnalysisRunner& runner);

}  // namespace satfr::analysis
