#include "analysis/cube_passes.h"

#include <algorithm>
#include <memory>
#include <string>

#include "cube/cube_solver.h"
#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "graph/coloring_bounds.h"
#include "sat/clause_sink.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"

namespace satfr::analysis {
namespace {

// Per-solve wall-clock budget. Like solver-invariants, this pass is a lint:
// it probes agreement on a bounded slice of the search, not full proofs.
// Solves that exceed the budget return kUnknown and are skipped.
constexpr double kSolveBudgetSeconds = 0.5;

// Graphs beyond this are skipped outright: four budget-bounded solves are
// cheap, but encoding a huge conflict graph four times is not.
constexpr int kMaxVertices = 4096;

sat::SolveResult SolveMonolithic(const graph::Graph& g, int width,
                                 const encode::EncodingSpec& spec) {
  const auto sequence =
      symmetry::SymmetrySequence(g, width, symmetry::Heuristic::kS1);
  sat::Solver solver(sat::SolverOptions::SiegeLike());
  sat::SolverSink sink(solver);
  encode::EncodeColoringToSink(g, width, spec, sequence, sink);
  if (!sink.Finish()) return sat::SolveResult::kUnsat;
  return solver.Solve(Deadline::After(kSolveBudgetSeconds));
}

cube::CubeSolveResult SolveCubed(const graph::Graph& g, int width,
                                 const encode::EncodingSpec& spec) {
  cube::CubeSolveOptions options;
  options.pool.num_workers = 1;
  options.pool.deterministic = true;
  options.gen.target_cubes = 64;
  options.timeout_seconds = kSolveBudgetSeconds;
  return cube::SolveColoringWithCubes(g, width, spec,
                                      symmetry::Heuristic::kS1, options);
}

class CubeDeterminismPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "cube-determinism"; }
  std::string_view description() const override {
    return "single-worker deterministic cube verdicts match monolithic CDCL "
           "and reproduce run to run";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.conflict_graph != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const graph::Graph& g = *input.conflict_graph;
    if (g.num_vertices() == 0 || g.num_vertices() > kMaxVertices) return;
    const encode::EncodingSpec spec =
        input.spec != nullptr ? *input.spec
                              : encode::GetEncoding("ITE-linear-2+muldirect");

    // Probe the decision boundary: DSATUR's width is routable, one below it
    // is where UNSAT verdicts live on tight instances. Agreement on both
    // sides exercises the any-cube-SAT and the all-cubes-refuted paths.
    const int k_max =
        std::max(1, graph::NumColorsUsed(graph::DsaturColoring(g)));
    const int widths[2] = {std::max(1, k_max - 1), k_max};
    for (int i = 0; i < 2; ++i) {
      const int w = widths[i];
      if (i == 1 && widths[1] == widths[0]) break;
      const cube::CubeSolveResult first = SolveCubed(g, w, spec);
      if (!first.error.empty()) {
        sink.Report("width " + std::to_string(w), "cube solve: " + first.error);
        continue;
      }
      if (first.status == sat::SolveResult::kUnknown) continue;  // over budget
      const sat::SolveResult mono = SolveMonolithic(g, w, spec);
      if (mono != sat::SolveResult::kUnknown && mono != first.status) {
        sink.Report("width " + std::to_string(w),
                    std::string("cube verdict ") + sat::ToString(first.status) +
                        " disagrees with monolithic " + sat::ToString(mono));
      }
      const cube::CubeSolveResult second = SolveCubed(g, w, spec);
      if (second.status != first.status) {
        sink.Report("width " + std::to_string(w),
                    std::string("deterministic cube rerun flipped verdict: ") +
                        sat::ToString(first.status) + " then " +
                        sat::ToString(second.status));
      } else if (second.colors != first.colors) {
        sink.Report("width " + std::to_string(w),
                    "deterministic cube rerun decoded a different model");
      }
    }
  }
};

}  // namespace

void AddCubePasses(AnalysisRunner& runner) {
  runner.AddPass(std::make_unique<CubeDeterminismPass>());
}

}  // namespace satfr::analysis
