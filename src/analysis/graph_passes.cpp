#include "analysis/graph_passes.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "route/global_routing.h"

namespace satfr::analysis {
namespace {

using graph::Graph;
using graph::VertexId;
using route::GlobalRouting;

std::string VertexLocation(VertexId v) {
  return "vertex " + std::to_string(v);
}

class GraphSimplePass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "graph-simple"; }
  std::string_view description() const override {
    return "conflict graph must be simple, symmetric, and count-consistent";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.conflict_graph != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const Graph& g = *input.conflict_graph;
    const VertexId n = g.num_vertices();
    std::size_t degree_sum = 0;
    for (VertexId v = 0; v < n; ++v) {
      const auto& neighbors = g.Neighbors(v);
      degree_sum += neighbors.size();
      std::set<VertexId> seen;
      for (const VertexId u : neighbors) {
        if (u == v) {
          sink.Report(VertexLocation(v), "self-loop");
          continue;
        }
        if (u < 0 || u >= n) {
          sink.Report(VertexLocation(v),
                      "adjacency entry " + std::to_string(u) +
                          " out of range [0, " + std::to_string(n) + ")");
          continue;
        }
        if (!seen.insert(u).second) {
          sink.Report(VertexLocation(v),
                      "duplicate adjacency entry for vertex " +
                          std::to_string(u));
          continue;
        }
        const auto& back = g.Neighbors(u);
        if (std::find(back.begin(), back.end(), v) == back.end()) {
          sink.Report(VertexLocation(v),
                      "asymmetric edge: " + std::to_string(u) +
                          " is a neighbor of " + std::to_string(v) +
                          " but not vice versa");
        }
      }
    }
    if (degree_sum != 2 * g.num_edges()) {
      sink.Report("graph", "degree sum " + std::to_string(degree_sum) +
                               " != 2 * num_edges (" +
                               std::to_string(g.num_edges()) + " edges)");
    }
  }
};

class FlowTwoPinPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "flow-two-pin"; }
  std::string_view description() const override {
    return "conflict graph must mirror the 2-pin decomposition and routing";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.conflict_graph != nullptr && input.routing != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const Graph& g = *input.conflict_graph;
    const GlobalRouting& routing = *input.routing;
    const std::size_t num_nets = routing.NumTwoPinNets();

    if (static_cast<std::size_t>(g.num_vertices()) != num_nets) {
      sink.Report("graph",
                  std::to_string(g.num_vertices()) +
                      " vertices but the routing has " +
                      std::to_string(num_nets) + " 2-pin nets");
      return;  // Vertex <-> net correspondence is broken; stop here.
    }
    if (routing.routes.size() != num_nets) {
      sink.Report("routing", std::to_string(routing.routes.size()) +
                                 " routes for " + std::to_string(num_nets) +
                                 " 2-pin nets");
      return;
    }
    for (std::size_t i = 0; i < num_nets; ++i) {
      const auto& net = routing.two_pin_nets[i];
      if (net.parent < 0 || net.source < 0 || net.sink < 0) {
        sink.Report("2-pin net " + std::to_string(i),
                    "incomplete decomposition: parent/source/sink unset");
      }
      for (const fpga::SegmentIndex seg : routing.routes[i]) {
        if (seg < 0) {
          sink.Report("2-pin net " + std::to_string(i),
                      "route contains an invalid segment index");
          break;
        }
      }
    }

    // Segment -> occupant map, then both directions of the edge contract.
    std::unordered_map<fpga::SegmentIndex, std::vector<VertexId>> occupants;
    for (std::size_t i = 0; i < num_nets; ++i) {
      for (const fpga::SegmentIndex seg : routing.routes[i]) {
        if (seg < 0) continue;
        auto& list = occupants[seg];
        if (list.empty() || list.back() != static_cast<VertexId>(i)) {
          list.push_back(static_cast<VertexId>(i));
        }
      }
    }
    const auto share_segment = [&](VertexId a, VertexId b) {
      const auto& ra = routing.routes[static_cast<std::size_t>(a)];
      const auto& rb = routing.routes[static_cast<std::size_t>(b)];
      return std::any_of(ra.begin(), ra.end(), [&](fpga::SegmentIndex seg) {
        return std::find(rb.begin(), rb.end(), seg) != rb.end();
      });
    };

    // Every edge must be justified: different parents + a shared segment.
    for (const auto& [u, v] : g.Edges()) {
      const auto& net_u = routing.two_pin_nets[static_cast<std::size_t>(u)];
      const auto& net_v = routing.two_pin_nets[static_cast<std::size_t>(v)];
      const std::string location =
          "edge {" + std::to_string(u) + ", " + std::to_string(v) + "}";
      if (net_u.parent == net_v.parent) {
        sink.Report(location,
                    "both 2-pin nets belong to multi-pin net " +
                        std::to_string(net_u.parent) +
                        "; same-parent nets share tracks freely");
      }
      if (!share_segment(u, v)) {
        sink.Report(location,
                    "routes share no channel segment; the exclusivity "
                    "constraint is vacuous");
      }
    }

    // Completeness: different-parent nets sharing a segment must conflict.
    for (const auto& [seg, list] : occupants) {
      for (std::size_t a = 0; a < list.size(); ++a) {
        for (std::size_t b = a + 1; b < list.size(); ++b) {
          const auto& net_a =
              routing.two_pin_nets[static_cast<std::size_t>(list[a])];
          const auto& net_b =
              routing.two_pin_nets[static_cast<std::size_t>(list[b])];
          if (net_a.parent == net_b.parent) continue;
          if (!g.HasEdge(list[a], list[b])) {
            sink.Report("segment " + std::to_string(seg),
                        "2-pin nets " + std::to_string(list[a]) + " and " +
                            std::to_string(list[b]) +
                            " of different parents share it but have no "
                            "conflict edge");
          }
        }
      }
    }
  }
};

}  // namespace

void AddGraphPasses(AnalysisRunner& runner) {
  runner.AddPass(std::make_unique<GraphSimplePass>());
  runner.AddPass(std::make_unique<FlowTwoPinPass>());
}

}  // namespace satfr::analysis
