#include "analysis/cnf_passes.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>


namespace satfr::analysis {
namespace {

using sat::Clause;
using sat::Cnf;
using sat::Lit;

std::string ClauseLocation(std::size_t index) {
  return "clause " + std::to_string(index);
}

std::string ClauseText(const Clause& clause) {
  std::string text = "(";
  for (std::size_t i = 0; i < clause.size(); ++i) {
    if (i > 0) text += " \\/ ";
    text += clause[i].ToString();
  }
  return text + ")";
}

/// True if every literal is valid and on an allocated variable — passes
/// other than cnf-var-range skip clauses that fail this (the range pass
/// owns reporting them).
bool ClauseInRange(const Clause& clause, int num_vars) {
  return std::all_of(clause.begin(), clause.end(), [num_vars](Lit l) {
    return l.IsValid() && l.var() < num_vars;
  });
}

/// Literal codes sorted ascending; the shared normal form for duplicate /
/// subsumption tests (x and ~x stay adjacent: codes 2v and 2v+1).
std::vector<int> SortedCodes(const Clause& clause) {
  std::vector<int> codes;
  codes.reserve(clause.size());
  for (const Lit l : clause) codes.push_back(l.code());
  std::sort(codes.begin(), codes.end());
  return codes;
}

struct CodeVectorHash {
  std::size_t operator()(const std::vector<int>& codes) const {
    // FNV-1a over the code stream.
    std::uint64_t h = 1469598103934665603ull;
    for (const int code : codes) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(code));
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

class VarRangePass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "cnf-var-range"; }
  std::string_view description() const override {
    return "literals must be valid and on allocated variables";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.cnf != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const auto& clauses = input.cnf->clauses();
    const int num_vars = input.cnf->num_vars();
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      for (const Lit l : clauses[i]) {
        if (!l.IsValid()) {
          sink.Report(ClauseLocation(i), "invalid literal (negative code)");
        } else if (l.var() >= num_vars) {
          sink.Report(ClauseLocation(i),
                      "literal " + l.ToString() + " on unallocated variable (" +
                          std::to_string(num_vars) + " allocated)");
        }
      }
    }
  }
};

class TautologyPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "cnf-tautology"; }
  std::string_view description() const override {
    return "clauses containing both x and ~x are always true";
  }
  Severity default_severity() const override { return Severity::kWarning; }
  bool Applicable(const AnalysisInput& input) const override {
    return input.cnf != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const auto& clauses = input.cnf->clauses();
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      if (!ClauseInRange(clauses[i], input.cnf->num_vars())) continue;
      const std::vector<int> codes = SortedCodes(clauses[i]);
      for (std::size_t j = 1; j < codes.size(); ++j) {
        if ((codes[j] ^ 1) == codes[j - 1]) {
          sink.Report(ClauseLocation(i),
                      "tautological: contains x" +
                          std::to_string(codes[j] >> 1) +
                          " in both polarities");
          break;
        }
      }
    }
  }
};

class DuplicateClausePass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "cnf-duplicate-clause"; }
  std::string_view description() const override {
    return "exact duplicates (as literal multisets) of earlier clauses";
  }
  Severity default_severity() const override { return Severity::kWarning; }
  bool Applicable(const AnalysisInput& input) const override {
    return input.cnf != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const auto& clauses = input.cnf->clauses();
    std::unordered_map<std::vector<int>, std::size_t, CodeVectorHash> first;
    first.reserve(clauses.size());
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      if (!ClauseInRange(clauses[i], input.cnf->num_vars())) continue;
      const auto [it, inserted] = first.emplace(SortedCodes(clauses[i]), i);
      if (!inserted) {
        sink.Report(ClauseLocation(i),
                    "exact duplicate of clause " + std::to_string(it->second) +
                        " " + ClauseText(clauses[i]));
      }
    }
  }
};

class SubsumedBinaryPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "cnf-subsumed-binary"; }
  std::string_view description() const override {
    return "clauses subsumed by a unit or binary clause are redundant";
  }
  Severity default_severity() const override { return Severity::kInfo; }
  bool Applicable(const AnalysisInput& input) const override {
    return input.cnf != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const auto& clauses = input.cnf->clauses();
    const int num_vars = input.cnf->num_vars();
    // Index the subsuming candidates: unit literals and binary code pairs.
    std::unordered_set<int> units;
    std::unordered_set<std::uint64_t> binaries;
    const auto pair_key = [](int a, int b) {
      if (a > b) std::swap(a, b);
      return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a))
              << 32) |
             static_cast<std::uint32_t>(b);
    };
    for (const Clause& clause : clauses) {
      if (!ClauseInRange(clause, num_vars)) continue;
      if (clause.size() == 1) {
        units.insert(clause[0].code());
      } else if (clause.size() == 2 && clause[0] != clause[1]) {
        binaries.insert(pair_key(clause[0].code(), clause[1].code()));
      }
    }
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      const Clause& clause = clauses[i];
      if (clause.size() < 2 || !ClauseInRange(clause, num_vars)) continue;
      bool reported = false;
      for (const Lit l : clause) {
        if (units.count(l.code()) != 0) {
          sink.Report(ClauseLocation(i), "subsumed by unit clause (" +
                                             l.ToString() + ")");
          reported = true;
          break;
        }
      }
      if (reported || clause.size() < 3) continue;
      for (std::size_t a = 0; a < clause.size() && !reported; ++a) {
        for (std::size_t b = a + 1; b < clause.size(); ++b) {
          if (clause[a] == clause[b]) continue;
          if (binaries.count(pair_key(clause[a].code(), clause[b].code())) !=
              0) {
            sink.Report(ClauseLocation(i),
                        "subsumed by binary clause (" + clause[a].ToString() +
                            " \\/ " + clause[b].ToString() + ")");
            reported = true;
            break;
          }
        }
      }
    }
  }
};

/// Shared polarity census for the unused/pure passes.
struct PolarityCensus {
  std::vector<std::size_t> positive;
  std::vector<std::size_t> negative;

  explicit PolarityCensus(const Cnf& cnf)
      : positive(static_cast<std::size_t>(cnf.num_vars()), 0),
        negative(static_cast<std::size_t>(cnf.num_vars()), 0) {
    for (const Clause& clause : cnf.clauses()) {
      if (!ClauseInRange(clause, cnf.num_vars())) continue;
      for (const Lit l : clause) {
        auto& column = l.negated() ? negative : positive;
        ++column[static_cast<std::size_t>(l.var())];
      }
    }
  }
};

class UnusedVarPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "cnf-unused-var"; }
  std::string_view description() const override {
    return "allocated variables referenced by no clause";
  }
  Severity default_severity() const override { return Severity::kWarning; }
  bool Applicable(const AnalysisInput& input) const override {
    return input.cnf != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const PolarityCensus census(*input.cnf);
    for (int v = 0; v < input.cnf->num_vars(); ++v) {
      const auto idx = static_cast<std::size_t>(v);
      if (census.positive[idx] == 0 && census.negative[idx] == 0) {
        sink.Report("var x" + std::to_string(v),
                    "allocated but never referenced");
      }
    }
  }
};

class PureVarPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "cnf-pure-var"; }
  std::string_view description() const override {
    return "variables appearing with a single polarity only";
  }
  Severity default_severity() const override { return Severity::kInfo; }
  bool Applicable(const AnalysisInput& input) const override {
    return input.cnf != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const PolarityCensus census(*input.cnf);
    for (int v = 0; v < input.cnf->num_vars(); ++v) {
      const auto idx = static_cast<std::size_t>(v);
      const std::size_t pos = census.positive[idx];
      const std::size_t neg = census.negative[idx];
      if (pos + neg == 0 || (pos != 0 && neg != 0)) continue;
      sink.Report("var x" + std::to_string(v),
                  std::string("polarity-pure: appears only ") +
                      (pos != 0 ? "positively" : "negatively") + " (" +
                      std::to_string(pos + neg) + " occurrences)");
    }
  }
};

}  // namespace

void AddCnfPasses(AnalysisRunner& runner) {
  runner.AddPass(std::make_unique<VarRangePass>());
  runner.AddPass(std::make_unique<TautologyPass>());
  runner.AddPass(std::make_unique<DuplicateClausePass>());
  runner.AddPass(std::make_unique<UnusedVarPass>());
  runner.AddPass(std::make_unique<SubsumedBinaryPass>());
  runner.AddPass(std::make_unique<PureVarPass>());
}

}  // namespace satfr::analysis
