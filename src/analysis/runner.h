// AnalysisRunner: the satlint pass pipeline.
//
// Owns an ordered list of passes, runs every enabled + applicable one over
// an AnalysisInput, and collects the findings into an AnalysisReport. Each
// pass can be disabled or have its severity overridden by name, so callers
// (the satlint CLI, DetailedRouter's --selfcheck mode, tests) tune the same
// pipeline instead of assembling their own.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/pass.h"

namespace satfr::analysis {

struct PassConfig {
  bool enabled = true;
  /// Forces every finding of the pass to this severity.
  std::optional<Severity> severity;
};

/// Per-pass outcome: whether it ran (inputs present + enabled) and how many
/// findings it reported (including ones beyond the storage bound).
struct PassOutcome {
  std::string pass;
  bool ran = false;
  std::size_t findings = 0;
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  std::vector<PassOutcome> outcomes;

  /// Number of stored diagnostics at exactly `severity`.
  std::size_t Count(Severity severity) const;
  bool HasErrors() const { return Count(Severity::kError) > 0; }
};

class AnalysisRunner {
 public:
  AnalysisRunner() = default;
  AnalysisRunner(AnalysisRunner&&) = default;
  AnalysisRunner& operator=(AnalysisRunner&&) = default;

  void AddPass(std::unique_ptr<AnalysisPass> pass);

  /// Applies `config` to the pass named `pass_name`; false if unknown.
  bool Configure(std::string_view pass_name, const PassConfig& config);

  const std::vector<std::unique_ptr<AnalysisPass>>& passes() const {
    return passes_;
  }

  AnalysisReport Run(const AnalysisInput& input) const;

 private:
  std::vector<std::unique_ptr<AnalysisPass>> passes_;
  std::vector<PassConfig> configs_;
};

/// A runner with every built-in pass registered, in layer order: CNF
/// well-formedness, encoding contracts, graph/flow consistency.
AnalysisRunner MakeDefaultRunner();

/// Multi-line human-readable report (one diagnostic per line + summary).
std::string FormatText(const AnalysisReport& report);

/// Machine-readable report: {"diagnostics": [...], "passes": [...],
/// "errors": N, "warnings": N, "infos": N}.
std::string FormatJson(const AnalysisReport& report);

}  // namespace satfr::analysis
