// Encoding-contract lint passes: the encoded coloring must be exactly what
// the paper's framework prescribes.
//
// Driven by the EncodingSpec (registry metadata), the conflict graph, and
// the encoder's own output (EncodedColoring incl. ColoringCnfStats), these
// passes re-derive the expected shape of the CNF from first principles —
// Table 1 clause-count formulas, per-vertex ALO/valid-assignment structure,
// conflict clauses only on registered edges, and a sound b1/s1 symmetry
// prefix — and diff the actual artifact against it.
#pragma once

#include "analysis/runner.h"
#include "encode/hierarchical.h"

namespace satfr::analysis {

/// Expected per-CSP-variable shape of `spec` on a domain of `domain_size`
/// values, derived independently of the encoder (Table 1 formulas for the
/// simple encodings, the §4 composition rules for hierarchies).
struct ExpectedDomainShape {
  int num_vars = 0;
  std::size_t structural_clauses = 0;
};

ExpectedDomainShape ComputeExpectedDomainShape(
    const encode::EncodingSpec& spec, int domain_size);

/// Registers the six encoding-contract passes:
///   encoding-clause-counts    (error) Table 1 / §4 clause + var counts
///   encoding-domain-semantics (error) every assignment selects >= 1 value
///   encoding-vertex-structure (error) per-vertex structural instantiation
///   encoding-conflict-edges   (error) conflict clauses <-> graph edges
///   encoding-symmetry-prefix  (error) b1/s1 prefix legality + NumberingKey
///   encoding-sink-equivalence (error) streamed emission == materialized Cnf
void AddEncodingPasses(AnalysisRunner& runner);

}  // namespace satfr::analysis
