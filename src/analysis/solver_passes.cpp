#include "analysis/solver_passes.h"

#include <memory>
#include <string>

#include "sat/solver.h"

namespace satfr::analysis {
namespace {

// Bounded wall-clock budget for the stress solve. The pass is a lint, not
// a benchmark: a fraction of a second under a 1 KiB GC threshold already
// forces dozens of collections and several vivification rounds on any
// instance large enough to have interesting database dynamics.
constexpr double kStressSolveSeconds = 0.25;

class SolverInvariantsPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "solver-invariants"; }
  std::string_view description() const override {
    return "solver arena/watcher/trail invariants hold after a GC-heavy "
           "bounded solve";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.cnf != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    sat::SolverOptions options;
    // Hostile database settings: collect the arena as often as legal, keep
    // vivification and the tier machinery hot, so relocation bugs surface.
    options.gc_min_arena_words = 1u << 8;
    options.vivify = true;
    options.vivify_interval = 1;
    options.use_tiers = true;
    options.restart_base = 32;

    sat::Solver solver(options);
    std::string error;
    if (!solver.AddCnf(*input.cnf)) {
      // Refuted while loading: the empty database trivially satisfies the
      // invariants, but run the audit anyway — it is cheap and the load
      // path also touches the binary layer.
      if (!solver.CheckInvariants(&error)) {
        sink.Report("solver", "solver invariant violated: " + error);
      }
      return;
    }
    (void)solver.Solve(Deadline::After(kStressSolveSeconds));
    if (!solver.CheckInvariants(&error)) {
      sink.Report("solver", "solver invariant violated: " + error);
    }
  }
};

}  // namespace

void AddSolverPasses(AnalysisRunner& runner) {
  runner.AddPass(std::make_unique<SolverInvariantsPass>());
}

}  // namespace satfr::analysis
