#include "analysis/telemetry_passes.h"

#include <cstdint>
#include <memory>
#include <string>

#include "analysis/pass.h"
#include "obs/run_report.h"

namespace satfr::analysis {

namespace {

std::string RecordLocation(const obs::RunRecord& r, std::size_t index) {
  std::string loc = "record " + std::to_string(index);
  if (!r.instance.empty()) loc += " (" + r.instance;
  if (!r.instance.empty()) {
    loc += " W=" + std::to_string(r.width) + ")";
  }
  return loc;
}

class TelemetryConsistencyPass : public AnalysisPass {
 public:
  std::string_view name() const override { return "telemetry-consistency"; }
  std::string_view description() const override {
    return "run-report observed totals agree with the solver-window stats";
  }

  bool Applicable(const AnalysisInput& input) const override {
    return input.run_records != nullptr;
  }

  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    for (std::size_t i = 0; i < input.run_records->size(); ++i) {
      const obs::RunRecord& r = (*input.run_records)[i];
      const std::string loc = RecordLocation(r, i);

      if (r.verdict != "SAT" && r.verdict != "UNSAT" &&
          r.verdict != "UNKNOWN") {
        sink.Report(loc, "unknown verdict '" + r.verdict + "'");
      }

      // Each learnt clause increments exactly one LBD bucket, so the
      // histogram mass must equal the learned count — for merged
      // (cube-pool) records just as for single-solver windows.
      std::uint64_t lbd_mass = 0;
      for (const std::uint64_t b : r.lbd_histogram) lbd_mass += b;
      if (lbd_mass != r.learned) {
        sink.Report(loc, "LBD histogram mass " + std::to_string(lbd_mass) +
                             " != learned " + std::to_string(r.learned));
      }

      if (!r.has_observed) continue;
      const auto check = [&](const char* what, std::uint64_t observed,
                             std::uint64_t window) {
        if (observed != window) {
          sink.Report(loc, "observer hook drift: observed " +
                               std::string(what) + " " +
                               std::to_string(observed) +
                               " != solver-window " +
                               std::to_string(window));
        }
      };
      check("propagations", r.observed_propagations, r.propagations);
      check("conflicts", r.observed_conflicts, r.conflicts);
      check("restarts", r.observed_restarts, r.restarts);
      check("learned", r.observed_learned, r.learned);

      // Phase times are a partition of solving time: their sum cannot
      // exceed the solve wall time (small slack for clock granularity).
      const double phase_sum = r.observed_bcp_seconds +
                               r.observed_analyze_seconds +
                               r.observed_inprocess_seconds;
      if (r.solve_seconds > 0.0 &&
          phase_sum > r.solve_seconds * 1.05 + 0.01) {
        sink.Report(loc, "phase times sum to " + std::to_string(phase_sum) +
                             "s, exceeding solve time " +
                             std::to_string(r.solve_seconds) + "s");
      }
    }
  }
};

// Checks the clause-exchange reader ledger on every record: each cursor
// step Collect takes is classified exactly once (imported, torn, self,
// incompatible, or evicted), so the classifications must sum back to the
// distance traveled. The counters come straight from ClauseExchange's
// relaxed atomics folded at a quiescent point (see Totals in
// sat/clause_exchange.h); a miss here means a Collect path learned a new
// way to skip a ticket without accounting for it — the lock-free
// equivalent of dropping a clause on the floor silently.
class ExchangeConservationPass : public AnalysisPass {
 public:
  std::string_view name() const override { return "exchange-conservation"; }
  std::string_view description() const override {
    return "clause-exchange cursor steps equal the sum of their "
           "classifications";
  }

  bool Applicable(const AnalysisInput& input) const override {
    return input.run_records != nullptr;
  }

  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    for (std::size_t i = 0; i < input.run_records->size(); ++i) {
      const obs::RunRecord& r = (*input.run_records)[i];
      const std::uint64_t classified =
          r.exchange_imported + r.exchange_torn_reads +
          r.exchange_self_skipped + r.exchange_incompatible_skipped +
          r.exchange_eviction_skipped;
      if (r.exchange_cursor_advanced != classified) {
        sink.Report(RecordLocation(r, i),
                    "exchange ledger: cursor advanced " +
                        std::to_string(r.exchange_cursor_advanced) +
                        " tickets but " + std::to_string(classified) +
                        " classified (imported " +
                        std::to_string(r.exchange_imported) + " + torn " +
                        std::to_string(r.exchange_torn_reads) + " + self " +
                        std::to_string(r.exchange_self_skipped) +
                        " + incompatible " +
                        std::to_string(r.exchange_incompatible_skipped) +
                        " + evicted " +
                        std::to_string(r.exchange_eviction_skipped) + ")");
      }
      // A collected clause must have been published by somebody.
      if (r.exchange_imported > 0 && r.exchange_exported == 0) {
        sink.Report(RecordLocation(r, i),
                    "exchange ledger: " +
                        std::to_string(r.exchange_imported) +
                        " clause(s) imported but none exported");
      }
    }
  }
};

}  // namespace

void AddTelemetryPasses(AnalysisRunner& runner) {
  runner.AddPass(std::make_unique<TelemetryConsistencyPass>());
  runner.AddPass(std::make_unique<ExchangeConservationPass>());
}

}  // namespace satfr::analysis
