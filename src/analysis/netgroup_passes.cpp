#include "analysis/netgroup_passes.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "encode/net_group.h"

namespace satfr::analysis {
namespace {

using encode::NetGroup;
using encode::NetGroupTable;
using sat::Clause;
using sat::Lit;
using sat::Var;

std::string GroupLocation(const NetGroup& group) {
  return "net " + std::to_string(group.net) + " epoch " +
         std::to_string(group.epoch);
}

class NetGroupHygienePass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "net-group-hygiene"; }
  std::string_view description() const override {
    return "grouped clauses carry their own activation literal (plus at "
           "most one cross guard); group ranges are disjoint and vacuous "
           "under a false selector";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.cnf != nullptr && input.net_groups != nullptr;
  }

  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const NetGroupTable& table = *input.net_groups;
    const auto& clauses = input.cnf->clauses();
    const auto num_clauses = static_cast<std::uint64_t>(clauses.size());
    const Var first = table.first_activation_var;
    if (table.groups.empty()) return;
    if (first < 0) {
      sink.Report("table", "groups present but first_activation_var unset");
      return;
    }

    // Well-formed ranges and distinct activation variables.
    std::vector<Var> activations;
    activations.reserve(table.groups.size());
    for (const NetGroup& group : table.groups) {
      if (group.activation < first) {
        sink.Report(GroupLocation(group),
                    "activation variable x" +
                        std::to_string(group.activation) +
                        " below first_activation_var x" +
                        std::to_string(first));
      }
      if (group.clause_begin > group.clause_end ||
          group.clause_end > num_clauses) {
        sink.Report(GroupLocation(group),
                    "clause range [" + std::to_string(group.clause_begin) +
                        ", " + std::to_string(group.clause_end) +
                        ") not within the " + std::to_string(num_clauses) +
                        "-clause stream");
        return;  // range arithmetic below would be garbage
      }
      activations.push_back(group.activation);
    }
    std::sort(activations.begin(), activations.end());
    if (std::adjacent_find(activations.begin(), activations.end()) !=
        activations.end()) {
      sink.Report("table", "two groups share an activation variable");
    }

    // Pairwise-disjoint ranges: sorted by begin, each must end before the
    // next begins.
    std::vector<const NetGroup*> by_begin;
    by_begin.reserve(table.groups.size());
    for (const NetGroup& group : table.groups) by_begin.push_back(&group);
    std::sort(by_begin.begin(), by_begin.end(),
              [](const NetGroup* a, const NetGroup* b) {
                return a->clause_begin < b->clause_begin;
              });
    std::vector<char> in_group(clauses.size(), 0);
    for (std::size_t i = 0; i < by_begin.size(); ++i) {
      if (i + 1 < by_begin.size() &&
          by_begin[i]->clause_end > by_begin[i + 1]->clause_begin) {
        sink.Report(GroupLocation(*by_begin[i]),
                    "range overlaps " + GroupLocation(*by_begin[i + 1]));
      }
      for (std::uint64_t c = by_begin[i]->clause_begin;
           c < by_begin[i]->clause_end && c < num_clauses; ++c) {
        in_group[static_cast<std::size_t>(c)] = 1;
      }
    }

    // Activation variables known to the table, for classifying cross
    // guards: a grouped clause may reference another net's selector, but
    // only negatively and only one (the conflict-clause partner guard).
    std::vector<char> is_selector;
    for (const NetGroup& group : table.groups) {
      const auto index = static_cast<std::size_t>(group.activation - first);
      if (group.activation >= first) {
        if (index >= is_selector.size()) is_selector.resize(index + 1, 0);
        is_selector[index] = 1;
      }
    }
    const auto known_selector = [&](Var v) {
      const auto index = static_cast<std::size_t>(v - first);
      return index < is_selector.size() && is_selector[index] != 0;
    };

    // Every grouped clause carries exactly one copy of its own negated
    // selector — selector false satisfies the clause (deactivated group is
    // vacuous), selector assumed true strips the guard — plus at most one
    // cross guard: another group's selector, also negated, so the clause
    // dies when either net is retired. Positive activation literals and
    // unknown activation-region variables are always defects.
    for (const NetGroup& group : table.groups) {
      for (std::uint64_t c = group.clause_begin; c < group.clause_end; ++c) {
        const Clause& clause = clauses[static_cast<std::size_t>(c)];
        int own = 0;
        int cross = 0;
        int bad = 0;
        for (const Lit l : clause) {
          if (l.var() < first) continue;
          if (l.var() == group.activation && l.negated()) {
            ++own;
          } else if (l.negated() && known_selector(l.var())) {
            ++cross;
          } else {
            ++bad;
          }
        }
        if (own != 1 || cross > 1 || bad != 0) {
          sink.Report(
              GroupLocation(group),
              "clause " + std::to_string(c) + " carries " +
                  std::to_string(own) + " copies of ~x" +
                  std::to_string(group.activation) + ", " +
                  std::to_string(cross) + " cross guard(s), " +
                  std::to_string(bad) +
                  " other activation-region literals (want exactly one "
                  "own guard, at most one cross guard, none other)");
        }
      }
    }

    // Outside every group, activation variables may appear only as the
    // unit toggles that activate/retire a group.
    for (std::size_t c = 0; c < clauses.size(); ++c) {
      if (in_group[c]) continue;
      const Clause& clause = clauses[c];
      const bool touches_activation =
          std::any_of(clause.begin(), clause.end(),
                      [first](Lit l) { return l.var() >= first; });
      if (touches_activation && clause.size() != 1) {
        sink.Report("clause " + std::to_string(c),
                    "ungrouped non-unit clause mentions an activation "
                    "variable");
      }
    }
  }
};

}  // namespace

void AddNetGroupPasses(AnalysisRunner& runner) {
  runner.AddPass(std::make_unique<NetGroupHygienePass>());
}

}  // namespace satfr::analysis
