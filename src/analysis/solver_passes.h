// Solver-layer lint pass: dynamic structural invariants of the CDCL engine.
//
// Unlike the CNF/encoding passes, which inspect a static artifact, this
// pass *runs* the solver on the input formula under deliberately hostile
// database settings (tiny GC threshold, eager vivification, tiered learnts)
// and then audits the engine's internal structures via
// sat::Solver::CheckInvariants. It exists so a refactor of the arena, the
// watcher lists, or the tier machinery that only corrupts state under GC
// pressure is caught by `satfr lint` and CI, not by a wrong UNSAT three
// layers up.
#pragma once

#include "analysis/runner.h"

namespace satfr::analysis {

/// Registers the solver pass:
///   solver-invariants (error) arena/watcher/trail agreement after a
///                             GC-heavy bounded solve
void AddSolverPasses(AnalysisRunner& runner);

}  // namespace satfr::analysis
