// CNF-layer lint passes: well-formedness checks on any sat::Cnf.
//
// These passes know nothing about encodings — they catch the defect classes
// any CNF generator can produce: tautological clauses, exact duplicates,
// literals on out-of-range/unallocated variables, clauses subsumed by a
// unit or binary clause, variables that are allocated but never referenced,
// and variables that only ever appear with one polarity.
#pragma once

#include "analysis/runner.h"

namespace satfr::analysis {

/// Registers the six CNF passes, in severity-descending order:
///   cnf-var-range        (error)   invalid literal / unallocated variable
///   cnf-tautology        (warning) clause contains x and ~x
///   cnf-duplicate-clause (warning) exact duplicate of an earlier clause
///   cnf-unused-var       (warning) allocated variable in no clause
///   cnf-subsumed-binary  (info)    clause subsumed by a unit/binary clause
///   cnf-pure-var         (info)    variable appears with one polarity only
void AddCnfPasses(AnalysisRunner& runner);

}  // namespace satfr::analysis
