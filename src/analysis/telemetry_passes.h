// Telemetry lint pass: internal consistency of run-report records.
//
// A RunRecord carries the same solve window measured by two independent
// mechanisms — the solver-window stats (SolverStats subtraction around the
// solve call) and the `observed` block (restart-sample deltas accumulated
// through the SolverObserver hook). This pass cross-checks the two, the way
// `solver-invariants` cross-checks the arena: if an emission site stops
// flushing the final window, a stats field is double-counted, or the
// observer baseline drifts, the totals disagree and `satlint report` fails.
#pragma once

#include "analysis/runner.h"

namespace satfr::analysis {

/// Registers the telemetry passes:
///   telemetry-consistency (error) observed counter totals vs. the
///                                 solver-window stats, LBD-histogram mass
///                                 vs. learned count, verdict vocabulary
///   exchange-conservation (error) clause-exchange reader ledger: cursor
///                                 steps == imported + torn + self +
///                                 incompatible + evicted
void AddTelemetryPasses(AnalysisRunner& runner);

}  // namespace satfr::analysis
