// Diagnostics produced by the satlint static-analysis layer.
//
// Every finding is a Diagnostic: which pass produced it, how severe it is,
// where in the artifact it points (a clause index, a vertex, a variable),
// and a human-readable message. Passes report through a DiagnosticSink,
// which stamps the pass name, applies the runner's per-pass severity
// override, and bounds the number of stored findings so a systematically
// broken artifact cannot flood the report.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace satfr::analysis {

enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

const char* ToString(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  /// Name of the pass that produced the finding (e.g. "cnf-tautology").
  std::string pass;
  /// Artifact coordinate, e.g. "clause 17", "vertex 3", "var x12".
  std::string location;
  std::string message;
};

class DiagnosticSink {
 public:
  /// At most this many findings per pass are stored verbatim; further ones
  /// are tallied and summarized by the runner.
  static constexpr std::size_t kMaxStoredPerPass = 100;

  /// `forced_severity` true pins every finding (even ones reported with an
  /// explicit severity) to `severity` — the runner's override mechanism.
  DiagnosticSink(std::string pass, Severity severity, bool forced_severity,
                 std::vector<Diagnostic>* out)
      : pass_(std::move(pass)),
        severity_(severity),
        forced_severity_(forced_severity),
        out_(out) {}

  /// Reports a finding at the pass's default (or overridden) severity.
  void Report(std::string location, std::string message) {
    ReportAt(severity_, std::move(location), std::move(message));
  }

  /// Reports a finding at an explicit severity (still subject to override).
  void ReportAt(Severity severity, std::string location, std::string message);

  /// Findings reported so far, including ones beyond the storage bound.
  std::size_t num_reported() const { return num_reported_; }

  /// Findings reported but not stored (bound exceeded).
  std::size_t num_suppressed() const { return num_suppressed_; }

 private:
  std::string pass_;
  Severity severity_;
  bool forced_severity_;
  std::vector<Diagnostic>* out_;
  std::size_t num_reported_ = 0;
  std::size_t num_suppressed_ = 0;
};

}  // namespace satfr::analysis
