// The AnalysisPass interface and the artifact bundle passes inspect.
//
// The flow produces artifacts at three layers — the conflict graph, the
// encoded coloring (CNF + per-vertex variable numbering + stats), and the
// raw CNF — and satlint checks contracts at each. A pass declares which
// artifacts it needs via Applicable(); the runner skips passes whose inputs
// are absent, so the same pipeline lints a bare DIMACS file, a .col graph,
// or a full in-process encoding run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "graph/graph.h"
#include "sat/cnf.h"

namespace satfr::encode {
struct EncodedColoring;
struct EncodingSpec;
struct NetGroupTable;
}  // namespace satfr::encode
namespace satfr::route {
struct GlobalRouting;
}  // namespace satfr::route
namespace satfr::obs {
struct RunRecord;
}  // namespace satfr::obs

namespace satfr::analysis {

/// One source file handed to the source-scan layer (`satlint sources`):
/// the path is used for diagnostics, the content is scanned verbatim.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One sampled verdict-cache audit: the routing service re-solved a cached
/// entry's instance fresh and recorded both answers (plus a track-validity
/// re-check for SAT verdicts). Pure data — produced by src/service/, judged
/// by the service-cache-coherence pass, so the analysis layer never links
/// against the service.
struct CoherenceSample {
  std::string key;             // CacheKey::ToString of the audited entry
  std::string cached_verdict;  // sat::ToString of the cached status
  std::string fresh_verdict;   // sat::ToString of the fresh re-solve
  std::uint64_t hit_count = 0; // times the cached entry was served
  bool tracks_checked = false; // true when the cached verdict was SAT
  bool tracks_valid = false;   // cached tracks proper on the entry's graph
};

/// Everything a pipeline run may look at. All pointers are optional and
/// non-owning; the encoding-contract layer needs `cnf`, `conflict_graph`,
/// `encoded` and `spec` together. `symmetry_sequence` may stay null for
/// "no symmetry breaking".
struct AnalysisInput {
  const sat::Cnf* cnf = nullptr;
  const graph::Graph* conflict_graph = nullptr;
  const encode::EncodedColoring* encoded = nullptr;
  const encode::EncodingSpec* spec = nullptr;
  const std::vector<graph::VertexId>* symmetry_sequence = nullptr;
  const route::GlobalRouting* routing = nullptr;
  // Net-group table of a grouped encode (encode::NetGroupedSink). The
  // net-group-hygiene pass needs it together with `cnf`, and the Cnf must
  // have been collected through the same NetGroupedSink chain (starting
  // empty) so clause index i is group ordinal i.
  const encode::NetGroupTable* net_groups = nullptr;
  // Run-report records (`satlint report <file.jsonl>`), checked by the
  // telemetry layer's consistency passes.
  const std::vector<obs::RunRecord>* run_records = nullptr;
  // Repository source files (`satlint sources <file...>`), scanned by the
  // source layer (mc-coverage).
  const std::vector<SourceFile>* sources = nullptr;
  // Verdict-cache audit samples (`satfr serve --selfcheck`), judged by the
  // service-cache-coherence pass.
  const std::vector<CoherenceSample>* coherence_samples = nullptr;

  bool HasEncoding() const {
    return cnf != nullptr && conflict_graph != nullptr && encoded != nullptr &&
           spec != nullptr;
  }
};

class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;

  /// Stable kebab-case identifier, e.g. "cnf-tautology".
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// Severity of this pass's findings unless the runner overrides it.
  virtual Severity default_severity() const { return Severity::kError; }

  /// True if every artifact the pass inspects is present in `input`.
  virtual bool Applicable(const AnalysisInput& input) const = 0;

  virtual void Run(const AnalysisInput& input, DiagnosticSink& sink) const = 0;
};

}  // namespace satfr::analysis
