// Graph- and flow-layer lint passes.
//
// graph-simple checks the conflict graph's adjacency structure directly
// (no self-loops, no duplicate or asymmetric adjacency entries, consistent
// edge count) — defects a hand-written .col file or a buggy builder could
// introduce even though graph::Graph rejects them at AddEdge time.
// flow-two-pin cross-checks the conflict graph against the global routing
// it was extracted from: one vertex per 2-pin net, edges exactly between
// 2-pin nets of different multi-pin parents whose routes share a segment.
#pragma once

#include "analysis/runner.h"

namespace satfr::analysis {

/// Registers the two graph/flow passes:
///   graph-simple  (error) self-loops / duplicate / asymmetric adjacency
///   flow-two-pin  (error) conflict graph <-> global routing consistency
void AddGraphPasses(AnalysisRunner& runner);

}  // namespace satfr::analysis
