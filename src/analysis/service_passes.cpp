#include "analysis/service_passes.h"

#include <memory>
#include <string>

#include "analysis/pass.h"

namespace satfr::analysis {

namespace {

class ServiceCacheCoherencePass : public AnalysisPass {
 public:
  std::string_view name() const override { return "service-cache-coherence"; }
  std::string_view description() const override {
    return "sampled verdict-cache entries agree with a fresh solve";
  }

  bool Applicable(const AnalysisInput& input) const override {
    return input.coherence_samples != nullptr;
  }

  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    for (const CoherenceSample& sample : *input.coherence_samples) {
      // A fresh UNKNOWN (the re-solve timed out) proves nothing either
      // way; every decided disagreement is a served-wrong-answer bug.
      if (sample.fresh_verdict != "UNKNOWN" &&
          sample.cached_verdict != sample.fresh_verdict) {
        sink.Report(sample.key,
                    "cached verdict " + sample.cached_verdict +
                        " (served " + std::to_string(sample.hit_count) +
                        " time(s)) disagrees with fresh solve " +
                        sample.fresh_verdict);
      }
      if (sample.tracks_checked && !sample.tracks_valid) {
        sink.Report(sample.key,
                    "cached SAT tracks are not a proper coloring of the "
                    "entry's conflict graph");
      }
    }
  }
};

}  // namespace

void AddServicePasses(AnalysisRunner& runner) {
  runner.AddPass(std::make_unique<ServiceCacheCoherencePass>());
}

}  // namespace satfr::analysis
