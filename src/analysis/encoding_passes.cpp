#include "analysis/encoding_passes.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "encode/csp_to_cnf.h"
#include "encode/cube.h"
#include "sat/clause_sink.h"

namespace satfr::analysis {
namespace {

using encode::Cube;
using encode::EncodedColoring;
using encode::EncodingSpec;
using encode::LevelKind;
using encode::LevelSpec;
using sat::Clause;
using sat::Lit;

int BitsFor(int count) {
  int bits = 0;
  while ((1 << bits) < count) ++bits;
  return bits;
}

int LevelVars(LevelKind kind, int count) {
  switch (kind) {
    case LevelKind::kLog:
    case LevelKind::kIteLog:
      return BitsFor(count);
    case LevelKind::kDirect:
    case LevelKind::kMuldirect:
      return count;
    case LevelKind::kIteLinear:
      return count - 1;
  }
  return 0;
}

std::size_t LevelStructural(LevelKind kind, int count) {
  switch (kind) {
    case LevelKind::kLog:
      // Exclusion clause per unused bit pattern.
      return static_cast<std::size_t>((1 << BitsFor(count)) - count);
    case LevelKind::kDirect:
      // One ALO plus pairwise AMO.
      return 1 + static_cast<std::size_t>(count) * (count - 1) / 2;
    case LevelKind::kMuldirect:
      return 1;  // ALO only.
    case LevelKind::kIteLinear:
    case LevelKind::kIteLog:
      return 0;  // Exact-one by construction.
  }
  return 0;
}

int LevelCountForBudget(LevelKind kind, int var_budget) {
  switch (kind) {
    case LevelKind::kLog:
    case LevelKind::kIteLog:
      return 1 << var_budget;
    case LevelKind::kDirect:
    case LevelKind::kMuldirect:
      return var_budget;
    case LevelKind::kIteLinear:
      return var_budget + 1;
  }
  return 0;
}

/// Whether the bottom encoding starting at `levels[first]` falls back to
/// prefix cubes + restriction clauses for a smaller trailing subdomain.
/// Single-level ITE bottoms build a smaller tree instead; nested multi-level
/// bottoms always use the restriction fallback (SpecLevelEncoder default).
bool TailNeedsRestriction(const std::vector<LevelSpec>& levels,
                          std::size_t first) {
  if (levels.size() - first > 1) return true;
  const LevelKind kind = levels[first].kind;
  return kind != LevelKind::kIteLinear && kind != LevelKind::kIteLog;
}

ExpectedDomainShape ShapeRec(const std::vector<LevelSpec>& levels,
                             std::size_t first, int domain_size) {
  const LevelSpec& head = levels[first];
  if (first + 1 == levels.size()) {
    return {LevelVars(head.kind, domain_size),
            LevelStructural(head.kind, domain_size)};
  }
  const int top_count = LevelCountForBudget(head.kind, head.var_budget);
  const int sub_size = (domain_size + top_count - 1) / top_count;
  const int base_size = domain_size / top_count;
  const int num_bigger = domain_size % top_count;
  const ExpectedDomainShape bottom = ShapeRec(levels, first + 1, sub_size);

  ExpectedDomainShape shape;
  shape.num_vars = head.var_budget + bottom.num_vars;
  shape.structural_clauses =
      LevelStructural(head.kind, top_count) + bottom.structural_clauses;
  if (num_bigger != 0) {
    const auto tail_subdomains = static_cast<std::size_t>(top_count -
                                                          num_bigger);
    if (base_size == 0) {
      // Empty subdomains are forbidden outright, one negated cube each.
      shape.structural_clauses += tail_subdomains;
    } else if (TailNeedsRestriction(levels, first + 1)) {
      // Each smaller subdomain forbids its sub_size - base_size unused
      // bottom cubes.
      shape.structural_clauses +=
          tail_subdomains * static_cast<std::size_t>(sub_size - base_size);
    }
  }
  return shape;
}

std::string ClauseText(const Clause& clause) {
  std::string text = "(";
  for (std::size_t i = 0; i < clause.size(); ++i) {
    if (i > 0) text += " \\/ ";
    text += clause[i].ToString();
  }
  return text + ")";
}

/// Literal codes sorted ascending — content-equality normal form.
std::vector<int> SortedCodes(const Clause& clause) {
  std::vector<int> codes;
  codes.reserve(clause.size());
  for (const Lit l : clause) codes.push_back(l.code());
  std::sort(codes.begin(), codes.end());
  return codes;
}

struct CodeVectorHash {
  std::size_t operator()(const std::vector<int>& codes) const {
    std::uint64_t h = 1469598103934665603ull;
    for (const int code : codes) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(code));
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

using ClauseMultiset =
    std::unordered_map<std::vector<int>, std::size_t, CodeVectorHash>;

ClauseMultiset BuildClauseMultiset(const sat::Cnf& cnf) {
  ClauseMultiset counts;
  counts.reserve(cnf.clauses().size());
  for (const Clause& clause : cnf.clauses()) {
    ++counts[SortedCodes(clause)];
  }
  return counts;
}

/// Consumes one occurrence of `clause` from `counts`; false if absent.
bool ConsumeClause(ClauseMultiset& counts, const Clause& clause) {
  const auto it = counts.find(SortedCodes(clause));
  if (it == counts.end() || it->second == 0) return false;
  --it->second;
  return true;
}

// ---------------------------------------------------------------------------
// encoding-clause-counts: Table 1 / §4 counts vs. the actual artifact.
// ---------------------------------------------------------------------------
class ClauseCountsPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "encoding-clause-counts"; }
  std::string_view description() const override {
    return "variable/clause counts must match the Table 1 / §4 formulas";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.HasEncoding();
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const EncodedColoring& enc = *input.encoded;
    const auto n = static_cast<std::size_t>(
        input.conflict_graph->num_vertices());
    const std::size_t num_edges = input.conflict_graph->num_edges();
    const int k = enc.num_colors;
    const std::size_t m =
        input.symmetry_sequence ? input.symmetry_sequence->size() : 0;

    const ExpectedDomainShape shape =
        ComputeExpectedDomainShape(*input.spec, k);
    const auto check = [&sink](const std::string& what, std::uint64_t actual,
                               std::uint64_t expected) {
      if (actual != expected) {
        sink.Report(what, "expected " + std::to_string(expected) + ", got " +
                              std::to_string(actual));
      }
    };

    check("domain num_vars", static_cast<std::uint64_t>(enc.domain.num_vars),
          static_cast<std::uint64_t>(shape.num_vars));
    check("domain value_cubes", enc.domain.value_cubes.size(),
          static_cast<std::uint64_t>(k));
    check("domain structural clauses", enc.domain.structural.size(),
          shape.structural_clauses);
    check("vertex_offset entries", enc.vertex_offset.size(), n);
    for (std::size_t v = 0; v < enc.vertex_offset.size() && v < n; ++v) {
      const auto expected = static_cast<std::int64_t>(v) * enc.domain.num_vars;
      if (enc.vertex_offset[v] != expected) {
        sink.Report("vertex " + std::to_string(v),
                    "indexing block starts at " +
                        std::to_string(enc.vertex_offset[v]) + ", expected " +
                        std::to_string(expected));
        break;  // The numbering is systematically off; one report suffices.
      }
    }
    check("cnf num_vars", static_cast<std::uint64_t>(enc.cnf.num_vars()),
          n * static_cast<std::uint64_t>(shape.num_vars));
    check("structural clause count", enc.stats.structural_clauses,
          n * shape.structural_clauses);
    check("conflict clause count", enc.stats.conflict_clauses,
          num_edges * static_cast<std::uint64_t>(k));
    std::uint64_t expected_symmetry = 0;
    for (std::size_t j = 0; j < m; ++j) {
      const int width = k - 1 - static_cast<int>(j);
      expected_symmetry += width > 0 ? static_cast<std::uint64_t>(width) : 0;
    }
    check("symmetry clause count", enc.stats.symmetry_clauses,
          expected_symmetry);
    check("cnf clause total",
          static_cast<std::uint64_t>(enc.cnf.clauses().size()),
          enc.stats.structural_clauses + enc.stats.conflict_clauses +
              enc.stats.symmetry_clauses);
  }
};

// ---------------------------------------------------------------------------
// encoding-domain-semantics: every structural-satisfying assignment selects
// at least one value (exactly one when the encoding claims so), and every
// value stays reachable. Exhaustive over the per-vertex template, which the
// paper keeps narrow (indexing Booleans per CSP variable).
// ---------------------------------------------------------------------------
class DomainSemanticsPass final : public AnalysisPass {
 public:
  std::string_view name() const override {
    return "encoding-domain-semantics";
  }
  std::string_view description() const override {
    return "every assignment to the indexing Booleans selects a value";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.encoded != nullptr && input.spec != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const auto& domain = input.encoded->domain;
    const int w = domain.num_vars;
    const auto k = domain.value_cubes.size();

    // Static cube checks: in-range literals, internally consistent,
    // pairwise distinct.
    bool cubes_ok = true;
    ClauseMultiset seen_cubes;
    for (std::size_t d = 0; d < k; ++d) {
      const Cube& cube = domain.value_cubes[d];
      std::vector<bool> used(static_cast<std::size_t>(w > 0 ? w : 0), false);
      for (const Lit l : cube) {
        if (!l.IsValid() || l.var() >= w) {
          sink.Report("value " + std::to_string(d),
                      "cube literal " + l.ToString() +
                          " outside the indexing block (width " +
                          std::to_string(w) + ")");
          cubes_ok = false;
        } else if (used[static_cast<std::size_t>(l.var())]) {
          sink.Report("value " + std::to_string(d),
                      "cube mentions x" + std::to_string(l.var()) + " twice");
          cubes_ok = false;
        } else {
          used[static_cast<std::size_t>(l.var())] = true;
        }
      }
      std::vector<int> codes;
      codes.reserve(cube.size());
      for (const Lit l : cube) codes.push_back(l.code());
      std::sort(codes.begin(), codes.end());
      if (++seen_cubes[codes] == 2 && w > 0) {
        sink.Report("value " + std::to_string(d),
                    "selection cube duplicates an earlier value's cube");
        cubes_ok = false;
      }
    }
    for (std::size_t i = 0; i < domain.structural.size(); ++i) {
      for (const Lit l : domain.structural[i]) {
        if (!l.IsValid() || l.var() >= w) {
          sink.Report("structural clause " + std::to_string(i),
                      "literal " + l.ToString() +
                          " outside the indexing block (width " +
                          std::to_string(w) + ")");
          cubes_ok = false;
        }
      }
    }
    if (!cubes_ok) return;  // Semantic sweep would misreport on bad cubes.

    if (w > kMaxExhaustiveVars) {
      sink.ReportAt(Severity::kInfo, "domain",
                    "indexing block too wide for the exhaustive semantic "
                    "sweep (" +
                        std::to_string(w) + " > " +
                        std::to_string(kMaxExhaustiveVars) +
                        " variables); only static checks ran");
      return;
    }

    const auto lit_true = [](Lit l, std::uint32_t assignment) {
      const bool value = (assignment >> l.var()) & 1u;
      return l.negated() ? !value : value;
    };
    std::vector<bool> selectable(k, false);
    bool gap_reported = false;
    bool multi_reported = false;
    for (std::uint32_t assignment = 0;
         assignment < (1u << static_cast<unsigned>(w)); ++assignment) {
      const bool structural_ok = std::all_of(
          domain.structural.begin(), domain.structural.end(),
          [&](const Clause& clause) {
            return std::any_of(clause.begin(), clause.end(), [&](Lit l) {
              return lit_true(l, assignment);
            });
          });
      if (!structural_ok) continue;
      std::size_t selected = 0;
      for (std::size_t d = 0; d < k; ++d) {
        const Cube& cube = domain.value_cubes[d];
        if (std::all_of(cube.begin(), cube.end(), [&](Lit l) {
              return lit_true(l, assignment);
            })) {
          selectable[d] = true;
          ++selected;
        }
      }
      if (selected == 0 && !gap_reported) {
        sink.Report("assignment " + std::to_string(assignment),
                    "satisfies every structural clause but selects no value "
                    "(decoding would fail)");
        gap_reported = true;
      }
      if (selected > 1 && domain.exactly_one && !multi_reported) {
        sink.Report("assignment " + std::to_string(assignment),
                    "selects " + std::to_string(selected) +
                        " values although the encoding claims exactly-one");
        multi_reported = true;
      }
    }
    for (std::size_t d = 0; d < k; ++d) {
      if (!selectable[d]) {
        sink.Report("value " + std::to_string(d),
                    "unreachable: no structural-satisfying assignment "
                    "selects it");
      }
    }
  }

 private:
  static constexpr int kMaxExhaustiveVars = 16;
};

// ---------------------------------------------------------------------------
// encoding-vertex-structure: every vertex's indexing block carries the full
// shifted copy of the domain template's structural clauses.
// ---------------------------------------------------------------------------
class VertexStructurePass final : public AnalysisPass {
 public:
  std::string_view name() const override {
    return "encoding-vertex-structure";
  }
  std::string_view description() const override {
    return "per-vertex structural clauses must instantiate the template";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.HasEncoding();
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const EncodedColoring& enc = *input.encoded;
    ClauseMultiset counts = BuildClauseMultiset(enc.cnf);
    const auto n = std::min<std::size_t>(
        enc.vertex_offset.size(),
        static_cast<std::size_t>(input.conflict_graph->num_vertices()));
    for (std::size_t v = 0; v < n; ++v) {
      const int offset = enc.vertex_offset[v];
      for (std::size_t i = 0; i < enc.domain.structural.size(); ++i) {
        const Clause shifted =
            encode::ShiftClause(enc.domain.structural[i], offset);
        if (!ConsumeClause(counts, shifted)) {
          sink.Report("vertex " + std::to_string(v),
                      "missing structural clause " + std::to_string(i) + " " +
                          ClauseText(shifted));
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// encoding-conflict-edges: clauses spanning two vertex blocks are exactly
// the conflict clauses of registered conflict-graph edges.
// ---------------------------------------------------------------------------
class ConflictEdgesPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "encoding-conflict-edges"; }
  std::string_view description() const override {
    return "cross-vertex clauses <-> one conflict clause per edge per color";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.HasEncoding();
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const EncodedColoring& enc = *input.encoded;
    const graph::Graph& g = *input.conflict_graph;
    const int w = enc.domain.num_vars;
    if (w <= 0) {
      sink.ReportAt(Severity::kInfo, "domain",
                    "no indexing variables (K = 1); conflict clauses are "
                    "empty and cannot be attributed to edges");
      return;
    }

    // Expected multiset: one conflict clause per edge per color.
    ClauseMultiset expected;
    std::unordered_map<std::vector<int>, std::string, CodeVectorHash> origin;
    for (const auto& [u, v] : g.Edges()) {
      const int offset_u = enc.vertex_offset[static_cast<std::size_t>(u)];
      const int offset_v = enc.vertex_offset[static_cast<std::size_t>(v)];
      for (std::size_t d = 0; d < enc.domain.value_cubes.size(); ++d) {
        const Cube& cube = enc.domain.value_cubes[d];
        const std::vector<int> key = SortedCodes(
            encode::ConflictClause(cube, offset_u, cube, offset_v));
        ++expected[key];
        origin.emplace(key, "edge {" + std::to_string(u) + ", " +
                                std::to_string(v) + "} color " +
                                std::to_string(d));
      }
    }

    const auto& clauses = enc.cnf.clauses();
    const int num_vars = enc.cnf.num_vars();
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      const Clause& clause = clauses[i];
      std::set<int> blocks;
      bool in_range = true;
      for (const Lit l : clause) {
        if (!l.IsValid() || l.var() >= num_vars) {
          in_range = false;  // cnf-var-range owns reporting these.
          break;
        }
        blocks.insert(l.var() / w);
      }
      if (!in_range || blocks.size() < 2) continue;
      const std::string location = "clause " + std::to_string(i);
      if (blocks.size() > 2) {
        sink.Report(location,
                    "spans " + std::to_string(blocks.size()) +
                        " vertex blocks; only pairwise conflict clauses may "
                        "cross blocks");
        continue;
      }
      const int u = *blocks.begin();
      const int v = *std::next(blocks.begin());
      if (u >= g.num_vertices() || v >= g.num_vertices() ||
          !g.HasEdge(u, v)) {
        sink.Report(location,
                    "couples vertices " + std::to_string(u) + " and " +
                        std::to_string(v) +
                        " which share no conflict-graph edge");
        continue;
      }
      const auto it = expected.find(SortedCodes(clause));
      if (it == expected.end() || it->second == 0) {
        sink.Report(location,
                    "cross-vertex clause " + ClauseText(clause) +
                        " is not (or no longer) an expected conflict clause "
                        "of edge {" +
                        std::to_string(u) + ", " + std::to_string(v) + "}");
        continue;
      }
      --it->second;
    }

    std::size_t missing = 0;
    std::string example;
    for (const auto& [key, count] : expected) {
      if (count == 0) continue;
      missing += count;
      if (example.empty()) example = origin[key];
    }
    if (missing > 0) {
      sink.Report("conflict clauses",
                  std::to_string(missing) +
                      " expected conflict clause(s) missing (e.g. " + example +
                      ")");
    }
  }
};

// ---------------------------------------------------------------------------
// encoding-symmetry-prefix: the b1/s1 sequence is legal, its restriction
// clauses are all present, and it perturbs the NumberingKey (clause-sharing
// soundness).
// ---------------------------------------------------------------------------
class SymmetryPrefixPass final : public AnalysisPass {
 public:
  std::string_view name() const override {
    return "encoding-symmetry-prefix";
  }
  std::string_view description() const override {
    return "symmetry sequence legality, restriction clauses, NumberingKey";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.HasEncoding() && input.symmetry_sequence != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const EncodedColoring& enc = *input.encoded;
    const std::vector<graph::VertexId>& seq = *input.symmetry_sequence;
    if (seq.empty()) return;
    const int k = enc.num_colors;
    const auto n = static_cast<graph::VertexId>(
        input.conflict_graph->num_vertices());

    if (static_cast<int>(seq.size()) > k - 1) {
      sink.Report("sequence",
                  "length " + std::to_string(seq.size()) +
                      " exceeds K - 1 = " + std::to_string(k - 1) +
                      "; restricting more vertices than colors can break "
                      "K-colorability");
      return;
    }
    std::set<graph::VertexId> distinct;
    bool legal = true;
    for (std::size_t j = 0; j < seq.size(); ++j) {
      const graph::VertexId v = seq[j];
      if (v < 0 || v >= n) {
        sink.Report("sequence position " + std::to_string(j),
                    "vertex " + std::to_string(v) + " out of range [0, " +
                        std::to_string(n) + ")");
        legal = false;
      } else if (!distinct.insert(v).second) {
        sink.Report("sequence position " + std::to_string(j),
                    "vertex " + std::to_string(v) +
                        " appears twice; restrictions would conflict");
        legal = false;
      }
    }
    if (!legal) return;

    // Restriction clauses present: position j forbids colors > j.
    ClauseMultiset counts = BuildClauseMultiset(enc.cnf);
    for (std::size_t j = 0; j < seq.size(); ++j) {
      const int offset = enc.vertex_offset[static_cast<std::size_t>(seq[j])];
      for (int d = static_cast<int>(j) + 1; d < k; ++d) {
        const Clause restriction = encode::NegateCube(
            enc.domain.value_cubes[static_cast<std::size_t>(d)], offset);
        if (!ConsumeClause(counts, restriction)) {
          sink.Report("sequence position " + std::to_string(j),
                      "vertex " + std::to_string(seq[j]) +
                          ": missing restriction clause forbidding color " +
                          std::to_string(d));
        }
      }
    }

    // Clause-sharing soundness: the sequence must perturb the key, else
    // learnt clauses could leak between differently-restricted formulas.
    const std::uint64_t full = encode::NumberingKey(enc.domain, k, seq);
    if (full == encode::NumberingKey(enc.domain, k, {})) {
      sink.Report("NumberingKey",
                  "key ignores the symmetry sequence; clause sharing would "
                  "mix incompatible restrictions");
    }
    const std::vector<graph::VertexId> prefix(seq.begin(), seq.end() - 1);
    if (full == encode::NumberingKey(enc.domain, k, prefix)) {
      sink.Report("NumberingKey",
                  "key unchanged when the last sequence vertex is dropped; "
                  "different sequences must fingerprint differently");
    }
  }
};

// ---------------------------------------------------------------------------
// encoding-sink-equivalence: re-running the encoder through the streaming
// entry point (EncodeColoringToSink) must replay the materialized Cnf clause
// for clause — the guarantee that lets the default solve path skip the
// intermediate Cnf entirely.
// ---------------------------------------------------------------------------

/// Sink that diffs the incoming stream against an existing Cnf in order.
class VerifyAgainstCnfSink final : public sat::ClauseSink {
 public:
  explicit VerifyAgainstCnfSink(const sat::Cnf& reference)
      : reference_(reference) {}

  bool HasMismatch() const { return first_mismatch_ >= 0; }
  std::int64_t first_mismatch() const { return first_mismatch_; }
  const std::string& mismatch_detail() const { return mismatch_detail_; }

 protected:
  void DoEmit(const Lit* lits, std::size_t n) override {
    if (first_mismatch_ >= 0) return;  // first divergence suffices
    const std::size_t index = static_cast<std::size_t>(num_clauses_ - 1);
    if (index >= reference_.num_clauses()) {
      first_mismatch_ = static_cast<std::int64_t>(index);
      mismatch_detail_ = "stream emits clause " + std::to_string(index) +
                         " but the materialized CNF has only " +
                         std::to_string(reference_.num_clauses());
      return;
    }
    const Clause& expected = reference_.clauses()[index];
    if (expected.size() != n ||
        !std::equal(expected.begin(), expected.end(), lits)) {
      first_mismatch_ = static_cast<std::int64_t>(index);
      mismatch_detail_ = "streamed " + ClauseText(Clause(lits, lits + n)) +
                         ", materialized " + ClauseText(expected);
    }
  }

 private:
  const sat::Cnf& reference_;
  std::int64_t first_mismatch_ = -1;
  std::string mismatch_detail_;
};

class SinkEquivalencePass final : public AnalysisPass {
 public:
  std::string_view name() const override {
    return "encoding-sink-equivalence";
  }
  std::string_view description() const override {
    return "streamed emission must replay the materialized CNF exactly";
  }
  bool Applicable(const AnalysisInput& input) const override {
    return input.HasEncoding() && input.spec != nullptr;
  }
  void Run(const AnalysisInput& input, DiagnosticSink& sink) const override {
    const EncodedColoring& enc = *input.encoded;
    const std::vector<graph::VertexId> empty_sequence;
    const std::vector<graph::VertexId>& seq =
        input.symmetry_sequence ? *input.symmetry_sequence : empty_sequence;

    VerifyAgainstCnfSink verify(enc.cnf);
    const encode::ColoringLayout layout = encode::EncodeColoringToSink(
        *input.conflict_graph, enc.num_colors, *input.spec, seq, verify);
    verify.Finish();

    if (verify.HasMismatch()) {
      sink.Report("clause " + std::to_string(verify.first_mismatch()),
                  "stream diverges from the materialized CNF: " +
                      verify.mismatch_detail());
    }
    if (verify.num_clauses() != enc.cnf.num_clauses()) {
      sink.Report("clause total",
                  "stream emitted " + std::to_string(verify.num_clauses()) +
                      " clauses, materialized CNF has " +
                      std::to_string(enc.cnf.num_clauses()));
    }
    if (layout.num_vars != enc.cnf.num_vars() ||
        verify.num_vars() != enc.cnf.num_vars()) {
      sink.Report("num_vars",
                  "stream declared " + std::to_string(layout.num_vars) +
                      " variables, materialized CNF has " +
                      std::to_string(enc.cnf.num_vars()));
    }
    if (layout.vertex_offset != enc.vertex_offset) {
      sink.Report("vertex_offset",
                  "streamed layout numbers vertex blocks differently from "
                  "the materialized encoding");
    }
    if (encode::NumberingKey(layout.domain, layout.num_colors, seq) !=
        encode::NumberingKey(enc.domain, enc.num_colors, seq)) {
      sink.Report("NumberingKey",
                  "streamed layout fingerprints differently from the "
                  "materialized encoding; clause sharing would treat equal "
                  "formulas as incompatible");
    }
    const std::uint64_t expected_total = encode::ExpectedColoringClauses(
        *input.conflict_graph, enc.domain, enc.num_colors, seq.size());
    if (expected_total != verify.num_clauses()) {
      sink.Report("ExpectedColoringClauses",
                  "reserve formula predicts " + std::to_string(expected_total) +
                      " clauses, stream emitted " +
                      std::to_string(verify.num_clauses()));
    }
  }
};

}  // namespace

ExpectedDomainShape ComputeExpectedDomainShape(const EncodingSpec& spec,
                                               int domain_size) {
  return ShapeRec(spec.levels, 0, domain_size);
}

void AddEncodingPasses(AnalysisRunner& runner) {
  runner.AddPass(std::make_unique<ClauseCountsPass>());
  runner.AddPass(std::make_unique<DomainSemanticsPass>());
  runner.AddPass(std::make_unique<VertexStructurePass>());
  runner.AddPass(std::make_unique<ConflictEdgesPass>());
  runner.AddPass(std::make_unique<SymmetryPrefixPass>());
  runner.AddPass(std::make_unique<SinkEquivalencePass>());
}

}  // namespace satfr::analysis
