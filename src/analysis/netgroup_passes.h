// Net-group hygiene: the contract of a grouped encode
// (encode::NetGroupedSink) as a lintable property.
//
// The incremental routing session's soundness rests on three structural
// invariants of the clause stream (see net_group.h): every clause inside a
// group range carries exactly one copy of the group's own negated selector
// — so deactivated groups are vacuous under their literal and active groups
// reduce to the unguarded encoding — plus at most one cross guard (another
// group's selector, also negated: a conflict clause dies when either
// endpoint's net is retired) and no other activation-region literal; group
// ranges are pairwise disjoint with distinct activation variables; and
// clauses outside every group touch activation variables only as unit
// clauses (the activation / retirement toggles themselves). The pass needs
// the AnalysisInput's `cnf` and `net_groups` together, with clause index
// i = sink ordinal i.
#pragma once

#include "analysis/runner.h"

namespace satfr::analysis {

/// Registers the net-group layer:
///   net-group-hygiene (error)  activation-literal / range-disjointness /
///                              vacuity contract of a grouped encode
void AddNetGroupPasses(AnalysisRunner& runner);

}  // namespace satfr::analysis
