#include "analysis/runner.h"

#include <algorithm>

#include "analysis/cnf_passes.h"
#include "analysis/cube_passes.h"
#include "analysis/encoding_passes.h"
#include "analysis/graph_passes.h"
#include "analysis/netgroup_passes.h"
#include "analysis/service_passes.h"
#include "analysis/solver_passes.h"
#include "analysis/source_passes.h"
#include "analysis/telemetry_passes.h"

namespace satfr::analysis {

const char* ToString(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

void DiagnosticSink::ReportAt(Severity severity, std::string location,
                              std::string message) {
  ++num_reported_;
  if (num_reported_ > kMaxStoredPerPass) {
    ++num_suppressed_;
    return;
  }
  Diagnostic d;
  d.severity = forced_severity_ ? severity_ : severity;
  d.pass = pass_;
  d.location = std::move(location);
  d.message = std::move(message);
  out_->push_back(std::move(d));
}

std::size_t AnalysisReport::Count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

void AnalysisRunner::AddPass(std::unique_ptr<AnalysisPass> pass) {
  passes_.push_back(std::move(pass));
  configs_.emplace_back();
}

bool AnalysisRunner::Configure(std::string_view pass_name,
                               const PassConfig& config) {
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    if (passes_[i]->name() == pass_name) {
      configs_[i] = config;
      return true;
    }
  }
  return false;
}

AnalysisReport AnalysisRunner::Run(const AnalysisInput& input) const {
  AnalysisReport report;
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    const AnalysisPass& pass = *passes_[i];
    const PassConfig& config = configs_[i];
    PassOutcome outcome;
    outcome.pass = std::string(pass.name());
    if (config.enabled && pass.Applicable(input)) {
      const Severity severity =
          config.severity.value_or(pass.default_severity());
      DiagnosticSink sink(outcome.pass, severity, config.severity.has_value(),
                          &report.diagnostics);
      pass.Run(input, sink);
      outcome.ran = true;
      outcome.findings = sink.num_reported();
      if (sink.num_suppressed() > 0) {
        report.diagnostics.push_back(
            {severity, outcome.pass, "summary",
             std::to_string(sink.num_suppressed()) +
                 " further finding(s) suppressed (storage bound " +
                 std::to_string(DiagnosticSink::kMaxStoredPerPass) + ")"});
      }
    }
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

AnalysisRunner MakeDefaultRunner() {
  AnalysisRunner runner;
  AddCnfPasses(runner);
  AddEncodingPasses(runner);
  AddNetGroupPasses(runner);
  AddGraphPasses(runner);
  AddSolverPasses(runner);
  AddCubePasses(runner);
  AddTelemetryPasses(runner);
  AddServicePasses(runner);
  AddSourcePasses(runner);
  return runner;
}

std::string FormatText(const AnalysisReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += std::string(ToString(d.severity)) + " [" + d.pass + "] " +
           d.location + ": " + d.message + "\n";
  }
  std::size_t ran = 0;
  for (const PassOutcome& o : report.outcomes) ran += o.ran ? 1 : 0;
  out += std::to_string(ran) + "/" + std::to_string(report.outcomes.size()) +
         " passes ran: " + std::to_string(report.Count(Severity::kError)) +
         " error(s), " + std::to_string(report.Count(Severity::kWarning)) +
         " warning(s), " + std::to_string(report.Count(Severity::kInfo)) +
         " info(s)\n";
  return out;
}

namespace {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatJson(const AnalysisReport& report) {
  std::string out = "{\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"severity\": \"" + std::string(ToString(d.severity)) +
           "\", \"pass\": \"" + JsonEscape(d.pass) + "\", \"location\": \"" +
           JsonEscape(d.location) + "\", \"message\": \"" +
           JsonEscape(d.message) + "\"}";
  }
  out += report.diagnostics.empty() ? "],\n" : "\n  ],\n";
  out += "  \"passes\": [";
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const PassOutcome& o = report.outcomes[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"pass\": \"" + JsonEscape(o.pass) + "\", \"ran\": " +
           (o.ran ? "true" : "false") +
           ", \"findings\": " + std::to_string(o.findings) + "}";
  }
  out += report.outcomes.empty() ? "],\n" : "\n  ],\n";
  out += "  \"errors\": " + std::to_string(report.Count(Severity::kError)) +
         ",\n  \"warnings\": " +
         std::to_string(report.Count(Severity::kWarning)) +
         ",\n  \"infos\": " + std::to_string(report.Count(Severity::kInfo)) +
         "\n}\n";
  return out;
}

}  // namespace satfr::analysis
