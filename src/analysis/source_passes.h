// Source-scan lint layer (`satlint sources <file...>`): textual contracts
// over the repository's own source files.
//
// Unlike the artifact passes, these inspect code, not CNF — the first
// client is the concurrency toolkit: every atomic, fence, and mutex in the
// lock-free layers (src/cube, src/obs, src/sat/clause_exchange.*) must go
// through the mc:: shim so the model checker in src/mc can see it. A raw
// std::atomic in those files is invisible to schedule exploration and
// therefore unverified — exactly the regression this pass exists to catch.
#pragma once

#include "analysis/runner.h"

namespace satfr::analysis {

/// Registers the source-scan passes:
///   mc-coverage (error) model-checked directories use the mc:: shim, not
///                       raw std::atomic / std::mutex / fences
void AddSourcePasses(AnalysisRunner& runner);

}  // namespace satfr::analysis
