// Service lint pass: verdict-cache coherence.
//
// The routing service's verdict cache serves answers without touching a
// solver; `RoutingService::SampleCoherence` re-solves a sampled subset of
// resident entries fresh (no cache, same flow) and records both verdicts
// as `CoherenceSample`s. This pass judges the samples: a cached verdict
// disagreeing with its fresh re-solve, or a cached SAT entry whose tracks
// are not a proper coloring of the entry's own graph, is a cache-keying or
// eviction bug serving wrong answers at scale — error severity. Wired into
// `satfr serve --selfcheck`.
#pragma once

#include "analysis/runner.h"

namespace satfr::analysis {

/// Registers the service passes:
///   service-cache-coherence (error) sampled verdict-cache entries agree
///                                   with a fresh solve; cached SAT tracks
///                                   are proper colorings
void AddServicePasses(AnalysisRunner& runner);

}  // namespace satfr::analysis
