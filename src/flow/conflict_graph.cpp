#include "flow/conflict_graph.h"

namespace satfr::flow {

graph::Graph BuildConflictGraph(const fpga::Arch& arch,
                                const route::GlobalRouting& routing) {
  graph::Graph g(static_cast<graph::VertexId>(routing.NumTwoPinNets()));
  // Per-segment occupant lists.
  std::vector<std::vector<graph::VertexId>> occupants(
      static_cast<std::size_t>(arch.num_segments()));
  for (std::size_t i = 0; i < routing.routes.size(); ++i) {
    for (const fpga::SegmentIndex seg : routing.routes[i]) {
      occupants[static_cast<std::size_t>(seg)].push_back(
          static_cast<graph::VertexId>(i));
    }
  }
  for (const auto& list : occupants) {
    for (std::size_t a = 0; a < list.size(); ++a) {
      for (std::size_t b = a + 1; b < list.size(); ++b) {
        const auto& net_a =
            routing.two_pin_nets[static_cast<std::size_t>(list[a])];
        const auto& net_b =
            routing.two_pin_nets[static_cast<std::size_t>(list[b])];
        if (net_a.parent != net_b.parent) {
          g.AddEdge(list[a], list[b]);  // dedups repeated sharing
        }
      }
    }
  }
  return g;
}

}  // namespace satfr::flow
