#include "flow/routing_session.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "common/stopwatch.h"
#include "encode/cube.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/solver_trace.h"
#include "obs/trace.h"

namespace satfr::flow {

namespace {

const char* RunLabel(const RoutingSessionOptions& options) {
  return options.run_label.empty() ? "graph" : options.run_label.c_str();
}

void EraseValue(std::vector<graph::VertexId>& list, graph::VertexId value) {
  const auto it = std::find(list.begin(), list.end(), value);
  assert(it != list.end() && "edge bookkeeping out of sync");
  list.erase(it);
}

struct DeltaMetrics {
  obs::MetricId applied;
  obs::MetricId micros;
  DeltaMetrics() {
    applied = obs::GlobalMetrics().Counter("session.deltas_applied");
    micros = obs::GlobalMetrics().Histogram("session.delta_micros");
  }
};

void RecordDelta(double seconds) {
  static DeltaMetrics metrics;
  obs::GlobalMetrics().Add(metrics.applied);
  obs::GlobalMetrics().Observe(
      metrics.micros, static_cast<std::uint64_t>(seconds * 1e6));
}

}  // namespace

RoutingSession::RoutingSession(const graph::Graph& conflict_graph,
                               int max_width,
                               const RoutingSessionOptions& options)
    : options_(options),
      max_width_(max_width),
      num_nets_(conflict_graph.num_vertices()),
      solver_(options.solver),
      solver_sink_(solver_) {
  if (max_width_ < 1) {
    error_ = "max_width must be >= 1";
    return;
  }
  if (options_.audit) {
    audit_cnf_.emplace();
    audit_sink_.emplace(*audit_cnf_);
    tee_.emplace(solver_sink_, *audit_sink_);
    grouped_.emplace(*tee_);
  } else {
    grouped_.emplace(solver_sink_);
  }

  obs::TraceSpan span(obs::GlobalTrace(), "session_encode", "session");
  span.AddArg("instance", obs::JsonValue(RunLabel(options_)));
  span.AddArg("max_width", obs::JsonValue(max_width_));

  // Base layout first, then the width-ladder guards, then (only) activation
  // variables — the fixed region order that keeps the exchange's
  // NumberingKey valid however many selectors the deltas allocate later.
  layout_ = encode::MakeColoringLayout(conflict_graph, max_width_,
                                       options_.encoding);
  grouped_->EnsureVars(layout_.num_vars);

  sequence_ = symmetry::SymmetrySequence(conflict_graph, max_width_,
                                         options_.heuristic);
  sym_position_.assign(static_cast<std::size_t>(num_nets_), 0);
  for (std::size_t j = 0; j < sequence_.size(); ++j) {
    sym_position_[static_cast<std::size_t>(sequence_[j])] =
        static_cast<int>(j) + 1;
  }

  // Width guard ladder (see incremental_min_width): g_W forbids track W
  // everywhere and implies g_{W+1}; assuming g_W caps the usable tracks at
  // W. Emitted outside every group — the ladder is graph-independent, so no
  // delta ever touches it.
  guard_.assign(static_cast<std::size_t>(max_width_), -1);
  for (int w = 1; w < max_width_; ++w) {
    guard_[static_cast<std::size_t>(w)] = grouped_->EmitVar();
  }
  sat::Clause scratch;
  for (int w = 1; w < max_width_; ++w) {
    const sat::Var g = guard_[static_cast<std::size_t>(w)];
    if (w + 1 < max_width_) {
      grouped_->EmitBinary(
          sat::Lit::Neg(g),
          sat::Lit::Pos(guard_[static_cast<std::size_t>(w + 1)]));
    }
    for (std::size_t v = 0; v < layout_.vertex_offset.size(); ++v) {
      scratch = encode::NegateCube(
          layout_.domain.value_cubes[static_cast<std::size_t>(w)],
          layout_.vertex_offset[v]);
      scratch.push_back(sat::Lit::Neg(g));
      grouped_->EmitClause(scratch);
    }
  }

  // Everything from here up is the base numbering; everything from here on
  // is a selector.
  solver_.ReserveActivationVars(num_nets_);
  grouped_->ReserveClauses(encode::ExpectedColoringClauses(
      conflict_graph, layout_.domain, max_width_, sequence_.size()));

  activation_.assign(static_cast<std::size_t>(num_nets_), -1);
  active_.assign(static_cast<std::size_t>(num_nets_), 1);
  owned_.assign(static_cast<std::size_t>(num_nets_), {});
  owned_by_.assign(static_cast<std::size_t>(num_nets_), {});
  for (graph::VertexId v = 0; v < num_nets_; ++v) {
    for (const graph::VertexId u : conflict_graph.Neighbors(v)) {
      if (u < v) {
        owned_[static_cast<std::size_t>(v)].push_back(u);
        owned_by_[static_cast<std::size_t>(u)].push_back(v);
      }
    }
  }
  for (graph::VertexId v = 0; v < num_nets_; ++v) EmitGroup(v);
  num_active_ = num_nets_;
  session_stats_.full_encodes = 1;
  span.AddArg("clauses", obs::JsonValue(grouped_->num_clauses()));
  span.End();

  if (!solver_.okay()) {
    // Every emitted clause is either guarded by a selector or part of the
    // ladder, so the bare clause set cannot be contradictory. Defensive.
    error_ = "resident solver refuted the guarded formula at encode time";
    return;
  }
  constructed_ok_ = true;
}

void RoutingSession::EmitGroup(graph::VertexId net) {
  const std::vector<graph::VertexId>& owned =
      owned_[static_cast<std::size_t>(net)];
  guard_scratch_.clear();
  for (const graph::VertexId u : owned) {
    // Partners are active, so their selectors are live; the cross guard
    // makes each conflict clause vacuous the moment the partner retires.
    guard_scratch_.push_back(
        sat::Lit::Neg(activation_[static_cast<std::size_t>(u)]));
  }
  activation_[static_cast<std::size_t>(net)] = encode::EmitNetGroup(
      layout_, net, sym_position_[static_cast<std::size_t>(net)], owned,
      guard_scratch_, *grouped_, nullptr);
  ++session_stats_.groups_emitted;
}

void RoutingSession::RetireGroup(graph::VertexId net) {
  sat::Var& selector = activation_[static_cast<std::size_t>(net)];
  if (selector < 0) return;
  solver_.RetireActivationGroup(selector);
  selector = -1;
  ++session_stats_.groups_retired;
}

bool RoutingSession::RipUp(graph::VertexId net) {
  if (!constructed_ok_) return false;
  error_.clear();
  if (net < 0 || net >= num_nets_) {
    error_ = "RipUp: net " + std::to_string(net) + " out of range";
    return false;
  }
  if (!active_[static_cast<std::size_t>(net)]) {
    error_ = "RipUp: net " + std::to_string(net) + " is already inactive";
    return false;
  }
  Stopwatch stopwatch;
  const std::uint64_t clauses_before = grouped_->num_clauses();
  obs::TraceSpan span(obs::GlobalTrace(), "ripup net " + std::to_string(net),
                      "session");

  // Retiring `net`'s selector silences every clause that mentions the net:
  // its own group directly, and partner-owned conflict clauses through the
  // cross guard each of them carries. The partners' groups stay resident
  // untouched — a rip-up emits exactly one unit clause.
  const std::size_t detached =
      owned_by_[static_cast<std::size_t>(net)].size();
  for (const graph::VertexId w : owned_by_[static_cast<std::size_t>(net)]) {
    EraseValue(owned_[static_cast<std::size_t>(w)], net);
  }
  owned_by_[static_cast<std::size_t>(net)].clear();
  for (const graph::VertexId u : owned_[static_cast<std::size_t>(net)]) {
    EraseValue(owned_by_[static_cast<std::size_t>(u)], net);
  }
  owned_[static_cast<std::size_t>(net)].clear();
  RetireGroup(net);
  active_[static_cast<std::size_t>(net)] = 0;
  --num_active_;

  ++session_stats_.deltas_applied;
  session_stats_.partner_detachments += detached;
  session_stats_.delta_clauses +=
      grouped_->num_clauses() - clauses_before;
  const double seconds = stopwatch.Seconds();
  session_stats_.delta_seconds += seconds;
  RecordDelta(seconds);
  span.AddArg("detached",
              obs::JsonValue(static_cast<std::uint64_t>(detached)));
  span.AddArg("clauses_emitted",
              obs::JsonValue(grouped_->num_clauses() - clauses_before));
  return true;
}

bool RoutingSession::Reroute(graph::VertexId net,
                             const std::vector<graph::VertexId>& conflicts) {
  if (!constructed_ok_) return false;
  error_.clear();
  if (net < 0 || net >= num_nets_) {
    error_ = "Reroute: net " + std::to_string(net) + " out of range";
    return false;
  }
  for (const graph::VertexId u : conflicts) {
    if (u < 0 || u >= num_nets_) {
      error_ = "Reroute: partner " + std::to_string(u) + " out of range";
      return false;
    }
    if (u == net) {
      error_ = "Reroute: net cannot conflict with itself";
      return false;
    }
    if (!active_[static_cast<std::size_t>(u)]) {
      error_ = "Reroute: partner " + std::to_string(u) + " is inactive";
      return false;
    }
    if (std::count(conflicts.begin(), conflicts.end(), u) != 1) {
      error_ = "Reroute: duplicate partner " + std::to_string(u);
      return false;
    }
  }
  if (active_[static_cast<std::size_t>(net)] && !RipUp(net)) return false;

  Stopwatch stopwatch;
  const std::uint64_t clauses_before = grouped_->num_clauses();
  obs::TraceSpan span(obs::GlobalTrace(),
                      "reroute net " + std::to_string(net), "session");
  // The re-routed net becomes the owner of every one of its edges (the
  // "most recently re-routed endpoint" rule), so a later rip-up of a
  // partner bumps this net rather than leaving a stale edge clause behind.
  owned_[static_cast<std::size_t>(net)] = conflicts;
  for (const graph::VertexId u : conflicts) {
    owned_by_[static_cast<std::size_t>(u)].push_back(net);
  }
  EmitGroup(net);
  active_[static_cast<std::size_t>(net)] = 1;
  ++num_active_;

  ++session_stats_.deltas_applied;
  session_stats_.delta_clauses +=
      grouped_->num_clauses() - clauses_before;
  const double seconds = stopwatch.Seconds();
  session_stats_.delta_seconds += seconds;
  RecordDelta(seconds);
  span.AddArg("conflicts",
              obs::JsonValue(static_cast<std::uint64_t>(conflicts.size())));
  span.AddArg("clauses_emitted",
              obs::JsonValue(grouped_->num_clauses() - clauses_before));
  return true;
}

SessionSolveResult RoutingSession::Solve(int width) {
  SessionSolveResult out;
  if (!constructed_ok_) {
    out.error = error_.empty() ? "session failed to construct" : error_;
    return out;
  }
  error_.clear();
  if (width < 1 || width > max_width_) {
    out.error = "Solve: width " + std::to_string(width) +
                " outside [1, " + std::to_string(max_width_) + "]";
    return out;
  }
  assumptions_.clear();
  if (width < max_width_) {
    assumptions_.push_back(
        sat::Lit::Pos(guard_[static_cast<std::size_t>(width)]));
  }
  for (graph::VertexId n = 0; n < num_nets_; ++n) {
    if (active_[static_cast<std::size_t>(n)]) {
      assumptions_.push_back(
          sat::Lit::Pos(activation_[static_cast<std::size_t>(n)]));
    }
  }

  obs::TraceWriter* const trace = obs::GlobalTrace();
  obs::RunReportWriter* const report = obs::GlobalReport();
  const sat::SolverStats before = solver_.stats();
  std::optional<obs::SolverTelemetryObserver> observer;
  if (trace != nullptr || report != nullptr) {
    observer.emplace(trace);
    solver_.SetObserver(&*observer);
  }
  obs::TraceSpan span(trace, "session solve width " + std::to_string(width),
                      "session");
  const Deadline deadline = options_.timeout_seconds > 0.0
                                ? Deadline::After(options_.timeout_seconds)
                                : Deadline::Infinite();
  out.status = solver_.SolveWithAssumptions(assumptions_, deadline);
  span.AddArg("verdict", obs::JsonValue(sat::ToString(out.status)));
  span.End();
  if (observer.has_value()) solver_.SetObserver(nullptr);

  const sat::SolverStats window = solver_.stats().Since(before);
  out.solve_seconds = window.solve_seconds;
  ++session_stats_.solves;

  if (report != nullptr) {
    obs::RunRecord record;
    record.instance = RunLabel(options_);
    record.phase = "session";
    record.encoding = options_.encoding.name;
    record.symmetry = symmetry::ToString(options_.heuristic);
    record.width = width;
    record.verdict = sat::ToString(out.status);
    // The per-record delta window: everything applied since the previous
    // Solve record, with the emission time reported as encode_seconds.
    record.deltas_applied =
        session_stats_.deltas_applied - reported_deltas_;
    record.groups_retired =
        session_stats_.groups_retired - reported_retired_;
    record.encode_seconds =
        session_stats_.delta_seconds - reported_delta_seconds_;
    record.solve_seconds = window.solve_seconds;
    record.total_seconds = record.encode_seconds + record.solve_seconds;
    record.cnf_vars = static_cast<std::uint64_t>(solver_.num_vars());
    record.cnf_clauses = grouped_->num_clauses();
    record.SetSolverWindow(window);
    const sat::LearntTierSizes tiers = solver_.TierSizes();
    record.learnts_core = tiers.core;
    record.learnts_tier2 = tiers.tier2;
    record.learnts_local = tiers.local;
    record.peak_clause_memory_bytes = solver_.ClauseMemoryBytes();
    if (observer.has_value()) observer->FillRecord(&record);
    report->Append(record);
    reported_deltas_ = session_stats_.deltas_applied;
    reported_retired_ = session_stats_.groups_retired;
    reported_delta_seconds_ = session_stats_.delta_seconds;
  }

  if (out.status == sat::SolveResult::kSat) {
    std::vector<int> tracks = encode::DecodeColoring(layout_, solver_.model());
    bool valid = static_cast<int>(tracks.size()) == num_nets_;
    for (graph::VertexId n = 0; valid && n < num_nets_; ++n) {
      if (!active_[static_cast<std::size_t>(n)]) {
        tracks[static_cast<std::size_t>(n)] = -1;
        continue;
      }
      const int track = tracks[static_cast<std::size_t>(n)];
      if (track < 0 || track >= width) valid = false;
      for (const graph::VertexId u : owned_[static_cast<std::size_t>(n)]) {
        if (tracks[static_cast<std::size_t>(u)] == track) valid = false;
      }
    }
    if (!valid) {
      // Real check, not an assert: a bad decode means a solver or encoding
      // bug and must surface in Release builds too.
      out.status = sat::SolveResult::kUnknown;
      out.error = "decoded model at width " + std::to_string(width) +
                  " is not a proper routing of the active nets";
      return out;
    }
    out.tracks = std::move(tracks);
  } else if (out.status == sat::SolveResult::kUnsat && !solver_.okay()) {
    // Cannot happen: every clause is retractable or ladder-guarded.
    out.error = "resident solver refuted the formula outright";
  }
  return out;
}

graph::Graph RoutingSession::ActiveConflictGraph() const {
  graph::Graph g(num_nets_);
  for (graph::VertexId v = 0; v < num_nets_; ++v) {
    for (const graph::VertexId u : owned_[static_cast<std::size_t>(v)]) {
      g.AddEdge(u, v);
    }
  }
  return g;
}

}  // namespace satfr::flow
