// Minimum channel-width search with an unroutability proof.
//
// The paper's headline capability: because SAT can prove UNSAT, a detailed
// routing found at width W* is *optimal* once W*-1 is proven unroutable.
// This module searches upward from the congestion lower bound and returns
// both the routable result at W* and the UNSAT proof at W*-1 (when W* is
// above the trivial bound of 1).
#pragma once

#include "flow/detailed_router.h"

namespace satfr::flow {

struct MinWidthOptions {
  DetailedRouteOptions route;
  /// Upper bound on the search (safety net; conflict graphs are always
  /// colorable with max-degree+1 colors).
  int max_width = 64;
  /// Cube-and-conquer: when > 0, each width is solved by a cube worker
  /// pool (src/cube) of this many resident solvers instead of one
  /// monolithic solver — the hard UNSAT widths parallelize across the cube
  /// split. route.encoding/heuristic/solver/timeout/stop still apply;
  /// route.exchange does not (the pool runs its own internal exchange).
  int cube_workers = 0;
  /// Cube-count target per width (see cube::CubeGenOptions).
  int cube_target_cubes = 256;
  /// Pin cube order and disable stealing/sharing (reproducible runs).
  bool cube_deterministic = false;
};

struct MinWidthResult {
  /// Smallest W with a detailed routing; -1 if the search failed (timeout
  /// or max_width exceeded).
  int min_width = -1;
  /// Congestion lower bound the search started from.
  int lower_bound = 1;
  /// True when min_width-1 was proven UNSAT (or min_width == 1).
  bool proven_optimal = false;
  /// Result at min_width (status kSat) — the detailed routing.
  DetailedRouteResult routable;
  /// Result at min_width - 1 (status kUnsat) when proven_optimal and
  /// min_width > 1 — the paper's "unroutable configuration".
  DetailedRouteResult unroutable;
};

MinWidthResult FindMinimumWidth(const fpga::Arch& arch,
                                const route::GlobalRouting& routing,
                                const MinWidthOptions& options = {});

/// Same search on a prebuilt conflict graph.
MinWidthResult FindMinimumWidthOnGraph(const graph::Graph& conflict_graph,
                                       int congestion_lower_bound,
                                       const MinWidthOptions& options = {});

}  // namespace satfr::flow
