#include "flow/detailed_router.h"

#include <cassert>
#include <utility>

#include "analysis/runner.h"
#include "flow/conflict_graph.h"
#include "flow/track_checker.h"
#include "sat/clause_sink.h"
#include "sat/rup_checker.h"

namespace satfr::flow {
namespace {

/// `routing` is non-null only when the caller extracted the conflict graph
/// from a global routing itself; the selfcheck's flow-two-pin pass then
/// cross-checks the two.
DetailedRouteResult SolveOnGraph(const graph::Graph& conflict_graph,
                                 int num_tracks,
                                 const DetailedRouteOptions& options,
                                 double coloring_seconds,
                                 const route::GlobalRouting* routing) {
  DetailedRouteResult result;
  result.coloring_seconds = coloring_seconds;
  result.conflict_vertices = conflict_graph.num_vertices();
  result.conflict_edges = conflict_graph.num_edges();

  Stopwatch encode_watch;
  const std::vector<graph::VertexId> sequence = symmetry::SymmetrySequence(
      conflict_graph, num_tracks, options.heuristic);

  sat::Solver solver(options.solver);
  std::vector<sat::Clause> proof;
  if (options.verify_unsat_proof) solver.SetProofLog(&proof);
  if (options.exchange != nullptr && options.exchange_participant >= 0) {
    solver.SetClauseExchange(options.exchange, options.exchange_participant);
  }

  // The lint passes re-walk the CNF and the RUP checker re-propagates it, so
  // both need the materialized formula; everyone else streams the encoder
  // straight into the solver and never holds an intermediate Cnf.
  const bool materialize = options.selfcheck || options.verify_unsat_proof;
  encode::ColoringLayout layout;
  encode::EncodedColoring encoded;
  bool consistent = true;
  if (materialize) {
    encoded = encode::EncodeColoring(conflict_graph, num_tracks,
                                     options.encoding, sequence);
    if (options.selfcheck) {
      const analysis::AnalysisRunner runner = analysis::MakeDefaultRunner();
      analysis::AnalysisInput lint_input;
      lint_input.cnf = &encoded.cnf;
      lint_input.conflict_graph = &conflict_graph;
      lint_input.encoded = &encoded;
      lint_input.spec = &options.encoding;
      lint_input.symmetry_sequence = &sequence;
      lint_input.routing = routing;
      analysis::AnalysisReport report = runner.Run(lint_input);
      const bool broken = report.HasErrors();
      result.lint = std::move(report.diagnostics);
      if (broken) {
        // Never hand a formula that violates its own encoding contract to
        // the solver: its answer would say nothing about the routing
        // instance.
        result.encode_seconds = encode_watch.Seconds();
        result.status = sat::SolveResult::kUnknown;
        return result;
      }
    }
    consistent = solver.AddCnf(encoded.cnf);
    layout = std::move(static_cast<encode::ColoringLayout&>(encoded));
  } else {
    sat::SolverSink direct(solver);
    if (options.inline_simplify) {
      sat::SimplifyingSink simplify(direct);
      layout = encode::EncodeColoringToSink(
          conflict_graph, num_tracks, options.encoding, sequence, simplify);
      layout.stats.simplify_dropped_clauses =
          simplify.stats().DroppedClauses();
      layout.stats.simplify_eliminated_literals =
          simplify.stats().eliminated_literals;
      layout.stats.simplify_fixed_units = simplify.stats().fixed_units;
      consistent = simplify.Finish();
    } else {
      layout = encode::EncodeColoringToSink(
          conflict_graph, num_tracks, options.encoding, sequence, direct);
      consistent = direct.Finish();
    }
    result.streamed_encode = true;
  }
  result.cnf_vars = layout.num_vars;
  result.cnf_clauses = layout.stats.TotalEmitted();
  result.encode_stats = layout.stats;
  result.encode_seconds = encode_watch.Seconds();

  Stopwatch solve_watch;
  if (!consistent) {
    result.status = sat::SolveResult::kUnsat;
  } else {
    const Deadline deadline = options.timeout_seconds > 0.0
                                  ? Deadline::After(options.timeout_seconds)
                                  : Deadline::Infinite();
    result.status = solver.Solve(deadline, options.stop);
  }
  result.solve_seconds = solve_watch.Seconds();
  result.solver_stats = solver.stats();

  if (result.status == sat::SolveResult::kSat) {
    result.tracks = encode::DecodeColoring(layout, solver.model());
    assert(conflict_graph.IsProperColoring(result.tracks) &&
           "decoded model must be a proper coloring");
  } else if (result.status == sat::SolveResult::kUnsat &&
             options.verify_unsat_proof) {
    result.proof_clauses = proof.size();
    result.proof_verified = sat::VerifyRupRefutation(encoded.cnf, proof);
  }
  return result;
}

}  // namespace

DetailedRouteResult RouteDetailed(const fpga::Arch& arch,
                                  const route::GlobalRouting& routing,
                                  int num_tracks,
                                  const DetailedRouteOptions& options) {
  Stopwatch coloring_watch;
  const graph::Graph conflict_graph = BuildConflictGraph(arch, routing);
  const double coloring_seconds = coloring_watch.Seconds();
  DetailedRouteResult result = SolveOnGraph(conflict_graph, num_tracks,
                                            options, coloring_seconds,
                                            &routing);
#ifndef NDEBUG
  if (result.status == sat::SolveResult::kSat) {
    std::string error;
    assert(ValidateTrackAssignment(arch, routing, result.tracks, num_tracks,
                                   &error) &&
           "SAT model must decode to a valid detailed routing");
  }
#endif
  return result;
}

DetailedRouteResult RouteDetailedOnGraph(
    const graph::Graph& conflict_graph, int num_tracks,
    const DetailedRouteOptions& options) {
  return SolveOnGraph(conflict_graph, num_tracks, options,
                      /*coloring_seconds=*/0.0, /*routing=*/nullptr);
}

}  // namespace satfr::flow
