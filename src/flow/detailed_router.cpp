#include "flow/detailed_router.h"

#include <cassert>
#include <optional>
#include <utility>

#include "analysis/runner.h"
#include "flow/conflict_graph.h"
#include "flow/track_checker.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/solver_trace.h"
#include "obs/trace.h"
#include "sat/clause_sink.h"
#include "sat/rup_checker.h"

namespace satfr::flow {
namespace {

const char* RunLabel(const DetailedRouteOptions& options) {
  return options.run_label.empty() ? "graph" : options.run_label.c_str();
}

/// `routing` is non-null only when the caller extracted the conflict graph
/// from a global routing itself; the selfcheck's flow-two-pin pass then
/// cross-checks the two.
DetailedRouteResult SolveOnGraph(const graph::Graph& conflict_graph,
                                 int num_tracks,
                                 const DetailedRouteOptions& options,
                                 double coloring_seconds,
                                 const route::GlobalRouting* routing) {
  DetailedRouteResult result;
  result.coloring_seconds = coloring_seconds;
  result.conflict_vertices = conflict_graph.num_vertices();
  result.conflict_edges = conflict_graph.num_edges();

  // Telemetry is pull-installed: both sinks default to null, so a solve
  // with telemetry off costs two atomic loads here and nothing downstream.
  obs::TraceWriter* trace = obs::GlobalTrace();
  obs::RunReportWriter* report = obs::GlobalReport();

  Stopwatch encode_watch;
  obs::TraceSpan encode_span(trace, "encode", "flow");
  encode_span.AddArg("instance", obs::JsonValue(RunLabel(options)));
  encode_span.AddArg("encoding", obs::JsonValue(options.encoding.name));
  encode_span.AddArg("symmetry",
                     obs::JsonValue(symmetry::ToString(options.heuristic)));
  encode_span.AddArg("width", obs::JsonValue(num_tracks));

  // The lint passes re-walk the CNF and the RUP checker re-propagates it, so
  // both need the materialized formula; those paths also pin the symmetry
  // sequence to this run, so a cached encoding cannot stand in for it.
  const bool materialize = options.selfcheck || options.verify_unsat_proof;
  const bool reuse = options.reuse_encoding != nullptr && !materialize;
  std::vector<graph::VertexId> sequence;
  if (!reuse) {
    sequence = symmetry::SymmetrySequence(conflict_graph, num_tracks,
                                          options.heuristic);
  }

  sat::Solver solver(options.solver);
  std::optional<obs::SolverTelemetryObserver> observer;
  if (trace != nullptr || report != nullptr) {
    observer.emplace(trace);
    solver.SetObserver(&*observer);
  }
  std::vector<sat::Clause> proof;
  if (options.verify_unsat_proof) solver.SetProofLog(&proof);
  if (options.exchange != nullptr && options.exchange_participant >= 0) {
    solver.SetClauseExchange(options.exchange, options.exchange_participant);
  }

  // Everyone except the materialized paths streams the encoder straight into
  // the solver and never holds an intermediate Cnf — unless a cached
  // instance is being reused, in which case its CNF bytes are loaded as-is.
  encode::ColoringLayout layout;
  encode::EncodedColoring encoded;
  bool consistent = true;
  if (reuse) {
    const encode::EncodedColoring& pre = *options.reuse_encoding;
    consistent = solver.AddCnf(pre.cnf);
    layout = static_cast<const encode::ColoringLayout&>(pre);
    result.reused_encoding = true;
  } else if (materialize) {
    encoded = encode::EncodeColoring(conflict_graph, num_tracks,
                                     options.encoding, sequence);
    if (options.selfcheck) {
      const analysis::AnalysisRunner runner = analysis::MakeDefaultRunner();
      analysis::AnalysisInput lint_input;
      lint_input.cnf = &encoded.cnf;
      lint_input.conflict_graph = &conflict_graph;
      lint_input.encoded = &encoded;
      lint_input.spec = &options.encoding;
      lint_input.symmetry_sequence = &sequence;
      lint_input.routing = routing;
      analysis::AnalysisReport report = runner.Run(lint_input);
      const bool broken = report.HasErrors();
      result.lint = std::move(report.diagnostics);
      if (broken) {
        // Never hand a formula that violates its own encoding contract to
        // the solver: its answer would say nothing about the routing
        // instance.
        result.encode_seconds = encode_watch.Seconds();
        result.status = sat::SolveResult::kUnknown;
        return result;
      }
    }
    consistent = solver.AddCnf(encoded.cnf);
    layout = std::move(static_cast<encode::ColoringLayout&>(encoded));
  } else {
    sat::SolverSink direct(solver);
    if (options.inline_simplify) {
      sat::SimplifyingSink simplify(direct);
      layout = encode::EncodeColoringToSink(
          conflict_graph, num_tracks, options.encoding, sequence, simplify);
      layout.stats.simplify_dropped_clauses =
          simplify.stats().DroppedClauses();
      layout.stats.simplify_eliminated_literals =
          simplify.stats().eliminated_literals;
      layout.stats.simplify_fixed_units = simplify.stats().fixed_units;
      consistent = simplify.Finish();
    } else {
      layout = encode::EncodeColoringToSink(
          conflict_graph, num_tracks, options.encoding, sequence, direct);
      consistent = direct.Finish();
    }
    result.streamed_encode = true;
  }
  result.cnf_vars = layout.num_vars;
  result.cnf_clauses = layout.stats.TotalEmitted();
  result.encode_stats = layout.stats;
  result.encode_seconds = encode_watch.Seconds();
  encode_span.AddArg("vars", obs::JsonValue(result.cnf_vars));
  encode_span.AddArg("clauses",
                     obs::JsonValue(static_cast<std::uint64_t>(
                         result.cnf_clauses)));
  encode_span.End();

  Stopwatch solve_watch;
  obs::TraceSpan solve_span(trace, "solve", "flow");
  solve_span.AddArg("instance", obs::JsonValue(RunLabel(options)));
  solve_span.AddArg("encoding", obs::JsonValue(options.encoding.name));
  solve_span.AddArg("width", obs::JsonValue(num_tracks));
  if (!consistent) {
    result.status = sat::SolveResult::kUnsat;
  } else {
    const Deadline deadline = options.timeout_seconds > 0.0
                                  ? Deadline::After(options.timeout_seconds)
                                  : Deadline::Infinite();
    result.status = solver.Solve(deadline, options.stop);
  }
  result.solve_seconds = solve_watch.Seconds();
  result.solver_stats = solver.stats();
  solve_span.AddArg("verdict", obs::JsonValue(sat::ToString(result.status)));
  solve_span.End();

  if (report != nullptr) {
    obs::RunRecord record;
    record.instance = RunLabel(options);
    record.phase = "route";
    record.encoding = options.encoding.name;
    record.symmetry = symmetry::ToString(options.heuristic);
    record.width = num_tracks;
    record.verdict = sat::ToString(result.status);
    record.coloring_seconds = result.coloring_seconds;
    record.encode_seconds = result.encode_seconds;
    record.solve_seconds = result.solve_seconds;
    record.total_seconds = result.TotalSeconds();
    record.cnf_vars = static_cast<std::uint64_t>(result.cnf_vars);
    record.cnf_clauses = static_cast<std::uint64_t>(result.cnf_clauses);
    // The solver is fresh in this function, so its lifetime stats ARE the
    // solve window.
    record.SetSolverWindow(solver.stats());
    const sat::LearntTierSizes tiers = solver.TierSizes();
    record.learnts_core = tiers.core;
    record.learnts_tier2 = tiers.tier2;
    record.learnts_local = tiers.local;
    record.peak_clause_memory_bytes = solver.ClauseMemoryBytes();
    if (observer.has_value()) observer->FillRecord(&record);
    report->Append(record);
  }
  {
    static const obs::MetricId solves =
        obs::GlobalMetrics().Counter("flow.solves");
    obs::GlobalMetrics().Add(solves);
  }

  if (result.status == sat::SolveResult::kSat) {
    result.tracks = encode::DecodeColoring(layout, solver.model());
    assert(conflict_graph.IsProperColoring(result.tracks) &&
           "decoded model must be a proper coloring");
  } else if (result.status == sat::SolveResult::kUnsat &&
             options.verify_unsat_proof) {
    result.proof_clauses = proof.size();
    result.proof_verified = sat::VerifyRupRefutation(encoded.cnf, proof);
  }
  return result;
}

}  // namespace

DetailedRouteResult RouteDetailed(const fpga::Arch& arch,
                                  const route::GlobalRouting& routing,
                                  int num_tracks,
                                  const DetailedRouteOptions& options) {
  Stopwatch coloring_watch;
  const graph::Graph conflict_graph = BuildConflictGraph(arch, routing);
  const double coloring_seconds = coloring_watch.Seconds();
  DetailedRouteResult result = SolveOnGraph(conflict_graph, num_tracks,
                                            options, coloring_seconds,
                                            &routing);
#ifndef NDEBUG
  if (result.status == sat::SolveResult::kSat) {
    std::string error;
    assert(ValidateTrackAssignment(arch, routing, result.tracks, num_tracks,
                                   &error) &&
           "SAT model must decode to a valid detailed routing");
  }
#endif
  return result;
}

DetailedRouteResult RouteDetailedOnGraph(
    const graph::Graph& conflict_graph, int num_tracks,
    const DetailedRouteOptions& options) {
  return SolveOnGraph(conflict_graph, num_tracks, options,
                      /*coloring_seconds=*/0.0, /*routing=*/nullptr);
}

}  // namespace satfr::flow
