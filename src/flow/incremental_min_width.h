// Incremental minimum-width search (engineering extension).
//
// The scratch search (min_width.h) builds a fresh CNF and a fresh solver
// for every width W. This variant encodes the coloring ONCE at a width
// K_max that is guaranteed routable (the DSATUR bound), adds a ladder of
// guard variables
//
//     g_W  =>  g_{W+1}          (forbidding width W forbids W+1's color)
//     g_W  =>  ~cube_v(W)       for every vertex v
//
// so that assuming the single literal g_W restricts every vertex to colors
// < W, and then walks W upward with SolveWithAssumptions({g_W}) on ONE
// solver instance. Everything learned while refuting width W carries over
// to width W+1 — the clause-reuse benefit the incremental-SAT literature
// promises for monotone queries like channel-width search.
//
// Symmetry breaking uses the K_max sequence, which remains sound for every
// W <= K_max (Van Gelder's renaming argument assigns first-seen color
// classes the smallest indices, so a W-coloring renames into colors < W).
#pragma once

#include <string>

#include "encode/registry.h"
#include "graph/graph.h"
#include "sat/clause_exchange.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"

namespace satfr::flow {

struct IncrementalMinWidthOptions {
  encode::EncodingSpec encoding = encode::GetEncoding("ITE-linear-2+muldirect");
  symmetry::Heuristic heuristic = symmetry::Heuristic::kS1;
  sat::SolverOptions solver = sat::SolverOptions::SiegeLike();
  /// Wall-clock budget for the whole search; <= 0 means unlimited.
  double timeout_seconds = 0.0;
  /// Cube-and-conquer: when > 0, the guard-ladder formula is loaded into
  /// this many RESIDENT worker solvers (src/cube) and every width's query
  /// is split into cubes over the symmetry-prefix / high-degree vertices.
  /// Each worker keeps its solver across cubes AND widths, so the
  /// clause-reuse benefit of the incremental sweep survives the split.
  int cube_workers = 0;
  /// Cube-count target per width (see cube::CubeGenOptions).
  int cube_target_cubes = 256;
  /// Pin cube order and disable stealing/sharing (reproducible runs).
  bool cube_deterministic = false;
  /// Telemetry label (trace spans / run-report records); empty is fine.
  std::string run_label;
};

struct IncrementalMinWidthResult {
  /// Smallest routable width; -1 on timeout or internal error (see
  /// `error`).
  int min_width = -1;
  /// True when every width in [lower_bound, min_width) was refuted.
  bool proven_optimal = false;
  /// A valid track assignment at min_width.
  std::vector<int> tracks;
  /// True when `tracks` was checked to be a proper coloring within the
  /// width bound. Always true when min_width >= 0 — validation failure
  /// clears min_width and reports through `error` instead (the checks are
  /// real code, not asserts, so they hold in Release builds too).
  bool model_validated = false;
  /// Non-empty when an internal validation failed: the decoded model was
  /// not a proper in-bounds coloring, or a guarded UNSAT refuted the whole
  /// formula below the DSATUR-certified width. Either means a solver or
  /// encoding bug, reported instead of silently returning garbage.
  std::string error;
  /// Number of SAT queries issued (one per width tested; in cube mode a
  /// width counts once regardless of its cube count).
  int widths_tested = 0;
  /// Aggregate statistics of the underlying solver(s).
  sat::SolverStats solver_stats;
  // Cube-mode counters (zero in monolithic mode).
  std::size_t cubes_solved = 0;
  std::size_t cubes_stolen = 0;
  sat::ClauseExchange::Totals exchange_totals;
  double total_seconds = 0.0;
};

IncrementalMinWidthResult FindMinimumWidthIncremental(
    const graph::Graph& conflict_graph, int lower_bound,
    const IncrementalMinWidthOptions& options = {});

}  // namespace satfr::flow
