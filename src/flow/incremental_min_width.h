// Incremental minimum-width search (engineering extension).
//
// The scratch search (min_width.h) builds a fresh CNF and a fresh solver
// for every width W. This variant encodes the coloring ONCE at a width
// K_max that is guaranteed routable (the DSATUR bound), adds a ladder of
// guard variables
//
//     g_W  =>  g_{W+1}          (forbidding width W forbids W+1's color)
//     g_W  =>  ~cube_v(W)       for every vertex v
//
// so that assuming the single literal g_W restricts every vertex to colors
// < W, and then walks W upward with SolveWithAssumptions({g_W}) on ONE
// solver instance. Everything learned while refuting width W carries over
// to width W+1 — the clause-reuse benefit the incremental-SAT literature
// promises for monotone queries like channel-width search.
//
// Symmetry breaking uses the K_max sequence, which remains sound for every
// W <= K_max (Van Gelder's renaming argument assigns first-seen color
// classes the smallest indices, so a W-coloring renames into colors < W).
#pragma once

#include "encode/registry.h"
#include "graph/graph.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"

namespace satfr::flow {

struct IncrementalMinWidthOptions {
  encode::EncodingSpec encoding = encode::GetEncoding("ITE-linear-2+muldirect");
  symmetry::Heuristic heuristic = symmetry::Heuristic::kS1;
  sat::SolverOptions solver = sat::SolverOptions::SiegeLike();
  /// Wall-clock budget for the whole search; <= 0 means unlimited.
  double timeout_seconds = 0.0;
};

struct IncrementalMinWidthResult {
  /// Smallest routable width; -1 on timeout.
  int min_width = -1;
  /// True when every width in [lower_bound, min_width) was refuted.
  bool proven_optimal = false;
  /// A valid track assignment at min_width.
  std::vector<int> tracks;
  /// Number of SAT queries issued (one per width tested).
  int widths_tested = 0;
  /// Aggregate statistics of the single underlying solver.
  sat::SolverStats solver_stats;
  double total_seconds = 0.0;
};

IncrementalMinWidthResult FindMinimumWidthIncremental(
    const graph::Graph& conflict_graph, int lower_bound,
    const IncrementalMinWidthOptions& options = {});

}  // namespace satfr::flow
