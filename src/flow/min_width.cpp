#include "flow/min_width.h"

#include <algorithm>

#include "flow/conflict_graph.h"

namespace satfr::flow {

MinWidthResult FindMinimumWidthOnGraph(const graph::Graph& conflict_graph,
                                       int congestion_lower_bound,
                                       const MinWidthOptions& options) {
  MinWidthResult result;
  result.lower_bound = std::max(1, congestion_lower_bound);

  DetailedRouteResult previous;  // result at width-1 while scanning upward
  bool have_previous = false;
  for (int width = result.lower_bound; width <= options.max_width; ++width) {
    DetailedRouteResult attempt =
        RouteDetailedOnGraph(conflict_graph, width, options.route);
    if (attempt.status == sat::SolveResult::kUnknown) {
      return result;  // timed out; min_width stays -1
    }
    if (attempt.status == sat::SolveResult::kSat) {
      result.min_width = width;
      result.routable = std::move(attempt);
      if (width == 1) {
        result.proven_optimal = true;
      } else if (have_previous) {
        result.proven_optimal = true;
        result.unroutable = std::move(previous);
      } else {
        // First probe was already SAT; prove width-1 unroutable explicitly.
        DetailedRouteResult proof =
            RouteDetailedOnGraph(conflict_graph, width - 1, options.route);
        if (proof.status == sat::SolveResult::kUnsat) {
          result.proven_optimal = true;
          result.unroutable = std::move(proof);
        }
      }
      return result;
    }
    previous = std::move(attempt);  // UNSAT at this width
    have_previous = true;
  }
  return result;
}

MinWidthResult FindMinimumWidth(const fpga::Arch& arch,
                                const route::GlobalRouting& routing,
                                const MinWidthOptions& options) {
  const graph::Graph conflict_graph = BuildConflictGraph(arch, routing);
  return FindMinimumWidthOnGraph(
      conflict_graph, route::PeakCongestion(arch, routing), options);
}

}  // namespace satfr::flow
