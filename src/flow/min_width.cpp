#include "flow/min_width.h"

#include <algorithm>
#include <string>

#include "cube/cube_solver.h"
#include "flow/conflict_graph.h"
#include "obs/trace.h"

namespace satfr::flow {

namespace {

// One width solved by a cube worker pool, adapted to the scratch search's
// per-width result shape. A fresh pool per width mirrors the scratch
// semantics (the incremental sweep is the one that keeps solvers resident
// across widths).
DetailedRouteResult RouteWidthWithCubes(const graph::Graph& conflict_graph,
                                        int width,
                                        const MinWidthOptions& options) {
  cube::CubeSolveOptions cube_options;
  cube_options.pool.num_workers = options.cube_workers;
  cube_options.pool.deterministic = options.cube_deterministic;
  cube_options.pool.share_max_lbd = options.route.solver.share_max_lbd;
  cube_options.gen.target_cubes = options.cube_target_cubes;
  cube_options.solver = options.route.solver;
  cube_options.timeout_seconds = options.route.timeout_seconds;
  cube_options.stop = options.route.stop;
  cube_options.run_label = options.route.run_label;
  const cube::CubeSolveResult cube_result = cube::SolveColoringWithCubes(
      conflict_graph, width, options.route.encoding, options.route.heuristic,
      cube_options);

  DetailedRouteResult out;
  out.status = cube_result.status;
  out.tracks = cube_result.colors;
  out.conflict_vertices = conflict_graph.num_vertices();
  out.conflict_edges = conflict_graph.num_edges();
  out.solve_seconds = cube_result.wall_seconds;
  out.solver_stats = cube_result.solver_stats;
  out.streamed_encode = true;
  return out;
}

}  // namespace

MinWidthResult FindMinimumWidthOnGraph(const graph::Graph& conflict_graph,
                                       int congestion_lower_bound,
                                       const MinWidthOptions& options) {
  MinWidthResult result;
  result.lower_bound = std::max(1, congestion_lower_bound);

  DetailedRouteResult previous;  // result at width-1 while scanning upward
  bool have_previous = false;
  for (int width = result.lower_bound; width <= options.max_width; ++width) {
    obs::TraceSpan width_span(obs::GlobalTrace(),
                              "width " + std::to_string(width), "sweep");
    DetailedRouteResult attempt =
        options.cube_workers > 0
            ? RouteWidthWithCubes(conflict_graph, width, options)
            : RouteDetailedOnGraph(conflict_graph, width, options.route);
    width_span.AddArg("verdict",
                      obs::JsonValue(sat::ToString(attempt.status)));
    width_span.End();
    if (attempt.status == sat::SolveResult::kUnknown) {
      return result;  // timed out; min_width stays -1
    }
    if (attempt.status == sat::SolveResult::kSat) {
      result.min_width = width;
      result.routable = std::move(attempt);
      if (width == 1) {
        result.proven_optimal = true;
      } else if (have_previous) {
        result.proven_optimal = true;
        result.unroutable = std::move(previous);
      } else {
        // First probe was already SAT; prove width-1 unroutable explicitly.
        DetailedRouteResult proof =
            options.cube_workers > 0
                ? RouteWidthWithCubes(conflict_graph, width - 1, options)
                : RouteDetailedOnGraph(conflict_graph, width - 1,
                                       options.route);
        if (proof.status == sat::SolveResult::kUnsat) {
          result.proven_optimal = true;
          result.unroutable = std::move(proof);
        }
      }
      return result;
    }
    previous = std::move(attempt);  // UNSAT at this width
    have_previous = true;
  }
  return result;
}

MinWidthResult FindMinimumWidth(const fpga::Arch& arch,
                                const route::GlobalRouting& routing,
                                const MinWidthOptions& options) {
  const graph::Graph conflict_graph = BuildConflictGraph(arch, routing);
  return FindMinimumWidthOnGraph(
      conflict_graph, route::PeakCongestion(arch, routing), options);
}

}  // namespace satfr::flow
