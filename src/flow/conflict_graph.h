// Global routing -> conflict (CSP) graph extraction (§2 of the paper).
//
// One vertex per 2-pin net; an edge between two vertices whose routes share
// at least one channel segment and whose 2-pin nets belong to *different*
// multi-pin nets. Because subset switch blocks preserve the track index
// along a route, a single disequality edge per conflicting pair captures
// every shared connection block ("we only need to impose exclusivity
// constraints once for each pair").
#pragma once

#include "fpga/arch.h"
#include "graph/graph.h"
#include "route/global_routing.h"

namespace satfr::flow {

/// Builds the conflict graph of `routing`. Vertex i corresponds to
/// routing.two_pin_nets[i].
graph::Graph BuildConflictGraph(const fpga::Arch& arch,
                                const route::GlobalRouting& routing);

}  // namespace satfr::flow
