// The SAT-based detailed router: the paper's end-to-end per-instance flow.
//
// Given a fixed global routing and a channel width W, runs the two-stage
// translation (conflict graph -> CNF via a chosen encoding, with optional
// symmetry breaking) and the SAT solver. Reports the same time breakdown the
// paper's Table 2 sums: graph-coloring generation + CNF translation + SAT
// solving.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "mc/shim.h"
#include "common/stopwatch.h"
#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "fpga/arch.h"
#include "graph/graph.h"
#include "route/global_routing.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"

namespace satfr::flow {

struct DetailedRouteOptions {
  encode::EncodingSpec encoding = encode::GetEncoding("muldirect");
  symmetry::Heuristic heuristic = symmetry::Heuristic::kNone;
  sat::SolverOptions solver = sat::SolverOptions::SiegeLike();
  /// Wall-clock budget for the SAT call; <= 0 means unlimited.
  double timeout_seconds = 0.0;
  /// Optional cooperative stop flag (portfolio cancellation).
  const mc::Atomic<bool>* stop = nullptr;
  /// Record a DRUP-style proof and re-verify kUnsat answers with the
  /// independent RUP checker (see DetailedRouteResult::proof_verified).
  /// Costs memory proportional to the clauses learned.
  bool verify_unsat_proof = false;
  /// Optional learnt-clause exchange (portfolio sharing). When set, the
  /// solver exports unit/low-LBD learnts to it and imports compatible
  /// clauses at restart boundaries. `exchange_participant` must be the id
  /// returned by exchange->Register for THIS strategy's numbering key.
  sat::ClauseExchange* exchange = nullptr;
  int exchange_participant = -1;
  /// Run the satlint analysis pipeline over the conflict graph and the
  /// encoded CNF before solving. Findings land in
  /// DetailedRouteResult::lint; any error-severity finding aborts the run
  /// with status kUnknown instead of handing a broken formula to the
  /// solver. Debug aid; off by default (linting re-walks the whole CNF).
  /// Forces the materializing encode path (the passes need the Cnf).
  bool selfcheck = false;
  /// Label for telemetry (trace spans and run-report records): the MCNC
  /// circuit / .col file / CNF name this solve belongs to. Purely
  /// descriptive; empty is fine (records then say "graph").
  std::string run_label;
  /// Reuse a previously materialized encoding instead of re-encoding: the
  /// solver loads `reuse_encoding->cnf` and decoding uses its layout. The
  /// caller guarantees it was produced from THIS conflict graph at this
  /// width with this encoding + symmetry heuristic (the service's instance
  /// cache keys on exactly that tuple). Ignored when selfcheck or
  /// verify_unsat_proof is set — those must see a freshly materialized
  /// formula tied to a symmetry sequence computed here.
  const encode::EncodedColoring* reuse_encoding = nullptr;
  /// Chain a SimplifyingSink in front of the solver on the streaming path:
  /// unit-propagation/duplicate/tautology filtering happens clause by
  /// clause before the solver sees the stream. Elimination counts land in
  /// DetailedRouteResult::encode_stats. Ignored on the materialized path
  /// (selfcheck / verify_unsat_proof), where the solver must see the exact
  /// encoder output for the lint passes and the RUP checker.
  bool inline_simplify = false;
};

struct DetailedRouteResult {
  sat::SolveResult status = sat::SolveResult::kUnknown;
  /// Track per 2-pin net; filled only when status == kSat.
  std::vector<int> tracks;

  // Time breakdown, in seconds (paper Table 2 reports their sum).
  double coloring_seconds = 0.0;
  double encode_seconds = 0.0;
  double solve_seconds = 0.0;
  double TotalSeconds() const {
    return coloring_seconds + encode_seconds + solve_seconds;
  }

  // Instance sizes.
  int conflict_vertices = 0;
  std::size_t conflict_edges = 0;
  int cnf_vars = 0;
  std::size_t cnf_clauses = 0;
  sat::SolverStats solver_stats;

  /// True when the encoder streamed clauses straight into the solver (the
  /// default); false when a Cnf was materialized because selfcheck or
  /// verify_unsat_proof needed it.
  bool streamed_encode = false;
  /// True when the CNF was loaded from options.reuse_encoding rather than
  /// encoded here (encode_seconds is then pure clause-load time).
  bool reused_encoding = false;
  /// Per-category clause counts of the encoding (and, with inline_simplify,
  /// the simplifier's elimination counts).
  encode::ColoringCnfStats encode_stats;

  /// Set only when options.verify_unsat_proof and status == kUnsat:
  /// true iff the solver's refutation passed the independent RUP checker.
  bool proof_verified = false;
  /// Length of the logged refutation (0 unless proof verification ran).
  std::size_t proof_clauses = 0;

  /// Findings of the satlint pipeline (only when options.selfcheck). If any
  /// is error-severity, status is kUnknown and no solve was attempted.
  std::vector<analysis::Diagnostic> lint;
};

/// Routes `routing` in `num_tracks` tracks. kSat => `tracks` is a valid
/// detailed routing (checked against the track checker in debug builds);
/// kUnsat => provably unroutable at this width; kUnknown => timeout/stop.
DetailedRouteResult RouteDetailed(const fpga::Arch& arch,
                                  const route::GlobalRouting& routing,
                                  int num_tracks,
                                  const DetailedRouteOptions& options = {});

/// Same, but on a prebuilt conflict graph (skips extraction; used when many
/// strategies run on one instance).
DetailedRouteResult RouteDetailedOnGraph(
    const graph::Graph& conflict_graph, int num_tracks,
    const DetailedRouteOptions& options = {});

}  // namespace satfr::flow
