// Validity checker for decoded detailed routings.
//
// A detailed routing is a track index per 2-pin net. It is valid for width W
// iff every track is in [0, W) and no channel segment carries two 2-pin
// nets of different multi-pin nets on the same track. This is the ground
// truth the SAT pipeline is checked against.
#pragma once

#include <string>
#include <vector>

#include "fpga/arch.h"
#include "route/global_routing.h"

namespace satfr::flow {

bool ValidateTrackAssignment(const fpga::Arch& arch,
                             const route::GlobalRouting& routing,
                             const std::vector<int>& tracks, int num_tracks,
                             std::string* error = nullptr);

}  // namespace satfr::flow
