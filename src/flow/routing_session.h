// A long-lived incremental routing session: extract once, encode once,
// then absorb net-level rip-up/re-route deltas by flipping assumptions on a
// resident solver.
//
// The paper's flow re-extracts the conflict graph and re-encodes the whole
// channel for every query; the guard-ladder sweep (incremental_min_width)
// already avoided re-encoding across *widths*. RoutingSession pushes the
// same activation-literal pattern down to the *net* granularity:
//
//   * Construction encodes the initial conflict graph at `max_width` once,
//     streamed through a NetGroupedSink into the resident solver. Every
//     net's clauses — structural, symmetry restriction, and the conflict
//     clauses of the edges it owns — live in one group guarded by the net's
//     activation literal. The width guard ladder (g_W forbids track W
//     everywhere and implies g_{W+1}) is emitted unguarded on top, so
//     Solve(W) is one SolveWithAssumptions({g_W} + active selectors) call.
//
//   * Every conflict clause carries BOTH endpoints' guards
//     (~a_owner v ~a_partner v conflict), so an edge dies the moment either
//     endpoint's group is retired. RipUp(net) is therefore pure
//     deactivation: one permanent unit ~selector (the solver reclaims the
//     group's clauses and every learnt that leaned on it) plus local edge
//     bookkeeping — the surviving partners' clauses are never touched.
//
//   * Reroute(net, conflicts) gives the net a fresh group owning all its
//     new edges, under a fresh activation variable. Edge ownership — every
//     conflict edge is emitted by exactly one endpoint, initially the
//     larger id, thereafter the most recently re-routed endpoint — keeps
//     each edge's clauses in exactly one group; a partner's old guarded
//     clauses toward a ripped-and-revived net stay dead because they
//     reference the net's retired selector, and the revived net's Reroute
//     re-emits exactly the edges that should exist.
//
// No step re-extracts a conflict graph or re-encodes an unchanged net; a
// delta costs emitting one or a few net groups (microseconds-to-
// milliseconds) against a warm solver that keeps everything it has learned
// about the untouched nets.
//
// Learnt soundness: assumptions are reasonless decisions, so any learnt
// whose derivation used a group's clauses under the selector assumption
// contains the negated selector — retiring the group satisfies those
// learnts at level 0 and the next simplification sweep drops them. Learnts
// over base-layout variables only are consequences of the guarded clause
// database itself and stay valid across every delta.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "encode/csp_to_cnf.h"
#include "encode/net_group.h"
#include "encode/registry.h"
#include "graph/graph.h"
#include "sat/clause_sink.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"

namespace satfr::flow {

struct RoutingSessionOptions {
  encode::EncodingSpec encoding = encode::GetEncoding("muldirect");
  symmetry::Heuristic heuristic = symmetry::Heuristic::kNone;
  sat::SolverOptions solver = sat::SolverOptions::SiegeLike();
  /// Wall-clock budget per Solve call; <= 0 means unlimited.
  double timeout_seconds = 0.0;
  /// Telemetry label (trace spans, run-report records).
  std::string run_label;
  /// Mirror every emitted clause into an internally kept Cnf (audit_cnf())
  /// so tests and the satlint net-group-hygiene pass can audit the full
  /// stream, deltas included. Costs memory proportional to everything ever
  /// emitted; off by default.
  bool audit = false;
};

struct SessionSolveResult {
  sat::SolveResult status = sat::SolveResult::kUnknown;
  /// Track per net, -1 for inactive nets; filled only on kSat (validated:
  /// in [0, width), proper on every active conflict edge).
  std::vector<int> tracks;
  double solve_seconds = 0.0;
  /// Non-empty on a malformed query or an internal validation failure.
  std::string error;
};

/// Lifetime counters proving the incremental contract: after construction
/// `full_encodes` stays 1 and `graph_extractions` stays 0 no matter how
/// many deltas are applied.
struct SessionStats {
  std::uint64_t deltas_applied = 0;   // RipUp / Reroute calls that took
  std::uint64_t groups_emitted = 0;   // net groups streamed (initial + delta)
  std::uint64_t groups_retired = 0;   // groups permanently deactivated
  std::uint64_t partner_detachments = 0;  // edges owned by a partner that a
                                          // rip-up silenced via the cross
                                          // guard (no clause re-emission)
  std::uint64_t delta_clauses = 0;    // clauses emitted by deltas
  std::uint64_t solves = 0;
  std::uint64_t full_encodes = 0;     // 1 after construction, never more
  std::uint64_t graph_extractions = 0;  // always 0: the session never
                                        // rebuilds a conflict graph
  double delta_seconds = 0.0;         // total emission time of all deltas
};

class RoutingSession {
 public:
  /// Encodes `conflict_graph` once at `max_width` tracks (the ceiling every
  /// later Solve must stay under — typically the DSATUR width). Check ok()
  /// before use.
  RoutingSession(const graph::Graph& conflict_graph, int max_width,
                 const RoutingSessionOptions& options = {});

  RoutingSession(const RoutingSession&) = delete;
  RoutingSession& operator=(const RoutingSession&) = delete;

  /// True once construction succeeded; per-call failures (bad net id, bad
  /// width) do NOT clear it — check the bool result and error() per call.
  bool ok() const { return constructed_ok_; }
  /// Message of the most recent failed call (or of construction).
  const std::string& error() const { return error_; }

  int max_width() const { return max_width_; }
  int num_nets() const { return num_nets_; }
  bool NetActive(graph::VertexId net) const {
    return net >= 0 && net < num_nets_ &&
           active_[static_cast<std::size_t>(net)];
  }
  int num_active() const { return num_active_; }

  /// Deactivates `net`: retires its clause group (which also silences
  /// partner-owned edge clauses through the cross guard), removes every
  /// conflict edge incident to it from the bookkeeping, and drops it from
  /// the assumption set. False if the net is invalid or already inactive
  /// (error() says why).
  bool RipUp(graph::VertexId net);

  /// (Re-)activates `net` with exactly the conflict edges {net, u} for u in
  /// `conflicts`: rips the net up first if it is active, then emits a fresh
  /// group owning all the new edges. Partners must be distinct, active, and
  /// != net. False on a malformed request (the session is unchanged).
  bool Reroute(graph::VertexId net,
               const std::vector<graph::VertexId>& conflicts);

  /// Solves the current netlist state at `width` tracks (1 <= width <=
  /// max_width) on the resident solver — assumptions only, no re-encode.
  SessionSolveResult Solve(int width);

  const SessionStats& session_stats() const { return session_stats_; }
  const sat::Solver& solver() const { return solver_; }
  const encode::ColoringLayout& layout() const { return layout_; }
  const encode::NetGroupTable& group_table() const {
    return grouped_->table();
  }
  /// The audit mirror (options.audit), nullptr otherwise.
  const sat::Cnf* audit_cnf() const {
    return audit_cnf_ ? &*audit_cnf_ : nullptr;
  }

  /// Materializes the current conflict graph from the session's edge
  /// bookkeeping (inactive nets are isolated vertices). For equivalence
  /// checks against a fresh encode — the session itself never calls this.
  graph::Graph ActiveConflictGraph() const;

 private:
  // Re-emits `net`'s group from current ownership under a fresh selector.
  void EmitGroup(graph::VertexId net);
  // Retires `net`'s current group in the resident solver.
  void RetireGroup(graph::VertexId net);

  RoutingSessionOptions options_;
  int max_width_ = 0;
  int num_nets_ = 0;
  int num_active_ = 0;
  bool constructed_ok_ = false;
  std::string error_;

  sat::Solver solver_;
  sat::SolverSink solver_sink_;
  std::optional<sat::Cnf> audit_cnf_;
  std::optional<sat::CnfCollectorSink> audit_sink_;
  std::optional<sat::TeeSink> tee_;
  std::optional<encode::NetGroupedSink> grouped_;

  encode::ColoringLayout layout_;
  std::vector<graph::VertexId> sequence_;
  std::vector<int> sym_position_;        // 1-based sequence position, 0 = none
  std::vector<sat::Var> guard_;          // width ladder, index = width
  std::vector<sat::Var> activation_;     // current selector per net (-1 = none)
  std::vector<char> active_;
  // Edge bookkeeping: owned_[n] = partners of edges n owns; owned_by_[n] =
  // nets owning an edge to n. Together they cover every current edge
  // exactly once from each side.
  std::vector<std::vector<graph::VertexId>> owned_;
  std::vector<std::vector<graph::VertexId>> owned_by_;

  SessionStats session_stats_;
  std::vector<sat::Lit> assumptions_;    // scratch for Solve
  std::vector<sat::Lit> guard_scratch_;  // scratch for EmitGroup
  // High-water marks of the last run-report record (per-record windows).
  std::uint64_t reported_deltas_ = 0;
  std::uint64_t reported_retired_ = 0;
  double reported_delta_seconds_ = 0.0;
};

}  // namespace satfr::flow
