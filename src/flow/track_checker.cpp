#include "flow/track_checker.h"

#include <map>

namespace satfr::flow {

bool ValidateTrackAssignment(const fpga::Arch& arch,
                             const route::GlobalRouting& routing,
                             const std::vector<int>& tracks, int num_tracks,
                             std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  if (tracks.size() != routing.NumTwoPinNets()) {
    return fail("track assignment size mismatch");
  }
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    if (tracks[i] < 0 || tracks[i] >= num_tracks) {
      return fail("2-pin net " + std::to_string(i) +
                  " has an out-of-range track " + std::to_string(tracks[i]));
    }
  }
  // (segment, track) -> owning multi-pin net.
  std::map<std::pair<fpga::SegmentIndex, int>, netlist::NetId> owner;
  for (std::size_t i = 0; i < routing.routes.size(); ++i) {
    const netlist::NetId parent = routing.two_pin_nets[i].parent;
    for (const fpga::SegmentIndex seg : routing.routes[i]) {
      const auto key = std::make_pair(seg, tracks[i]);
      const auto [it, inserted] = owner.emplace(key, parent);
      if (!inserted && it->second != parent) {
        return fail("track " + std::to_string(tracks[i]) + " of segment " +
                    arch.SegmentName(seg) +
                    " is shared by different multi-pin nets");
      }
    }
  }
  return true;
}

}  // namespace satfr::flow
