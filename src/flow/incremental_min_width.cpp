#include "flow/incremental_min_width.h"

#include <algorithm>
#include <cassert>

#include "common/stopwatch.h"
#include "encode/csp_to_cnf.h"
#include "graph/coloring_bounds.h"
#include "sat/clause_sink.h"

namespace satfr::flow {

IncrementalMinWidthResult FindMinimumWidthIncremental(
    const graph::Graph& conflict_graph, int lower_bound,
    const IncrementalMinWidthOptions& options) {
  Stopwatch stopwatch;
  IncrementalMinWidthResult result;

  // K_max: a width DSATUR certifies as routable; the search cannot pass it.
  const int k_max = std::max(
      1, graph::NumColorsUsed(graph::DsaturColoring(conflict_graph)));
  const int start = std::max(1, std::min(lower_bound, k_max));

  const auto sequence = symmetry::SymmetrySequence(conflict_graph, k_max,
                                                   options.heuristic);

  // Stream the base encoding and the guard ladder straight into the solver —
  // the incremental flow never needs a materialized Cnf.
  sat::Solver solver(options.solver);
  sat::SolverSink sink(solver);
  const encode::ColoringLayout layout = encode::EncodeColoringToSink(
      conflict_graph, k_max, options.encoding, sequence, sink);

  // Guard ladder: g_W (for W in [start, k_max)) forbids color W everywhere
  // and implies g_{W+1}.
  std::vector<sat::Var> guard(static_cast<std::size_t>(k_max), -1);
  for (int w = start; w < k_max; ++w) {
    guard[static_cast<std::size_t>(w)] = sink.EmitVar();
  }
  sat::Clause scratch;
  for (int w = start; w < k_max; ++w) {
    const sat::Var g = guard[static_cast<std::size_t>(w)];
    if (w + 1 < k_max) {
      sink.EmitBinary(sat::Lit::Neg(g),
                      sat::Lit::Pos(guard[static_cast<std::size_t>(w + 1)]));
    }
    for (std::size_t v = 0; v < layout.vertex_offset.size(); ++v) {
      scratch = encode::NegateCube(
          layout.domain.value_cubes[static_cast<std::size_t>(w)],
          layout.vertex_offset[v]);
      scratch.push_back(sat::Lit::Neg(g));
      sink.EmitClause(scratch);
    }
  }

  if (!sink.Finish()) {
    // Encoding contradictory without any guard: no width up to k_max works,
    // which cannot happen (k_max is DSATUR-certified). Defensive bail-out.
    result.total_seconds = stopwatch.Seconds();
    return result;
  }

  const Deadline deadline = options.timeout_seconds > 0.0
                                ? Deadline::After(options.timeout_seconds)
                                : Deadline::Infinite();
  for (int w = start; w <= k_max; ++w) {
    ++result.widths_tested;
    std::vector<sat::Lit> assumptions;
    if (w < k_max) {
      assumptions.push_back(
          sat::Lit::Pos(guard[static_cast<std::size_t>(w)]));
    }
    const sat::SolveResult status =
        solver.SolveWithAssumptions(assumptions, deadline);
    if (status == sat::SolveResult::kUnknown) break;  // timeout
    if (status == sat::SolveResult::kSat) {
      result.min_width = w;
      result.proven_optimal = true;  // every smaller width was refuted
      result.tracks = encode::DecodeColoring(layout, solver.model());
      assert(conflict_graph.IsProperColoring(result.tracks));
      for (const int track : result.tracks) {
        assert(track < w);
        (void)track;
      }
      break;
    }
    assert(solver.okay() && "guarded UNSAT must not refute the formula");
  }
  result.solver_stats = solver.stats();
  result.total_seconds = stopwatch.Seconds();
  return result;
}

}  // namespace satfr::flow
