#include "flow/incremental_min_width.h"

#include <algorithm>
#include <cassert>

#include "common/stopwatch.h"
#include "encode/csp_to_cnf.h"
#include "graph/coloring_bounds.h"

namespace satfr::flow {

IncrementalMinWidthResult FindMinimumWidthIncremental(
    const graph::Graph& conflict_graph, int lower_bound,
    const IncrementalMinWidthOptions& options) {
  Stopwatch stopwatch;
  IncrementalMinWidthResult result;

  // K_max: a width DSATUR certifies as routable; the search cannot pass it.
  const int k_max = std::max(
      1, graph::NumColorsUsed(graph::DsaturColoring(conflict_graph)));
  const int start = std::max(1, std::min(lower_bound, k_max));

  const auto sequence = symmetry::SymmetrySequence(conflict_graph, k_max,
                                                   options.heuristic);
  encode::EncodedColoring encoded =
      EncodeColoring(conflict_graph, k_max, options.encoding, sequence);

  // Guard ladder: g_W (for W in [start, k_max)) forbids color W everywhere
  // and implies g_{W+1}.
  std::vector<sat::Var> guard(static_cast<std::size_t>(k_max), -1);
  for (int w = start; w < k_max; ++w) {
    guard[static_cast<std::size_t>(w)] = encoded.cnf.NewVar();
  }
  for (int w = start; w < k_max; ++w) {
    const sat::Var g = guard[static_cast<std::size_t>(w)];
    if (w + 1 < k_max) {
      encoded.cnf.AddBinary(sat::Lit::Neg(g),
                            sat::Lit::Pos(guard[static_cast<std::size_t>(
                                w + 1)]));
    }
    for (std::size_t v = 0; v < encoded.vertex_offset.size(); ++v) {
      sat::Clause clause = encode::NegateCube(
          encoded.domain.value_cubes[static_cast<std::size_t>(w)],
          encoded.vertex_offset[v]);
      clause.push_back(sat::Lit::Neg(g));
      encoded.cnf.AddClause(std::move(clause));
    }
  }

  sat::Solver solver(options.solver);
  if (!solver.AddCnf(encoded.cnf)) {
    // Encoding contradictory without any guard: no width up to k_max works,
    // which cannot happen (k_max is DSATUR-certified). Defensive bail-out.
    result.total_seconds = stopwatch.Seconds();
    return result;
  }

  const Deadline deadline = options.timeout_seconds > 0.0
                                ? Deadline::After(options.timeout_seconds)
                                : Deadline::Infinite();
  for (int w = start; w <= k_max; ++w) {
    ++result.widths_tested;
    std::vector<sat::Lit> assumptions;
    if (w < k_max) {
      assumptions.push_back(
          sat::Lit::Pos(guard[static_cast<std::size_t>(w)]));
    }
    const sat::SolveResult status =
        solver.SolveWithAssumptions(assumptions, deadline);
    if (status == sat::SolveResult::kUnknown) break;  // timeout
    if (status == sat::SolveResult::kSat) {
      result.min_width = w;
      result.proven_optimal = true;  // every smaller width was refuted
      result.tracks = encode::DecodeColoring(encoded, solver.model());
      assert(conflict_graph.IsProperColoring(result.tracks));
      for (const int track : result.tracks) {
        assert(track < w);
        (void)track;
      }
      break;
    }
    assert(solver.okay() && "guarded UNSAT must not refute the formula");
  }
  result.solver_stats = solver.stats();
  result.total_seconds = stopwatch.Seconds();
  return result;
}

}  // namespace satfr::flow
