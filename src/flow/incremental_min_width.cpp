#include "flow/incremental_min_width.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "common/stopwatch.h"
#include "cube/cube_solver.h"
#include "encode/csp_to_cnf.h"
#include "graph/coloring_bounds.h"
#include "obs/run_report.h"
#include "obs/solver_trace.h"
#include "obs/trace.h"
#include "sat/clause_sink.h"

namespace satfr::flow {

namespace {

const char* RunLabel(const IncrementalMinWidthOptions& options) {
  return options.run_label.empty() ? "graph" : options.run_label.c_str();
}

// Starts a per-width "incremental" record: context filled in, window stats
// added by the caller once the width's query returns.
obs::RunRecord MakeWidthRecord(const IncrementalMinWidthOptions& options,
                               int width, const encode::ColoringLayout& layout,
                               symmetry::Heuristic heuristic) {
  obs::RunRecord record;
  record.instance = RunLabel(options);
  record.phase = "incremental";
  record.encoding = options.encoding.name;
  record.symmetry = symmetry::ToString(heuristic);
  record.width = width;
  record.cnf_vars = static_cast<std::uint64_t>(layout.num_vars);
  record.cnf_clauses = static_cast<std::uint64_t>(layout.stats.TotalEmitted());
  return record;
}

// Shared width-independent precomputation of both sweep modes.
struct SweepSetup {
  int k_max = 1;
  int start = 1;
  std::vector<graph::VertexId> sequence;
};

SweepSetup PrepareSweep(const graph::Graph& conflict_graph, int lower_bound,
                        const IncrementalMinWidthOptions& options) {
  SweepSetup setup;
  // K_max: a width DSATUR certifies as routable; the search cannot pass it.
  setup.k_max = std::max(
      1, graph::NumColorsUsed(graph::DsaturColoring(conflict_graph)));
  setup.start = std::max(1, std::min(lower_bound, setup.k_max));
  setup.sequence = symmetry::SymmetrySequence(conflict_graph, setup.k_max,
                                              options.heuristic);
  return setup;
}

// Streams the base encoding plus the guard ladder into `sink`: g_W (for W
// in [start, k_max)) forbids color W everywhere and implies g_{W+1}. Guard
// variable ids are deterministic — layout.num_vars + (W - start) — so every
// cube worker allocates the identical numbering.
encode::ColoringLayout EmitGuardedFormula(
    const graph::Graph& conflict_graph, const SweepSetup& setup,
    const IncrementalMinWidthOptions& options, sat::ClauseSink& sink,
    std::vector<sat::Var>* guard) {
  const encode::ColoringLayout layout = encode::EncodeColoringToSink(
      conflict_graph, setup.k_max, options.encoding, setup.sequence, sink);
  guard->assign(static_cast<std::size_t>(setup.k_max), -1);
  for (int w = setup.start; w < setup.k_max; ++w) {
    (*guard)[static_cast<std::size_t>(w)] = sink.EmitVar();
  }
  sat::Clause scratch;
  for (int w = setup.start; w < setup.k_max; ++w) {
    const sat::Var g = (*guard)[static_cast<std::size_t>(w)];
    if (w + 1 < setup.k_max) {
      sink.EmitBinary(
          sat::Lit::Neg(g),
          sat::Lit::Pos((*guard)[static_cast<std::size_t>(w + 1)]));
    }
    for (std::size_t v = 0; v < layout.vertex_offset.size(); ++v) {
      scratch = encode::NegateCube(
          layout.domain.value_cubes[static_cast<std::size_t>(w)],
          layout.vertex_offset[v]);
      scratch.push_back(sat::Lit::Neg(g));
      sink.EmitClause(scratch);
    }
  }
  return layout;
}

// Decodes + validates a model at width `w`. These are real checks, not
// asserts: a decoded model that is not a proper in-bounds coloring means a
// solver or encoding bug, and Release builds must report it instead of
// returning garbage with a clean status.
void AcceptModel(const graph::Graph& conflict_graph,
                 const encode::ColoringLayout& layout,
                 const std::vector<bool>& model, int w,
                 IncrementalMinWidthResult* result) {
  std::vector<int> tracks = encode::DecodeColoring(layout, model);
  bool valid =
      static_cast<int>(tracks.size()) == conflict_graph.num_vertices() &&
      conflict_graph.IsProperColoring(tracks);
  for (const int track : tracks) {
    if (track < 0 || track >= w) valid = false;
  }
  if (!valid) {
    result->min_width = -1;
    result->proven_optimal = false;
    result->error =
        "decoded model at width " + std::to_string(w) +
        " is not a proper coloring within the width bound";
    return;
  }
  result->min_width = w;
  result->proven_optimal = true;  // every smaller width was refuted
  result->tracks = std::move(tracks);
  result->model_validated = true;
}

constexpr const char kRefutedBelowDsatur[] =
    "formula refuted outright below the DSATUR-certified width "
    "(guarded UNSAT must stay retractable)";

IncrementalMinWidthResult SweepMonolithic(
    const graph::Graph& conflict_graph, const SweepSetup& setup,
    const IncrementalMinWidthOptions& options, const Deadline& deadline) {
  IncrementalMinWidthResult result;

  obs::TraceWriter* const trace = obs::GlobalTrace();
  obs::RunReportWriter* const report = obs::GlobalReport();

  // Stream the base encoding and the guard ladder straight into the solver —
  // the incremental flow never needs a materialized Cnf.
  sat::Solver solver(options.solver);
  sat::SolverSink sink(solver);
  std::vector<sat::Var> guard;
  obs::TraceSpan encode_span(trace, "encode_guarded", "incremental");
  encode_span.AddArg("instance", obs::JsonValue(RunLabel(options)));
  encode_span.AddArg("k_max", obs::JsonValue(setup.k_max));
  const encode::ColoringLayout layout =
      EmitGuardedFormula(conflict_graph, setup, options, sink, &guard);
  encode_span.End();
  if (!sink.Finish()) {
    // Encoding contradictory without any guard: no width up to k_max works,
    // which cannot happen (k_max is DSATUR-certified). Defensive bail-out.
    result.error = kRefutedBelowDsatur;
    return result;
  }

  for (int w = setup.start; w <= setup.k_max; ++w) {
    ++result.widths_tested;
    std::vector<sat::Lit> assumptions;
    if (w < setup.k_max) {
      assumptions.push_back(
          sat::Lit::Pos(guard[static_cast<std::size_t>(w)]));
    }
    // Fresh observer per width: SetObserver re-baselines, so its observed
    // totals cover exactly this width's window — the same window the record
    // computes by SolverStats subtraction.
    const sat::SolverStats before = solver.stats();
    std::optional<obs::SolverTelemetryObserver> observer;
    if (trace != nullptr || report != nullptr) {
      observer.emplace(trace);
      solver.SetObserver(&*observer);
    }
    obs::TraceSpan width_span(trace, "width " + std::to_string(w),
                              "incremental");
    const sat::SolveResult status =
        solver.SolveWithAssumptions(assumptions, deadline);
    width_span.AddArg("verdict", obs::JsonValue(sat::ToString(status)));
    width_span.End();
    if (observer.has_value()) solver.SetObserver(nullptr);
    if (report != nullptr) {
      obs::RunRecord record =
          MakeWidthRecord(options, w, layout, options.heuristic);
      record.verdict = sat::ToString(status);
      const sat::SolverStats window = solver.stats().Since(before);
      record.solve_seconds = window.solve_seconds;
      record.total_seconds = window.solve_seconds;
      record.SetSolverWindow(window);
      const sat::LearntTierSizes tiers = solver.TierSizes();
      record.learnts_core = tiers.core;
      record.learnts_tier2 = tiers.tier2;
      record.learnts_local = tiers.local;
      record.peak_clause_memory_bytes = solver.ClauseMemoryBytes();
      if (observer.has_value()) observer->FillRecord(&record);
      report->Append(record);
    }
    if (status == sat::SolveResult::kUnknown) break;  // timeout
    if (status == sat::SolveResult::kSat) {
      AcceptModel(conflict_graph, layout, solver.model(), w, &result);
      break;
    }
    if (!solver.okay()) {
      result.error = kRefutedBelowDsatur;
      break;
    }
  }
  result.solver_stats = solver.stats();
  return result;
}

IncrementalMinWidthResult SweepWithCubes(
    const graph::Graph& conflict_graph, const SweepSetup& setup,
    const IncrementalMinWidthOptions& options, const Deadline& deadline) {
  IncrementalMinWidthResult result;

  const encode::DomainEncoding domain =
      encode::EncodeDomain(options.encoding, setup.k_max);
  const std::uint64_t key =
      encode::NumberingKey(domain, setup.k_max, setup.sequence);

  // Every worker streams the identical guarded formula into its resident
  // solver; worker 0's layout and guard ids serve all of them (emission is
  // deterministic, so the numberings coincide — which is also what makes
  // full-key clause sharing between the workers sound).
  encode::ColoringLayout layout;
  std::vector<sat::Var> guard;
  const auto loader = [&](int worker, sat::Solver& solver) {
    sat::SolverSink sink(solver);
    std::vector<sat::Var> worker_guard;
    encode::ColoringLayout built = EmitGuardedFormula(
        conflict_graph, setup, options, sink, &worker_guard);
    if (worker == 0) {
      layout = std::move(built);
      guard = std::move(worker_guard);
    }
    return sink.Finish();
  };

  cube::CubePoolOptions pool_options;
  pool_options.num_workers = options.cube_workers;
  pool_options.deterministic = options.cube_deterministic;
  pool_options.share_max_lbd = options.solver.share_max_lbd;
  cube::CubeWorkerPool pool(options.solver, pool_options, key, loader);
  if (!pool.okay()) {
    result.error = kRefutedBelowDsatur;
    result.solver_stats = pool.MergedStats();
    return result;
  }

  obs::TraceWriter* const trace = obs::GlobalTrace();
  obs::RunReportWriter* const report = obs::GlobalReport();

  cube::CubeGenOptions gen;
  gen.target_cubes = options.cube_target_cubes;
  for (int w = setup.start; w <= setup.k_max; ++w) {
    ++result.widths_tested;
    // Branch colors are clipped to W: the guard ladder forbids colors >= W
    // everywhere, so wider branches would be dead on arrival.
    const cube::CubeSet cube_set = cube::GenerateCubes(
        conflict_graph, domain, w, setup.sequence, gen);
    std::vector<sat::Lit> base;
    if (w < setup.k_max) {
      base.push_back(sat::Lit::Pos(guard[static_cast<std::size_t>(w)]));
    }
    obs::TraceSpan width_span(trace, "width " + std::to_string(w),
                              "incremental");
    width_span.AddArg("cubes",
                      obs::JsonValue(static_cast<std::uint64_t>(
                          cube_set.cubes.size())));
    const sat::SolverStats before = pool.MergedStats();
    const cube::CubeWorkerPool::BatchResult batch =
        pool.SolveBatch(cube_set.cubes, base, deadline);
    result.cubes_solved += batch.cubes_resolved;
    result.cubes_stolen += batch.cubes_stolen;
    width_span.AddArg("verdict", obs::JsonValue(sat::ToString(batch.status)));
    width_span.End();
    if (report != nullptr) {
      obs::RunRecord record =
          MakeWidthRecord(options, w, layout, options.heuristic);
      record.cube_workers = pool.num_workers();
      record.verdict = sat::ToString(batch.status);
      // Merged-stats convention: aggregate CPU seconds over all workers.
      const sat::SolverStats window = pool.MergedStats().Since(before);
      record.solve_seconds = window.solve_seconds;
      record.total_seconds = window.solve_seconds;
      record.SetSolverWindow(window);
      record.cubes = static_cast<std::uint64_t>(cube_set.cubes.size());
      record.cubes_stolen =
          static_cast<std::uint64_t>(batch.cubes_stolen);
      if (batch.has_observed) {
        record.has_observed = true;
        record.observed_propagations = batch.observed.propagations;
        record.observed_conflicts = batch.observed.conflicts;
        record.observed_restarts = batch.observed.restarts;
        record.observed_learned = batch.observed.learned;
        record.observed_bcp_seconds = batch.observed.bcp_seconds;
        record.observed_analyze_seconds = batch.observed.analyze_seconds;
        record.observed_inprocess_seconds = batch.observed.inprocess_seconds;
      }
      report->Append(record);
    }
    if (batch.status == sat::SolveResult::kUnknown) break;  // timeout
    if (batch.status == sat::SolveResult::kSat) {
      AcceptModel(conflict_graph, layout, batch.model, w, &result);
      break;
    }
    if (batch.refuted) {
      // A worker's okay() dropped: the whole guarded formula is UNSAT,
      // impossible below the DSATUR bound.
      result.error = kRefutedBelowDsatur;
      break;
    }
  }
  result.solver_stats = pool.MergedStats();
  result.exchange_totals = pool.exchange_totals();
  return result;
}

}  // namespace

IncrementalMinWidthResult FindMinimumWidthIncremental(
    const graph::Graph& conflict_graph, int lower_bound,
    const IncrementalMinWidthOptions& options) {
  Stopwatch stopwatch;
  const SweepSetup setup = PrepareSweep(conflict_graph, lower_bound, options);
  const Deadline deadline = options.timeout_seconds > 0.0
                                ? Deadline::After(options.timeout_seconds)
                                : Deadline::Infinite();
  IncrementalMinWidthResult result =
      options.cube_workers > 0
          ? SweepWithCubes(conflict_graph, setup, options, deadline)
          : SweepMonolithic(conflict_graph, setup, options, deadline);
  result.total_seconds = stopwatch.Seconds();
  return result;
}

}  // namespace satfr::flow
