#include "service/scheduler.h"

#include <algorithm>
#include <mutex>
#include <chrono>
#include <utility>

namespace satfr::service {
namespace {

constexpr auto kIdleNap = std::chrono::milliseconds(2);

}  // namespace

JobScheduler::JobScheduler(const SchedulerOptions& options)
    : options_(options) {
  int workers = options.num_workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (workers < 1) workers = 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(options.deque_capacity));
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w]->thread = std::thread([this, w] { WorkerLoop(w); });
  }
}

JobScheduler::~JobScheduler() {
  // Tombstone everything still pending so the drain below is fast even
  // with a deep backlog, and running jobs see their stop flag.
  {
    mc::MutexLock lock(jobs_mutex_);
    for (Job& job : jobs_) {
      job.cancel.store(true, std::memory_order_relaxed);
      Finish(job, JobStatus::kCancelled);
    }
  }
  shutdown_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

JobScheduler::Handle JobScheduler::Submit(JobFn fn, int priority,
                                          int affinity) {
  std::uint64_t id;
  {
    mc::MutexLock lock(jobs_mutex_);
    id = jobs_.size();
    jobs_.emplace_back();
    jobs_.back().fn = std::move(fn);
    jobs_.back().priority = priority;
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t target =
      affinity >= 0
          ? static_cast<std::size_t>(affinity) % workers_.size()
          : static_cast<std::size_t>(
                round_robin_.fetch_add(1, std::memory_order_relaxed) %
                workers_.size());
  Worker& worker = *workers_[target];
  {
    mc::MutexLock lock(worker.inbox_mutex);
    worker.inbox.push_back(static_cast<std::int64_t>(id));
  }
  work_cv_.notify_all();
  return Handle{id};
}

bool JobScheduler::Cancel(Handle handle) {
  Job* job = JobRef(handle.id);
  if (job == nullptr) return false;
  // The flag first: if the CAS below loses to a worker's pending->running
  // transition, the body still observes the stop request.
  job->cancel.store(true, std::memory_order_relaxed);
  return Finish(*job, JobStatus::kCancelled);
}

JobStatus JobScheduler::Wait(Handle handle) {
  Job* job = JobRef(handle.id);
  if (job == nullptr) return JobStatus::kCancelled;
  for (;;) {
    const auto status =
        static_cast<JobStatus>(job->status.load(std::memory_order_acquire));
    if (status == JobStatus::kDone || status == JobStatus::kCancelled) {
      return status;
    }
    std::unique_lock<mc::Mutex> lock(wake_mutex_);
    done_cv_.wait_for(lock, kIdleNap);
  }
}

JobStatus JobScheduler::StatusOf(Handle handle) const {
  Job* job = JobRef(handle.id);
  if (job == nullptr) return JobStatus::kCancelled;
  return static_cast<JobStatus>(job->status.load(std::memory_order_acquire));
}

void JobScheduler::WaitIdle() {
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    std::unique_lock<mc::Mutex> lock(wake_mutex_);
    done_cv_.wait_for(lock, kIdleNap);
  }
}

SchedulerStats JobScheduler::stats() const {
  SchedulerStats stats;
  {
    mc::MutexLock lock(jobs_mutex_);
    stats.submitted = jobs_.size();
  }
  stats.completed = stat_completed_.load(std::memory_order_relaxed);
  stats.cancelled = stat_cancelled_.load(std::memory_order_relaxed);
  stats.steals = stat_steals_.load(std::memory_order_relaxed);
  return stats;
}

JobScheduler::Job* JobScheduler::JobRef(std::uint64_t id) const {
  mc::MutexLock lock(jobs_mutex_);
  if (id >= jobs_.size()) return nullptr;
  // Safe to hand out: std::deque growth never relocates existing elements,
  // and jobs_ is append-only for the scheduler's lifetime.
  return const_cast<Job*>(&jobs_[static_cast<std::size_t>(id)]);
}

bool JobScheduler::Finish(Job& job, JobStatus to) {
  int expected = static_cast<int>(JobStatus::kPending);
  if (!job.status.compare_exchange_strong(expected, static_cast<int>(to),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    return false;
  }
  // Exactly one party moves a job out of kPending, so this decrement (and
  // the matching stat) happens exactly once per job.
  if (to == JobStatus::kCancelled) {
    stat_cancelled_.fetch_add(1, std::memory_order_relaxed);
    outstanding_.fetch_sub(1, std::memory_order_release);
    done_cv_.notify_all();
  }
  return true;
}

bool JobScheduler::DrainInbox(Worker& worker) {
  std::vector<std::int64_t> taken;
  {
    mc::MutexLock lock(worker.inbox_mutex);
    if (worker.inbox.empty()) return false;
    // Keep PushBottom within the deque's fixed capacity: the owner's
    // ApproxSize never under-reports its own unpopped pushes.
    const std::size_t room =
        worker.deque.Capacity() - worker.deque.ApproxSize();
    const std::size_t take = std::min(room, worker.inbox.size());
    if (take == 0) return false;
    taken.assign(worker.inbox.begin(),
                 worker.inbox.begin() + static_cast<std::ptrdiff_t>(take));
    worker.inbox.erase(
        worker.inbox.begin(),
        worker.inbox.begin() + static_cast<std::ptrdiff_t>(take));
  }
  std::vector<std::pair<int, std::int64_t>> batch;  // (priority, id)
  batch.reserve(taken.size());
  for (const std::int64_t id : taken) {
    batch.emplace_back(JobRef(static_cast<std::uint64_t>(id))->priority, id);
  }
  // Ascending priority, stable: the LIFO bottom ends at the highest
  // priority (and FIFO among equals reversed by the pop — acceptable
  // within one drained batch), so PopBottom serves priority order.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (const auto& [priority, id] : batch) worker.deque.PushBottom(id);
  return true;
}

void JobScheduler::RunJob(std::int64_t id, bool stolen) {
  Job& job = *JobRef(static_cast<std::uint64_t>(id));
  int expected = static_cast<int>(JobStatus::kPending);
  if (!job.status.compare_exchange_strong(
          expected, static_cast<int>(JobStatus::kRunning),
          std::memory_order_acq_rel, std::memory_order_acquire)) {
    return;  // tombstone: Cancel won the race; it settled the bookkeeping
  }
  if (stolen) stat_steals_.fetch_add(1, std::memory_order_relaxed);
  job.fn(job.cancel);
  job.fn = nullptr;  // release captured payload (graphs, callbacks) early
  job.status.store(static_cast<int>(JobStatus::kDone),
                   std::memory_order_release);
  stat_completed_.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_sub(1, std::memory_order_release);
  done_cv_.notify_all();
}

void JobScheduler::WorkerLoop(std::size_t worker_index) {
  Worker& self = *workers_[worker_index];
  std::size_t steal_cursor = worker_index + 1;
  for (;;) {
    DrainInbox(self);
    std::int64_t id;
    if (self.deque.PopBottom(&id)) {
      RunJob(id, /*stolen=*/false);
      continue;
    }
    // Own work exhausted: sweep the siblings once before napping.
    bool stole = false;
    for (std::size_t i = 0; i + 1 < workers_.size() && !stole; ++i) {
      Worker& victim = *workers_[(steal_cursor + i) % workers_.size()];
      if (&victim == &self) continue;
      if (victim.deque.Steal(&id)) {
        steal_cursor = (steal_cursor + i) % workers_.size();
        RunJob(id, /*stolen=*/true);
        stole = true;
      }
    }
    if (stole) continue;
    if (shutdown_.load(std::memory_order_acquire)) {
      // Drain leftovers (all tombstoned by the destructor) so no id is
      // abandoned mid-structure, then exit.
      bool drained_any = DrainInbox(self);
      while (self.deque.PopBottom(&id)) {
        RunJob(id, /*stolen=*/false);
        drained_any = true;
      }
      if (!drained_any) return;
      continue;
    }
    std::unique_lock<mc::Mutex> lock(wake_mutex_);
    work_cv_.wait_for(lock, kIdleNap);
  }
}

}  // namespace satfr::service
