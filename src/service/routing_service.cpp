#include "service/routing_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "encode/registry.h"
#include "symmetry/symmetry.h"

namespace satfr::service {
namespace {

std::uint64_t Micros(double seconds) {
  return seconds <= 0.0 ? 0
                        : static_cast<std::uint64_t>(seconds * 1e6 + 0.5);
}

bool ParseSymmetry(const std::string& name, symmetry::Heuristic* out) {
  if (name == "none" || name == "-") {
    *out = symmetry::Heuristic::kNone;
  } else if (name == "b1") {
    *out = symmetry::Heuristic::kB1;
  } else if (name == "s1") {
    *out = symmetry::Heuristic::kS1;
  } else {
    return false;
  }
  return true;
}

bool ParseSolverPreset(const std::string& name, sat::SolverOptions* out) {
  if (name == "siege" || name.empty()) {
    *out = sat::SolverOptions::SiegeLike();
  } else if (name == "minisat") {
    *out = sat::SolverOptions::MiniSatLike();
  } else {
    return false;
  }
  return true;
}

// Wait-side nap between settle-state polls (the scheduler's Wait does the
// heavy blocking; this only covers the claim->publish window).
constexpr auto kSettleNap = std::chrono::microseconds(100);

}  // namespace

RoutingService::RoutingService(const ServiceOptions& options)
    : options_(options),
      verdicts_(options.verdict_cache),
      instances_(options.instance_cache),
      summaries_(options.summary_slots),
      scheduler_(options.scheduler) {
  obs::MetricsRegistry& m = metrics();
  id_requests_ = m.Counter("service.requests");
  id_session_ops_ = m.Counter("service.session_ops");
  id_summary_hits_ = m.Counter("service.summary_hits");
  id_verdict_hits_ = m.Counter("service.verdict_hits");
  id_instance_hits_ = m.Counter("service.instance_hits");
  id_latency_us_ = m.Histogram("service.latency_us");
  id_queue_us_ = m.Histogram("service.queue_us");
  id_solve_us_ = m.Histogram("service.solve_us");
  id_apply_us_ = m.Histogram("service.apply_us");
}

RoutingService::~RoutingService() = default;

obs::MetricsRegistry& RoutingService::metrics() const {
  return options_.metrics != nullptr ? *options_.metrics
                                     : obs::GlobalMetrics();
}

RoutingService::Ticket RoutingService::NewTicket(RequestKind kind,
                                                 bool is_session_op) {
  mc::MutexLock lock(pending_mutex_);
  const std::uint64_t id = pending_.size();
  pending_.emplace_back();
  pending_.back().response.kind = kind;
  pending_.back().is_session_op = is_session_op;
  return Ticket{id};
}

RoutingService::Pending* RoutingService::PendingRef(std::uint64_t id) const {
  mc::MutexLock lock(pending_mutex_);
  if (id >= pending_.size()) return nullptr;
  // std::deque growth never relocates elements and pending_ is append-only.
  return const_cast<Pending*>(&pending_[static_cast<std::size_t>(id)]);
}

bool RoutingService::ClaimSettle(Pending& pending) {
  int expected = 0;
  return pending.state.compare_exchange_strong(
      expected, 1, std::memory_order_acq_rel, std::memory_order_acquire);
}

void RoutingService::PublishSettle(Pending& pending) {
  pending.response.latency_seconds = pending.submitted.Seconds();
  metrics().Observe(id_latency_us_, Micros(pending.response.latency_seconds));
  pending.state.store(2, std::memory_order_release);
}

RoutingService::Ticket RoutingService::Submit(RouteRequest request) {
  if (request.fingerprint == 0 && request.graph != nullptr) {
    request.fingerprint = FingerprintGraph(*request.graph);
  }
  stat_requests_.fetch_add(1, std::memory_order_relaxed);
  metrics().Add(id_requests_);
  const Ticket ticket = NewTicket(RequestKind::kRoute, false);
  Pending* pending = PendingRef(ticket.id);
  auto shared = std::make_shared<RouteRequest>(std::move(request));
  pending->handle = scheduler_.Submit(
      [this, shared, pending](const mc::Atomic<bool>& cancel) {
        ExecuteRoute(*shared, *pending, cancel);
      },
      shared->priority);
  return ticket;
}

std::vector<RoutingService::Ticket> RoutingService::SubmitBatch(
    std::vector<RouteRequest> requests) {
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (RouteRequest& request : requests) {
    tickets.push_back(Submit(std::move(request)));
  }
  return tickets;
}

const Response& RoutingService::Wait(Ticket ticket) {
  static const Response kInvalid = [] {
    Response r;
    r.ok = false;
    r.error = "invalid ticket";
    return r;
  }();
  Pending* pending = PendingRef(ticket.id);
  if (pending == nullptr) return kInvalid;
  if (!pending->is_session_op) {
    const JobStatus status = scheduler_.Wait(pending->handle);
    if (status == JobStatus::kCancelled && ClaimSettle(*pending)) {
      // Cancelled before any worker picked it up (Cancel or shutdown).
      pending->response.cancelled = true;
      pending->response.ok = false;
      pending->response.status = sat::SolveResult::kUnknown;
      pending->response.error = "cancelled before execution";
      PublishSettle(*pending);
    }
  }
  while (pending->state.load(std::memory_order_acquire) != 2) {
    std::this_thread::sleep_for(kSettleNap);
  }
  return pending->response;
}

bool RoutingService::Cancel(Ticket ticket) {
  Pending* pending = PendingRef(ticket.id);
  if (pending == nullptr) return false;
  pending->cancel_requested.store(true, std::memory_order_release);
  if (pending->is_session_op) {
    // The pump observes the flag when it reaches the op.
    return pending->state.load(std::memory_order_acquire) == 0;
  }
  // Scheduler-side: either the job never runs (true) or its stop flag is
  // now set and the in-flight solver aborts cooperatively (false).
  if (scheduler_.Cancel(pending->handle)) {
    if (ClaimSettle(*pending)) {
      pending->response.cancelled = true;
      pending->response.ok = false;
      pending->response.status = sat::SolveResult::kUnknown;
      pending->response.error = "cancelled before execution";
      PublishSettle(*pending);
    }
    return true;
  }
  return false;
}

void RoutingService::Drain() {
  scheduler_.WaitIdle();
  // Settle route tickets whose job was cancelled before running and never
  // waited on (their response would otherwise stay unpublished).
  std::size_t count;
  {
    mc::MutexLock lock(pending_mutex_);
    count = pending_.size();
  }
  for (std::uint64_t id = 0; id < count; ++id) {
    Pending* pending = PendingRef(id);
    if (pending->is_session_op) continue;
    if (scheduler_.StatusOf(pending->handle) == JobStatus::kCancelled &&
        ClaimSettle(*pending)) {
      pending->response.cancelled = true;
      pending->response.ok = false;
      pending->response.error = "cancelled before execution";
      PublishSettle(*pending);
    }
  }
}

void RoutingService::ExecuteRoute(const RouteRequest& request,
                                  Pending& pending,
                                  const mc::Atomic<bool>& cancel) {
  Response& r = pending.response;
  obs::MetricsRegistry& m = metrics();
  m.Observe(id_queue_us_, Micros(pending.submitted.Seconds()));
  do {
    if (request.graph == nullptr || request.width <= 0) {
      r.ok = false;
      r.error = "malformed request: null graph or non-positive width";
      break;
    }
    const std::optional<encode::EncodingSpec> spec =
        encode::FindEncoding(request.encoding);
    if (!spec.has_value()) {
      r.ok = false;
      r.error = "unknown encoding: " + request.encoding;
      break;
    }
    symmetry::Heuristic heuristic;
    if (!ParseSymmetry(request.symmetry, &heuristic)) {
      r.ok = false;
      r.error = "unknown symmetry heuristic: " + request.symmetry;
      break;
    }
    sat::SolverOptions preset;
    if (!ParseSolverPreset(request.solver, &preset)) {
      r.ok = false;
      r.error = "unknown solver preset: " + request.solver;
      break;
    }

    const CacheKey verdict_key{request.fingerprint, request.width,
                               request.encoding, request.symmetry,
                               request.solver};
    const std::uint64_t verdict_hash = verdict_key.Hash();
    if (options_.cache_verdicts) {
      // Fast path: the lock-free summary fully answers UNSAT repeats (no
      // tracks to fetch). 64-bit hash match stands in for key equality —
      // the same tradeoff the summary-table collision policy documents.
      VerdictSummary summary;
      if (summaries_.Probe(verdict_hash, &summary) &&
          static_cast<sat::SolveResult>(summary.status) ==
              sat::SolveResult::kUnsat) {
        r.status = sat::SolveResult::kUnsat;
        r.summary_hit = true;
        r.verdict_hit = true;
        stat_summary_hits_.fetch_add(1, std::memory_order_relaxed);
        m.Add(id_summary_hits_);
        break;
      }
      if (const auto verdict = verdicts_.Lookup(verdict_key)) {
        r.status = verdict->status;
        r.tracks = verdict->tracks;
        r.verdict_hit = true;
        m.Add(id_verdict_hits_);
        break;
      }
    }

    const CacheKey instance_key{request.fingerprint, request.width,
                                request.encoding, request.symmetry,
                                /*solver=*/""};
    std::shared_ptr<const encode::EncodedColoring> instance;
    if (options_.cache_instances) {
      instance = instances_.Lookup(instance_key);
    }
    if (instance != nullptr) {
      r.instance_hit = true;
      m.Add(id_instance_hits_);
    } else if (options_.cache_instances) {
      // Cold encode, materialized once so the next miss on this instance
      // (any solver preset, e.g. a timeout retry) skips it.
      Stopwatch encode_watch;
      const std::vector<graph::VertexId> sequence =
          symmetry::SymmetrySequence(*request.graph, request.width,
                                     heuristic);
      auto fresh = std::make_shared<encode::EncodedColoring>(
          encode::EncodeColoring(*request.graph, request.width, *spec,
                                 sequence));
      r.encode_seconds = encode_watch.Seconds();
      const std::size_t bytes =
          fresh->cnf.ApproxHeapBytes() +
          fresh->vertex_offset.size() * sizeof(int) + sizeof(*fresh);
      instances_.Insert(instance_key, fresh, bytes);
      instance = std::move(fresh);
    }

    flow::DetailedRouteOptions route_options;
    route_options.encoding = *spec;
    route_options.heuristic = heuristic;
    route_options.solver = preset;
    route_options.timeout_seconds = request.timeout_seconds >= 0.0
                                        ? request.timeout_seconds
                                        : options_.timeout_seconds;
    route_options.stop = &cancel;
    route_options.run_label = request.label;
    if (instance != nullptr) route_options.reuse_encoding = instance.get();
    const flow::DetailedRouteResult result =
        flow::RouteDetailedOnGraph(*request.graph, request.width,
                                   route_options);
    r.status = result.status;
    r.tracks = result.tracks;
    r.solve_seconds = result.solve_seconds;
    r.encode_seconds += result.encode_seconds;
    r.cancelled = result.status == sat::SolveResult::kUnknown &&
                  cancel.load(std::memory_order_relaxed);
    m.Observe(id_solve_us_, Micros(result.solve_seconds));

    // kUnknown (timeout / cancel) is a fact about the budget, not the
    // instance — never cache it.
    if (options_.cache_verdicts &&
        result.status != sat::SolveResult::kUnknown) {
      auto entry = std::make_shared<VerdictEntry>();
      entry->status = result.status;
      entry->tracks = result.tracks;
      entry->cold_solve_seconds = result.solve_seconds;
      entry->cold_encode_seconds = r.encode_seconds;
      entry->graph = request.graph;
      const std::size_t bytes =
          sizeof(VerdictEntry) + entry->tracks.size() * sizeof(int);
      verdicts_.Insert(verdict_key, entry, bytes);
      summaries_.Publish(VerdictSummary{
          verdict_hash, static_cast<std::int32_t>(result.status),
          request.width, result.solve_seconds});
    }
  } while (false);
  if (ClaimSettle(pending)) PublishSettle(pending);
}

// --- sessions -------------------------------------------------------------

bool RoutingService::OpenSession(const std::string& client,
                                 std::shared_ptr<const graph::Graph> graph,
                                 int max_width, const std::string& encoding,
                                 const std::string& symmetry,
                                 std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (graph == nullptr) return fail("null graph");
  const std::optional<encode::EncodingSpec> spec =
      encode::FindEncoding(encoding);
  if (!spec.has_value()) return fail("unknown encoding: " + encoding);
  flow::RoutingSessionOptions session_options;
  session_options.encoding = *spec;
  if (!ParseSymmetry(symmetry, &session_options.heuristic)) {
    return fail("unknown symmetry heuristic: " + symmetry);
  }
  session_options.timeout_seconds = options_.timeout_seconds;
  session_options.run_label = client;

  auto session = std::make_shared<Session>();
  session->graph = graph;
  session->affinity = static_cast<int>(
      StableHash64(client) %
      static_cast<std::uint64_t>(scheduler_.num_workers()));
  session->session = std::make_unique<flow::RoutingSession>(
      *graph, max_width, session_options);
  if (!session->session->ok()) return fail(session->session->error());
  {
    mc::MutexLock lock(sessions_mutex_);
    sessions_[client] = std::move(session);
  }
  return true;
}

bool RoutingService::HasSession(const std::string& client) const {
  mc::MutexLock lock(sessions_mutex_);
  return sessions_.count(client) != 0;
}

void RoutingService::CloseSession(const std::string& client) {
  // An in-flight pump holds its own shared_ptr; dropping the map entry
  // only prevents new ops.
  mc::MutexLock lock(sessions_mutex_);
  sessions_.erase(client);
}

RoutingService::Ticket RoutingService::SubmitRipUp(const std::string& client,
                                                   graph::VertexId net) {
  SessionOp op;
  op.kind = RequestKind::kSessionRipUp;
  op.net = net;
  return SubmitSessionOp(client, std::move(op));
}

RoutingService::Ticket RoutingService::SubmitReroute(
    const std::string& client, graph::VertexId net,
    std::vector<graph::VertexId> conflicts) {
  SessionOp op;
  op.kind = RequestKind::kSessionReroute;
  op.net = net;
  op.conflicts = std::move(conflicts);
  return SubmitSessionOp(client, std::move(op));
}

RoutingService::Ticket RoutingService::SubmitSessionSolve(
    const std::string& client, int width) {
  SessionOp op;
  op.kind = RequestKind::kSessionSolve;
  op.width = width;
  return SubmitSessionOp(client, std::move(op));
}

RoutingService::Ticket RoutingService::SubmitSessionOp(
    const std::string& client, SessionOp op) {
  stat_session_ops_.fetch_add(1, std::memory_order_relaxed);
  metrics().Add(id_session_ops_);
  const Ticket ticket = NewTicket(op.kind, /*is_session_op=*/true);
  Pending* pending = PendingRef(ticket.id);
  std::shared_ptr<Session> session;
  {
    mc::MutexLock lock(sessions_mutex_);
    const auto it = sessions_.find(client);
    if (it != sessions_.end()) session = it->second;
  }
  if (session == nullptr) {
    if (ClaimSettle(*pending)) {
      pending->response.ok = false;
      pending->response.error = "no open session for client: " + client;
      PublishSettle(*pending);
    }
    return ticket;
  }
  op.ticket = ticket.id;
  bool need_pump;
  {
    mc::MutexLock lock(session->mutex);
    session->queue.push_back(std::move(op));
    need_pump = !session->pump_scheduled;
    session->pump_scheduled = true;
  }
  if (need_pump) {
    // Deltas outrank fresh routes (priority 1 > default 0): a client
    // blocked on a microsecond apply should not sit behind cold solves.
    scheduler_.Submit(
        [this, session](const mc::Atomic<bool>&) { PumpSession(session); },
        /*priority=*/1, session->affinity);
  }
  return ticket;
}

void RoutingService::PumpSession(const std::shared_ptr<Session>& session) {
  // Single pump per session at a time (pump_scheduled), so the
  // RoutingSession below is touched by exactly one thread here.
  for (;;) {
    SessionOp op;
    {
      mc::MutexLock lock(session->mutex);
      if (session->queue.empty()) {
        // Checked under the same lock submitters hold, so no op can slip
        // in between the emptiness check and the flag reset.
        session->pump_scheduled = false;
        return;
      }
      op = std::move(session->queue.front());
      session->queue.pop_front();
    }
    ExecuteSessionOp(*session, op);
  }
}

void RoutingService::ExecuteSessionOp(Session& session, const SessionOp& op) {
  Pending* pending = PendingRef(op.ticket);
  if (pending == nullptr || !ClaimSettle(*pending)) return;
  Response& r = pending->response;
  obs::MetricsRegistry& m = metrics();
  m.Observe(id_queue_us_, Micros(pending->submitted.Seconds()));
  if (pending->cancel_requested.load(std::memory_order_acquire)) {
    r.cancelled = true;
    r.ok = false;
    r.error = "cancelled before execution";
    PublishSettle(*pending);
    return;
  }
  flow::RoutingSession& routing_session = *session.session;
  switch (op.kind) {
    case RequestKind::kSessionRipUp: {
      Stopwatch apply_watch;
      r.ok = routing_session.RipUp(op.net);
      r.apply_seconds = apply_watch.Seconds();
      if (!r.ok) r.error = routing_session.error();
      m.Observe(id_apply_us_, Micros(r.apply_seconds));
      break;
    }
    case RequestKind::kSessionReroute: {
      Stopwatch apply_watch;
      r.ok = routing_session.Reroute(op.net, op.conflicts);
      r.apply_seconds = apply_watch.Seconds();
      if (!r.ok) r.error = routing_session.error();
      m.Observe(id_apply_us_, Micros(r.apply_seconds));
      break;
    }
    case RequestKind::kSessionSolve: {
      const int width =
          op.width > 0 ? op.width : routing_session.max_width();
      const flow::SessionSolveResult result = routing_session.Solve(width);
      r.status = result.status;
      r.tracks = result.tracks;
      r.solve_seconds = result.solve_seconds;
      if (!result.error.empty()) {
        r.ok = false;
        r.error = result.error;
      }
      m.Observe(id_solve_us_, Micros(result.solve_seconds));
      break;
    }
    case RequestKind::kRoute:
      r.ok = false;
      r.error = "internal: route request in session queue";
      break;
  }
  PublishSettle(*pending);
}

// --- introspection --------------------------------------------------------

ServiceStats RoutingService::stats() const {
  ServiceStats stats;
  stats.scheduler = scheduler_.stats();
  stats.verdicts = verdicts_.stats();
  stats.instances = instances_.stats();
  stats.requests = stat_requests_.load(std::memory_order_relaxed);
  stats.summary_hits = stat_summary_hits_.load(std::memory_order_relaxed);
  stats.session_ops = stat_session_ops_.load(std::memory_order_relaxed);
  {
    mc::MutexLock lock(sessions_mutex_);
    stats.sessions_open = sessions_.size();
  }
  return stats;
}

std::vector<analysis::CoherenceSample> RoutingService::SampleCoherence(
    std::size_t max_samples, std::uint64_t seed) const {
  std::vector<analysis::CoherenceSample> samples;
  for (const auto& entry : verdicts_.Sample(max_samples, seed)) {
    if (entry.value == nullptr || entry.value->graph == nullptr) continue;
    analysis::CoherenceSample sample;
    sample.key = entry.key.ToString();
    sample.cached_verdict = sat::ToString(entry.value->status);
    sample.hit_count = entry.hits;

    flow::DetailedRouteOptions route_options;
    route_options.encoding = encode::GetEncoding(entry.key.encoding);
    symmetry::Heuristic heuristic = symmetry::Heuristic::kNone;
    ParseSymmetry(entry.key.symmetry, &heuristic);
    route_options.heuristic = heuristic;
    sat::SolverOptions preset;
    ParseSolverPreset(entry.key.solver, &preset);
    route_options.solver = preset;
    route_options.timeout_seconds = options_.timeout_seconds;
    route_options.run_label = "coherence:" + entry.key.ToString();
    const flow::DetailedRouteResult fresh = flow::RouteDetailedOnGraph(
        *entry.value->graph, entry.key.width, route_options);
    sample.fresh_verdict = sat::ToString(fresh.status);
    if (entry.value->status == sat::SolveResult::kSat) {
      sample.tracks_checked = true;
      sample.tracks_valid =
          entry.value->graph->IsProperColoring(entry.value->tracks);
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace satfr::service
