#include "service/cache.h"

#include "graph/graph.h"

namespace satfr::service {

std::uint64_t FingerprintGraph(const graph::Graph& g) {
  // FNV-1a over the vertex count and the sorted edge list. Edges() returns
  // each undirected edge once with u < v in ascending order, so the
  // fingerprint is a function of the graph's structure alone.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t value) {
    h ^= value;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(g.num_vertices()));
  for (const auto& [u, v] : g.Edges()) {
    mix(static_cast<std::uint64_t>(u) << 32 | static_cast<std::uint32_t>(v));
  }
  // Avalanche so near-identical graphs (one edge apart) spread across
  // shards and summary slots.
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

std::string CacheKey::ToString() const {
  std::string out = "g";
  out += std::to_string(fingerprint);
  out += "/W";
  out += std::to_string(width);
  out += "/";
  out += encoding;
  out += "/";
  out += symmetry;
  if (!solver.empty()) {
    out += "/";
    out += solver;
  }
  return out;
}

}  // namespace satfr::service
