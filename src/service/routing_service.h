// The long-lived routing service (DESIGN.md §15): batched asynchronous
// routing queries over a worker pool, answered through a two-tier cache,
// with per-client incremental sessions.
//
// Request path, in decreasing order of cheapness:
//
//   1. Seqlock summary probe (lock-free) — answers repeat UNSAT queries.
//   2. Verdict-cache hit (one shard mutex) — answers any repeat query.
//   3. Instance-cache hit — skips symmetry + encode; the cached CNF loads
//      into a fresh solver via DetailedRouteOptions::reuse_encoding.
//   4. Full miss — encode once (materialized into the instance cache),
//      solve, publish the verdict to both the locked tier and the summary
//      table.
//
// Every solve, hit or miss, goes through flow::RouteDetailedOnGraph, so
// the service inherits the flow's telemetry (trace spans, run records,
// flow.solves) and its timeout/stop handling; the scheduler's per-job
// cancel atomic IS the solver stop flag.
//
// Sessions: a client that opens a session gets a resident
// flow::RoutingSession pinned to worker hash(client) % workers. Session
// ops (rip-up / re-route / solve) are FIFO per client — they enter a
// per-session queue drained by a "pump" job submitted with the session's
// affinity, so deltas apply in order on warm state and never migrate
// between workers mid-stream. kUnknown answers (timeout / cancel) are
// never cached.
#ifndef SATFR_SERVICE_ROUTING_SERVICE_H_
#define SATFR_SERVICE_ROUTING_SERVICE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/pass.h"
#include "common/stopwatch.h"
#include "flow/detailed_router.h"
#include "flow/routing_session.h"
#include "graph/graph.h"
#include "mc/annotations.h"
#include "mc/shim.h"
#include "obs/metrics.h"
#include "service/cache.h"
#include "service/scheduler.h"

namespace satfr::service {

struct ServiceOptions {
  SchedulerOptions scheduler;
  CacheTierOptions verdict_cache{/*num_shards=*/8,
                                 /*max_entries_per_shard=*/256,
                                 /*max_bytes_per_shard=*/8u << 20};
  CacheTierOptions instance_cache{/*num_shards=*/8,
                                  /*max_entries_per_shard=*/32,
                                  /*max_bytes_per_shard=*/64u << 20};
  std::size_t summary_slots = 1024;
  bool cache_verdicts = true;
  bool cache_instances = true;
  /// Per-request wall-clock budget (overridable per request); <= 0 means
  /// unlimited.
  double timeout_seconds = 0.0;
  /// Metrics sink; null means obs::GlobalMetrics(). Benchmarks point each
  /// phase at its own registry for clean per-phase histograms.
  obs::MetricsRegistry* metrics = nullptr;
};

struct RouteRequest {
  /// Telemetry label (benchmark name); empty is fine.
  std::string label;
  std::shared_ptr<const graph::Graph> graph;
  int width = 0;
  std::string encoding = "muldirect";
  std::string symmetry = "none";
  std::string solver = "siege";  // "siege" or "minisat"
  int priority = 0;
  double timeout_seconds = -1.0;  // < 0: use ServiceOptions::timeout_seconds
  /// Precomputed FingerprintGraph(*graph); 0 computes it at submit.
  std::uint64_t fingerprint = 0;
};

/// What kind of work a ticket tracks.
enum class RequestKind { kRoute, kSessionRipUp, kSessionReroute, kSessionSolve };

struct Response {
  RequestKind kind = RequestKind::kRoute;
  sat::SolveResult status = sat::SolveResult::kUnknown;
  /// Track assignment; filled on kSat (route: per 2-pin net; session
  /// solve: per net, -1 for inactive nets).
  std::vector<int> tracks;
  /// Submit-to-completion wall time (queueing included).
  double latency_seconds = 0.0;
  double solve_seconds = 0.0;
  double encode_seconds = 0.0;
  /// Session delta ops: emission/apply cost inside the resident solver.
  double apply_seconds = 0.0;
  bool summary_hit = false;   // answered by the lock-free seqlock front
  bool verdict_hit = false;   // answered by the verdict tier (incl. summary)
  bool instance_hit = false;  // encode skipped via the instance tier
  bool cancelled = false;
  bool ok = true;             // false: malformed request / session error
  std::string error;
};

struct ServiceStats {
  SchedulerStats scheduler;
  CacheTierStats verdicts;
  CacheTierStats instances;
  std::uint64_t requests = 0;
  std::uint64_t summary_hits = 0;
  std::uint64_t session_ops = 0;
  std::uint64_t sessions_open = 0;
};

class RoutingService {
 public:
  struct Ticket {
    static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
    std::uint64_t id = kInvalid;
    bool valid() const { return id != kInvalid; }
  };

  explicit RoutingService(const ServiceOptions& options = {});
  /// Drains in-flight work (pending jobs are cancelled by the scheduler).
  ~RoutingService();

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  /// Enqueues one routing query; never blocks on the solve.
  Ticket Submit(RouteRequest request);
  /// Batch submission: the whole batch is enqueued before any result is
  /// awaited, so N requests share the pool instead of serializing.
  std::vector<Ticket> SubmitBatch(std::vector<RouteRequest> requests);

  /// Blocks until the ticket's work finished (or was cancelled).
  const Response& Wait(Ticket ticket);
  /// Cancels: a queued request never solves; a running one gets its stop
  /// flag (the solver aborts at its next check and reports kUnknown).
  bool Cancel(Ticket ticket);
  /// Blocks until every submitted ticket is settled.
  void Drain();

  // --- sessions -----------------------------------------------------------
  /// Opens (or replaces) `client`'s session: encodes `graph` once at
  /// `max_width` into a resident solver, synchronously on the calling
  /// thread; subsequent ops run on the session's pinned worker. False
  /// (with *error) when session construction failed.
  bool OpenSession(const std::string& client,
                   std::shared_ptr<const graph::Graph> graph, int max_width,
                   const std::string& encoding, const std::string& symmetry,
                   std::string* error = nullptr);
  bool HasSession(const std::string& client) const;
  void CloseSession(const std::string& client);

  /// FIFO per client: ops apply in submission order on the resident
  /// session, on the session's pinned worker.
  Ticket SubmitRipUp(const std::string& client, graph::VertexId net);
  Ticket SubmitReroute(const std::string& client, graph::VertexId net,
                       std::vector<graph::VertexId> conflicts);
  /// `width` <= 0 solves at the session's max width.
  Ticket SubmitSessionSolve(const std::string& client, int width);

  // --- introspection ------------------------------------------------------
  ServiceStats stats() const;
  int num_workers() const { return scheduler_.num_workers(); }

  /// Re-solves up to `max_samples` verdict-cache entries fresh (no cache,
  /// same flow) and reports agreement — the input of the
  /// service-cache-coherence satlint pass. Synchronous on the caller.
  std::vector<analysis::CoherenceSample> SampleCoherence(
      std::size_t max_samples, std::uint64_t seed = 1) const;

 private:
  /// A cached verdict plus everything needed to audit it later.
  struct VerdictEntry {
    sat::SolveResult status = sat::SolveResult::kUnknown;
    std::vector<int> tracks;
    double cold_solve_seconds = 0.0;
    double cold_encode_seconds = 0.0;
    std::shared_ptr<const graph::Graph> graph;
  };

  struct SessionOp {
    RequestKind kind = RequestKind::kSessionSolve;
    graph::VertexId net = 0;
    std::vector<graph::VertexId> conflicts;
    int width = 0;
    std::uint64_t ticket = 0;
  };

  struct Session {
    std::unique_ptr<flow::RoutingSession> session;
    std::shared_ptr<const graph::Graph> graph;
    int affinity = 0;
    mc::Mutex mutex;
    std::deque<SessionOp> queue SATFR_GUARDED_BY(mutex);
    bool pump_scheduled SATFR_GUARDED_BY(mutex) = false;
  };

  struct Pending {
    Response response;
    JobScheduler::Handle handle;
    Stopwatch submitted;
    // 0 = in flight, 1 = claimed (a settler is filling the response),
    // 2 = settled (response immutable). The claim CAS makes exactly one
    // party — the executing worker, a pump, or a successful Cancel — the
    // response writer, and Wait only reads at state 2.
    mc::Atomic<int> state{0};
    mc::Atomic<bool> cancel_requested{false};
    bool is_session_op = false;
  };

  obs::MetricsRegistry& metrics() const;
  Ticket NewTicket(RequestKind kind, bool is_session_op);
  Pending* PendingRef(std::uint64_t id) const;
  /// True for exactly one caller per ticket: that caller may write the
  /// response and must follow with PublishSettle.
  bool ClaimSettle(Pending& pending);
  /// Records latency metrics and makes the response visible to Wait.
  void PublishSettle(Pending& pending);
  Ticket SubmitSessionOp(const std::string& client, SessionOp op);
  void PumpSession(const std::shared_ptr<Session>& session);
  void ExecuteRoute(const RouteRequest& request, Pending& pending,
                    const mc::Atomic<bool>& cancel);
  void ExecuteSessionOp(Session& session, const SessionOp& op);

  const ServiceOptions options_;
  ShardedLruCache<VerdictEntry> verdicts_;
  ShardedLruCache<encode::EncodedColoring> instances_;
  VerdictSummaryTable summaries_;

  mutable mc::Mutex pending_mutex_;
  // deque: append-only; workers hold Pending* across later submissions.
  std::deque<Pending> pending_ SATFR_GUARDED_BY(pending_mutex_);

  mutable mc::Mutex sessions_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_
      SATFR_GUARDED_BY(sessions_mutex_);

  mc::Atomic<std::uint64_t> stat_requests_{0};
  mc::Atomic<std::uint64_t> stat_summary_hits_{0};
  mc::Atomic<std::uint64_t> stat_session_ops_{0};

  // Resolved once against metrics() (service.* namespace); latencies in µs.
  obs::MetricId id_requests_;
  obs::MetricId id_session_ops_;
  obs::MetricId id_summary_hits_;
  obs::MetricId id_verdict_hits_;
  obs::MetricId id_instance_hits_;
  obs::MetricId id_latency_us_;
  obs::MetricId id_queue_us_;
  obs::MetricId id_solve_us_;
  obs::MetricId id_apply_us_;

  // Last member: workers touch everything above, so the scheduler (and its
  // threads) must be destroyed first.
  JobScheduler scheduler_;
};

}  // namespace satfr::service

#endif  // SATFR_SERVICE_ROUTING_SERVICE_H_
