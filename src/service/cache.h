// Two-tier result cache for the routing service (DESIGN.md §15).
//
// Tier 1 — instance cache: materialized `encode::EncodedColoring` (CNF
// bytes + variable layout), keyed by (conflict-graph fingerprint, W,
// encoding, symmetry). A hit skips the symmetry sequence and the whole
// encoder; the solver loads the cached clauses through
// `DetailedRouteOptions::reuse_encoding`.
//
// Tier 2 — verdict cache: finished answers (status + tracks + cold-solve
// timing), keyed by the instance key PLUS the solver preset (the verdict
// depends on which solver produced it only through timeouts, but a preset
// change must not alias a cached answer). A hit skips everything. Each
// entry keeps a hit counter, and every entry pins the conflict graph it
// answered for, so the `service-cache-coherence` satlint pass can re-solve
// sampled entries fresh and compare.
//
// Both tiers are sharded bounded LRU maps: shard = key-hash % num_shards,
// each shard one `mc::Mutex` around an intrusive LRU list + hash index,
// bounded by entries AND approximate heap bytes. All synchronization goes
// through the mc:: shim, so the model checker covers the cache
// (tests/mc_litmus_test.cpp), and a seqlock-published summary table
// (`SeqlockedSlot`) serves repeat-UNSAT probes without taking any lock —
// the litmus suite proves a reader can never observe a torn or
// stale-generation summary.
#ifndef SATFR_SERVICE_CACHE_H_
#define SATFR_SERVICE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "mc/annotations.h"
#include "mc/shim.h"

// Mutation hook for the model-check mutation suite (same pattern as the
// deque hooks in cube/work_queue.h): weakens the seqlock writer's release
// ordering so a reader can observe a new generation with stale payload —
// the checker must catch it. Never defined in production builds.
#if defined(SATFR_MC_MUTATE_CACHE_PUBLISH_RELEASE)
#if !defined(SATFR_MODEL_CHECK)
#error "SATFR_MC_MUTATE_* requires SATFR_MODEL_CHECK"
#endif
#endif

namespace satfr::graph {
class Graph;
}  // namespace satfr::graph

namespace satfr::service {

namespace detail {
#if defined(SATFR_MC_MUTATE_CACHE_PUBLISH_RELEASE)
inline constexpr std::memory_order kSeqlockPublishOrder =
    std::memory_order_relaxed;  // MUTATED: checker must catch a stale read
#else
inline constexpr std::memory_order kSeqlockPublishOrder =
    std::memory_order_release;
#endif
}  // namespace detail

/// 64-bit structural fingerprint of a conflict graph: vertex count plus
/// every edge, FNV-mixed in Edges() order. Stands in for the
/// (netlist, placement) pair in cache keys — two placements of two
/// netlists that induce the same conflict graph are the same routing
/// instance by construction.
std::uint64_t FingerprintGraph(const graph::Graph& g);

/// What a cached answer is keyed by. `solver` is empty for the instance
/// tier (an encoded CNF is solver-independent) and the preset name for the
/// verdict tier.
struct CacheKey {
  std::uint64_t fingerprint = 0;
  int width = 0;
  std::string encoding;
  std::string symmetry;
  std::string solver;

  bool operator==(const CacheKey& other) const = default;

  std::uint64_t Hash() const {
    std::uint64_t h = StableHash64(encoding);
    h = h * 1099511628211ULL ^ StableHash64(symmetry);
    h = h * 1099511628211ULL ^ StableHash64(solver);
    h = h * 1099511628211ULL ^ fingerprint;
    h = h * 1099511628211ULL ^ static_cast<std::uint64_t>(width);
    // Final avalanche so shard selection (low bits) mixes the width too.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  }

  std::string ToString() const;
};

/// A single-writer seqlock cell publishing a trivially copyable T to
/// lock-free readers. Writers (serialized externally — the owning shard's
/// mutex) bump the generation to odd, store the payload word by word, then
/// bump to even with release; readers retry on odd or moved generations.
/// Generation 0 means "never published". The no-torn/no-stale property is
/// proved by the mc litmus suite and the PUBLISH_RELEASE mutation binary.
template <typename T>
class SeqlockedSlot {
  static_assert(std::is_trivially_copyable_v<T>,
                "seqlock payloads are copied as raw words");
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

 public:
  SeqlockedSlot() = default;
  SeqlockedSlot(const SeqlockedSlot&) = delete;
  SeqlockedSlot& operator=(const SeqlockedSlot&) = delete;

  /// Single writer at a time (callers hold the owning shard's lock).
  void Publish(const T& value) {
    std::uint64_t words[kWords] = {};
    std::memcpy(words, &value, sizeof(T));
    const std::uint64_t g = gen_.load(std::memory_order_relaxed);
    // Odd generation = write in progress. The release FENCE (not the store
    // order) is what forbids the payload stores from appearing before the
    // odd generation becomes visible.
    gen_.store(g + 1, std::memory_order_relaxed);
    mc::Fence(std::memory_order_release);
    for (std::size_t i = 0; i < kWords; ++i) {
      words_[i].store(words[i], std::memory_order_relaxed);
    }
    // Even generation republishes; release pairs with the reader's acquire
    // load so a reader seeing g+2 sees the full payload (mutation hook:
    // weakening this lets a reader pair new generation with old words).
    gen_.store(g + 2, detail::kSeqlockPublishOrder);
  }

  /// Any thread, lock-free. False when never published or a concurrent
  /// Publish overlapped (callers fall back to the locked tier).
  bool TryRead(T* out) const {
    const std::uint64_t g1 = gen_.load(std::memory_order_acquire);
    if (g1 == 0 || (g1 & 1) != 0) return false;
    std::uint64_t words[kWords];
    for (std::size_t i = 0; i < kWords; ++i) {
      words[i] = words_[i].load(std::memory_order_relaxed);
    }
    // Acquire fence before the generation re-read: if any payload load saw
    // a write that happened after our g1, the re-read is guaranteed to see
    // the bumped (odd or advanced) generation and we retry.
    mc::Fence(std::memory_order_acquire);
    if (gen_.load(std::memory_order_relaxed) != g1) return false;
    std::memcpy(out, words, sizeof(T));
    return true;
  }

 private:
  mc::Atomic<std::uint64_t> gen_{0};
  mc::Atomic<std::uint64_t> words_[kWords] = {};
};

/// Compact verdict published through the seqlock fast path. UNSAT repeats
/// (the paper's W*-1 headline queries) are fully answerable from this —
/// no tracks needed — so they never touch a shard mutex.
struct VerdictSummary {
  std::uint64_t key_hash = 0;  // full CacheKey::Hash of the entry
  std::int32_t status = 0;     // sat::SolveResult as int
  std::int32_t width = 0;
  double cold_solve_seconds = 0.0;
};

struct CacheTierStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

struct CacheTierOptions {
  std::size_t num_shards = 8;
  std::size_t max_entries_per_shard = 64;
  std::size_t max_bytes_per_shard = 64u << 20;  // 64 MiB
};

/// Sharded bounded LRU map from CacheKey to shared_ptr<const V>. V is
/// immutable once inserted; eviction only drops the cache's reference, so
/// in-flight readers keep their snapshot alive.
template <typename V>
class ShardedLruCache {
 public:
  struct SampledEntry {
    CacheKey key;
    std::shared_ptr<const V> value;
    std::uint64_t hits = 0;
  };

  explicit ShardedLruCache(const CacheTierOptions& options = {})
      : options_(options),
        shards_(options.num_shards == 0 ? 1 : options.num_shards) {}

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns the cached value (promoting it to most-recently-used) or null.
  /// `hits_out`, when non-null, receives the entry's post-increment hit
  /// count on a hit.
  std::shared_ptr<const V> Lookup(const CacheKey& key,
                                  std::uint64_t* hits_out = nullptr) {
    const std::uint64_t h = key.Hash();
    Shard& shard = ShardFor(h);
    mc::MutexLock lock(shard.mutex);
    ++shard.stats.lookups;
    auto it = shard.index.find(h);
    // Hash collisions across distinct keys fall through to a miss; the
    // colliding resident stays (first writer wins the 64-bit slot).
    if (it == shard.index.end() || !(it->second->key == key)) {
      return nullptr;
    }
    Entry& entry = *it->second;
    ++entry.hit_count;
    ++shard.stats.hits;
    if (hits_out != nullptr) *hits_out = entry.hit_count;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return entry.value;
  }

  /// Inserts (or refreshes) `key`; `bytes` is the entry's approximate heap
  /// footprint for the byte bound. Evicts least-recently-used entries
  /// until both shard bounds hold.
  void Insert(const CacheKey& key, std::shared_ptr<const V> value,
              std::size_t bytes) {
    const std::uint64_t h = key.Hash();
    Shard& shard = ShardFor(h);
    mc::MutexLock lock(shard.mutex);
    auto it = shard.index.find(h);
    if (it != shard.index.end()) {
      // Refresh in place (idempotent re-insert after a racing miss).
      shard.bytes -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      shard.bytes += bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Entry{key, std::move(value), bytes, 0});
    shard.index.emplace(h, shard.lru.begin());
    shard.bytes += bytes;
    ++shard.stats.insertions;
    while (shard.lru.size() > options_.max_entries_per_shard ||
           (shard.bytes > options_.max_bytes_per_shard &&
            shard.lru.size() > 1)) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      shard.index.erase(victim.key.Hash());
      shard.lru.pop_back();
      ++shard.stats.evictions;
    }
  }

  bool Erase(const CacheKey& key) {
    const std::uint64_t h = key.Hash();
    Shard& shard = ShardFor(h);
    mc::MutexLock lock(shard.mutex);
    auto it = shard.index.find(h);
    if (it == shard.index.end() || !(it->second->key == key)) return false;
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return true;
  }

  /// Point-in-time totals over every shard.
  CacheTierStats stats() const {
    CacheTierStats total;
    for (const Shard& shard : shards_) {
      mc::MutexLock lock(shard.mutex);
      total.lookups += shard.stats.lookups;
      total.hits += shard.stats.hits;
      total.insertions += shard.stats.insertions;
      total.evictions += shard.stats.evictions;
      total.entries += shard.lru.size();
      total.bytes += shard.bytes;
    }
    return total;
  }

  /// Up to `max_samples` resident entries, deterministically pseudo-random
  /// in `seed` (coherence lint sampling). Holds one shard lock at a time.
  std::vector<SampledEntry> Sample(std::size_t max_samples,
                                   std::uint64_t seed) const {
    std::vector<SampledEntry> all;
    for (const Shard& shard : shards_) {
      mc::MutexLock lock(shard.mutex);
      for (const Entry& entry : shard.lru) {
        all.push_back(SampledEntry{entry.key, entry.value, entry.hit_count});
      }
    }
    if (all.size() > max_samples) {
      // Partial Fisher-Yates with the repo's deterministic Rng.
      Rng rng(seed != 0 ? seed : 1);
      for (std::size_t i = 0; i < max_samples; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.NextBelow(all.size() - i));
        std::swap(all[i], all[j]);
      }
      all.resize(max_samples);
    }
    return all;
  }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const V> value;
    std::size_t bytes = 0;
    std::uint64_t hit_count = 0;
  };

  struct Shard {
    mutable mc::Mutex mutex;
    std::list<Entry> lru SATFR_GUARDED_BY(mutex);
    std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator>
        index SATFR_GUARDED_BY(mutex);
    std::size_t bytes SATFR_GUARDED_BY(mutex) = 0;
    CacheTierStats stats SATFR_GUARDED_BY(mutex);
  };

  Shard& ShardFor(std::uint64_t hash) {
    return shards_[static_cast<std::size_t>(hash % shards_.size())];
  }
  const Shard& ShardFor(std::uint64_t hash) const {
    return shards_[static_cast<std::size_t>(hash % shards_.size())];
  }

  const CacheTierOptions options_;
  // Count fixed at construction, never resized: shard addresses stay
  // stable even though Shard itself is neither movable nor copyable.
  mutable std::vector<Shard> shards_;
};

/// Direct-mapped, lock-free table of seqlock-published verdict summaries
/// in front of the verdict tier. A probe that finds a matching key hash
/// answers without any lock; collisions simply overwrite (it is a cache of
/// a cache — the locked tier is the source of truth).
class VerdictSummaryTable {
 public:
  explicit VerdictSummaryTable(std::size_t slots = 256)
      : slots_(RoundUpPow2(slots)), table_(new Slot[slots_]) {}

  /// Writers serialize on one publish mutex (publishes are rare — one per
  /// cold solve); probes stay lock-free.
  void Publish(const VerdictSummary& summary) {
    mc::MutexLock lock(publish_mutex_);
    table_[IndexFor(summary.key_hash)].cell.Publish(summary);
  }

  /// Lock-free. True only for a coherent summary whose key hash matches.
  bool Probe(std::uint64_t key_hash, VerdictSummary* out) const {
    if (!table_[IndexFor(key_hash)].cell.TryRead(out)) return false;
    return out->key_hash == key_hash;
  }

  std::size_t num_slots() const { return slots_; }

 private:
  struct Slot {
    SeqlockedSlot<VerdictSummary> cell;
  };

  static std::size_t RoundUpPow2(std::size_t n) {
    std::size_t cap = 1;
    while (cap < n) cap <<= 1;
    return cap;
  }
  std::size_t IndexFor(std::uint64_t key_hash) const {
    return static_cast<std::size_t>(key_hash) & (slots_ - 1);
  }

  mutable mc::Mutex publish_mutex_;
  std::size_t slots_;
  std::unique_ptr<Slot[]> table_;
};

}  // namespace satfr::service

#endif  // SATFR_SERVICE_CACHE_H_
