// Thread-pool job scheduler for the routing service (DESIGN.md §15).
//
// Each worker owns a Chase-Lev `cube::WorkStealingDeque` (the PR 6
// structure, reused as-is) plus a mutex-guarded inbox. Submission picks a
// worker — round-robin, or pinned when the job carries an affinity tag
// (session pumps hash their client id so one client's deltas always land
// on one worker's warm state) — and appends to its inbox. The worker
// drains the inbox in priority order into its deque, pops its own bottom
// (LIFO keeps the highest-priority drained job first), and steals from
// siblings when empty, so a burst submitted to one worker spreads across
// the pool.
//
// Cancellation is a CAS race on the job's status: Cancel wins on a job
// still pending (it never runs; the deque entry becomes a tombstone the
// popping worker discards), and on a job already running it degrades to a
// cooperative stop flag — the same `mc::Atomic<bool>` the job body is
// handed, which routing jobs wire into `DetailedRouteOptions::stop` so an
// in-flight SAT search aborts at its next restart check.
#ifndef SATFR_SERVICE_SCHEDULER_H_
#define SATFR_SERVICE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "cube/work_queue.h"
#include "mc/annotations.h"
#include "mc/shim.h"

namespace satfr::service {

enum class JobStatus : int {
  kPending = 0,   // submitted, not yet picked up
  kRunning = 1,   // a worker is executing the body
  kDone = 2,      // body returned
  kCancelled = 3  // cancelled before any worker picked it up
};

struct SchedulerOptions {
  /// Worker thread count; <= 0 means std::thread::hardware_concurrency()
  /// (minimum 1).
  int num_workers = 0;
  /// Per-worker deque capacity (rounded up to a power of two). Submissions
  /// beyond it park in the inbox until the deque drains.
  std::size_t deque_capacity = 1024;
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;  // cancelled before running
  std::uint64_t steals = 0;     // jobs run by a non-assigned worker
};

class JobScheduler {
 public:
  /// A job body. The flag is the job's cancel/stop signal: false at start
  /// unless Cancel raced the pickup; long-running bodies should poll it
  /// (routing jobs pass it straight to the solver as the stop atomic).
  using JobFn = std::function<void(const mc::Atomic<bool>& cancel)>;

  struct Handle {
    static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
    std::uint64_t id = kInvalid;
    bool valid() const { return id != kInvalid; }
  };

  explicit JobScheduler(const SchedulerOptions& options = {});
  /// Cancels every job still pending, then joins the workers (jobs already
  /// running get their stop flag set and are waited for).
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues `fn`. Higher `priority` runs first among jobs drained by the
  /// same worker. `affinity` >= 0 pins the job to worker `affinity %
  /// num_workers` (it can still be stolen under load); -1 round-robins.
  Handle Submit(JobFn fn, int priority = 0, int affinity = -1);

  /// True if the job had not started: it will never run. False once
  /// running (or finished); a running job's cancel flag is still set, so a
  /// cooperative body stops early but is reported kDone.
  bool Cancel(Handle handle);

  /// Blocks until the job reaches kDone or kCancelled; returns which.
  JobStatus Wait(Handle handle);

  JobStatus StatusOf(Handle handle) const;

  /// Blocks until every job submitted so far is kDone or kCancelled.
  void WaitIdle();

  int num_workers() const { return static_cast<int>(workers_.size()); }
  SchedulerStats stats() const;

 private:
  struct Job {
    JobFn fn;
    int priority = 0;
    mc::Atomic<int> status{static_cast<int>(JobStatus::kPending)};
    mc::Atomic<bool> cancel{false};
  };

  struct Worker {
    explicit Worker(std::size_t deque_capacity) : deque(deque_capacity) {}
    cube::WorkStealingDeque deque;  // job ids; owner = this worker's thread
    mc::Mutex inbox_mutex;
    std::vector<std::int64_t> inbox SATFR_GUARDED_BY(inbox_mutex);
    std::thread thread;
  };

  void WorkerLoop(std::size_t worker_index);
  /// Moves inbox jobs into the deque, highest priority popped first.
  /// Returns true when anything was transferred.
  bool DrainInbox(Worker& worker);
  void RunJob(std::int64_t id, bool stolen);
  Job* JobRef(std::uint64_t id) const;
  /// CASes `job` pending -> `to` and settles the completion bookkeeping.
  bool Finish(Job& job, JobStatus to);

  const SchedulerOptions options_;

  mutable mc::Mutex jobs_mutex_;
  // deque: ids are indices, and growth never relocates existing Jobs, so
  // workers hold Job* across the append of later submissions.
  std::deque<Job> jobs_ SATFR_GUARDED_BY(jobs_mutex_);

  std::vector<std::unique_ptr<Worker>> workers_;
  mc::Atomic<std::uint64_t> round_robin_{0};
  mc::Atomic<std::int64_t> outstanding_{0};
  mc::Atomic<bool> shutdown_{false};

  // Sleep/wake: workers nap on work_cv_ when idle; completion waiters nap
  // on done_cv_. Both use timed waits, so a missed notify costs one nap
  // period, never a hang.
  mc::Mutex wake_mutex_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;

  mc::Atomic<std::uint64_t> stat_completed_{0};
  mc::Atomic<std::uint64_t> stat_cancelled_{0};
  mc::Atomic<std::uint64_t> stat_steals_{0};
};

}  // namespace satfr::service

#endif  // SATFR_SERVICE_SCHEDULER_H_
