// Symmetry-breaking heuristics for K-coloring (§5 of the paper).
//
// Color classes of any proper K-coloring can be renamed so that an arbitrary
// ordered sequence of K-1 vertices v_1..v_{K-1} satisfies color(v_i) < i
// (Van Gelder 2007): walk the sequence and give each newly seen color class
// the smallest unused index. Restricting the formula this way therefore
// preserves K-colorability while removing color-permutation symmetry.
//
// Two vertex-selection heuristics are implemented:
//  * b1 (Van Gelder): the maximum-degree vertex first, then up to K-2 of its
//    neighbors in descending degree order, ties broken by the sum of the
//    neighbors' degrees.
//  * s1 (this paper): the K-1 highest-degree vertices overall, in descending
//    degree order, same tie-break.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace satfr::symmetry {

enum class Heuristic { kNone, kB1, kS1 };

const char* ToString(Heuristic heuristic);

/// Parses "none"/"-", "b1", "s1" (used by CLI tools); aborts on other input.
Heuristic HeuristicFromName(const std::string& name);

/// Ordered vertex sequence v_1..v_m (m <= K-1) to restrict. Empty for
/// kNone, for K <= 1, or for an empty graph. All returned vertices are
/// distinct; deterministic (final ties broken by vertex id).
std::vector<graph::VertexId> SymmetrySequence(const graph::Graph& g,
                                              int num_colors,
                                              Heuristic heuristic);

/// Reference check used by tests: can `colors` be renamed so that the
/// sequence restriction color(v_i) < i holds? True for every proper coloring
/// by Van Gelder's argument; exercised as an executable proof.
bool ColoringRespectsSequenceUpToRenaming(
    const std::vector<int>& colors, int num_colors,
    const std::vector<graph::VertexId>& sequence);

}  // namespace satfr::symmetry
