#include "symmetry/symmetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace satfr::symmetry {

const char* ToString(Heuristic heuristic) {
  switch (heuristic) {
    case Heuristic::kNone:
      return "-";
    case Heuristic::kB1:
      return "b1";
    case Heuristic::kS1:
      return "s1";
  }
  return "?";
}

Heuristic HeuristicFromName(const std::string& name) {
  if (name == "none" || name == "-") return Heuristic::kNone;
  if (name == "b1") return Heuristic::kB1;
  if (name == "s1") return Heuristic::kS1;
  std::fprintf(stderr, "satfr: unknown symmetry heuristic '%s'\n",
               name.c_str());
  std::abort();
}

namespace {

using graph::Graph;
using graph::VertexId;

// Descending degree, ties by descending neighbor-degree sum, then by id.
bool DegreeBefore(const Graph& g, VertexId a, VertexId b) {
  if (g.Degree(a) != g.Degree(b)) return g.Degree(a) > g.Degree(b);
  const std::size_t sum_a = g.NeighborDegreeSum(a);
  const std::size_t sum_b = g.NeighborDegreeSum(b);
  if (sum_a != sum_b) return sum_a > sum_b;
  return a < b;
}

std::vector<VertexId> SequenceB1(const Graph& g, int num_colors) {
  // Seed: the vertex of maximum degree.
  VertexId seed = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (DegreeBefore(g, v, seed)) seed = v;
  }
  std::vector<VertexId> sequence{seed};
  // Its neighbors, best-degree first, up to K-2 of them.
  std::vector<VertexId> neighbors = g.Neighbors(seed);
  std::sort(neighbors.begin(), neighbors.end(),
            [&g](VertexId a, VertexId b) { return DegreeBefore(g, a, b); });
  const std::size_t limit = static_cast<std::size_t>(num_colors - 2);
  for (std::size_t i = 0; i < neighbors.size() && i < limit; ++i) {
    sequence.push_back(neighbors[i]);
  }
  return sequence;
}

std::vector<VertexId> SequenceS1(const Graph& g, int num_colors) {
  std::vector<VertexId> order(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    order[static_cast<std::size_t>(v)] = v;
  }
  std::sort(order.begin(), order.end(),
            [&g](VertexId a, VertexId b) { return DegreeBefore(g, a, b); });
  const std::size_t limit = static_cast<std::size_t>(num_colors - 1);
  if (order.size() > limit) order.resize(limit);
  return order;
}

}  // namespace

std::vector<VertexId> SymmetrySequence(const Graph& g, int num_colors,
                                       Heuristic heuristic) {
  if (heuristic == Heuristic::kNone || num_colors <= 1 ||
      g.num_vertices() == 0) {
    return {};
  }
  switch (heuristic) {
    case Heuristic::kB1:
      return SequenceB1(g, num_colors);
    case Heuristic::kS1:
      return SequenceS1(g, num_colors);
    case Heuristic::kNone:
      break;
  }
  return {};
}

bool ColoringRespectsSequenceUpToRenaming(
    const std::vector<int>& colors, int num_colors,
    const std::vector<VertexId>& sequence) {
  // Walk the sequence, renaming each first-seen color class to the smallest
  // unused index; check the renamed color of v_i (1-based) is < i.
  std::vector<int> rename(static_cast<std::size_t>(num_colors), -1);
  int next_index = 0;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const int original =
        colors[static_cast<std::size_t>(sequence[i])];
    if (original < 0 || original >= num_colors) return false;
    if (rename[static_cast<std::size_t>(original)] < 0) {
      rename[static_cast<std::size_t>(original)] = next_index++;
    }
    if (rename[static_cast<std::size_t>(original)] >
        static_cast<int>(i)) {
      return false;
    }
  }
  return true;
}

}  // namespace satfr::symmetry
