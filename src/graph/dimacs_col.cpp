#include "graph/dimacs_col.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace satfr::graph {

void WriteDimacsCol(const Graph& g, std::ostream& out,
                    const std::vector<std::string>& comments) {
  for (const std::string& comment : comments) {
    out << "c " << comment << '\n';
  }
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.Edges()) {
    out << "e " << (u + 1) << ' ' << (v + 1) << '\n';
  }
}

bool WriteDimacsColFile(const Graph& g, const std::string& path,
                        const std::vector<std::string>& comments) {
  std::ofstream out(path);
  if (!out) return false;
  WriteDimacsCol(g, out, comments);
  return static_cast<bool>(out);
}

std::optional<Graph> ParseDimacsCol(std::istream& in) {
  std::string line;
  long declared_vertices = -1;
  Graph g;
  while (std::getline(in, line)) {
    const std::string_view trimmed = satfr::Trim(line);
    if (trimmed.empty() || trimmed[0] == 'c') continue;
    const auto tokens = satfr::SplitWhitespace(trimmed);
    if (tokens[0] == "p") {
      if (tokens.size() != 4 || (tokens[1] != "edge" && tokens[1] != "edges")) {
        return std::nullopt;
      }
      try {
        declared_vertices = std::stol(tokens[2]);
      } catch (const std::exception&) {
        return std::nullopt;
      }
      if (declared_vertices < 0) return std::nullopt;
      g = Graph(static_cast<VertexId>(declared_vertices));
    } else if (tokens[0] == "e") {
      if (declared_vertices < 0 || tokens.size() != 3) return std::nullopt;
      long u = 0;
      long v = 0;
      try {
        u = std::stol(tokens[1]);
        v = std::stol(tokens[2]);
      } catch (const std::exception&) {
        return std::nullopt;
      }
      if (u < 1 || v < 1 || u > declared_vertices || v > declared_vertices) {
        return std::nullopt;
      }
      g.AddEdge(static_cast<VertexId>(u - 1), static_cast<VertexId>(v - 1));
    } else {
      return std::nullopt;
    }
  }
  if (declared_vertices < 0) return std::nullopt;
  return g;
}

std::optional<Graph> ParseDimacsColString(const std::string& text) {
  std::istringstream in(text);
  return ParseDimacsCol(in);
}

std::optional<Graph> ParseDimacsColFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ParseDimacsCol(in);
}

}  // namespace satfr::graph
