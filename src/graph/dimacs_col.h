// DIMACS graph ("*.col") serialization.
//
// The paper's first tool emits the coloring problem in the DIMACS graph
// format so that any coloring-to-SAT translator can consume it (§1,
// contribution 1). Format: optional "c" comment lines, one "p edge V E"
// header, then "e u v" lines with 1-based vertex ids.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace satfr::graph {

/// Writes `g` in DIMACS .col format (vertices are printed 1-based).
void WriteDimacsCol(const Graph& g, std::ostream& out,
                    const std::vector<std::string>& comments = {});

/// Convenience file writer; returns false if the file cannot be opened.
bool WriteDimacsColFile(const Graph& g, const std::string& path,
                        const std::vector<std::string>& comments = {});

/// Parses a DIMACS .col stream. Duplicate edges are merged. Returns
/// std::nullopt on malformed input.
std::optional<Graph> ParseDimacsCol(std::istream& in);

/// Parses from a string.
std::optional<Graph> ParseDimacsColString(const std::string& text);

/// Parses from a file; std::nullopt if unreadable or malformed.
std::optional<Graph> ParseDimacsColFile(const std::string& path);

}  // namespace satfr::graph
