#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace satfr::graph {

VertexId Graph::AddVertex() {
  adjacency_.emplace_back();
  return static_cast<VertexId>(adjacency_.size() - 1);
}

bool Graph::AddEdge(VertexId u, VertexId v) {
  assert(u >= 0 && u < num_vertices());
  assert(v >= 0 && v < num_vertices());
  if (u == v) return false;
  if (HasEdge(u, v)) return false;
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= num_vertices() || v >= num_vertices()) {
    return false;
  }
  // Scan the smaller adjacency list.
  const auto& a = adjacency_[static_cast<std::size_t>(u)];
  const auto& b = adjacency_[static_cast<std::size_t>(v)];
  const auto& list = (a.size() <= b.size()) ? a : b;
  const VertexId target = (a.size() <= b.size()) ? v : u;
  return std::find(list.begin(), list.end(), target) != list.end();
}

std::size_t Graph::MaxDegree() const {
  std::size_t best = 0;
  for (const auto& list : adjacency_) best = std::max(best, list.size());
  return best;
}

std::size_t Graph::NeighborDegreeSum(VertexId v) const {
  std::size_t sum = 0;
  for (const VertexId u : Neighbors(v)) sum += Degree(u);
  return sum;
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(num_edges_);
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (const VertexId u : Neighbors(v)) {
      if (v < u) edges.emplace_back(v, u);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

bool Graph::IsProperColoring(const std::vector<int>& colors) const {
  if (colors.size() < static_cast<std::size_t>(num_vertices())) return false;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (const VertexId u : Neighbors(v)) {
      if (colors[static_cast<std::size_t>(v)] ==
          colors[static_cast<std::size_t>(u)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace satfr::graph
