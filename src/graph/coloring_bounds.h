// Cheap chromatic-number bounds and a reference coloring checker.
//
// Used by the flow layer to pick sensible W ranges before invoking SAT
// (DSATUR gives a routable upper bound; a greedy clique gives a lower bound
// below which unroutability is trivial), and by tests as ground truth on
// small graphs.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace satfr::graph {

/// DSATUR greedy coloring. Returns the colors (0-based) per vertex; the
/// number of colors used is max+1. Never fails; quality is heuristic.
std::vector<int> DsaturColoring(const Graph& g);

/// Number of colors used by a coloring vector (max entry + 1), 0 if empty.
int NumColorsUsed(const std::vector<int>& colors);

/// Greedy clique construction seeded at each max-degree vertex; the clique
/// size is a lower bound on the chromatic number.
int GreedyCliqueLowerBound(const Graph& g);

/// Exact chromatic-number check by backtracking: is `g` k-colorable?
/// Exponential; intended for test-sized graphs (tens of vertices).
bool IsKColorableExact(const Graph& g, int k);

/// Exact chromatic number by incrementing k; test-sized graphs only.
int ChromaticNumberExact(const Graph& g);

}  // namespace satfr::graph
