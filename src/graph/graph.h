// Undirected simple graph used for the CSP / graph-coloring formulation.
//
// Vertices are dense 0-based ids. Parallel edges and self-loops are rejected
// at insertion, matching the paper's conflict graphs where each pair of
// 2-pin nets gets at most one exclusivity constraint (§2: "impose
// exclusivity constraints once for each pair").
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace satfr::graph {

using VertexId = std::int32_t;

class Graph {
 public:
  Graph() = default;
  explicit Graph(VertexId num_vertices)
      : adjacency_(static_cast<std::size_t>(num_vertices)) {}

  VertexId num_vertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  std::size_t num_edges() const { return num_edges_; }

  /// Adds a vertex, returning its id.
  VertexId AddVertex();

  /// Adds edge {u, v} if absent. Self-loops are ignored. Returns true if the
  /// edge was newly inserted.
  bool AddEdge(VertexId u, VertexId v);

  /// True if {u, v} is an edge.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Neighbors of v, unordered.
  const std::vector<VertexId>& Neighbors(VertexId v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }

  std::size_t Degree(VertexId v) const {
    return adjacency_[static_cast<std::size_t>(v)].size();
  }

  /// Maximum degree over all vertices (0 for an empty graph).
  std::size_t MaxDegree() const;

  /// Sum of the degrees of v's neighbors (the tie-break key used by the
  /// paper's symmetry-breaking heuristics).
  std::size_t NeighborDegreeSum(VertexId v) const;

  /// All edges as (min, max) pairs, sorted.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// True if `colors[v] != colors[u]` for every edge {u, v}; `colors` must
  /// cover all vertices.
  bool IsProperColoring(const std::vector<int>& colors) const;

 private:
  std::vector<std::vector<VertexId>> adjacency_;
  std::size_t num_edges_ = 0;
};

}  // namespace satfr::graph
