#include "graph/coloring_bounds.h"

#include <algorithm>
#include <cassert>

namespace satfr::graph {

std::vector<int> DsaturColoring(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<int> colors(static_cast<std::size_t>(n), -1);
  if (n == 0) return colors;
  std::vector<std::vector<bool>> neighbor_has_color(
      static_cast<std::size_t>(n));
  std::vector<int> saturation(static_cast<std::size_t>(n), 0);

  for (VertexId step = 0; step < n; ++step) {
    // Pick the uncolored vertex with max saturation, ties by degree.
    VertexId best = -1;
    for (VertexId v = 0; v < n; ++v) {
      if (colors[static_cast<std::size_t>(v)] != -1) continue;
      if (best == -1 ||
          saturation[static_cast<std::size_t>(v)] >
              saturation[static_cast<std::size_t>(best)] ||
          (saturation[static_cast<std::size_t>(v)] ==
               saturation[static_cast<std::size_t>(best)] &&
           g.Degree(v) > g.Degree(best))) {
        best = v;
      }
    }
    // Smallest color unused among neighbors.
    std::vector<bool> used(static_cast<std::size_t>(n) + 1, false);
    for (const VertexId u : g.Neighbors(best)) {
      const int c = colors[static_cast<std::size_t>(u)];
      if (c >= 0) used[static_cast<std::size_t>(c)] = true;
    }
    int color = 0;
    while (used[static_cast<std::size_t>(color)]) ++color;
    colors[static_cast<std::size_t>(best)] = color;
    // Update saturations.
    for (const VertexId u : g.Neighbors(best)) {
      auto& seen = neighbor_has_color[static_cast<std::size_t>(u)];
      if (seen.size() <= static_cast<std::size_t>(color)) {
        seen.resize(static_cast<std::size_t>(color) + 1, false);
      }
      if (!seen[static_cast<std::size_t>(color)]) {
        seen[static_cast<std::size_t>(color)] = true;
        ++saturation[static_cast<std::size_t>(u)];
      }
    }
  }
  return colors;
}

int NumColorsUsed(const std::vector<int>& colors) {
  int max_color = -1;
  for (const int c : colors) max_color = std::max(max_color, c);
  return max_color + 1;
}

int GreedyCliqueLowerBound(const Graph& g) {
  int best = g.num_vertices() > 0 ? 1 : 0;
  // Try growing a clique from each of the top-degree vertices.
  std::vector<VertexId> order(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    order[static_cast<std::size_t>(v)] = v;
  }
  std::sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
    return g.Degree(a) > g.Degree(b);
  });
  const std::size_t seeds = std::min<std::size_t>(order.size(), 16);
  for (std::size_t s = 0; s < seeds; ++s) {
    std::vector<VertexId> clique{order[s]};
    // Candidates sorted by degree; greedily keep those adjacent to all.
    for (const VertexId v : order) {
      if (v == order[s]) continue;
      bool adjacent_to_all = true;
      for (const VertexId c : clique) {
        if (!g.HasEdge(v, c)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (adjacent_to_all) clique.push_back(v);
    }
    best = std::max(best, static_cast<int>(clique.size()));
  }
  return best;
}

namespace {

bool ColorRecurse(const Graph& g, const std::vector<VertexId>& order,
                  std::size_t index, int k, std::vector<int>& colors) {
  if (index == order.size()) return true;
  const VertexId v = order[index];
  // Only try colors up to (max used so far + 1) to break color symmetry.
  int max_used = -1;
  for (std::size_t i = 0; i < index; ++i) {
    max_used = std::max(max_used, colors[static_cast<std::size_t>(order[i])]);
  }
  const int limit = std::min(k - 1, max_used + 1);
  for (int c = 0; c <= limit; ++c) {
    bool ok = true;
    for (const VertexId u : g.Neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] == c) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    colors[static_cast<std::size_t>(v)] = c;
    if (ColorRecurse(g, order, index + 1, k, colors)) return true;
    colors[static_cast<std::size_t>(v)] = -1;
  }
  return false;
}

}  // namespace

bool IsKColorableExact(const Graph& g, int k) {
  if (k < 0) return false;
  if (g.num_vertices() == 0) return true;
  if (k == 0) return false;
  std::vector<VertexId> order(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    order[static_cast<std::size_t>(v)] = v;
  }
  // Highest degree first narrows the search tree.
  std::sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
    return g.Degree(a) > g.Degree(b);
  });
  std::vector<int> colors(static_cast<std::size_t>(g.num_vertices()), -1);
  return ColorRecurse(g, order, 0, k, colors);
}

int ChromaticNumberExact(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  const std::vector<int> greedy = DsaturColoring(g);
  const int upper = NumColorsUsed(greedy);
  for (int k = 1; k < upper; ++k) {
    if (IsKColorableExact(g, k)) return k;
  }
  return upper;
}

}  // namespace satfr::graph
