#include "sat/rup_checker.h"

#include <cassert>

namespace satfr::sat {
namespace {

// Minimal two-watched-literal propagation engine over a growing clause
// database. Supports permanent (level-0) facts and temporary assumptions
// that can be rolled back after each RUP check.
class Propagator {
 public:
  explicit Propagator(int num_vars)
      : assigns_(static_cast<std::size_t>(num_vars), LBool::kUndef),
        watches_(2 * static_cast<std::size_t>(num_vars)) {}

  LBool Value(Lit l) const {
    return LitValue(l, assigns_[static_cast<std::size_t>(l.var())]);
  }

  /// Adds a clause to the database. Returns false if the database is now
  /// refuted outright (empty clause, or conflicting permanent unit).
  bool AddClause(const Clause& clause) {
    if (refuted_) return false;
    // Drop literals already permanently false; detect satisfaction.
    Clause reduced;
    for (const Lit l : clause) {
      const LBool v = Value(l);
      if (v == LBool::kTrue) return true;  // permanently satisfied
      if (v == LBool::kUndef) reduced.push_back(l);
    }
    if (reduced.empty()) {
      refuted_ = true;
      return false;
    }
    if (reduced.size() == 1) {
      Enqueue(reduced[0]);
      if (!Propagate()) {
        refuted_ = true;
        return false;
      }
      trail_floor_ = trail_.size();  // make the consequences permanent
      return true;
    }
    const std::size_t id = clauses_.size();
    clauses_.push_back(reduced);
    Watch(reduced[0], id);
    Watch(reduced[1], id);
    return true;
  }

  bool refuted() const { return refuted_; }

  /// RUP check: does asserting the negation of `clause` yield a conflict
  /// under unit propagation? The temporary assignments are rolled back.
  bool IsRupConsequence(const Clause& clause) {
    if (refuted_) return true;  // anything follows from a refuted database
    const std::size_t mark = trail_.size();
    bool conflict = false;
    for (const Lit l : clause) {
      const LBool v = Value(l);
      if (v == LBool::kTrue) {
        // Negation is immediately contradictory.
        conflict = true;
        break;
      }
      if (v == LBool::kUndef) Enqueue(~l);
    }
    if (!conflict) conflict = !Propagate();
    // Roll back to the permanent trail.
    while (trail_.size() > mark) {
      assigns_[static_cast<std::size_t>(trail_.back().var())] = LBool::kUndef;
      trail_.pop_back();
    }
    qhead_ = trail_floor_;
    return conflict;
  }

 private:
  void Watch(Lit l, std::size_t clause_id) {
    watches_[static_cast<std::size_t>((~l).code())].push_back(clause_id);
  }

  void Enqueue(Lit l) {
    assert(Value(l) == LBool::kUndef);
    assigns_[static_cast<std::size_t>(l.var())] =
        l.negated() ? LBool::kFalse : LBool::kTrue;
    trail_.push_back(l);
  }

  // Returns false on conflict.
  bool Propagate() {
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      auto& list = watches_[static_cast<std::size_t>(p.code())];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < list.size(); ++i) {
        const std::size_t id = list[i];
        Clause& c = clauses_[id];
        const Lit false_lit = ~p;
        if (c[0] == false_lit) std::swap(c[0], c[1]);
        if (Value(c[0]) == LBool::kTrue) {
          list[keep++] = id;
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (Value(c[k]) != LBool::kFalse) {
            std::swap(c[1], c[k]);
            Watch(c[1], id);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        list[keep++] = id;
        if (Value(c[0]) == LBool::kFalse) {
          for (++i; i < list.size(); ++i) list[keep++] = list[i];
          list.resize(keep);
          return false;
        }
        if (Value(c[0]) == LBool::kUndef) Enqueue(c[0]);
      }
      list.resize(keep);
    }
    return true;
  }

  std::vector<LBool> assigns_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<std::size_t>> watches_;  // by literal code
  std::vector<Lit> trail_;
  std::size_t trail_floor_ = 0;
  std::size_t qhead_ = 0;
  bool refuted_ = false;
};

}  // namespace

bool VerifyRupRefutation(const Cnf& cnf, const std::vector<Clause>& proof,
                         std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  Propagator prop(cnf.num_vars());
  for (const Clause& clause : cnf.clauses()) {
    if (!prop.AddClause(clause)) break;  // formula refuted by propagation
  }
  for (std::size_t step = 0; step < proof.size(); ++step) {
    const Clause& clause = proof[step];
    if (prop.refuted()) return true;  // already refuted; remaining steps moot
    if (!prop.IsRupConsequence(clause)) {
      return fail("proof step " + std::to_string(step) +
                  " is not a RUP consequence");
    }
    if (clause.empty()) return true;  // explicit empty clause verified
    if (!prop.AddClause(clause)) return true;  // adding it refuted the DB
  }
  if (prop.refuted()) return true;
  return fail("proof does not derive the empty clause");
}

}  // namespace satfr::sat
