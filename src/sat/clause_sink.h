// Streaming clause emission: the ClauseSink interface and its standard
// implementations.
//
// The encoding layer used to materialize one monolithic Cnf that the solver
// then re-copied clause by clause into its arena — on large instances the
// intermediate Cnf is pure peak-memory and cache overhead. A ClauseSink
// inverts the flow: encoders push variables and clauses into a sink as they
// are produced, and the sink decides what to do with them — collect them
// into a Cnf (CnfCollectorSink, the back-compat path whose output is
// byte-for-byte the pre-sink encoder output), feed them straight into a
// Solver (SolverSink, the default solve path: zero intermediate
// materialization), stream them to disk (StreamingDimacsSink, so instances
// too big to hold in memory can still be exported), count them
// (CountingSink, allocation-free statistics), or simplify them on the fly
// (SimplifyingSink, a chainable unit-propagation / duplicate-literal /
// tautology filter in the spirit of Boolean equi-propagation).
//
// Contract:
//  * EnsureVars/EmitVar before emitting clauses over those variables.
//  * A clause's literal array is only borrowed for the duration of the
//    EmitClause call; sinks must copy what they keep.
//  * Finish() exactly once after the last emission (header back-patching,
//    flushing). It returns false if the sink has proof the formula is
//    trivially unsatisfiable (SolverSink / SimplifyingSink) or if an I/O
//    error occurred (StreamingDimacsSink).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sat/cnf.h"
#include "sat/types.h"

namespace satfr::sat {

class Solver;

class ClauseSink {
 public:
  virtual ~ClauseSink() = default;

  /// Declares that variables [0, n) exist. Monotone; no-op if the sink
  /// already knows at least `n` variables. Overrides must call the base.
  virtual void EnsureVars(int n) {
    if (n > num_vars_) num_vars_ = n;
  }

  /// Allocates one fresh variable and returns it.
  Var EmitVar() {
    const Var v = num_vars_;
    EnsureVars(num_vars_ + 1);
    return v;
  }

  /// Capacity hint: about `n` more clauses are coming. Sinks that own
  /// growable storage reserve it here; everyone else ignores the hint.
  virtual void ReserveClauses(std::uint64_t n) { (void)n; }

  /// Emits one clause. `lits` is borrowed only for the duration of the call.
  void EmitClause(const Lit* lits, std::size_t n) {
    ++num_clauses_;
    num_literals_ += n;
    DoEmit(lits, n);
  }
  void EmitClause(const Clause& clause) {
    EmitClause(clause.data(), clause.size());
  }

  /// Small-clause fast paths (routing CNFs are dominated by 1-3 literal
  /// clauses); no heap traffic on the caller side.
  void EmitUnit(Lit a) { EmitClause(&a, 1); }
  void EmitBinary(Lit a, Lit b) {
    const Lit lits[2] = {a, b};
    EmitClause(lits, 2);
  }
  void EmitTernary(Lit a, Lit b, Lit c) {
    const Lit lits[3] = {a, b, c};
    EmitClause(lits, 3);
  }

  /// Flushes buffered state. Call exactly once, after the last emission.
  /// False signals trivial unsatisfiability or an I/O failure.
  virtual bool Finish() { return true; }

  int num_vars() const { return num_vars_; }
  /// Clauses / literals emitted *into* this sink (a chained simplifier may
  /// forward fewer downstream).
  std::uint64_t num_clauses() const { return num_clauses_; }
  std::uint64_t num_literals() const { return num_literals_; }

 protected:
  /// Sink-specific clause handling; counters are already updated.
  virtual void DoEmit(const Lit* lits, std::size_t n) = 0;

  int num_vars_ = 0;
  std::uint64_t num_clauses_ = 0;
  std::uint64_t num_literals_ = 0;
};

/// Collects the stream into a Cnf — the full back-compat sink. Emitting the
/// same stream through this sink reproduces the pre-sink encoder output
/// byte for byte (clause order, literal order, Table 1 counts).
class CnfCollectorSink final : public ClauseSink {
 public:
  explicit CnfCollectorSink(Cnf& cnf) : cnf_(cnf) {
    num_vars_ = cnf.num_vars();
  }

  void EnsureVars(int n) override {
    ClauseSink::EnsureVars(n);
    cnf_.EnsureVars(n);
  }
  void ReserveClauses(std::uint64_t n) override {
    cnf_.ReserveClauses(cnf_.num_clauses() + static_cast<std::size_t>(n));
  }

 protected:
  void DoEmit(const Lit* lits, std::size_t n) override {
    cnf_.AddClause(Clause(lits, lits + n));
  }

 private:
  Cnf& cnf_;
};

/// Feeds the stream straight into a Solver: clauses go from the encoder's
/// scratch buffer into the solver's arena/binary layer with no intermediate
/// materialization. Finish() is false once the solver refuted the formula.
class SolverSink final : public ClauseSink {
 public:
  explicit SolverSink(Solver& solver);

  void EnsureVars(int n) override;
  bool Finish() override;

  /// False once any emitted clause made the formula unsatisfiable.
  bool okay() const { return ok_; }

 protected:
  void DoEmit(const Lit* lits, std::size_t n) override;

 private:
  Solver& solver_;
  bool ok_ = true;
};

/// Streams DIMACS text to `out`, back-patching the "p cnf V C" header on
/// Finish() so huge instances never reside in memory. The stream must be
/// seekable (a file or stringstream); Finish() returns false otherwise.
class StreamingDimacsSink final : public ClauseSink {
 public:
  /// `comments` are emitted first, one "c ..." line each (pass them without
  /// the leading "c ").
  explicit StreamingDimacsSink(std::ostream& out,
                               const std::vector<std::string>& comments = {});

  bool Finish() override;

 protected:
  void DoEmit(const Lit* lits, std::size_t n) override;

 private:
  void FlushBuffer();

  std::ostream& out_;
  std::streamoff header_pos_ = -1;
  std::string buffer_;
  bool finished_ = false;
};

/// Counts without storing: clauses, literals, and the clause-length
/// histogram — the allocation-free backend for size statistics and the
/// Table 1 benches.
class CountingSink final : public ClauseSink {
 public:
  /// Entry [k] counts clauses of length k (one entry past the longest).
  const std::vector<std::uint64_t>& histogram() const { return histogram_; }

  std::uint64_t NumClausesOfSize(std::size_t length) const {
    return length < histogram_.size() ? histogram_[length] : 0;
  }

 protected:
  void DoEmit(const Lit* lits, std::size_t n) override {
    (void)lits;
    if (n >= histogram_.size()) histogram_.resize(n + 1, 0);
    ++histogram_[n];
  }

 private:
  std::vector<std::uint64_t> histogram_;
};

/// Duplicates the stream into two downstream sinks — e.g. a SolverSink plus
/// a CnfCollectorSink when a resident solver's input must also stay
/// auditable (flow::RoutingSession's audit mode feeds the satlint
/// net-group-hygiene pass this way). Finish() runs both downstreams and is
/// false if either is.
class TeeSink final : public ClauseSink {
 public:
  TeeSink(ClauseSink& a, ClauseSink& b) : a_(a), b_(b) {
    num_vars_ = a.num_vars() > b.num_vars() ? a.num_vars() : b.num_vars();
  }

  void EnsureVars(int n) override {
    ClauseSink::EnsureVars(n);
    a_.EnsureVars(n);
    b_.EnsureVars(n);
  }
  void ReserveClauses(std::uint64_t n) override {
    a_.ReserveClauses(n);
    b_.ReserveClauses(n);
  }
  bool Finish() override {
    const bool a_ok = a_.Finish();
    const bool b_ok = b_.Finish();
    return a_ok && b_ok;
  }

 protected:
  void DoEmit(const Lit* lits, std::size_t n) override {
    a_.EmitClause(lits, n);
    b_.EmitClause(lits, n);
  }

 private:
  ClauseSink& a_;
  ClauseSink& b_;
};

/// Chainable inline simplifier (equi-propagation-lite): drops duplicate
/// literals and tautologies, tracks unit clauses as a level-0 assignment,
/// removes falsified literals, and drops satisfied clauses — all while the
/// stream flows to the downstream sink. Earlier clauses are not revisited
/// when a later unit arrives (it is a single forward pass, not a fixpoint).
/// Forwarded clauses have their literals in sorted order.
class SimplifyingSink final : public ClauseSink {
 public:
  struct Stats {
    /// Clauses not forwarded: satisfied by a fixed literal or tautological.
    std::uint64_t dropped_satisfied = 0;
    std::uint64_t dropped_tautologies = 0;
    /// Literals removed from forwarded clauses (duplicates + falsified).
    std::uint64_t eliminated_literals = 0;
    /// Variables fixed by (possibly strengthened-to-) unit clauses.
    std::uint64_t fixed_units = 0;

    std::uint64_t DroppedClauses() const {
      return dropped_satisfied + dropped_tautologies;
    }
  };

  explicit SimplifyingSink(ClauseSink& down) : down_(down) {
    num_vars_ = down.num_vars();
  }

  void EnsureVars(int n) override {
    ClauseSink::EnsureVars(n);
    fixed_.resize(static_cast<std::size_t>(num_vars_), LBool::kUndef);
    down_.EnsureVars(n);
  }
  void ReserveClauses(std::uint64_t n) override { down_.ReserveClauses(n); }

  /// False if a contradiction was derived (the empty clause was forwarded
  /// downstream, so downstream consumers agree) or downstream failed.
  bool Finish() override { return down_.Finish() && !contradiction_; }

  const Stats& stats() const { return stats_; }
  bool contradiction() const { return contradiction_; }

 protected:
  void DoEmit(const Lit* lits, std::size_t n) override;

 private:
  ClauseSink& down_;
  std::vector<LBool> fixed_;  // level-0 assignment from unit clauses
  Clause scratch_;
  Stats stats_;
  bool contradiction_ = false;
};

}  // namespace satfr::sat
