#ifndef SATFR_SAT_CLAUSE_EXCHANGE_H_
#define SATFR_SAT_CLAUSE_EXCHANGE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "sat/types.h"

namespace satfr::sat {

// A clause as it travels between portfolio members: the literals plus the
// sender's LBD at export time, so the importer can file the clause in the
// matching learnt tier instead of treating every import as a problem
// clause.
struct SharedClause {
  Clause lits;
  std::uint32_t lbd = 0;
};

// Bounded, mutex-guarded learnt-clause exchange for portfolio solving.
//
// Each participating solver registers once and receives a participant id.
// Registration carries two numbering keys describing how the participant's
// SAT variables map onto the underlying CSP:
//
//   * full_key — hash of the complete variable numbering (domain encoding,
//     color count, per-value cubes, symmetry-breaking sequence). Two
//     participants with equal full keys interpret every variable, and hence
//     every clause, identically: arbitrary clauses flow between them.
//   * unit_key — hash of the subset of the numbering that fixes the meaning
//     of single variables (same ingredients today; kept separate so a
//     future encoding can widen unit-only compatibility). Participants that
//     agree only on unit_key exchange unit clauses alone.
//
// Clauses whose keys match neither way are invisible to the collector, so
// strategies with incompatible numberings (different symmetry sequences,
// different domain encodings) can safely coexist in one exchange.
//
// Publish appends to a bounded FIFO (oldest entries evicted) and drops
// exact duplicates via a hash of the sorted literal codes. Collect returns
// every compatible clause published since the caller's previous Collect,
// excluding the caller's own publications.
//
// All public methods are thread-safe; callers hold no lock across calls.
class ClauseExchange {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 14;

  struct Totals {
    std::uint64_t published = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t evicted = 0;
    std::uint64_t collected = 0;
  };

  explicit ClauseExchange(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  ClauseExchange(const ClauseExchange&) = delete;
  ClauseExchange& operator=(const ClauseExchange&) = delete;

  // Registers a participant with its numbering keys; returns its id.
  int Register(std::uint64_t full_key, std::uint64_t unit_key);

  // Offers a learnt clause to the other participants, tagged with the
  // sender's LBD (0 = unknown; importers clamp into [1, size]). The caller
  // is responsible for filtering (units / low-LBD) before publishing.
  void Publish(int participant, const Clause& clause, std::uint32_t lbd = 0);

  // Appends to *out every clause published since this participant's last
  // Collect that it is compatible with (and did not publish itself).
  // Returns the number of clauses appended.
  std::size_t Collect(int participant, std::vector<SharedClause>* out);

  // Order-insensitive FNV-1a hash of the literal set. Public because it is
  // the identity importers key their duplicate suppression on: an arena
  // reference changes across the owner's GC, the literal hash does not.
  static std::uint64_t HashClause(const Clause& clause);

  std::size_t capacity() const { return capacity_; }
  Totals totals() const;

 private:
  struct Entry {
    Clause lits;
    std::uint32_t lbd;
    int source;
    std::uint64_t full_key;
    std::uint64_t unit_key;
    std::uint64_t seq;
  };

  struct Member {
    std::uint64_t full_key;
    std::uint64_t unit_key;
    std::uint64_t cursor;  // first sequence number not yet collected
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
  std::vector<Member> members_;
  std::unordered_set<std::uint64_t> seen_hashes_;
  std::uint64_t next_seq_ = 0;
  Totals totals_;
};

}  // namespace satfr::sat

#endif  // SATFR_SAT_CLAUSE_EXCHANGE_H_
