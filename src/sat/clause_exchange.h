#ifndef SATFR_SAT_CLAUSE_EXCHANGE_H_
#define SATFR_SAT_CLAUSE_EXCHANGE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mc/shim.h"
#include "sat/types.h"

namespace satfr::sat {

// A clause as it travels between portfolio members: the literals plus the
// sender's LBD at export time, so the importer can file the clause in the
// matching learnt tier instead of treating every import as a problem
// clause.
struct SharedClause {
  Clause lits;
  std::uint32_t lbd = 0;
};

// Bounded, lock-free learnt-clause exchange for parallel solving (portfolio
// members and cube-and-conquer workers).
//
// Each participating solver registers once and receives a participant id.
// Registration carries two numbering keys describing how the participant's
// SAT variables map onto the underlying CSP:
//
//   * full_key — hash of the complete variable numbering (domain encoding,
//     color count, per-value cubes, symmetry-breaking sequence). Two
//     participants with equal full keys interpret every variable, and hence
//     every clause, identically: arbitrary clauses flow between them.
//   * unit_key — hash of the subset of the numbering that fixes the meaning
//     of single variables (same ingredients today; kept separate so a
//     future encoding can widen unit-only compatibility). Participants that
//     agree only on unit_key exchange unit clauses alone.
//
// Clauses whose keys match neither way are invisible to the collector, so
// strategies with incompatible numberings (different symmetry sequences,
// different domain encodings) can safely coexist in one exchange.
//
// Storage is a fixed ring of generation-stamped slots (the predecessor was
// a mutex-guarded deque whose lock serialized every Publish/Collect across
// members; past ~3 members the lock, not the clauses, was the bottleneck).
// Publish claims a monotonically increasing ticket with one fetch_add; the
// ticket's slot (ticket mod capacity) is filled under a per-slot seqlock:
// the stamp is set to the ticket's odd "writing" value, the payload words
// (all relaxed atomics) are stored, and the stamp is released to the
// ticket's even "complete" value. Old entries are never freed — the ring
// wrapping around IS the eviction policy. Collect walks the tickets between
// the caller's private read cursor and the publish cursor, validating each
// slot's stamp before AND after copying the payload: a stamp from a newer
// ticket means the entry was evicted mid-read (the copy is discarded — this
// is the torn-read detection), a stamp below the expected value means the
// writer is still in flight (the cursor parks there and retries next time).
// No path blocks on another thread except the (vanishingly rare) writer
// spin waiting for the previous occupant of a slot to finish its store
// sequence after the ring wrapped a full capacity during that store.
// DESIGN.md §11 gives the memory-ordering argument.
//
// Publishes of clauses longer than kMaxSharedLits are dropped (counted in
// Totals::oversize_dropped): sharing targets units and low-LBD learnts, and
// fixed-size slots are what keep the ring index-addressable without a heap.
//
// Duplicate suppression is approximate: a fixed hash table maps a clause
// hash to the last ticket that published it, and a publish is dropped only
// when that ticket is still inside the live window. Races can admit a
// duplicate (harmless — importers dedup by literal hash) but a
// single-threaded publish sequence behaves exactly like the old FIFO dedup.
//
// All public methods are thread-safe and lock-free; callers hold no lock
// across calls. Collect must only be called by the registered participant
// itself (each cursor has a single owner).
class ClauseExchange {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 14;
  /// Longest clause a slot can carry; longer publishes are dropped.
  static constexpr std::size_t kMaxSharedLits = 24;
  /// Fixed participant table (ids are array indexes; Register past this
  /// returns -1, which Publish/Collect treat as "not participating").
  static constexpr int kMaxParticipants = 64;

  struct Totals {
    std::uint64_t published = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t evicted = 0;
    std::uint64_t collected = 0;
    /// Publishes dropped because the clause exceeds kMaxSharedLits.
    std::uint64_t oversize_dropped = 0;
    /// Collect-side discards of entries overwritten mid-copy (the seqlock
    /// validation tripping; each is also an eviction from the reader's
    /// point of view).
    std::uint64_t torn_reads = 0;
    // Reader-side conservation ledger, summed over all participants. Every
    // ticket a cursor advances past lands in exactly one bucket, so
    //   cursor_advanced ==
    //       collected + torn_reads + self_skipped + incompatible_skipped
    //       + eviction_skipped
    // holds at any quiescent point (asserted by the satlint
    // exchange-conservation pass over run reports, and by the model-check
    // litmus suite under concurrency).
    /// Tickets all cursors moved past in Collect.
    std::uint64_t cursor_advanced = 0;
    /// Tickets skipped because the participant published them itself.
    std::uint64_t self_skipped = 0;
    /// Tickets skipped because the numbering keys matched neither way.
    std::uint64_t incompatible_skipped = 0;
    /// Tickets skipped because the ring evicted them before the cursor
    /// arrived (stamp already newer, or a wholesale lap-behind jump).
    std::uint64_t eviction_skipped = 0;
  };

  explicit ClauseExchange(std::size_t capacity = kDefaultCapacity);

  ClauseExchange(const ClauseExchange&) = delete;
  ClauseExchange& operator=(const ClauseExchange&) = delete;

  // Registers a participant with its numbering keys; returns its id, or -1
  // once kMaxParticipants ids have been handed out.
  int Register(std::uint64_t full_key, std::uint64_t unit_key);

  // Offers a learnt clause to the other participants, tagged with the
  // sender's LBD (0 = unknown; importers clamp into [1, size]). The caller
  // is responsible for filtering (units / low-LBD) before publishing.
  void Publish(int participant, const Clause& clause, std::uint32_t lbd = 0);

  // Appends to *out every clause published since this participant's last
  // Collect that it is compatible with (and did not publish itself).
  // Returns the number of clauses appended. Entries evicted before the
  // cursor reached them are skipped; an entry whose publish is still in
  // flight parks the cursor and is delivered by the next Collect.
  std::size_t Collect(int participant, std::vector<SharedClause>* out);

  // Order-insensitive FNV-1a hash of the literal set. Public because it is
  // the identity importers key their duplicate suppression on: an arena
  // reference changes across the owner's GC, the literal hash does not.
  static std::uint64_t HashClause(const Clause& clause);

  /// Ring capacity in clauses (constructor argument rounded up to a power
  /// of two).
  std::size_t capacity() const { return capacity_; }
  Totals totals() const;

 private:
  // Slot stamps encode the ticket and the write phase in one value:
  //   0                  slot never written
  //   2*ticket + 1       ticket's publish is in flight ("writing")
  //   2*ticket + 2       ticket's payload is complete and readable
  // Stamps at one slot increase monotonically (tickets hitting a slot are
  // capacity apart), so a reader expecting ticket t classifies any observed
  // stamp with two comparisons against StampComplete(t).
  static std::uint64_t StampWriting(std::uint64_t ticket) {
    return 2 * ticket + 1;
  }
  static std::uint64_t StampComplete(std::uint64_t ticket) {
    return 2 * ticket + 2;
  }

  struct Slot {
    mc::Atomic<std::uint64_t> stamp{0};
    // size(8) | lbd(16) | source(16), packed so one relaxed load pairs with
    // the literal array.
    mc::Atomic<std::uint64_t> meta{0};
    mc::Atomic<std::uint32_t> lits[kMaxSharedLits];
  };

  struct Member {
    std::uint64_t full_key = 0;
    std::uint64_t unit_key = 0;
    // First ticket not yet collected. Owned by the participant's thread;
    // atomic so Register (possibly another thread) can seed it.
    mc::Atomic<std::uint64_t> cursor{0};
  };

  const std::size_t capacity_;  // power of two
  const std::size_t slot_mask_;
  std::unique_ptr<Slot[]> slots_;

  // Approximate live-window dedup: hash -> last publishing ticket.
  const std::size_t dedup_mask_;
  std::unique_ptr<mc::Atomic<std::uint64_t>[]> dedup_hash_;
  std::unique_ptr<mc::Atomic<std::uint64_t>[]> dedup_ticket_;

  Member members_[kMaxParticipants];
  mc::Atomic<int> num_members_{0};

  // Next ticket to hand out == number of publishes accepted so far.
  mc::Atomic<std::uint64_t> next_seq_{0};

  mc::Atomic<std::uint64_t> published_{0};
  mc::Atomic<std::uint64_t> duplicates_dropped_{0};
  mc::Atomic<std::uint64_t> evicted_{0};
  mc::Atomic<std::uint64_t> collected_{0};
  mc::Atomic<std::uint64_t> oversize_dropped_{0};
  mc::Atomic<std::uint64_t> torn_reads_{0};
  mc::Atomic<std::uint64_t> cursor_advanced_{0};
  mc::Atomic<std::uint64_t> self_skipped_{0};
  mc::Atomic<std::uint64_t> incompatible_skipped_{0};
  mc::Atomic<std::uint64_t> eviction_skipped_{0};
};

}  // namespace satfr::sat

#endif  // SATFR_SAT_CLAUSE_EXCHANGE_H_
