// An in-memory CNF formula plus construction helpers.
//
// Cnf is the interchange format between the encoding layer and any solver
// (our CDCL engine, the brute-force reference, or an external tool via
// DIMACS). It owns its clauses; duplicate and tautological clauses are kept
// as built unless NormalizeClauses() is called, so that encoders' exact
// output (clause counts per Table 1) is observable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sat/types.h"

namespace satfr::sat {

class Cnf {
 public:
  Cnf() = default;
  explicit Cnf(int num_vars) : num_vars_(num_vars) {}

  /// Allocates a fresh variable and returns it.
  Var NewVar() { return num_vars_++; }

  /// Allocates `n` fresh variables and returns the first.
  Var NewVars(int n) {
    const Var first = num_vars_;
    num_vars_ += n;
    return first;
  }

  int num_vars() const { return num_vars_; }

  /// Grows the variable count to at least `n` (no-op if already larger).
  void EnsureVars(int n) {
    if (n > num_vars_) num_vars_ = n;
  }

  /// Appends a clause; variables must already be allocated.
  void AddClause(Clause clause);

  /// Reserves storage for at least `n` clauses (cuts reallocation churn
  /// when the final clause count is known up front, e.g. from the Table 1
  /// formulas or a CountingSink pre-pass).
  void ReserveClauses(std::size_t n) { clauses_.reserve(n); }

  /// Appends a clause without the allocated-variable assertion. Exists for
  /// tooling that must *represent* ill-formed input (the satlint passes
  /// detect out-of-range literals rather than crash on them); encoders and
  /// solvers must keep using AddClause.
  void AddClauseUnchecked(Clause clause) {
    clauses_.push_back(std::move(clause));
  }

  /// Convenience overloads for small clauses.
  void AddUnit(Lit a) { AddClause({a}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  /// Appends all clauses of `other` with variables shifted by `var_offset`.
  void Append(const Cnf& other, int var_offset);

  const std::vector<Clause>& clauses() const { return clauses_; }
  std::size_t num_clauses() const { return clauses_.size(); }

  /// Total literal count across clauses.
  std::size_t num_literals() const;

  /// Approximate heap footprint of the clause storage in bytes (vector
  /// capacities, not sizes) — what the streaming solve path avoids keeping
  /// resident.
  std::size_t ApproxHeapBytes() const;

  /// Number of clauses with exactly `length` literals.
  std::size_t NumClausesOfSize(std::size_t length) const;

  /// Histogram of clause lengths: entry [k] counts clauses of length k.
  /// The vector has one entry past the longest clause (empty CNF -> empty).
  std::vector<std::size_t> ClauseLengthHistogram() const;

  /// Convenience accessors for the lengths that dominate routing CNFs.
  std::size_t num_unit() const { return NumClausesOfSize(1); }
  std::size_t num_binary() const { return NumClausesOfSize(2); }
  std::size_t num_ternary() const { return NumClausesOfSize(3); }

  /// Sorts literals in each clause, drops duplicate literals, removes
  /// tautological clauses (x or ~x), and dedups identical clauses.
  /// Returns the number of clauses removed.
  std::size_t NormalizeClauses();

  /// True if `assignment` (indexed by variable) satisfies every clause.
  /// Assignment entries beyond num_vars() are ignored; every clause literal
  /// must be within the assignment.
  bool IsSatisfiedBy(const std::vector<bool>& assignment) const;

  /// Human-readable multi-line dump, one clause per line (for tests/demos).
  std::string ToString() const;

 private:
  int num_vars_ = 0;
  std::vector<Clause> clauses_;
};

}  // namespace satfr::sat
