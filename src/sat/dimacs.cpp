#include "sat/dimacs.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace satfr::sat {

void WriteDimacs(const Cnf& cnf, std::ostream& out,
                 const std::vector<std::string>& comments) {
  for (const std::string& comment : comments) {
    out << "c " << comment << '\n';
  }
  out << "p cnf " << cnf.num_vars() << ' ' << cnf.num_clauses() << '\n';
  for (const Clause& clause : cnf.clauses()) {
    for (const Lit l : clause) {
      out << l.ToDimacs() << ' ';
    }
    out << "0\n";
  }
}

bool WriteDimacsFile(const Cnf& cnf, const std::string& path,
                     const std::vector<std::string>& comments) {
  std::ofstream out(path);
  if (!out) return false;
  WriteDimacs(cnf, out, comments);
  return static_cast<bool>(out);
}

std::optional<Cnf> ParseDimacs(std::istream& in) {
  std::string line;
  long declared_vars = -1;
  long declared_clauses = -1;
  Cnf cnf;
  Clause current;
  while (std::getline(in, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == 'c' || trimmed[0] == '%') {
      continue;
    }
    if (trimmed[0] == 'p') {
      const auto tokens = SplitWhitespace(trimmed);
      if (tokens.size() != 4 || tokens[0] != "p" || tokens[1] != "cnf") {
        return std::nullopt;
      }
      try {
        declared_vars = std::stol(tokens[2]);
        declared_clauses = std::stol(tokens[3]);
      } catch (const std::exception&) {
        return std::nullopt;
      }
      if (declared_vars < 0 || declared_clauses < 0) return std::nullopt;
      cnf.EnsureVars(static_cast<int>(declared_vars));
      continue;
    }
    if (declared_vars < 0) return std::nullopt;  // clause before header
    for (const std::string& token : SplitWhitespace(trimmed)) {
      long value = 0;
      try {
        value = std::stol(token);
      } catch (const std::exception&) {
        return std::nullopt;
      }
      if (value == 0) {
        cnf.AddClause(std::move(current));
        current.clear();
      } else {
        const long var_index = (value > 0 ? value : -value) - 1;
        if (var_index >= declared_vars) return std::nullopt;
        current.push_back(Lit::FromDimacs(static_cast<int>(value)));
      }
    }
  }
  if (!current.empty()) return std::nullopt;  // unterminated clause
  if (declared_vars < 0) return std::nullopt;
  if (static_cast<long>(cnf.num_clauses()) != declared_clauses) {
    return std::nullopt;
  }
  return cnf;
}

std::optional<Cnf> ParseDimacsString(const std::string& text) {
  std::istringstream in(text);
  return ParseDimacs(in);
}

std::optional<Cnf> ParseDimacsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ParseDimacs(in);
}

}  // namespace satfr::sat
