// RUP (reverse unit propagation) proof checking.
//
// The paper's central capability is *proving* that a global routing is
// unroutable at width W. To make those UNSAT answers independently
// auditable, the Solver can log every learned clause (a DRUP-style proof:
// each logged clause is a RUP consequence of the formula plus the clauses
// logged before it, ending in the empty clause). This module re-verifies
// such a proof with its own two-watched-literal propagation engine that
// shares no code with the solver's search.
//
// Deletion information is not tracked: the checker keeps every clause,
// which is sound (a superset of clauses can only make unit propagation
// stronger, so every accepted step remains a valid consequence).
#pragma once

#include <string>
#include <vector>

#include "sat/cnf.h"

namespace satfr::sat {

/// Checks that `proof` is a valid RUP refutation of `cnf`: every clause
/// must be derivable by reverse unit propagation from the formula plus the
/// previously accepted clauses, and the proof must establish the empty
/// clause (directly, or via a top-level propagation conflict). Returns
/// false with a diagnostic in `error` otherwise.
bool VerifyRupRefutation(const Cnf& cnf, const std::vector<Clause>& proof,
                         std::string* error = nullptr);

}  // namespace satfr::sat
