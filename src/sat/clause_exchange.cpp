#include "sat/clause_exchange.h"

#include <algorithm>
#include <thread>

namespace satfr::sat {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// meta word layout: size(8) | lbd(16) | source(16). kMaxSharedLits fits in
// 8 bits and participant ids in 16 by construction.
std::uint64_t PackMeta(std::size_t size, std::uint32_t lbd, int source) {
  const std::uint64_t clamped_lbd = std::min<std::uint32_t>(lbd, 0xffffu);
  return static_cast<std::uint64_t>(size) | (clamped_lbd << 8) |
         (static_cast<std::uint64_t>(source) << 24);
}

}  // namespace

ClauseExchange::ClauseExchange(std::size_t capacity)
    : capacity_(RoundUpPow2(std::max<std::size_t>(capacity, 1))),
      slot_mask_(capacity_ - 1),
      slots_(new Slot[capacity_]),
      dedup_mask_(2 * capacity_ - 1),
      dedup_hash_(new mc::Atomic<std::uint64_t>[2 * capacity_]),
      dedup_ticket_(new mc::Atomic<std::uint64_t>[2 * capacity_]) {
  for (std::size_t i = 0; i < 2 * capacity_; ++i) {
    dedup_hash_[i].store(0, std::memory_order_relaxed);
    dedup_ticket_[i].store(0, std::memory_order_relaxed);  // 0 = empty
  }
}

int ClauseExchange::Register(std::uint64_t full_key, std::uint64_t unit_key) {
  int id = num_members_.load(std::memory_order_relaxed);
  do {
    if (id >= kMaxParticipants) return -1;
    // acq_rel: claiming an id both publishes the previous registrant's key
    // initialization (release) and makes it visible to us (acquire) so
    // Collect's source-key reads see fully initialized members. relaxed on
    // failure: a lost race carries no payload.
  } while (!num_members_.compare_exchange_weak(id, id + 1,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed));
  Member& m = members_[id];
  m.full_key = full_key;
  m.unit_key = unit_key;
  // Start collecting at the current head: clauses published before a
  // participant joined are not replayed to it (matching the previous
  // deque's behavior). Readers of these plain key fields only reach them
  // through a publish → collect stamp release/acquire pair, which orders
  // this initialization before any such read.
  m.cursor.store(next_seq_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  return id;
}

std::uint64_t ClauseExchange::HashClause(const Clause& clause) {
  Clause sorted = clause;
  std::sort(sorted.begin(), sorted.end());
  // FNV-1a over the sorted literal codes: order-insensitive identity.
  std::uint64_t h = 1469598103934665603ull;
  for (const Lit l : sorted) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.code()));
    h *= 1099511628211ull;
  }
  return h;
}

void ClauseExchange::Publish(int participant, const Clause& clause,
                             std::uint32_t lbd) {
  if (clause.empty()) return;
  if (participant < 0 ||
      participant >= num_members_.load(std::memory_order_relaxed)) {
    return;
  }
  if (clause.size() > kMaxSharedLits) {
    oversize_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const std::uint64_t hash = HashClause(clause);
  const std::size_t di = static_cast<std::size_t>(hash) & dedup_mask_;
  {
    // Approximate duplicate check: drop only if the recorded publish of
    // this hash is still inside the live ring window. The check and the
    // later record are not one atomic step, so two racing publishers can
    // both get through — importers dedup again by literal hash, so a
    // leaked duplicate costs a slot, never correctness.
    const std::uint64_t prev_hash =
        dedup_hash_[di].load(std::memory_order_relaxed);
    const std::uint64_t prev_ticket1 =
        dedup_ticket_[di].load(std::memory_order_relaxed);
    if (prev_hash == hash && prev_ticket1 != 0 &&
        prev_ticket1 - 1 + capacity_ >
            next_seq_.load(std::memory_order_relaxed)) {
      duplicates_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  // relaxed: the ticket only needs to be unique; all publication ordering
  // rides on the slot's seqlock stamp protocol below.
  const std::uint64_t ticket =
      next_seq_.fetch_add(1, std::memory_order_relaxed);
  dedup_hash_[di].store(hash, std::memory_order_relaxed);
  dedup_ticket_[di].store(ticket + 1, std::memory_order_relaxed);

  Slot& slot = slots_[static_cast<std::size_t>(ticket) & slot_mask_];
  // Wait for the slot's previous occupant (ticket - capacity) to finish its
  // store sequence before overwriting. Only reachable when the ring laps a
  // writer that claimed its ticket a full capacity ago and is still inside
  // Publish — in practice the spin body never executes.
  const std::uint64_t prior_stamp =
      ticket >= capacity_ ? StampComplete(ticket - capacity_) : 0;
  while (slot.stamp.load(std::memory_order_acquire) != prior_stamp) {
    mc::Yield();
  }
  if (ticket >= capacity_) evicted_.fetch_add(1, std::memory_order_relaxed);

  // Seqlock write: mark in-flight, release-fence so any reader that
  // observes a payload word below also observes the odd stamp, store the
  // payload relaxed, then release the even "complete" stamp.
  slot.stamp.store(StampWriting(ticket), std::memory_order_relaxed);
  mc::Fence(std::memory_order_release);
  slot.meta.store(PackMeta(clause.size(), lbd, participant),
                  std::memory_order_relaxed);
  for (std::size_t i = 0; i < clause.size(); ++i) {
    slot.lits[i].store(static_cast<std::uint32_t>(clause[i].code()),
                       std::memory_order_relaxed);
  }
  slot.stamp.store(StampComplete(ticket), std::memory_order_release);
  published_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ClauseExchange::Collect(int participant,
                                    std::vector<SharedClause>* out) {
  if (participant < 0 ||
      participant >= num_members_.load(std::memory_order_relaxed)) {
    return 0;
  }
  Member& m = members_[participant];
  // relaxed: the head is a moving target anyway; any recent value yields a
  // correct (possibly slightly short) collection window.
  const std::uint64_t head = next_seq_.load(std::memory_order_relaxed);
  // relaxed: the cursor is owned by this participant's thread; only the
  // Register seeding writes it from elsewhere, ordered by thread start.
  std::uint64_t cursor = m.cursor.load(std::memory_order_relaxed);
  const std::uint64_t start_cursor = cursor;
  std::uint64_t eviction_skips = 0;
  std::uint64_t self_skips = 0;
  std::uint64_t incompatible_skips = 0;
  // Tickets more than a full ring behind the head are guaranteed
  // overwritten; skip them wholesale instead of probing each stamp.
  if (head > capacity_ && cursor < head - capacity_) {
    eviction_skips += (head - capacity_) - cursor;
    cursor = head - capacity_;
  }

  std::size_t appended = 0;
  std::uint32_t raw[kMaxSharedLits];
  for (; cursor < head; ++cursor) {
    Slot& slot = slots_[static_cast<std::size_t>(cursor) & slot_mask_];
    const std::uint64_t want = StampComplete(cursor);
    const std::uint64_t stamp = slot.stamp.load(std::memory_order_acquire);
    if (stamp < want) {
      // This ticket's publish is still in flight (stamps at a slot only
      // increase). Park the cursor here; the next Collect retries, and
      // tickets beyond it stay queued behind it so delivery order is
      // preserved.
      break;
    }
    if (stamp > want) {
      ++eviction_skips;  // evicted before we got to it
      continue;
    }
    // Seqlock read: copy the payload, then re-check the stamp past an
    // acquire fence. If a lapping writer overwrote the slot mid-copy, the
    // fence guarantees its odd stamp is visible now and the copy is
    // discarded as torn.
    const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    const std::size_t size = meta & 0xff;
    for (std::size_t i = 0; i < size; ++i) {
      raw[i] = slot.lits[i].load(std::memory_order_relaxed);
    }
    mc::Fence(std::memory_order_acquire);
    if (slot.stamp.load(std::memory_order_relaxed) != want) {
      torn_reads_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    const int source = static_cast<int>((meta >> 24) & 0xffff);
    if (source == participant) {
      ++self_skips;
      continue;
    }
    const Member& src = members_[source];
    const bool full_match = src.full_key == m.full_key;
    const bool unit_match = size == 1 && src.unit_key == m.unit_key;
    if (!full_match && !unit_match) {
      ++incompatible_skips;
      continue;
    }

    SharedClause shared;
    shared.lbd = static_cast<std::uint32_t>((meta >> 8) & 0xffff);
    shared.lits.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      shared.lits.push_back(Lit::Make(static_cast<Var>(raw[i] >> 1),
                                      (raw[i] & 1) != 0));
    }
    out->push_back(std::move(shared));
    ++appended;
  }
  // relaxed: single-owner cursor (see the load above); counters are
  // statistics folded together only at quiescent points.
  m.cursor.store(cursor, std::memory_order_relaxed);
  collected_.fetch_add(appended, std::memory_order_relaxed);
  cursor_advanced_.fetch_add(cursor - start_cursor, std::memory_order_relaxed);
  if (eviction_skips != 0) {
    eviction_skipped_.fetch_add(eviction_skips, std::memory_order_relaxed);
  }
  if (self_skips != 0) {
    self_skipped_.fetch_add(self_skips, std::memory_order_relaxed);
  }
  if (incompatible_skips != 0) {
    incompatible_skipped_.fetch_add(incompatible_skips,
                                    std::memory_order_relaxed);
  }
  return appended;
}

ClauseExchange::Totals ClauseExchange::totals() const {
  Totals t;
  t.published = published_.load(std::memory_order_relaxed);
  t.duplicates_dropped = duplicates_dropped_.load(std::memory_order_relaxed);
  t.evicted = evicted_.load(std::memory_order_relaxed);
  t.collected = collected_.load(std::memory_order_relaxed);
  t.oversize_dropped = oversize_dropped_.load(std::memory_order_relaxed);
  t.torn_reads = torn_reads_.load(std::memory_order_relaxed);
  t.cursor_advanced = cursor_advanced_.load(std::memory_order_relaxed);
  t.self_skipped = self_skipped_.load(std::memory_order_relaxed);
  t.incompatible_skipped =
      incompatible_skipped_.load(std::memory_order_relaxed);
  t.eviction_skipped = eviction_skipped_.load(std::memory_order_relaxed);
  return t;
}

}  // namespace satfr::sat
