#include "sat/clause_exchange.h"

#include <algorithm>

namespace satfr::sat {

int ClauseExchange::Register(std::uint64_t full_key, std::uint64_t unit_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = static_cast<int>(members_.size());
  members_.push_back(Member{full_key, unit_key, next_seq_});
  return id;
}

std::uint64_t ClauseExchange::HashClause(const Clause& clause) {
  Clause sorted = clause;
  std::sort(sorted.begin(), sorted.end());
  // FNV-1a over the sorted literal codes: order-insensitive identity.
  std::uint64_t h = 1469598103934665603ull;
  for (const Lit l : sorted) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.code()));
    h *= 1099511628211ull;
  }
  return h;
}

void ClauseExchange::Publish(int participant, const Clause& clause,
                             std::uint32_t lbd) {
  if (clause.empty()) return;
  const std::uint64_t hash = HashClause(clause);
  std::lock_guard<std::mutex> lock(mutex_);
  if (participant < 0 || static_cast<std::size_t>(participant) >= members_.size()) {
    return;
  }
  if (!seen_hashes_.insert(hash).second) {
    ++totals_.duplicates_dropped;
    return;
  }
  // The dedup set only grows; reset it periodically so a long run cannot
  // hoard memory. Losing it readmits old clauses, which is harmless —
  // the importing solver's AddClause absorbs repeats.
  if (seen_hashes_.size() > capacity_ * 4) {
    seen_hashes_.clear();
    seen_hashes_.insert(hash);
  }
  const Member& m = members_[static_cast<std::size_t>(participant)];
  if (entries_.size() == capacity_) {
    entries_.pop_front();
    ++totals_.evicted;
  }
  entries_.push_back(
      Entry{clause, lbd, participant, m.full_key, m.unit_key, next_seq_++});
  ++totals_.published;
}

std::size_t ClauseExchange::Collect(int participant,
                                    std::vector<SharedClause>* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (participant < 0 || static_cast<std::size_t>(participant) >= members_.size()) {
    return 0;
  }
  Member& m = members_[static_cast<std::size_t>(participant)];
  std::size_t appended = 0;
  if (!entries_.empty() && next_seq_ > m.cursor) {
    // Sequence numbers are contiguous; the deque's front entry holds the
    // oldest one still buffered.
    const std::uint64_t front_seq = entries_.front().seq;
    std::size_t i = m.cursor > front_seq
                        ? static_cast<std::size_t>(m.cursor - front_seq)
                        : 0;
    for (; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (e.source == participant) continue;
      const bool full_match = e.full_key == m.full_key;
      const bool unit_match = e.lits.size() == 1 && e.unit_key == m.unit_key;
      if (!full_match && !unit_match) continue;
      out->push_back(SharedClause{e.lits, e.lbd});
      ++appended;
    }
  }
  m.cursor = next_seq_;
  totals_.collected += appended;
  return appended;
}

ClauseExchange::Totals ClauseExchange::totals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

}  // namespace satfr::sat
