#include "sat/walksat.h"

#include <cassert>
#include <limits>

namespace satfr::sat {

WalkSat::WalkSat(const Cnf& cnf, WalkSatOptions options)
    : cnf_(cnf), options_(options), rng_(options.seed) {
  assignment_.resize(static_cast<std::size_t>(cnf.num_vars()));
  occurrences_.resize(static_cast<std::size_t>(cnf.num_vars()));
  for (std::size_t c = 0; c < cnf_.clauses().size(); ++c) {
    for (const Lit l : cnf_.clauses()[c]) {
      occurrences_[static_cast<std::size_t>(l.var())].push_back(c);
    }
  }
  true_literal_count_.resize(cnf_.clauses().size(), 0);
  unsat_position_.resize(cnf_.clauses().size(), -1);
}

void WalkSat::RandomizeAssignment() {
  for (std::size_t v = 0; v < assignment_.size(); ++v) {
    assignment_[v] = rng_.NextBool(0.5);
  }
}

void WalkSat::RebuildState() {
  unsat_clauses_.clear();
  for (std::size_t c = 0; c < cnf_.clauses().size(); ++c) {
    int count = 0;
    for (const Lit l : cnf_.clauses()[c]) {
      if (assignment_[static_cast<std::size_t>(l.var())] != l.negated()) {
        ++count;
      }
    }
    true_literal_count_[c] = count;
    if (count == 0) {
      unsat_position_[c] = static_cast<int>(unsat_clauses_.size());
      unsat_clauses_.push_back(c);
    } else {
      unsat_position_[c] = -1;
    }
  }
}

int WalkSat::BreakCount(Var v) const {
  // Clauses where v's literal is currently the single true literal.
  int breaks = 0;
  for (const std::size_t c : occurrences_[static_cast<std::size_t>(v)]) {
    if (true_literal_count_[c] != 1) continue;
    for (const Lit l : cnf_.clauses()[c]) {
      if (l.var() == v &&
          assignment_[static_cast<std::size_t>(v)] != l.negated()) {
        ++breaks;
        break;
      }
    }
  }
  return breaks;
}

void WalkSat::Flip(Var v) {
  const bool old_value = assignment_[static_cast<std::size_t>(v)];
  assignment_[static_cast<std::size_t>(v)] = !old_value;
  for (const std::size_t c : occurrences_[static_cast<std::size_t>(v)]) {
    // Recompute the delta from this variable's literals in clause c.
    int delta = 0;
    for (const Lit l : cnf_.clauses()[c]) {
      if (l.var() != v) continue;
      const bool was_true = (old_value != l.negated());
      delta += was_true ? -1 : 1;
    }
    if (delta == 0) continue;
    const int before = true_literal_count_[c];
    const int after = before + delta;
    true_literal_count_[c] = after;
    if (before == 0 && after > 0) {
      // Clause became satisfied: remove from the unsat list.
      const int pos = unsat_position_[c];
      const std::size_t last = unsat_clauses_.back();
      unsat_clauses_[static_cast<std::size_t>(pos)] = last;
      unsat_position_[last] = pos;
      unsat_clauses_.pop_back();
      unsat_position_[c] = -1;
    } else if (before > 0 && after == 0) {
      unsat_position_[c] = static_cast<int>(unsat_clauses_.size());
      unsat_clauses_.push_back(c);
    }
  }
}

SolveResult WalkSat::Solve(Deadline deadline,
                           const mc::Atomic<bool>* stop) {
  Stopwatch stopwatch;
  // Empty clauses can never be satisfied; bail out honestly.
  for (const Clause& clause : cnf_.clauses()) {
    if (clause.empty()) return SolveResult::kUnknown;
  }
  for (int try_index = 0;
       options_.max_tries == 0 || try_index < options_.max_tries;
       ++try_index) {
    ++stats_.tries;
    RandomizeAssignment();
    RebuildState();
    for (std::uint64_t flip = 0; flip < options_.flips_per_try; ++flip) {
      if (unsat_clauses_.empty()) {
        stats_.solve_seconds += stopwatch.Seconds();
        return SolveResult::kSat;
      }
      if ((flip & 1023u) == 0 &&
          (deadline.Expired() ||
           (stop && stop->load(std::memory_order_relaxed)))) {
        stats_.solve_seconds += stopwatch.Seconds();
        return SolveResult::kUnknown;
      }
      // Pick a random unsatisfied clause.
      const std::size_t c = unsat_clauses_[rng_.NextBelow(
          unsat_clauses_.size())];
      const Clause& clause = cnf_.clauses()[c];
      Var chosen = kUndefVar;
      if (rng_.NextBool(options_.noise)) {
        chosen = clause[rng_.NextBelow(clause.size())].var();
      } else {
        // Greedy: minimum break count, ties at random.
        int best_breaks = std::numeric_limits<int>::max();
        int ties = 0;
        for (const Lit l : clause) {
          const int breaks = BreakCount(l.var());
          if (breaks < best_breaks) {
            best_breaks = breaks;
            chosen = l.var();
            ties = 1;
          } else if (breaks == best_breaks) {
            ++ties;
            if (rng_.NextBelow(static_cast<std::uint64_t>(ties)) == 0) {
              chosen = l.var();
            }
          }
        }
      }
      assert(chosen != kUndefVar);
      Flip(chosen);
      ++stats_.flips;
    }
    if (deadline.Expired() ||
        (stop && stop->load(std::memory_order_relaxed))) {
      break;
    }
  }
  stats_.solve_seconds += stopwatch.Seconds();
  return SolveResult::kUnknown;
}

}  // namespace satfr::sat
