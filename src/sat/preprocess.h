// CNF preprocessing: top-level unit propagation, subsumption, and
// self-subsuming resolution (the classic SatELite-style inprocessing
// subset, minus variable elimination).
//
// The coloring CNFs the encodings emit contain exploitable redundancy —
// e.g. symmetry-breaking units cascade through at-least-one clauses, and
// hierarchical restriction clauses often subsume conflict clauses. This
// module simplifies a formula while preserving equivalence over the
// original variables, so decoded models remain valid:
//   * variables keep their numbering (no renumbering/elimination),
//   * facts derived at top level are reported in `forced`,
//   * ReconstructModel merges a model of the simplified formula with the
//     forced values to yield a model of the original formula.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/cnf.h"

namespace satfr::sat {

struct PreprocessOptions {
  bool subsumption = true;
  bool self_subsumption = true;
  /// Simplification rounds (each: propagate, subsume, strengthen).
  int max_rounds = 3;
};

struct PreprocessStats {
  std::size_t forced_units = 0;
  std::size_t removed_satisfied = 0;
  std::size_t removed_subsumed = 0;
  std::size_t strengthened_literals = 0;
  int rounds = 0;
};

struct PreprocessResult {
  /// Simplified formula over the same variable space.
  Cnf simplified;
  /// Per-variable top-level facts (kUndef if not forced).
  std::vector<LBool> forced;
  PreprocessStats stats;
  /// True if preprocessing alone refuted the formula (simplified then
  /// contains the empty clause).
  bool contradiction = false;
};

PreprocessResult Preprocess(const Cnf& cnf,
                            const PreprocessOptions& options = {});

/// Lifts a model of `result.simplified` to a model of the original
/// formula: forced variables take their forced value, everything else its
/// value in `simplified_model` (which must cover the original variables).
std::vector<bool> ReconstructModel(const PreprocessResult& result,
                                   const std::vector<bool>& simplified_model);

}  // namespace satfr::sat
