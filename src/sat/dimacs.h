// DIMACS-CNF serialization.
//
// The paper's tool flow goes: routing -> graph coloring (.col) -> CNF
// (DIMACS) -> SAT solver. These functions implement the CNF leg so the flow
// can interoperate with external solvers and so CNF sizes can be inspected
// on disk. Parsing is tolerant of comment lines and multi-line clauses.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "sat/cnf.h"

namespace satfr::sat {

/// Writes `cnf` in DIMACS format ("p cnf V C" header, 0-terminated clauses).
/// Optional comment lines (without the leading "c ") are emitted first.
void WriteDimacs(const Cnf& cnf, std::ostream& out,
                 const std::vector<std::string>& comments = {});

/// Convenience: writes to a file; returns false if the file cannot be opened.
bool WriteDimacsFile(const Cnf& cnf, const std::string& path,
                     const std::vector<std::string>& comments = {});

/// Parses DIMACS text. Returns std::nullopt on malformed input (missing or
/// inconsistent header, literal out of range, unterminated clause).
std::optional<Cnf> ParseDimacs(std::istream& in);

/// Parses DIMACS from a string.
std::optional<Cnf> ParseDimacsString(const std::string& text);

/// Parses DIMACS from a file; std::nullopt if unreadable or malformed.
std::optional<Cnf> ParseDimacsFile(const std::string& path);

}  // namespace satfr::sat
