#include "sat/brute_force.h"

#include <cassert>

namespace satfr::sat {

std::optional<std::vector<bool>> SolveByEnumeration(const Cnf& cnf) {
  const int n = cnf.num_vars();
  assert(n <= 24 && "enumeration limited to 24 variables");
  const std::uint32_t limit = 1u << n;
  std::vector<bool> assignment(static_cast<std::size_t>(n));
  for (std::uint32_t bits = 0; bits < limit; ++bits) {
    for (int v = 0; v < n; ++v) {
      assignment[static_cast<std::size_t>(v)] = ((bits >> v) & 1u) != 0;
    }
    if (cnf.IsSatisfiedBy(assignment)) return assignment;
  }
  return std::nullopt;
}

namespace {

enum class TriState : char { kUnset, kTrue, kFalse };

class DpllSearch {
 public:
  explicit DpllSearch(const Cnf& cnf)
      : cnf_(cnf),
        values_(static_cast<std::size_t>(cnf.num_vars()), TriState::kUnset) {}

  std::optional<std::vector<bool>> Run() {
    if (!Recurse()) return std::nullopt;
    std::vector<bool> model(values_.size());
    for (std::size_t v = 0; v < values_.size(); ++v) {
      // Unconstrained variables default to false.
      model[v] = (values_[v] == TriState::kTrue);
    }
    return model;
  }

 private:
  // Returns kTrue if the clause is satisfied, kFalse if falsified, kUnset
  // otherwise; `unit` receives the sole unassigned literal if exactly one.
  TriState ClauseStatus(const Clause& clause, Lit* unit) const {
    int unassigned = 0;
    Lit candidate = kUndefLit;
    for (const Lit l : clause) {
      const TriState v = values_[static_cast<std::size_t>(l.var())];
      if (v == TriState::kUnset) {
        ++unassigned;
        candidate = l;
      } else if ((v == TriState::kTrue) != l.negated()) {
        return TriState::kTrue;  // literal satisfied
      }
    }
    if (unassigned == 0) return TriState::kFalse;
    if (unassigned == 1) *unit = candidate;
    return TriState::kUnset;
  }

  // Unit-propagates to fixpoint; records assignments in `trail`. Returns
  // false on a falsified clause.
  bool PropagateUnits(std::vector<Var>& trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& clause : cnf_.clauses()) {
        Lit unit = kUndefLit;
        const TriState status = ClauseStatus(clause, &unit);
        if (status == TriState::kFalse) return false;
        if (status == TriState::kUnset && unit.IsValid()) {
          values_[static_cast<std::size_t>(unit.var())] =
              unit.negated() ? TriState::kFalse : TriState::kTrue;
          trail.push_back(unit.var());
          changed = true;
        }
      }
    }
    return true;
  }

  bool Recurse() {
    std::vector<Var> trail;
    if (!PropagateUnits(trail)) {
      Undo(trail);
      return false;
    }
    Var branch = kUndefVar;
    for (std::size_t v = 0; v < values_.size(); ++v) {
      if (values_[v] == TriState::kUnset) {
        branch = static_cast<Var>(v);
        break;
      }
    }
    if (branch == kUndefVar) return true;  // everything assigned, all sat
    for (const TriState phase : {TriState::kTrue, TriState::kFalse}) {
      values_[static_cast<std::size_t>(branch)] = phase;
      if (Recurse()) return true;
      values_[static_cast<std::size_t>(branch)] = TriState::kUnset;
    }
    Undo(trail);
    return false;
  }

  void Undo(const std::vector<Var>& trail) {
    for (const Var v : trail) {
      values_[static_cast<std::size_t>(v)] = TriState::kUnset;
    }
  }

  const Cnf& cnf_;
  std::vector<TriState> values_;
};

}  // namespace

std::optional<std::vector<bool>> SolveByDpll(const Cnf& cnf) {
  for (const Clause& clause : cnf.clauses()) {
    if (clause.empty()) return std::nullopt;
  }
  return DpllSearch(cnf).Run();
}

}  // namespace satfr::sat
