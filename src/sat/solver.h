// A conflict-driven clause-learning (CDCL) SAT solver.
//
// This is the substrate that stands in for the siege_v4 and MiniSat binaries
// used in the paper (see DESIGN.md §3). The engine implements the standard
// modern architecture: two-watched-literal propagation, first-UIP conflict
// analysis with clause minimization, VSIDS variable activities with phase
// saving, Luby or geometric restarts, activity/LBD-driven learnt-clause
// deletion, and arena garbage collection.
//
// Binary clauses get a dedicated implication layer: routing CNFs are
// dominated by 2-literal exclusivity clauses (one per conflicting track
// pair), so 2-literal clauses never enter the arena. Instead each literal
// keeps a flat list of the literals it implies, consulted before the general
// watch lists in Propagate — a whole binary pass touches no clause memory.
// The reason for a binary implication is the packed other literal (see
// kBinaryReasonBit), not a clause reference, and binary learnts are
// permanent (exempt from LBD-driven deletion).
//
// Two option presets mirror the paper's two solvers:
//   SolverOptions::SiegeLike()   — tuned for refutation (UNSAT) throughput,
//   SolverOptions::MiniSatLike() — the classic MiniSat 1.14-era defaults.
//
// Solving is cooperative: a Deadline and/or an std::atomic<bool> stop flag
// (used by the portfolio runner) abort the search with SolveResult::kUnknown.
// A solver can additionally be wired to a ClauseExchange (SetClauseExchange):
// it then exports units and low-LBD learnts after every conflict and imports
// pending shared clauses at restart boundaries (ImportClauses).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "sat/cnf.h"
#include "sat/types.h"

namespace satfr::sat {

class ClauseExchange;

enum class SolveResult { kSat, kUnsat, kUnknown };

const char* ToString(SolveResult result);

struct SolverOptions {
  // VSIDS decay applied after every conflict.
  double var_decay = 0.95;
  // Learnt-clause activity decay.
  double clause_decay = 0.999;
  // Fraction of decisions taken uniformly at random (diversification).
  double random_decision_freq = 0.0;
  // Remember and reuse the last assigned polarity of each variable.
  bool phase_saving = true;
  // Polarity used before a variable has ever been assigned.
  bool default_phase_positive = false;
  // Restart schedule: Luby sequence scaled by restart_base, or geometric
  // with ratio restart_growth starting at restart_base.
  bool luby_restarts = true;
  int restart_base = 100;
  double restart_growth = 1.5;
  // Learnt database: allowed size starts at learnt_size_factor * #clauses
  // and grows by learnt_size_inc at every reduction.
  double learnt_size_factor = 1.0 / 3.0;
  double learnt_size_inc = 1.15;
  // Clause sharing (only when a ClauseExchange is attached): learnts with
  // LBD <= share_max_lbd are exported; units and binaries always qualify.
  std::uint32_t share_max_lbd = 2;
  // Seed for random decisions / polarities.
  std::uint64_t seed = 91648253;
  // Run CheckInvariants at every restart boundary and abort on a violation.
  // Debug aid for solver changes; off by default (full scans are O(arena)).
  bool debug_check_invariants = false;

  /// Preset approximating MiniSat's classic behaviour.
  static SolverOptions MiniSatLike();
  /// Preset tuned for UNSAT instances (slower decay, geometric restarts,
  /// a pinch of randomness), approximating siege_v4's profile.
  static SolverOptions SiegeLike();
};

struct SolverStats {
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t binary_propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned = 0;
  std::uint64_t removed = 0;
  std::uint64_t minimized_literals = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t exported_clauses = 0;
  std::uint64_t imported_clauses = 0;
  double solve_seconds = 0.0;

  /// Assignments propagated per second of solving (0 before any solve).
  double PropagationsPerSecond() const {
    return solve_seconds > 0.0
               ? static_cast<double>(propagations) / solve_seconds
               : 0.0;
  }
};

class Solver {
 public:
  explicit Solver(SolverOptions options = SolverOptions());

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Allocates a fresh variable.
  Var NewVar();

  /// Grows the variable count to at least `n` (no-op if already larger),
  /// reserving the per-variable arrays up front — the bulk entry point for
  /// streaming clause emission (sat/clause_sink.h).
  void EnsureVars(int n);

  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause (simplified against the level-0 assignment). Returns
  /// false if the formula became trivially unsatisfiable.
  bool AddClause(Clause clause);

  /// Span overload: copies from the caller's buffer into reused internal
  /// scratch — no per-clause allocation. The hot path of SolverSink.
  bool AddClause(const Lit* lits, std::size_t n);

  /// Adds every clause of `cnf`, allocating variables as needed.
  /// Returns false if the formula became trivially unsatisfiable.
  bool AddCnf(const Cnf& cnf);

  /// Runs the CDCL search. `deadline` bounds wall-clock time; `stop`, when
  /// non-null, aborts as soon as it becomes true (portfolio cancellation).
  SolveResult Solve(Deadline deadline = Deadline(),
                    const std::atomic<bool>* stop = nullptr);

  /// Incremental interface: solves under the given assumption literals.
  /// kUnsat means "unsatisfiable under these assumptions" — unless okay()
  /// has also become false, the solver remains usable and can be re-queried
  /// with different assumptions while keeping everything it has learned.
  SolveResult SolveWithAssumptions(const std::vector<Lit>& assumptions,
                                   Deadline deadline = Deadline(),
                                   const std::atomic<bool>* stop = nullptr);

  /// Model of the last kSat answer, indexed by variable.
  const std::vector<bool>& model() const { return model_; }

  /// Value of `l` in the last model.
  bool ModelValue(Lit l) const {
    return model_[static_cast<std::size_t>(l.var())] != l.negated();
  }

  const SolverStats& stats() const { return stats_; }

  /// False once the clause set has been proven unsatisfiable.
  bool okay() const { return ok_; }

  /// Approximate heap footprint of the clause storage in bytes: arena,
  /// binary-implication lists, and watch lists (capacities, not sizes).
  /// Basis for the collector-vs-direct peak-memory comparison in the
  /// benches.
  std::size_t ClauseMemoryBytes() const;

  /// Full consistency scan over the solver's internal state: per-variable
  /// array sizes, trail/decision-level well-formedness, reason soundness
  /// (the implied literal is true, all others false at earlier-or-equal
  /// levels), binary-layer symmetry (every implication has its mirror and
  /// the entry count matches num_binary_clauses_), and watch-list <-> arena
  /// agreement (every live clause is watched on exactly its first two
  /// literals and every watcher points at a live clause). Safe to call at
  /// any quiescent point (between solves, at restart boundaries, from
  /// tests). Returns false and fills `error` on the first violation.
  bool CheckInvariants(std::string* error = nullptr) const;

  /// Attaches a DRUP-style proof log: every clause the solver derives
  /// (learned clauses, strengthened input clauses, and the final empty
  /// clause on UNSAT) is appended to `log` in derivation order, so that an
  /// UNSAT answer can be re-verified with VerifyRupRefutation against the
  /// original formula. Attach before adding clauses; pass nullptr to
  /// detach. Logging is off by default (it retains every learned clause).
  void SetProofLog(std::vector<Clause>* log) { proof_log_ = log; }

  /// Connects this solver to a portfolio clause-exchange buffer as the
  /// member registered under `participant`. Once connected, the solver
  /// exports units and learnts with LBD <= options.share_max_lbd after each
  /// conflict and imports pending shared clauses at restart boundaries.
  /// Pass nullptr to disconnect. Clauses imported while a proof log is
  /// attached would break the RUP derivation chain, so imports are
  /// suppressed whenever SetProofLog is active.
  void SetClauseExchange(ClauseExchange* exchange, int participant) {
    exchange_ = exchange;
    exchange_participant_ = participant;
  }

  /// Imports every pending shared clause from the attached exchange into
  /// the level-0 clause database. Called automatically at restart
  /// boundaries; safe to call between solves. Returns the number of
  /// clauses taken from the exchange (okay() turns false if an import
  /// refutes the formula).
  std::size_t ImportClauses();

 private:
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoClause = 0xFFFFFFFFu;
  // Sentinel returned by Propagate when the conflicting clause lives in the
  // binary layer (its two literals are in binary_conflict_, not the arena).
  static constexpr ClauseRef kBinaryConflict = 0xFFFFFFFEu;
  // Reasons with this bit set are packed binary reasons: the low 31 bits
  // are the code of the *other* (false) literal of the implying binary
  // clause. Arena references stay below the bit (checked in AllocClause).
  static constexpr ClauseRef kBinaryReasonBit = 0x80000000u;

  static ClauseRef BinaryReason(Lit other) {
    return kBinaryReasonBit | static_cast<ClauseRef>(other.code());
  }
  static bool IsBinaryReason(ClauseRef r) {
    return r != kNoClause && (r & kBinaryReasonBit) != 0;
  }
  static Lit BinaryReasonLit(ClauseRef r) {
    const int code = static_cast<int>(r & ~kBinaryReasonBit);
    return Lit::Make(code >> 1, (code & 1) != 0);
  }

  // Arena clause layout (32-bit words):
  //   word0: size << 3 | learnt(1) | deleted(2) | relocated(4)
  //   [learnt only] word1: activity (float bits), word2: LBD
  //   then `size` literal codes.
  struct ClauseView {
    std::uint32_t* header;

    std::uint32_t size() const { return *header >> 3; }
    bool learnt() const { return (*header & 1u) != 0; }
    bool deleted() const { return (*header & 2u) != 0; }
    void MarkDeleted() { *header |= 2u; }
    bool relocated() const { return (*header & 4u) != 0; }
    Lit* lits() const {
      return reinterpret_cast<Lit*>(header + (learnt() ? 3 : 1));
    }
    Lit& operator[](std::uint32_t i) const { return lits()[i]; }
    float Activity() const;
    void SetActivity(float activity) const;
    std::uint32_t& Lbd() const { return header[2]; }
    std::uint32_t Words() const { return (learnt() ? 3u : 1u) + size(); }
  };

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  // Max-heap over variable activities.
  class VarOrder {
   public:
    explicit VarOrder(const std::vector<double>& activity)
        : activity_(activity) {}
    bool Empty() const { return heap_.empty(); }
    bool Contains(Var v) const;
    void Insert(Var v);
    void Update(Var v);  // activity of v increased
    Var RemoveMax();
    void Grow(int num_vars);

   private:
    bool Before(Var a, Var b) const {
      return activity_[static_cast<std::size_t>(a)] >
             activity_[static_cast<std::size_t>(b)];
    }
    void SiftUp(std::size_t i);
    void SiftDown(std::size_t i);
    const std::vector<double>& activity_;
    std::vector<Var> heap_;
    std::vector<int> position_;  // var -> heap index or -1
  };

  ClauseView View(ClauseRef cref) {
    return ClauseView{arena_.data() + cref};
  }

  LBool Value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  LBool Value(Lit l) const { return LitValue(l, Value(l.var())); }
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  int LevelOf(Var v) const { return level_[static_cast<std::size_t>(v)]; }

  ClauseRef AllocClause(const Clause& lits, bool learnt);
  void FreeClause(ClauseRef cref);
  void AttachClause(ClauseRef cref);
  void DetachClause(ClauseRef cref);
  void AttachBinary(Lit a, Lit b);
  bool Locked(ClauseRef cref);
  void RemoveClause(ClauseRef cref);

  void UncheckedEnqueue(Lit p, ClauseRef from);
  ClauseRef Propagate();
  void Analyze(ClauseRef confl, Clause& out_learnt, int& out_btlevel,
               std::uint32_t& out_lbd);
  bool LitRedundant(Lit p, std::uint32_t abstract_levels);
  std::uint32_t AbstractLevel(Var v) const {
    return 1u << (static_cast<std::uint32_t>(LevelOf(v)) & 31u);
  }
  void Backtrack(int level);
  Lit PickBranchLit();
  void NewDecisionLevel() {
    trail_lim_.push_back(static_cast<int>(trail_.size()));
  }

  void BumpVarActivity(Var v);
  void DecayVarActivity() { var_inc_ /= options_.var_decay; }
  void BumpClauseActivity(ClauseView c);
  void DecayClauseActivity() { clause_inc_ /= options_.clause_decay; }

  void ReduceDb();
  void RemoveSatisfied(std::vector<ClauseRef>& list);
  void RemoveSatisfiedBinaries();
  void SimplifyAtLevelZero();
  void CollectGarbageIfNeeded();
  std::uint32_t ComputeLbd(const Clause& lits);
  void ExportLearnt(const Clause& learnt, std::uint32_t lbd);

  // Returns kTrue (model found), kFalse (UNSAT), or kUndef (restart or
  // budget exhausted; check budget_exhausted_).
  LBool Search(std::int64_t conflict_budget, const Deadline& deadline,
               const std::atomic<bool>* stop);

  static double Luby(double y, int i);

  SolverOptions options_;
  SolverStats stats_;
  Rng rng_;
  bool ok_ = true;

  std::vector<std::uint32_t> arena_;
  std::uint64_t wasted_words_ = 0;
  std::vector<ClauseRef> clauses_;
  std::vector<ClauseRef> learnts_;

  std::vector<std::vector<Watcher>> watches_;  // indexed by lit code
  // Binary-implication layer: binary_watches_[p.code()] holds every literal
  // q with a clause (~p \/ q) — i.e. the literals implied the moment p is
  // assigned true. The implied literal is stored inline, so binary
  // propagation never dereferences the arena.
  std::vector<std::vector<Lit>> binary_watches_;
  std::uint64_t num_binary_clauses_ = 0;
  Lit binary_conflict_[2] = {kUndefLit, kUndefLit};

  std::vector<LBool> assigns_;
  std::vector<bool> saved_phase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<double> activity_;
  VarOrder order_;

  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;      // next trail index for long-clause watches
  std::size_t qhead_bin_ = 0;  // next trail index for the binary layer

  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  double max_learnts_ = 0.0;
  bool budget_exhausted_ = false;
  std::int64_t simplify_trail_size_ = -1;
  std::vector<Clause>* proof_log_ = nullptr;
  std::vector<Lit> assumptions_;
  bool conflict_under_assumptions_ = false;

  ClauseExchange* exchange_ = nullptr;
  int exchange_participant_ = -1;
  std::vector<Clause> import_buffer_;

  // Scratch for the span AddClause (capacity reused across calls).
  Clause add_scratch_;

  // Scratch for Analyze.
  std::vector<char> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;

  std::vector<bool> model_;
};

}  // namespace satfr::sat
