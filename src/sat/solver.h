// A conflict-driven clause-learning (CDCL) SAT solver.
//
// This is the substrate that stands in for the siege_v4 and MiniSat binaries
// used in the paper (see DESIGN.md §3). The engine implements the standard
// modern architecture: two-watched-literal propagation with blocking
// literals, first-UIP conflict analysis with clause minimization, VSIDS
// variable activities with phase saving, Luby or geometric restarts, a
// tiered (core / tier2 / local) learnt-clause database with LBD-driven
// deletion, arena garbage collection in watch-traversal order, and
// restart-boundary inprocessing (on-trail strengthening + clause
// vivification). DESIGN.md §10 documents the hot-path layout decisions.
//
// Binary clauses get a dedicated implication layer: routing CNFs are
// dominated by 2-literal exclusivity clauses (one per conflicting track
// pair), so 2-literal clauses never enter the arena. Instead each literal
// keeps a flat list of the literals it implies, consulted before the general
// watch lists in Propagate — a whole binary pass touches no clause memory.
// The lists live in a single CSR-style array (offsets + one flat literal
// buffer) compacted at restart boundaries, with small per-literal overflow
// vectors absorbing learnts between compactions. The reason for a binary
// implication is the packed other literal (see kBinaryReasonBit), not a
// clause reference, and binary learnts are permanent (exempt from
// LBD-driven deletion).
//
// Two option presets mirror the paper's two solvers:
//   SolverOptions::SiegeLike()   — tuned for refutation (UNSAT) throughput,
//   SolverOptions::MiniSatLike() — the classic MiniSat 1.14-era defaults.
//
// Solving is cooperative: a Deadline and/or an std::atomic<bool> stop flag
// (used by the portfolio runner) abort the search with SolveResult::kUnknown.
// A solver can additionally be wired to a ClauseExchange (SetClauseExchange):
// it then exports units and low-LBD learnts after every conflict and imports
// pending shared clauses at restart boundaries (ImportClauses); imported
// clauses land in the learnt tier matching their sender-side LBD.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "mc/shim.h"
#include "common/stopwatch.h"
#include "sat/cnf.h"
#include "sat/types.h"

namespace satfr::sat {

class ClauseExchange;

enum class SolveResult { kSat, kUnsat, kUnknown };

const char* ToString(SolveResult result);

struct SolverOptions {
  // VSIDS decay applied after every conflict.
  double var_decay = 0.99;
  // Learnt-clause activity decay.
  double clause_decay = 0.999;
  // Fraction of decisions taken uniformly at random (diversification).
  double random_decision_freq = 0.0;
  // Remember and reuse the last assigned polarity of each variable.
  bool phase_saving = true;
  // Polarity used before a variable has ever been assigned.
  bool default_phase_positive = false;
  // Restart schedule: Luby sequence scaled by restart_base, or geometric
  // with ratio restart_growth starting at restart_base.
  bool luby_restarts = false;
  int restart_base = 100;
  double restart_growth = 1.5;
  // Learnt database: allowed size of the *local* tier starts at
  // learnt_size_factor * #clauses and grows by learnt_size_inc at every
  // reduction. Core and tier2 clauses do not count against the limit.
  double learnt_size_factor = 1.0 / 3.0;
  double learnt_size_inc = 1.15;
  // Clause sharing (only when a ClauseExchange is attached): learnts with
  // LBD <= share_max_lbd are exported; units and binaries always qualify.
  std::uint32_t share_max_lbd = 2;
  // Seed for random decisions / polarities.
  std::uint64_t seed = 91648253;

  // ---- BCP hot-path & database policy (DESIGN.md §10) ----
  // Consult the cached blocking literal before touching clause memory in
  // Propagate. Off only for ablation benchmarks.
  bool use_blocking_literals = true;
  // Periodic arena compaction in watch-traversal order. A collection runs
  // when at least half the arena (and at least gc_min_arena_words words)
  // is dead. Off only for ablation benchmarks.
  bool gc_enabled = true;
  std::uint32_t gc_min_arena_words = 1u << 16;
  // Tiered learnt database: learnts with LBD <= core_lbd_max are kept
  // forever, LBD <= tier2_lbd_max enter tier2 (demoted to local when they
  // go unused between reductions), the rest are local and aggressively
  // recycled. With use_tiers off every learnt is local (the pre-tier
  // activity/LBD policy).
  bool use_tiers = true;
  std::uint32_t core_lbd_max = 2;
  std::uint32_t tier2_lbd_max = 6;
  // Restart-boundary inprocessing: every vivify_interval-th restart, tier2
  // clauses are vivified (re-derived under unit propagation and shortened
  // when the database already implies a subclause) under a propagation
  // budget. Level-0 strengthening (dropping falsified literals / deleting
  // clauses subsumed by the trail) rides on the same flag.
  bool vivify = true;
  int vivify_interval = 8;
  std::int64_t vivify_propagation_budget = 1 << 14;
  // Reference mode: disables all restart-time inprocessing (vivification
  // and on-trail strengthening) so the clause database evolves exactly as
  // the plain CDCL derivation produces it. Differential tests and
  // proof-replay debugging compare against this mode.
  bool deterministic = false;

  // Run CheckInvariants at every restart boundary and abort on a violation.
  // Debug aid for solver changes; off by default (full scans are O(arena)).
  bool debug_check_invariants = false;

  /// Preset approximating MiniSat's classic behaviour.
  static SolverOptions MiniSatLike();
  /// Preset tuned for UNSAT instances (slower decay, geometric restarts,
  /// a pinch of randomness), approximating siege_v4's profile.
  static SolverOptions SiegeLike();
};

struct SolverStats {
  /// Buckets of the learnt-LBD histogram: bucket i counts learnts whose LBD
  /// was exactly i at learning time; the last bucket clamps everything
  /// above. 18 covers the tiered DB's interesting range (core <= 2,
  /// tier2 <= 6) with room to see the tail.
  static constexpr std::size_t kLbdHistogramSize = 18;

  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t binary_propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned = 0;
  std::uint64_t removed = 0;
  std::uint64_t minimized_literals = 0;
  // Watcher entries examined in Propagate, and how many were dismissed by
  // their blocking literal alone (no clause memory touched). The ratio is
  // the direct measure of what the blocker field buys.
  std::uint64_t watch_inspections = 0;
  std::uint64_t blocker_hits = 0;
  std::uint64_t gc_runs = 0;
  // Tier traffic: promotions move a clause towards core when its recomputed
  // LBD improves; demotions move unused tier2 clauses to local.
  std::uint64_t tier_promotions = 0;
  std::uint64_t tier_demotions = 0;
  // Inprocessing: clauses shortened by vivification, literals they lost,
  // and clauses deleted/strengthened against the level-0 trail.
  std::uint64_t clauses_vivified = 0;
  std::uint64_t lits_removed_vivify = 0;
  std::uint64_t clauses_strengthened = 0;
  std::uint64_t exported_clauses = 0;
  std::uint64_t imported_clauses = 0;
  // Imports dropped because a clause with the same literal set was already
  // exported or imported by this solver (identity survives arena GC — the
  // hash covers literals, not clause addresses).
  std::uint64_t import_duplicates = 0;
  // Activation-group machinery (see ReserveActivationVars): groups retired
  // with a permanent negative unit, and learnts withheld from the exchange
  // because they mention an activation variable (meaningless to peers whose
  // NumberingKey only covers the base layout).
  std::uint64_t retired_groups = 0;
  std::uint64_t activation_blocked_exports = 0;
  double solve_seconds = 0.0;
  // LBD distribution of everything learned (one array store per conflict).
  std::uint64_t lbd_histogram[kLbdHistogramSize] = {};
  // Phase-time split of the search: propagation vs. conflict analysis vs.
  // restart-boundary inprocessing (reduce/vivify/rebucket/import). Only
  // accumulated while a SolverObserver is attached — the timing reads cost
  // two clock queries per propagation pass, so the unobserved hot path
  // never pays them.
  double bcp_seconds = 0.0;
  double analyze_seconds = 0.0;
  double inprocess_seconds = 0.0;

  /// Field-wise delta `*this - baseline` (counters subtract, seconds
  /// subtract). The window primitive behind per-record solver stats and
  /// observer samples.
  SolverStats Since(const SolverStats& baseline) const;

  /// Field-wise sum. Merging per-worker stats (cube pool, portfolio) goes
  /// through this so a new counter is added in exactly one place.
  void Accumulate(const SolverStats& other);

  /// Assignments propagated per second of solving (0 before any solve).
  double PropagationsPerSecond() const {
    return solve_seconds > 0.0
               ? static_cast<double>(propagations) / solve_seconds
               : 0.0;
  }
  /// Fraction of watcher inspections resolved by the blocking literal.
  double BlockerHitRate() const {
    return watch_inspections > 0
               ? static_cast<double>(blocker_hits) /
                     static_cast<double>(watch_inspections)
               : 0.0;
  }
};

/// Learnt-database tier sizes at a quiescent point.
struct LearntTierSizes {
  std::size_t core = 0;
  std::size_t tier2 = 0;
  std::size_t local = 0;
};

/// One restart-boundary telemetry sample. `window` is a stats *delta*
/// covering everything since the previous sample (or since the observer was
/// attached), including the phase-second split; the tier sizes are a
/// point-in-time snapshot.
struct SolverRestartSample {
  std::uint64_t restart_index = 0;  // total restarts so far
  bool final_flush = false;         // emitted at the end of a solve call
  SolverStats window;
  LearntTierSizes tiers;
};

/// Restart-boundary observer hook. The solver calls OnRestartSample at
/// every restart boundary plus once when a solve call returns (the partial
/// window since the last restart, final_flush = true). Attaching an
/// observer also turns on phase timing (see SolverStats::bcp_seconds).
/// Callbacks run on the solving thread; implementations must not mutate
/// the solver, with two sanctioned exceptions: reading const state
/// (stats(), TierSizes()) and calling SetObserver(nullptr) to detach
/// mid-solve. Detaching from a callback takes effect immediately — phase
/// timing stops with the current search pass and no further samples are
/// emitted. Because the solver resets the sample baseline *before*
/// invoking the callback, stats() read inside the callback is a consistent
/// cut: it equals the attach-time baseline plus every window delivered so
/// far (including the one being delivered).
class SolverObserver {
 public:
  virtual ~SolverObserver() = default;
  virtual void OnRestartSample(const SolverRestartSample& sample) = 0;
};

class Solver {
 public:
  explicit Solver(SolverOptions options = SolverOptions());

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Allocates a fresh variable.
  Var NewVar();

  /// Grows the variable count to at least `n` (no-op if already larger),
  /// reserving the per-variable arrays up front — the bulk entry point for
  /// streaming clause emission (sat/clause_sink.h).
  void EnsureVars(int n);

  int num_vars() const { return static_cast<int>(level_.size()); }

  /// Adds a clause (simplified against the level-0 assignment). Returns
  /// false if the formula became trivially unsatisfiable.
  bool AddClause(Clause clause);

  /// Span overload: copies from the caller's buffer into reused internal
  /// scratch — no per-clause allocation. The hot path of SolverSink.
  bool AddClause(const Lit* lits, std::size_t n);

  /// Adds every clause of `cnf`, allocating variables as needed.
  /// Returns false if the formula became trivially unsatisfiable.
  bool AddCnf(const Cnf& cnf);

  /// Runs the CDCL search. `deadline` bounds wall-clock time; `stop`, when
  /// non-null, aborts as soon as it becomes true (portfolio cancellation).
  SolveResult Solve(Deadline deadline = Deadline(),
                    const mc::Atomic<bool>* stop = nullptr);

  /// Incremental interface: solves under the given assumption literals.
  /// kUnsat means "unsatisfiable under these assumptions" — unless okay()
  /// has also become false, the solver remains usable and can be re-queried
  /// with different assumptions while keeping everything it has learned.
  SolveResult SolveWithAssumptions(const std::vector<Lit>& assumptions,
                                   Deadline deadline = Deadline(),
                                   const mc::Atomic<bool>* stop = nullptr);

  /// Model of the last kSat answer, indexed by variable.
  const std::vector<bool>& model() const { return model_; }

  /// Value of `l` in the last model.
  bool ModelValue(Lit l) const {
    return model_[static_cast<std::size_t>(l.var())] != l.negated();
  }

  const SolverStats& stats() const { return stats_; }

  /// Attaches a restart-boundary telemetry observer (nullptr detaches).
  /// Attach before solving; the sample baseline is the attach-time stats,
  /// so the first sample's window covers exactly what ran afterwards.
  void SetObserver(SolverObserver* observer) {
    observer_ = observer;
    observer_baseline_ = stats_;
  }

  /// Sizes of the learnt tiers (list sizes; exact at restart boundaries
  /// and between solves, approximate while tier tags are dirty mid-search).
  LearntTierSizes TierSizes() const {
    return LearntTierSizes{learnts_core_.size(), learnts_tier2_.size(),
                           learnts_local_.size()};
  }

  /// False once the clause set has been proven unsatisfiable.
  bool okay() const { return ok_; }

  /// Approximate heap footprint of the clause storage in bytes: arena,
  /// binary-implication layer (CSR + overflow), and watch lists
  /// (capacities, not sizes). Basis for the collector-vs-direct
  /// peak-memory comparison in the benches.
  std::size_t ClauseMemoryBytes() const;

  /// Full consistency scan over the solver's internal state: per-variable
  /// array sizes, trail/decision-level well-formedness, reason soundness
  /// (the implied literal is true, all others false at earlier-or-equal
  /// levels), binary-layer symmetry (every implication has its mirror and
  /// the entry count matches num_binary_clauses_), watch-list <-> arena
  /// agreement (every live clause is watched on exactly its first two
  /// literals, every watcher points at a live clause, and every cached
  /// blocking literal is a literal of its clause — a stale watcher or
  /// blocker after GC relocation fails here), and tier-tag hygiene (a
  /// clause's tier tag is consistent with its stored LBD and with the tier
  /// list holding it). Safe to call at any quiescent point (between
  /// solves, at restart boundaries, from tests). Returns false and fills
  /// `error` on the first violation.
  bool CheckInvariants(std::string* error = nullptr) const;

  /// Attaches a DRUP-style proof log: every clause the solver derives
  /// (learned clauses, strengthened input clauses, vivified clauses, and
  /// the final empty clause on UNSAT) is appended to `log` in derivation
  /// order, so that an UNSAT answer can be re-verified with
  /// VerifyRupRefutation against the original formula. Attach before
  /// adding clauses; pass nullptr to detach. Logging is off by default (it
  /// retains every learned clause).
  void SetProofLog(std::vector<Clause>* log) { proof_log_ = log; }

  /// Connects this solver to a portfolio clause-exchange buffer as the
  /// member registered under `participant`. Once connected, the solver
  /// exports units and learnts with LBD <= options.share_max_lbd after each
  /// conflict and imports pending shared clauses at restart boundaries.
  /// Pass nullptr to disconnect. Clauses imported while a proof log is
  /// attached would break the RUP derivation chain, so imports are
  /// suppressed whenever SetProofLog is active.
  void SetClauseExchange(ClauseExchange* exchange, int participant) {
    exchange_ = exchange;
    exchange_participant_ = participant;
  }

  /// Declares that every variable from the returned id upward is an
  /// *activation* variable: a selector literal guarding a retractable clause
  /// group (per-net groups, width-ladder guards). The split has two effects:
  /// learnts mentioning an activation variable are never exported to a
  /// ClauseExchange (peers share only the base-layout numbering covered by
  /// encode::NumberingKey, so the exchange key stays valid no matter how
  /// many activation variables a session allocates later), and
  /// RetireActivationGroup becomes available for them. `hint` variables are
  /// reserved up front (more may be allocated later via EnsureVars/NewVar —
  /// they are activation variables too). Returns the first activation
  /// variable id; idempotent (later calls return the same id).
  Var ReserveActivationVars(int hint);

  /// First activation variable, or -1 before ReserveActivationVars.
  Var activation_vars_begin() const { return activation_begin_; }

  bool IsActivationVar(Var v) const {
    return activation_begin_ >= 0 && v >= activation_begin_;
  }

  /// Permanently retires the clause group guarded by activation variable
  /// `activation`: adds the unit clause ~activation, so every group clause
  /// (~activation \/ C) is satisfied at level 0 and reclaimed by the next
  /// RemoveSatisfied sweep — together with every learnt that contains
  /// ~activation (i.e. whose derivation leaned on the group under the
  /// activation assumption). Call between solves only. Returns okay().
  bool RetireActivationGroup(Var activation);

  /// Imports every pending shared clause from the attached exchange into
  /// the clause database (learnt tier chosen from the sender's LBD).
  /// Clauses whose literal set this solver already exported or imported
  /// are dropped — the literal hash, unlike a clause reference, survives
  /// arena GC, so a clause cannot round-trip back in under a new identity.
  /// Called automatically at restart boundaries; safe to call between
  /// solves. Returns the number of clauses taken from the exchange
  /// (okay() turns false if an import refutes the formula).
  std::size_t ImportClauses();

 private:
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoClause = 0xFFFFFFFFu;
  // Sentinel returned by Propagate when the conflicting clause lives in the
  // binary layer (its two literals are in binary_conflict_, not the arena).
  static constexpr ClauseRef kBinaryConflict = 0xFFFFFFFEu;
  // Reasons with this bit set are packed binary reasons: the low 31 bits
  // are the code of the *other* (false) literal of the implying binary
  // clause. Arena references stay below the bit (checked in AllocClause).
  static constexpr ClauseRef kBinaryReasonBit = 0x80000000u;

  static ClauseRef BinaryReason(Lit other) {
    return kBinaryReasonBit | static_cast<ClauseRef>(other.code());
  }
  static bool IsBinaryReason(ClauseRef r) {
    return r != kNoClause && (r & kBinaryReasonBit) != 0;
  }
  static Lit BinaryReasonLit(ClauseRef r) {
    const int code = static_cast<int>(r & ~kBinaryReasonBit);
    return Lit::Make(code >> 1, (code & 1) != 0);
  }

  // Learnt tiers, CaDiCaL-style. The tier tag in the clause header is
  // authoritative; the three cref lists are re-bucketed from the tags at
  // every reduction/restart boundary (RebucketLearnts), so a promotion is
  // a 2-bit header write in the hot path, never a list splice.
  enum Tier : std::uint32_t { kTierCore = 0, kTierTwo = 1, kTierLocal = 2 };

  // Arena clause layout (32-bit words):
  //   word0: size << 6 | used(32) | tier(8|16) | relocated(4) | deleted(2)
  //          | learnt(1)
  //   [relocated only] word1: forwarding reference into the new arena
  //   [learnt only] word1: activity (float bits), word2: LBD
  //   then `size` literal codes.
  struct ClauseView {
    std::uint32_t* header;

    std::uint32_t size() const { return *header >> 6; }
    bool learnt() const { return (*header & 1u) != 0; }
    bool deleted() const { return (*header & 2u) != 0; }
    void MarkDeleted() { *header |= 2u; }
    bool relocated() const { return (*header & 4u) != 0; }
    std::uint32_t tier() const { return (*header >> 3) & 3u; }
    void SetTier(std::uint32_t tier) const {
      *header = (*header & ~(3u << 3)) | (tier << 3);
    }
    bool used() const { return (*header & 32u) != 0; }
    void SetUsed() const { *header |= 32u; }
    void ClearUsed() const { *header &= ~32u; }
    void SetSize(std::uint32_t n) const {
      *header = (*header & 63u) | (n << 6);
    }
    // Forwarding pointer left behind by GC (valid once relocated()).
    std::uint32_t ForwardRef() const { return header[1]; }
    void MarkRelocated(std::uint32_t new_ref) const {
      *header |= 4u;
      header[1] = new_ref;
    }
    Lit* lits() const {
      return reinterpret_cast<Lit*>(header + (learnt() ? 3 : 1));
    }
    Lit& operator[](std::uint32_t i) const { return lits()[i]; }
    float Activity() const;
    void SetActivity(float activity) const;
    std::uint32_t& Lbd() const { return header[2]; }
    std::uint32_t Words() const { return (learnt() ? 3u : 1u) + size(); }
  };

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  // Max-heap over variable activities.
  // Max-heap over variable activities. Each node carries its sort key next
  // to the variable id, so sifting compares adjacent memory instead of
  // gathering from the activity array (a cache miss per comparison on big
  // heaps). Keys are refreshed from the activity array on Insert/Update
  // and rescaled in place when the activities are (rescaling preserves
  // order, so no re-heapify).
  class VarOrder {
   public:
    explicit VarOrder(const std::vector<double>& activity)
        : activity_(activity) {}
    bool Empty() const { return heap_.empty(); }
    bool Contains(Var v) const;
    void Insert(Var v);
    void Update(Var v);  // activity of v increased
    void RescaleKeys(double factor);
    Var RemoveMax();
    void Grow(int num_vars);

   private:
    struct Node {
      double key;
      Var v;
    };
    static bool Before(const Node& a, const Node& b) { return a.key > b.key; }
    void SiftUp(std::size_t i);
    void SiftDown(std::size_t i);
    const std::vector<double>& activity_;
    std::vector<Node> heap_;
    std::vector<int> position_;  // var -> heap index or -1
  };

  ClauseView View(ClauseRef cref) {
    return ClauseView{arena_.data() + cref};
  }

  // Values are stored per literal code (both polarities written on
  // enqueue) so the propagation loops resolve a literal with a single
  // indexed load; the variable value is the positive literal's entry.
  LBool Value(Var v) const {
    return lit_value_[static_cast<std::size_t>(v) << 1];
  }
  LBool Value(Lit l) const {
    return lit_value_[static_cast<std::size_t>(l.code())];
  }
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  int LevelOf(Var v) const { return level_[static_cast<std::size_t>(v)]; }

  std::uint32_t TierForLbd(std::uint32_t lbd) const {
    if (!options_.use_tiers) return kTierLocal;
    if (lbd <= options_.core_lbd_max) return kTierCore;
    if (lbd <= options_.tier2_lbd_max) return kTierTwo;
    return kTierLocal;
  }
  std::vector<ClauseRef>& TierList(std::uint32_t tier) {
    return tier == kTierCore   ? learnts_core_
           : tier == kTierTwo ? learnts_tier2_
                               : learnts_local_;
  }

  ClauseRef AllocClause(const Clause& lits, bool learnt);
  void FreeClause(ClauseRef cref);
  void AttachClause(ClauseRef cref);
  void DetachClause(ClauseRef cref);
  void AttachBinary(Lit a, Lit b);
  bool Locked(ClauseRef cref);
  void RemoveClause(ClauseRef cref);
  // Registers a freshly allocated learnt in its tier (tag + list + stats).
  void RegisterLearnt(ClauseRef cref, std::uint32_t lbd);
  // Adds one clause collected from the exchange; learnt-tier placement by
  // the sender's LBD. Returns false if the formula became unsatisfiable.
  bool AddImportedClause(const Clause& clause, std::uint32_t lbd);

  void UncheckedEnqueue(Lit p, ClauseRef from);
  void UnassignForBacktrack(Lit p);
  ClauseRef Propagate();
  template <bool UseBlockers>
  ClauseRef PropagateImpl();
  void Analyze(ClauseRef confl, Clause& out_learnt, int& out_btlevel,
               std::uint32_t& out_lbd);
  bool LitRedundant(Lit p, std::uint32_t abstract_levels);
  std::uint32_t AbstractLevel(Var v) const {
    return 1u << (static_cast<std::uint32_t>(LevelOf(v)) & 31u);
  }
  void Backtrack(int level);
  Lit PickBranchLit();
  void NewDecisionLevel() {
    trail_lim_.push_back(static_cast<int>(trail_.size()));
  }

  void BumpVarActivity(Var v);
  void DecayVarActivity() { var_inc_ /= options_.var_decay; }
  void BumpClauseActivity(ClauseView c);
  void DecayClauseActivity() { clause_inc_ /= options_.clause_decay; }
  // Recomputes the LBD of a learnt clause touched by conflict analysis and
  // promotes it towards core when the value improved (tag-only; the list
  // move happens at the next RebucketLearnts).
  void UpdateLearntOnUse(ClauseView c);

  void ReduceDb();
  void RebucketLearnts();
  void RemoveSatisfied(std::vector<ClauseRef>& list);
  // Rebuilds the binary CSR, folding in overflow entries; when
  // drop_satisfied is set (level 0 only), entries of clauses satisfied by
  // the trail are dropped on the way.
  void CompactBinaryLayer(bool drop_satisfied);
  void SimplifyAtLevelZero();
  // Vivifies tier2 clauses under the propagation budget; restart-boundary
  // inprocessing (level 0 only).
  void VivifyRound();
  // Vivifies one clause; returns false if the formula became unsat.
  bool VivifyClause(ClauseRef cref);
  void CollectGarbageIfNeeded();
  void CollectGarbage();
  std::uint32_t ComputeLbd(const Lit* lits, std::size_t size);
  std::uint32_t ComputeLbd(const Clause& lits) {
    return ComputeLbd(lits.data(), lits.size());
  }
  void ExportLearnt(const Clause& learnt, std::uint32_t lbd);

  // Returns kTrue (model found), kFalse (UNSAT), or kUndef (restart or
  // budget exhausted; check budget_exhausted_).
  LBool Search(std::int64_t conflict_budget, const Deadline& deadline,
               const mc::Atomic<bool>* stop);

  static double Luby(double y, int i);

  SolverOptions options_;
  SolverStats stats_;
  Rng rng_;
  bool ok_ = true;

  std::vector<std::uint32_t> arena_;
  std::uint64_t wasted_words_ = 0;
  std::vector<ClauseRef> clauses_;
  // Learnt tiers (DESIGN.md §10): core is permanent, tier2 is demoted on
  // disuse, local is halved at every reduction.
  std::vector<ClauseRef> learnts_core_;
  std::vector<ClauseRef> learnts_tier2_;
  std::vector<ClauseRef> learnts_local_;
  // Set when a promotion happened since the last rebucket, so quiescent
  // points know the tier lists may disagree with the header tags.
  bool tiers_dirty_ = false;

  std::vector<std::vector<Watcher>> watches_;  // indexed by lit code
  // Binary-implication layer, CSR form: the literals implied by literal
  // code c are bin_flat_[bin_offsets_[c] .. bin_offsets_[c+1]) plus the
  // overflow list bin_overflow_[c] (entries added since the last
  // compaction). The implied literal is stored inline, so binary
  // propagation never dereferences the arena; the flat buffer keeps the
  // whole frozen layer contiguous.
  std::vector<std::uint32_t> bin_offsets_;
  std::vector<Lit> bin_flat_;
  std::vector<std::vector<Lit>> bin_overflow_;
  // Dense per-code flag mirroring !bin_overflow_[code].empty(), so the
  // propagation loop skips the scattered vector headers of the (usually
  // empty) overflow lists.
  std::vector<std::uint8_t> bin_overflow_nonempty_;
  std::uint64_t bin_overflow_entries_ = 0;
  std::uint64_t num_binary_clauses_ = 0;
  Lit binary_conflict_[2] = {kUndefLit, kUndefLit};

  std::vector<LBool> lit_value_;  // indexed by lit code, both polarities
  std::vector<std::uint8_t> saved_phase_;  // byte per var: bit ops off the
                                           // backtrack path
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<double> activity_;
  VarOrder order_;

  // Fixed-capacity assignment trail. Capacity is one slot per variable
  // (grown in NewVar/EnsureVars before any search), so the hot-path push
  // is a single store with no growth check, and resize is a plain size
  // write (std::vector::resize would value-initialize the tail, clobbering
  // literals the propagation loop wrote through data()).
  class Trail {
   public:
    void Reserve(std::size_t cap) {
      if (cap <= cap_) return;
      Lit* grown = new Lit[cap];
      for (std::size_t i = 0; i < size_; ++i) grown[i] = data_[i];
      delete[] data_;
      data_ = grown;
      cap_ = cap;
    }
    ~Trail() { delete[] data_; }
    Trail() = default;
    Trail(const Trail&) = delete;
    Trail& operator=(const Trail&) = delete;
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    Lit operator[](std::size_t i) const { return data_[i]; }
    Lit* data() { return data_; }
    const Lit* data() const { return data_; }
    const Lit* begin() const { return data_; }
    const Lit* end() const { return data_ + size_; }
    void push_back(Lit l) { data_[size_++] = l; }
    void resize(std::size_t n) { size_ = n; }
    // After writes through data() past size() (the propagation loop keeps
    // the live size in a register), publish the new length.
    void SetSize(std::size_t n) { size_ = n; }

   private:
    Lit* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
  };

  Trail trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;      // next trail index for long-clause watches
  std::size_t qhead_bin_ = 0;  // next trail index for the binary layer

  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  double max_learnts_ = 0.0;
  bool budget_exhausted_ = false;
  std::int64_t simplify_trail_size_ = -1;
  std::size_t vivify_cursor_ = 0;
  std::vector<Clause>* proof_log_ = nullptr;
  std::vector<Lit> assumptions_;
  bool conflict_under_assumptions_ = false;
  // First activation variable (-1 = none declared); see
  // ReserveActivationVars.
  Var activation_begin_ = -1;

  // Emits one observer sample: window = stats_ since the last sample.
  void EmitObserverSample(bool final_flush);

  SolverObserver* observer_ = nullptr;
  SolverStats observer_baseline_;

  ClauseExchange* exchange_ = nullptr;
  int exchange_participant_ = -1;
  // Literal hashes of every clause this solver has exported or imported;
  // the import path drops clauses whose hash is present (see
  // ImportClauses).
  std::unordered_set<std::uint64_t> exchange_seen_;

  // Scratch for the span AddClause (capacity reused across calls).
  Clause add_scratch_;
  // Scratch for VivifyClause (original literals / kept literals).
  Clause vivify_lits_;
  Clause vivify_kept_;

  // Scratch for Analyze.
  std::vector<char> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;

  std::vector<bool> model_;
};

}  // namespace satfr::sat
