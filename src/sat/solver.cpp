#include "sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "sat/clause_exchange.h"

namespace satfr::sat {

const char* ToString(SolveResult result) {
  switch (result) {
    case SolveResult::kSat:
      return "SAT";
    case SolveResult::kUnsat:
      return "UNSAT";
    case SolveResult::kUnknown:
      return "UNKNOWN";
  }
  return "?";
}

SolverOptions SolverOptions::MiniSatLike() {
  SolverOptions opts;
  opts.var_decay = 0.95;
  opts.clause_decay = 0.999;
  opts.random_decision_freq = 0.0;
  opts.luby_restarts = true;
  opts.restart_base = 100;
  return opts;
}

SolverOptions SolverOptions::SiegeLike() {
  SolverOptions opts;
  opts.var_decay = 0.99;
  opts.clause_decay = 0.999;
  opts.random_decision_freq = 0.02;
  opts.luby_restarts = false;
  opts.restart_base = 512;
  opts.restart_growth = 1.4;
  opts.learnt_size_factor = 0.5;
  return opts;
}

float Solver::ClauseView::Activity() const {
  float value;
  std::memcpy(&value, header + 1, sizeof(value));
  return value;
}

void Solver::ClauseView::SetActivity(float activity) const {
  std::memcpy(header + 1, &activity, sizeof(activity));
}

// ---------------------------------------------------------------- VarOrder

bool Solver::VarOrder::Contains(Var v) const {
  return static_cast<std::size_t>(v) < position_.size() &&
         position_[static_cast<std::size_t>(v)] >= 0;
}

void Solver::VarOrder::Grow(int num_vars) {
  position_.resize(static_cast<std::size_t>(num_vars), -1);
}

void Solver::VarOrder::Insert(Var v) {
  if (Contains(v)) return;
  position_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  SiftUp(heap_.size() - 1);
}

void Solver::VarOrder::Update(Var v) {
  if (!Contains(v)) return;
  SiftUp(static_cast<std::size_t>(position_[static_cast<std::size_t>(v)]));
}

Var Solver::VarOrder::RemoveMax() {
  assert(!heap_.empty());
  const Var top = heap_[0];
  heap_[0] = heap_.back();
  position_[static_cast<std::size_t>(heap_[0])] = 0;
  heap_.pop_back();
  position_[static_cast<std::size_t>(top)] = -1;
  if (!heap_.empty()) SiftDown(0);
  return top;
}

void Solver::VarOrder::SiftUp(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Before(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    position_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
    i = parent;
  }
  heap_[i] = v;
  position_[static_cast<std::size_t>(v)] = static_cast<int>(i);
}

void Solver::VarOrder::SiftDown(std::size_t i) {
  const Var v = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && Before(heap_[child + 1], heap_[child])) ++child;
    if (!Before(heap_[child], v)) break;
    heap_[i] = heap_[child];
    position_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
    i = child;
  }
  heap_[i] = v;
  position_[static_cast<std::size_t>(v)] = static_cast<int>(i);
}

// ------------------------------------------------------------------ Solver

Solver::Solver(SolverOptions options)
    : options_(options), rng_(options.seed), order_(activity_) {}

Var Solver::NewVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  saved_phase_.push_back(options_.default_phase_positive);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  binary_watches_.emplace_back();
  binary_watches_.emplace_back();
  order_.Grow(num_vars());
  order_.Insert(v);
  return v;
}

void Solver::EnsureVars(int n) {
  if (n <= num_vars()) return;
  const std::size_t count = static_cast<std::size_t>(n);
  assigns_.reserve(count);
  saved_phase_.reserve(count);
  level_.reserve(count);
  reason_.reserve(count);
  activity_.reserve(count);
  seen_.reserve(count);
  watches_.reserve(2 * count);
  binary_watches_.reserve(2 * count);
  while (num_vars() < n) NewVar();
}

Solver::ClauseRef Solver::AllocClause(const Clause& lits, bool learnt) {
  const std::uint32_t extra = learnt ? 3u : 1u;
  const ClauseRef cref = static_cast<ClauseRef>(arena_.size());
  assert(cref < kBinaryReasonBit && "arena exceeds the reason tag space");
  arena_.resize(arena_.size() + extra + lits.size());
  ClauseView c = View(cref);
  *c.header = (static_cast<std::uint32_t>(lits.size()) << 3) | (learnt ? 1u : 0u);
  if (learnt) {
    c.SetActivity(0.0f);
    c.Lbd() = static_cast<std::uint32_t>(lits.size());
  }
  for (std::size_t i = 0; i < lits.size(); ++i) {
    c[static_cast<std::uint32_t>(i)] = lits[i];
  }
  return cref;
}

void Solver::FreeClause(ClauseRef cref) {
  ClauseView c = View(cref);
  wasted_words_ += c.Words();
  c.MarkDeleted();
}

void Solver::AttachClause(ClauseRef cref) {
  ClauseView c = View(cref);
  assert(c.size() >= 3);
  watches_[static_cast<std::size_t>((~c[0]).code())].push_back(
      Watcher{cref, c[1]});
  watches_[static_cast<std::size_t>((~c[1]).code())].push_back(
      Watcher{cref, c[0]});
}

void Solver::DetachClause(ClauseRef cref) {
  ClauseView c = View(cref);
  for (int w = 0; w < 2; ++w) {
    auto& list = watches_[static_cast<std::size_t>((~c[w]).code())];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].cref == cref) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

void Solver::AttachBinary(Lit a, Lit b) {
  binary_watches_[static_cast<std::size_t>((~a).code())].push_back(b);
  binary_watches_[static_cast<std::size_t>((~b).code())].push_back(a);
  ++num_binary_clauses_;
}

bool Solver::Locked(ClauseRef cref) {
  ClauseView c = View(cref);
  const Var v = c[0].var();
  return Value(c[0]) == LBool::kTrue &&
         reason_[static_cast<std::size_t>(v)] == cref;
}

void Solver::RemoveClause(ClauseRef cref) {
  DetachClause(cref);
  if (Locked(cref)) {
    ClauseView c = View(cref);
    reason_[static_cast<std::size_t>(c[0].var())] = kNoClause;
  }
  FreeClause(cref);
}

bool Solver::AddClause(Clause clause) {
  return AddClause(clause.data(), clause.size());
}

bool Solver::AddClause(const Lit* lits, std::size_t n) {
  assert(DecisionLevel() == 0);
  if (!ok_) return false;
  add_scratch_.assign(lits, lits + n);
  for (const Lit l : add_scratch_) {
    assert(l.IsValid() && l.var() < num_vars());
    (void)l;
  }
  // Simplify in place against the level-0 assignment; drop duplicates and
  // tautologies. The scratch buffer keeps its capacity across calls, so
  // streaming emission (SolverSink) adds clauses without heap traffic.
  std::sort(add_scratch_.begin(), add_scratch_.end());
  std::size_t out = 0;
  Lit previous = kUndefLit;
  for (std::size_t i = 0; i < add_scratch_.size(); ++i) {
    const Lit l = add_scratch_[i];
    const LBool value = Value(l);
    if (value == LBool::kTrue || l == ~previous) return true;  // satisfied
    if (value != LBool::kFalse && l != previous) {
      add_scratch_[out++] = l;
      previous = l;
    }
  }
  const bool strengthened = out < add_scratch_.size();
  add_scratch_.resize(out);
  // Strengthened clauses are RUP consequences of the database; log them so
  // the proof checker sees exactly what the solver will propagate on.
  if (proof_log_ && strengthened) {
    proof_log_->push_back(add_scratch_);
  }
  if (add_scratch_.empty()) {
    ok_ = false;
    return false;
  }
  if (add_scratch_.size() == 1) {
    UncheckedEnqueue(add_scratch_[0], kNoClause);
    ok_ = (Propagate() == kNoClause);
    if (!ok_ && proof_log_) proof_log_->push_back(Clause{});
    return ok_;
  }
  if (add_scratch_.size() == 2) {
    AttachBinary(add_scratch_[0], add_scratch_[1]);
    return true;
  }
  const ClauseRef cref = AllocClause(add_scratch_, /*learnt=*/false);
  clauses_.push_back(cref);
  AttachClause(cref);
  return true;
}

bool Solver::AddCnf(const Cnf& cnf) {
  EnsureVars(cnf.num_vars());
  for (const Clause& clause : cnf.clauses()) {
    if (!AddClause(clause)) return false;
  }
  return true;
}

std::size_t Solver::ClauseMemoryBytes() const {
  std::size_t bytes = arena_.capacity() * sizeof(std::uint32_t);
  for (const auto& list : binary_watches_) {
    bytes += list.capacity() * sizeof(Lit);
  }
  for (const auto& list : watches_) {
    bytes += list.capacity() * sizeof(Watcher);
  }
  return bytes;
}

void Solver::UncheckedEnqueue(Lit p, ClauseRef from) {
  const std::size_t v = static_cast<std::size_t>(p.var());
  assert(assigns_[v] == LBool::kUndef);
  assigns_[v] = p.negated() ? LBool::kFalse : LBool::kTrue;
  level_[v] = DecisionLevel();
  reason_[v] = from;
  trail_.push_back(p);
}

Solver::ClauseRef Solver::Propagate() {
  ClauseRef conflict = kNoClause;
  while (qhead_ < trail_.size()) {
    // Binary fast path, drained to fixpoint before any long clause is
    // touched: the implied literal is stored inline, so the whole pass
    // dereferences no clause memory and never edits a watch list, and a
    // conflict reachable through binaries alone skips the long scans of
    // every literal enqueued along the way.
    while (qhead_bin_ < trail_.size()) {
      const Lit bp = trail_[qhead_bin_++];
      ++stats_.propagations;
      const std::vector<Lit>& implied =
          binary_watches_[static_cast<std::size_t>(bp.code())];
      for (const Lit q : implied) {
        const LBool value = Value(q);
        if (value == LBool::kTrue) continue;
        if (value == LBool::kFalse) {
          binary_conflict_[0] = q;
          binary_conflict_[1] = ~bp;
          qhead_bin_ = qhead_ = trail_.size();
          return kBinaryConflict;
        }
        ++stats_.binary_propagations;
        UncheckedEnqueue(q, BinaryReason(~bp));
      }
    }
    // Every literal passes through the binary queue first, so the
    // propagation counter above has already seen p.
    const Lit p = trail_[qhead_++];
    auto& watch_list = watches_[static_cast<std::size_t>(p.code())];
    std::size_t keep = 0;
    std::size_t i = 0;
    const Lit false_lit = ~p;
    for (; i < watch_list.size(); ++i) {
      const Watcher w = watch_list[i];
      if (Value(w.blocker) == LBool::kTrue) {
        watch_list[keep++] = w;
        continue;
      }
      ClauseView c = View(w.cref);
      if (c[0] == false_lit) {
        c[0] = c[1];
        c[1] = false_lit;
      }
      assert(c[1] == false_lit);
      const Lit first = c[0];
      if (first != w.blocker && Value(first) == LBool::kTrue) {
        watch_list[keep++] = Watcher{w.cref, first};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      const std::uint32_t size = c.size();
      for (std::uint32_t k = 2; k < size; ++k) {
        if (Value(c[k]) != LBool::kFalse) {
          c[1] = c[k];
          c[k] = false_lit;
          watches_[static_cast<std::size_t>((~c[1]).code())].push_back(
              Watcher{w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      watch_list[keep++] = Watcher{w.cref, first};
      if (Value(first) == LBool::kFalse) {
        conflict = w.cref;
        qhead_bin_ = qhead_ = trail_.size();
        for (++i; i < watch_list.size(); ++i) {
          watch_list[keep++] = watch_list[i];
        }
        break;
      }
      UncheckedEnqueue(first, w.cref);
    }
    watch_list.resize(keep);
    if (conflict != kNoClause) break;
  }
  return conflict;
}

void Solver::BumpVarActivity(Var v) {
  if ((activity_[static_cast<std::size_t>(v)] += var_inc_) > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.Update(v);
}

void Solver::BumpClauseActivity(ClauseView c) {
  const float bumped = c.Activity() + static_cast<float>(clause_inc_);
  c.SetActivity(bumped);
  if (bumped > 1e20f) {
    for (const ClauseRef cref : learnts_) {
      ClauseView lc = View(cref);
      if (!lc.deleted()) lc.SetActivity(lc.Activity() * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::Analyze(ClauseRef confl, Clause& out_learnt, int& out_btlevel,
                     std::uint32_t& out_lbd) {
  int path_count = 0;
  Lit p = kUndefLit;
  out_learnt.clear();
  out_learnt.push_back(kUndefLit);  // placeholder for the asserting literal
  int index = static_cast<int>(trail_.size()) - 1;

  do {
    assert(confl != kNoClause);
    // Fetch the literals of the conflict/reason. Binary reasons are packed
    // literals (the implied literal is p itself); the binary conflict's two
    // literals live in binary_conflict_. Neither touches the arena.
    Lit bin_lits[2];
    const Lit* lits;
    std::uint32_t size;
    if (confl == kBinaryConflict) {
      bin_lits[0] = binary_conflict_[0];
      bin_lits[1] = binary_conflict_[1];
      lits = bin_lits;
      size = 2;
    } else if (IsBinaryReason(confl)) {
      bin_lits[0] = p;
      bin_lits[1] = BinaryReasonLit(confl);
      lits = bin_lits;
      size = 2;
    } else {
      ClauseView c = View(confl);
      if (c.learnt()) BumpClauseActivity(c);
      lits = c.lits();
      size = c.size();
    }
    for (std::uint32_t j = (p == kUndefLit) ? 0 : 1; j < size; ++j) {
      const Lit q = lits[j];
      const std::size_t v = static_cast<std::size_t>(q.var());
      if (!seen_[v] && LevelOf(q.var()) > 0) {
        BumpVarActivity(q.var());
        seen_[v] = 1;
        if (LevelOf(q.var()) >= DecisionLevel()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    // Select the next implication to expand.
    while (!seen_[static_cast<std::size_t>(trail_[static_cast<std::size_t>(
        index--)].var())]) {
    }
    p = trail_[static_cast<std::size_t>(index + 1)];
    confl = reason_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest.
  analyze_toclear_ = out_learnt;
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    abstract_levels |= AbstractLevel(out_learnt[i].var());
  }
  std::size_t kept = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    const Lit l = out_learnt[i];
    if (reason_[static_cast<std::size_t>(l.var())] == kNoClause ||
        !LitRedundant(l, abstract_levels)) {
      out_learnt[kept++] = l;
    }
  }
  stats_.minimized_literals += out_learnt.size() - kept;
  out_learnt.resize(kept);

  // Find the backtrack level (highest level below the current one).
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (LevelOf(out_learnt[i].var()) > LevelOf(out_learnt[max_i].var())) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = LevelOf(out_learnt[1].var());
  }

  out_lbd = ComputeLbd(out_learnt);

  for (const Lit l : analyze_toclear_) {
    seen_[static_cast<std::size_t>(l.var())] = 0;
  }
}

bool Solver::LitRedundant(Lit p, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const std::size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit l = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef cref = reason_[static_cast<std::size_t>(l.var())];
    assert(cref != kNoClause);
    // The literals of the reason besides the implied one.
    Lit bin_other;
    const Lit* others;
    std::uint32_t count;
    if (IsBinaryReason(cref)) {
      bin_other = BinaryReasonLit(cref);
      others = &bin_other;
      count = 1;
    } else {
      ClauseView c = View(cref);
      others = c.lits() + 1;
      count = c.size() - 1;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      const Lit q = others[i];
      const std::size_t v = static_cast<std::size_t>(q.var());
      if (!seen_[v] && LevelOf(q.var()) > 0) {
        if (reason_[v] != kNoClause &&
            (AbstractLevel(q.var()) & abstract_levels) != 0) {
          seen_[v] = 1;
          analyze_stack_.push_back(q);
          analyze_toclear_.push_back(q);
        } else {
          for (std::size_t j = top; j < analyze_toclear_.size(); ++j) {
            seen_[static_cast<std::size_t>(analyze_toclear_[j].var())] = 0;
          }
          analyze_toclear_.resize(top);
          return false;
        }
      }
    }
  }
  return true;
}

std::uint32_t Solver::ComputeLbd(const Clause& lits) {
  // Number of distinct decision levels in the clause (Glucose's metric).
  static thread_local std::vector<int> seen_levels;
  std::uint32_t lbd = 0;
  for (const Lit l : lits) {
    const int lvl = LevelOf(l.var());
    if (static_cast<std::size_t>(lvl) >= seen_levels.size()) {
      seen_levels.resize(static_cast<std::size_t>(lvl) + 1, 0);
    }
    if (seen_levels[static_cast<std::size_t>(lvl)] == 0) {
      seen_levels[static_cast<std::size_t>(lvl)] = 1;
      ++lbd;
    }
  }
  for (const Lit l : lits) {
    seen_levels[static_cast<std::size_t>(LevelOf(l.var()))] = 0;
  }
  return lbd;
}

void Solver::Backtrack(int target_level) {
  if (DecisionLevel() <= target_level) return;
  const int boundary = trail_lim_[static_cast<std::size_t>(target_level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= boundary; --i) {
    const Lit p = trail_[static_cast<std::size_t>(i)];
    const std::size_t v = static_cast<std::size_t>(p.var());
    assigns_[v] = LBool::kUndef;
    if (options_.phase_saving) {
      saved_phase_[v] = !p.negated();
    }
    if (!order_.Contains(p.var())) order_.Insert(p.var());
  }
  qhead_ = static_cast<std::size_t>(boundary);
  qhead_bin_ = static_cast<std::size_t>(boundary);
  trail_.resize(static_cast<std::size_t>(boundary));
  trail_lim_.resize(static_cast<std::size_t>(target_level));
}

Lit Solver::PickBranchLit() {
  // Occasional random decision for diversification.
  if (options_.random_decision_freq > 0.0 &&
      rng_.NextBool(options_.random_decision_freq) && !order_.Empty()) {
    const Var v = static_cast<Var>(rng_.NextBelow(
        static_cast<std::uint64_t>(num_vars())));
    if (Value(v) == LBool::kUndef) {
      return Lit::Make(v, !saved_phase_[static_cast<std::size_t>(v)]);
    }
  }
  while (!order_.Empty()) {
    const Var v = order_.RemoveMax();
    if (Value(v) == LBool::kUndef) {
      return Lit::Make(v, !saved_phase_[static_cast<std::size_t>(v)]);
    }
  }
  return kUndefLit;
}

void Solver::RemoveSatisfied(std::vector<ClauseRef>& list) {
  std::size_t keep = 0;
  for (const ClauseRef cref : list) {
    ClauseView c = View(cref);
    bool satisfied = false;
    for (std::uint32_t i = 0; i < c.size(); ++i) {
      if (Value(c[i]) == LBool::kTrue) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) {
      RemoveClause(cref);
      ++stats_.removed;
    } else {
      list[keep++] = cref;
    }
  }
  list.resize(keep);
}

void Solver::RemoveSatisfiedBinaries() {
  // The list at code(p) is consulted when p is assigned true and holds the
  // q of every clause (~p \/ q). Such a clause is dead at level 0 once p is
  // false (~p satisfied) or q is true; each clause occupies one entry in
  // each of its two lists, so both entries vanish under the same test.
  std::uint64_t removed_entries = 0;
  for (std::size_t code = 0; code < binary_watches_.size(); ++code) {
    auto& list = binary_watches_[code];
    if (list.empty()) continue;
    const Lit p = Lit::Make(static_cast<Var>(code >> 1), (code & 1) != 0);
    if (Value(p) == LBool::kFalse) {
      removed_entries += list.size();
      list.clear();
      continue;
    }
    std::size_t keep = 0;
    for (const Lit q : list) {
      if (Value(q) != LBool::kTrue) list[keep++] = q;
    }
    removed_entries += list.size() - keep;
    list.resize(keep);
  }
  const std::uint64_t removed_clauses = removed_entries / 2;
  num_binary_clauses_ -= removed_clauses;
  stats_.removed += removed_clauses;
}

void Solver::SimplifyAtLevelZero() {
  assert(DecisionLevel() == 0);
  if (!ok_) return;
  // Only worth redoing once new top-level facts have arrived.
  if (static_cast<std::int64_t>(trail_.size()) == simplify_trail_size_) {
    return;
  }
  simplify_trail_size_ = static_cast<std::int64_t>(trail_.size());
  RemoveSatisfied(learnts_);
  RemoveSatisfied(clauses_);
  RemoveSatisfiedBinaries();
  CollectGarbageIfNeeded();
}

void Solver::ReduceDb() {
  // Order learnts worst-first: high LBD, then low activity. Binary learnts
  // never reach the arena (they live in the implication layer and are kept
  // forever), so every candidate here has >= 3 literals.
  std::vector<ClauseRef> candidates;
  candidates.reserve(learnts_.size());
  for (const ClauseRef cref : learnts_) {
    ClauseView c = View(cref);
    if (c.Lbd() > 2 && !Locked(cref)) {
      candidates.push_back(cref);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [this](ClauseRef a, ClauseRef b) {
              ClauseView ca = View(a);
              ClauseView cb = View(b);
              if (ca.Lbd() != cb.Lbd()) return ca.Lbd() > cb.Lbd();
              return ca.Activity() < cb.Activity();
            });
  const std::size_t to_remove = candidates.size() / 2;
  for (std::size_t i = 0; i < to_remove; ++i) {
    RemoveClause(candidates[i]);
    ++stats_.removed;
  }
  // Compact the learnt list (deleted clauses have their flag set).
  std::size_t keep = 0;
  for (const ClauseRef cref : learnts_) {
    if (!View(cref).deleted()) learnts_[keep++] = cref;
  }
  learnts_.resize(keep);
  max_learnts_ *= options_.learnt_size_inc;
  CollectGarbageIfNeeded();
}

void Solver::CollectGarbageIfNeeded() {
  if (arena_.empty() || wasted_words_ * 2 < arena_.size() ||
      arena_.size() < (1u << 16)) {
    return;
  }
  ++stats_.gc_runs;
  std::vector<std::uint32_t> new_arena;
  new_arena.reserve(arena_.size() - wasted_words_);
  auto relocate = [&](ClauseRef old_ref) -> ClauseRef {
    ClauseView c = ClauseView{arena_.data() + old_ref};
    assert(!c.deleted());
    const ClauseRef new_ref = static_cast<ClauseRef>(new_arena.size());
    const std::uint32_t words = c.Words();
    new_arena.insert(new_arena.end(), c.header, c.header + words);
    // Leave a forwarding pointer in the old header.
    *c.header = (new_ref << 3) | 4u;
    return new_ref;
  };
  for (ClauseRef& cref : clauses_) cref = relocate(cref);
  for (ClauseRef& cref : learnts_) cref = relocate(cref);
  // Remap reasons of currently assigned variables. Binary reasons are
  // packed literals, not arena references — they survive GC untouched.
  for (const Lit p : trail_) {
    ClauseRef& r = reason_[static_cast<std::size_t>(p.var())];
    if (r != kNoClause && !IsBinaryReason(r)) {
      const std::uint32_t header = arena_[r];
      assert((header & 4u) != 0 && "reason clause must be live");
      r = header >> 3;
    }
  }
  arena_ = std::move(new_arena);
  wasted_words_ = 0;
  // Rebuild all watch lists from scratch (the binary layer is unaffected).
  for (auto& list : watches_) list.clear();
  for (const ClauseRef cref : clauses_) AttachClause(cref);
  for (const ClauseRef cref : learnts_) AttachClause(cref);
}

void Solver::ExportLearnt(const Clause& learnt, std::uint32_t lbd) {
  if (!exchange_) return;
  if (learnt.size() > 2 && lbd > options_.share_max_lbd) return;
  exchange_->Publish(exchange_participant_, learnt);
  ++stats_.exported_clauses;
}

std::size_t Solver::ImportClauses() {
  // Imports splice foreign derivations into the database, which a local
  // RUP log cannot justify — skip them whenever a proof is being recorded.
  if (!exchange_ || !ok_ || proof_log_) return 0;
  assert(DecisionLevel() == 0);
  import_buffer_.clear();
  exchange_->Collect(exchange_participant_, &import_buffer_);
  std::size_t imported = 0;
  for (const Clause& clause : import_buffer_) {
    bool in_range = true;
    for (const Lit l : clause) {
      if (!l.IsValid() || l.var() >= num_vars()) {
        in_range = false;
        break;
      }
    }
    if (!in_range) continue;
    ++imported;
    if (!AddClause(clause)) break;  // the exchange refuted the formula
  }
  stats_.imported_clauses += imported;
  return imported;
}

double Solver::Luby(double y, int i) {
  // Find the finite subsequence containing index i, and its position.
  int size = 1;
  int seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

LBool Solver::Search(std::int64_t conflict_budget, const Deadline& deadline,
                     const std::atomic<bool>* stop) {
  std::int64_t conflicts_here = 0;
  Clause learnt;
  for (;;) {
    const ClauseRef confl = Propagate();
    if (confl != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (DecisionLevel() == 0) {
        if (proof_log_) proof_log_->push_back(Clause{});
        return LBool::kFalse;
      }
      int backtrack_level = 0;
      std::uint32_t lbd = 0;
      Analyze(confl, learnt, backtrack_level, lbd);
      if (proof_log_) proof_log_->push_back(learnt);
      ExportLearnt(learnt, lbd);
      Backtrack(backtrack_level);
      if (learnt.size() == 1) {
        UncheckedEnqueue(learnt[0], kNoClause);
      } else if (learnt.size() == 2) {
        // Binary learnts go straight to the implication layer: no arena
        // slot, no activity/LBD bookkeeping, never deleted.
        AttachBinary(learnt[0], learnt[1]);
        UncheckedEnqueue(learnt[0], BinaryReason(learnt[1]));
      } else {
        const ClauseRef cref = AllocClause(learnt, /*learnt=*/true);
        View(cref).Lbd() = lbd;
        learnts_.push_back(cref);
        AttachClause(cref);
        BumpClauseActivity(View(cref));
        UncheckedEnqueue(learnt[0], cref);
      }
      ++stats_.learned;
      DecayVarActivity();
      DecayClauseActivity();
      if ((stats_.conflicts & 255u) == 0 &&
          (deadline.Expired() || (stop && stop->load(std::memory_order_relaxed)))) {
        budget_exhausted_ = true;
        return LBool::kUndef;
      }
    } else {
      if (conflicts_here >= conflict_budget) {
        Backtrack(0);
        return LBool::kUndef;  // restart
      }
      if (deadline.Expired() ||
          (stop && stop->load(std::memory_order_relaxed))) {
        budget_exhausted_ = true;
        return LBool::kUndef;
      }
      if (DecisionLevel() == 0) SimplifyAtLevelZero();
      if (static_cast<double>(learnts_.size()) -
              static_cast<double>(trail_.size()) >=
          max_learnts_) {
        ReduceDb();
      }
      // Assert pending assumptions first, one decision level each.
      Lit next = kUndefLit;
      while (DecisionLevel() < static_cast<int>(assumptions_.size())) {
        const Lit p =
            assumptions_[static_cast<std::size_t>(DecisionLevel())];
        if (Value(p) == LBool::kTrue) {
          NewDecisionLevel();  // already satisfied: dummy level
        } else if (Value(p) == LBool::kFalse) {
          conflict_under_assumptions_ = true;
          return LBool::kFalse;
        } else {
          next = p;
          break;
        }
      }
      if (!next.IsValid()) {
        ++stats_.decisions;
        next = PickBranchLit();
        if (!next.IsValid()) return LBool::kTrue;  // all variables assigned
      }
      NewDecisionLevel();
      UncheckedEnqueue(next, kNoClause);
    }
  }
}

SolveResult Solver::Solve(Deadline deadline, const std::atomic<bool>* stop) {
  return SolveWithAssumptions({}, deadline, stop);
}

bool Solver::CheckInvariants(std::string* error) const {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  const std::size_t n = assigns_.size();

  // Per-variable and per-literal array sizes.
  if (level_.size() != n || reason_.size() != n || activity_.size() != n ||
      saved_phase_.size() != n) {
    return fail("per-variable arrays disagree on the variable count");
  }
  if (watches_.size() != 2 * n || binary_watches_.size() != 2 * n) {
    return fail("watch lists not sized to 2 * num_vars");
  }

  // Trail: true literals, no repeats, level segments match trail_lim_.
  if (qhead_ > trail_.size() || qhead_bin_ > trail_.size()) {
    return fail("propagation head beyond the trail");
  }
  if (trail_.size() > n) return fail("trail longer than the variable count");
  std::size_t assigned = 0;
  for (std::size_t v = 0; v < n; ++v) assigned += assigns_[v] != LBool::kUndef;
  if (assigned != trail_.size()) {
    return fail("assigned variables (" + std::to_string(assigned) +
                ") != trail length (" + std::to_string(trail_.size()) + ")");
  }
  std::size_t previous_lim = 0;
  for (const int lim : trail_lim_) {
    if (lim < 0 || static_cast<std::size_t>(lim) > trail_.size() ||
        static_cast<std::size_t>(lim) < previous_lim) {
      return fail("trail_lim_ not a nondecreasing partition of the trail");
    }
    previous_lim = static_cast<std::size_t>(lim);
  }
  std::vector<char> on_trail(n, 0);
  std::size_t next_level = 0;
  for (std::size_t i = 0; i < trail_.size(); ++i) {
    const Lit p = trail_[i];
    if (!p.IsValid() || static_cast<std::size_t>(p.var()) >= n) {
      return fail("trail entry " + std::to_string(i) + " is invalid");
    }
    const std::size_t v = static_cast<std::size_t>(p.var());
    if (on_trail[v] != 0) {
      return fail("variable x" + std::to_string(p.var()) + " on trail twice");
    }
    on_trail[v] = 1;
    if (Value(p) != LBool::kTrue) {
      return fail("trail literal " + p.ToString() + " is not assigned true");
    }
    while (next_level < trail_lim_.size() &&
           static_cast<std::size_t>(trail_lim_[next_level]) == i) {
      ++next_level;
      if (reason_[v] != kNoClause) {
        return fail("decision literal " + p.ToString() + " has a reason");
      }
    }
    if (level_[v] != static_cast<int>(next_level)) {
      return fail("trail literal " + p.ToString() + " at level " +
                  std::to_string(level_[v]) + " inside segment " +
                  std::to_string(next_level));
    }
  }

  // Reason soundness for propagated (non-root) assignments.
  for (std::size_t v = 0; v < n; ++v) {
    if (assigns_[v] == LBool::kUndef || level_[v] == 0) continue;
    const ClauseRef r = reason_[v];
    if (r == kNoClause) continue;  // decision (or reason nulled on removal)
    const Lit implied = Lit::Make(static_cast<Var>(v),
                                  assigns_[v] == LBool::kFalse);
    if (IsBinaryReason(r)) {
      const Lit other = BinaryReasonLit(r);
      if (!other.IsValid() || static_cast<std::size_t>(other.var()) >= n ||
          Value(other) != LBool::kFalse ||
          LevelOf(other.var()) > level_[v]) {
        return fail("binary reason of " + implied.ToString() +
                    " is not a false earlier literal");
      }
    } else {
      if (r >= arena_.size()) {
        return fail("reason of " + implied.ToString() + " outside the arena");
      }
      const ClauseView c{const_cast<std::uint32_t*>(arena_.data()) + r};
      if (c.deleted() || c.size() < 2 || c[0] != implied) {
        return fail("reason clause of " + implied.ToString() +
                    " does not imply it");
      }
      for (std::uint32_t i = 1; i < c.size(); ++i) {
        if (Value(c[i]) != LBool::kFalse || LevelOf(c[i].var()) > level_[v]) {
          return fail("reason clause of " + implied.ToString() +
                      " has a non-false tail literal");
        }
      }
    }
  }

  // Unassigned variables must be available to the decision heap.
  for (std::size_t v = 0; v < n; ++v) {
    if (assigns_[v] == LBool::kUndef && !order_.Contains(static_cast<Var>(v))) {
      return fail("unassigned variable x" + std::to_string(v) +
                  " missing from the decision heap");
    }
  }

  // Binary layer: every implication entry has its mirror, counts agree.
  std::uint64_t binary_entries = 0;
  std::unordered_map<std::uint64_t, std::int64_t> mirror_balance;
  for (std::size_t code = 0; code < binary_watches_.size(); ++code) {
    for (const Lit q : binary_watches_[code]) {
      if (!q.IsValid() || static_cast<std::size_t>(q.var()) >= n) {
        return fail("binary watch list " + std::to_string(code) +
                    " holds an invalid literal");
      }
      ++binary_entries;
      // Entry q in list[p.code()] encodes clause (~p \/ q); its mirror is
      // entry ~p in list[(~q).code()]. Count each direction with opposite
      // signs under a direction-independent key.
      const auto pc = static_cast<std::uint64_t>(code);
      const auto qc = static_cast<std::uint64_t>(q.code());
      const std::uint64_t mc = qc ^ 1ull;  // mirror list index
      const std::uint64_t mq = pc ^ 1ull;  // mirror entry code
      const std::uint64_t forward = pc * 2 * n + qc;
      const std::uint64_t backward = mc * 2 * n + mq;
      if (forward <= backward) {
        ++mirror_balance[forward];
      } else {
        --mirror_balance[backward];
      }
    }
  }
  if (binary_entries != 2 * num_binary_clauses_) {
    return fail("binary watch entries (" + std::to_string(binary_entries) +
                ") != 2 * num_binary_clauses_ (" +
                std::to_string(num_binary_clauses_) + " clauses)");
  }
  for (const auto& [key, balance] : mirror_balance) {
    if (balance != 0) {
      return fail("binary implication without its mirror entry (list " +
                  std::to_string(key / (2 * n)) + ", code " +
                  std::to_string(key % (2 * n)) + ")");
    }
  }

  // Arena clauses: live lists hold valid, undeleted, correctly flagged
  // clauses, each watched on exactly its first two literals.
  std::unordered_set<ClauseRef> live;
  std::uint64_t expected_watchers = 0;
  for (int pass = 0; pass < 2; ++pass) {
    const std::vector<ClauseRef>& list = pass == 0 ? clauses_ : learnts_;
    for (const ClauseRef cref : list) {
      if (cref >= arena_.size()) return fail("clause reference out of arena");
      const ClauseView c{const_cast<std::uint32_t*>(arena_.data()) + cref};
      if (static_cast<std::uint64_t>(cref) + c.Words() > arena_.size()) {
        return fail("clause overruns the arena");
      }
      if (c.deleted() || c.relocated()) {
        return fail("deleted/relocated clause still in a live list");
      }
      if (c.size() < 3) {
        return fail("arena clause of size " + std::to_string(c.size()) +
                    " (binaries belong to the binary layer)");
      }
      if (c.learnt() != (pass == 1)) {
        return fail("clause learnt flag disagrees with its list");
      }
      if (!live.insert(cref).second) {
        return fail("clause listed twice");
      }
      for (std::uint32_t i = 0; i < c.size(); ++i) {
        if (!c[i].IsValid() || static_cast<std::size_t>(c[i].var()) >= n) {
          return fail("arena clause holds an invalid literal");
        }
      }
      for (int w = 0; w < 2; ++w) {
        const auto& watch_list =
            watches_[static_cast<std::size_t>((~c[w]).code())];
        const auto hits = std::count_if(
            watch_list.begin(), watch_list.end(),
            [cref](const Watcher& watcher) { return watcher.cref == cref; });
        const long expected = c[0] == c[1] ? 2 : 1;
        if (hits != expected) {
          return fail("clause watched " + std::to_string(hits) +
                      " time(s) on literal " + c[w].ToString() +
                      ", expected " + std::to_string(expected));
        }
      }
      expected_watchers += 2;
    }
  }
  std::uint64_t actual_watchers = 0;
  for (const auto& watch_list : watches_) {
    actual_watchers += watch_list.size();
    for (const Watcher& watcher : watch_list) {
      if (live.count(watcher.cref) == 0) {
        return fail("watcher points at a clause outside the live lists");
      }
    }
  }
  if (actual_watchers != expected_watchers) {
    return fail("total watcher entries (" + std::to_string(actual_watchers) +
                ") != 2 * live clauses (" +
                std::to_string(expected_watchers / 2) + ")");
  }
  return true;
}

SolveResult Solver::SolveWithAssumptions(const std::vector<Lit>& assumptions,
                                         Deadline deadline,
                                         const std::atomic<bool>* stop) {
  Stopwatch stopwatch;
  model_.clear();
  budget_exhausted_ = false;
  conflict_under_assumptions_ = false;
  assumptions_ = assumptions;
  if (!ok_) return SolveResult::kUnsat;

  max_learnts_ =
      std::max(1000.0, static_cast<double>(clauses_.size() +
                                           num_binary_clauses_) *
                           options_.learnt_size_factor);
  LBool status = LBool::kUndef;
  int restarts = 0;
  while (status == LBool::kUndef && !budget_exhausted_) {
    if (options_.debug_check_invariants) {
      std::string violation;
      if (!CheckInvariants(&violation)) {
        std::fprintf(stderr, "solver invariant violated at restart %d: %s\n",
                     restarts, violation.c_str());
        std::abort();
      }
    }
    // Restart boundary: the solver is at level 0, so shared clauses can be
    // spliced into the database before the next descent.
    if (exchange_ != nullptr) {
      ImportClauses();
      if (!ok_) {
        status = LBool::kFalse;
        break;
      }
    }
    const double base =
        options_.luby_restarts
            ? Luby(2.0, restarts)
            : std::pow(options_.restart_growth, restarts);
    const auto budget = static_cast<std::int64_t>(
        base * static_cast<double>(options_.restart_base));
    status = Search(budget, deadline, stop);
    ++restarts;
    ++stats_.restarts;
  }
  stats_.solve_seconds += stopwatch.Seconds();

  if (status == LBool::kTrue) {
    model_.resize(static_cast<std::size_t>(num_vars()));
    for (int v = 0; v < num_vars(); ++v) {
      model_[static_cast<std::size_t>(v)] =
          (Value(static_cast<Var>(v)) == LBool::kTrue);
    }
    Backtrack(0);
    return SolveResult::kSat;
  }
  if (status == LBool::kFalse) {
    // A conflict among the assumptions leaves the solver reusable; a
    // top-level conflict refutes the formula outright.
    if (!conflict_under_assumptions_) ok_ = false;
    Backtrack(0);
    return SolveResult::kUnsat;
  }
  Backtrack(0);
  return SolveResult::kUnknown;
}

}  // namespace satfr::sat
