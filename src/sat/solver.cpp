#include "sat/solver.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <functional>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "sat/clause_exchange.h"

namespace satfr::sat {

namespace {
// SimplifyAtLevelZero rescans the whole database; only worth it once this
// many new top-level facts have accumulated since the previous scan.
constexpr std::int64_t kSimplifyMinNewFacts = 24;
}  // namespace

SolverStats SolverStats::Since(const SolverStats& baseline) const {
  SolverStats d;
  d.conflicts = conflicts - baseline.conflicts;
  d.decisions = decisions - baseline.decisions;
  d.propagations = propagations - baseline.propagations;
  d.binary_propagations =
      binary_propagations - baseline.binary_propagations;
  d.restarts = restarts - baseline.restarts;
  d.learned = learned - baseline.learned;
  d.removed = removed - baseline.removed;
  d.minimized_literals = minimized_literals - baseline.minimized_literals;
  d.watch_inspections = watch_inspections - baseline.watch_inspections;
  d.blocker_hits = blocker_hits - baseline.blocker_hits;
  d.gc_runs = gc_runs - baseline.gc_runs;
  d.tier_promotions = tier_promotions - baseline.tier_promotions;
  d.tier_demotions = tier_demotions - baseline.tier_demotions;
  d.clauses_vivified = clauses_vivified - baseline.clauses_vivified;
  d.lits_removed_vivify =
      lits_removed_vivify - baseline.lits_removed_vivify;
  d.clauses_strengthened =
      clauses_strengthened - baseline.clauses_strengthened;
  d.exported_clauses = exported_clauses - baseline.exported_clauses;
  d.imported_clauses = imported_clauses - baseline.imported_clauses;
  d.import_duplicates = import_duplicates - baseline.import_duplicates;
  d.retired_groups = retired_groups - baseline.retired_groups;
  d.activation_blocked_exports =
      activation_blocked_exports - baseline.activation_blocked_exports;
  d.solve_seconds = solve_seconds - baseline.solve_seconds;
  for (std::size_t i = 0; i < kLbdHistogramSize; ++i) {
    d.lbd_histogram[i] = lbd_histogram[i] - baseline.lbd_histogram[i];
  }
  d.bcp_seconds = bcp_seconds - baseline.bcp_seconds;
  d.analyze_seconds = analyze_seconds - baseline.analyze_seconds;
  d.inprocess_seconds = inprocess_seconds - baseline.inprocess_seconds;
  return d;
}

void SolverStats::Accumulate(const SolverStats& other) {
  conflicts += other.conflicts;
  decisions += other.decisions;
  propagations += other.propagations;
  binary_propagations += other.binary_propagations;
  restarts += other.restarts;
  learned += other.learned;
  removed += other.removed;
  minimized_literals += other.minimized_literals;
  watch_inspections += other.watch_inspections;
  blocker_hits += other.blocker_hits;
  gc_runs += other.gc_runs;
  tier_promotions += other.tier_promotions;
  tier_demotions += other.tier_demotions;
  clauses_vivified += other.clauses_vivified;
  lits_removed_vivify += other.lits_removed_vivify;
  clauses_strengthened += other.clauses_strengthened;
  exported_clauses += other.exported_clauses;
  imported_clauses += other.imported_clauses;
  import_duplicates += other.import_duplicates;
  retired_groups += other.retired_groups;
  activation_blocked_exports += other.activation_blocked_exports;
  // Per-worker wall times overlap, so the merged figure is the pool's
  // aggregate CPU-seconds of solving — the convention MergedStats already
  // established for props/sec readings.
  solve_seconds += other.solve_seconds;
  for (std::size_t i = 0; i < kLbdHistogramSize; ++i) {
    lbd_histogram[i] += other.lbd_histogram[i];
  }
  bcp_seconds += other.bcp_seconds;
  analyze_seconds += other.analyze_seconds;
  inprocess_seconds += other.inprocess_seconds;
}

const char* ToString(SolveResult result) {
  switch (result) {
    case SolveResult::kSat:
      return "SAT";
    case SolveResult::kUnsat:
      return "UNSAT";
    case SolveResult::kUnknown:
      return "UNKNOWN";
  }
  return "?";
}

SolverOptions SolverOptions::MiniSatLike() {
  SolverOptions opts;
  opts.var_decay = 0.95;
  opts.clause_decay = 0.999;
  opts.random_decision_freq = 0.0;
  opts.luby_restarts = true;
  opts.restart_base = 100;
  return opts;
}

SolverOptions SolverOptions::SiegeLike() {
  SolverOptions opts;
  opts.var_decay = 0.99;
  opts.clause_decay = 0.999;
  opts.random_decision_freq = 0.02;
  opts.luby_restarts = false;
  opts.restart_base = 512;
  opts.restart_growth = 1.4;
  opts.learnt_size_factor = 0.5;
  return opts;
}

float Solver::ClauseView::Activity() const {
  float value;
  std::memcpy(&value, header + 1, sizeof(value));
  return value;
}

void Solver::ClauseView::SetActivity(float activity) const {
  std::memcpy(header + 1, &activity, sizeof(activity));
}

// ---------------------------------------------------------------- VarOrder

bool Solver::VarOrder::Contains(Var v) const {
  return static_cast<std::size_t>(v) < position_.size() &&
         position_[static_cast<std::size_t>(v)] >= 0;
}

void Solver::VarOrder::Grow(int num_vars) {
  position_.resize(static_cast<std::size_t>(num_vars), -1);
}

void Solver::VarOrder::Insert(Var v) {
  if (Contains(v)) return;
  position_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(Node{activity_[static_cast<std::size_t>(v)], v});
  SiftUp(heap_.size() - 1);
}

void Solver::VarOrder::Update(Var v) {
  if (!Contains(v)) return;
  const std::size_t i =
      static_cast<std::size_t>(position_[static_cast<std::size_t>(v)]);
  // Activity only ever increases between rescales, so refreshing the stored
  // key and sifting up restores the heap property.
  heap_[i].key = activity_[static_cast<std::size_t>(v)];
  SiftUp(i);
}

void Solver::VarOrder::RescaleKeys(double factor) {
  for (Node& node : heap_) node.key *= factor;
}

Var Solver::VarOrder::RemoveMax() {
  assert(!heap_.empty());
  const Var top = heap_[0].v;
  heap_[0] = heap_.back();
  position_[static_cast<std::size_t>(heap_[0].v)] = 0;
  heap_.pop_back();
  position_[static_cast<std::size_t>(top)] = -1;
  if (!heap_.empty()) SiftDown(0);
  return top;
}

void Solver::VarOrder::SiftUp(std::size_t i) {
  const Node node = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Before(node, heap_[parent])) break;
    heap_[i] = heap_[parent];
    position_[static_cast<std::size_t>(heap_[i].v)] = static_cast<int>(i);
    i = parent;
  }
  heap_[i] = node;
  position_[static_cast<std::size_t>(node.v)] = static_cast<int>(i);
}

void Solver::VarOrder::SiftDown(std::size_t i) {
  const Node node = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && Before(heap_[child + 1], heap_[child])) ++child;
    if (!Before(heap_[child], node)) break;
    heap_[i] = heap_[child];
    position_[static_cast<std::size_t>(heap_[i].v)] = static_cast<int>(i);
    i = child;
  }
  heap_[i] = node;
  position_[static_cast<std::size_t>(node.v)] = static_cast<int>(i);
}

// ------------------------------------------------------------------ Solver

Solver::Solver(SolverOptions options)
    : options_(options), rng_(options.seed), order_(activity_) {
  bin_offsets_.push_back(0);
}

Var Solver::NewVar() {
  const Var v = static_cast<Var>(num_vars());
  lit_value_.push_back(LBool::kUndef);
  lit_value_.push_back(LBool::kUndef);
  saved_phase_.push_back(options_.default_phase_positive);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  // The two new literal codes start with an empty frozen CSR range at the
  // current end of the flat buffer; learnts land in the overflow lists
  // until the next compaction rebuilds the offsets.
  const auto flat_end = static_cast<std::uint32_t>(bin_flat_.size());
  bin_offsets_.push_back(flat_end);
  bin_offsets_.push_back(flat_end);
  bin_overflow_.emplace_back();
  bin_overflow_.emplace_back();
  bin_overflow_nonempty_.push_back(0);
  bin_overflow_nonempty_.push_back(0);
  trail_.Reserve(level_.size());
  order_.Grow(num_vars());
  order_.Insert(v);
  return v;
}

void Solver::EnsureVars(int n) {
  if (n <= num_vars()) return;
  const std::size_t count = static_cast<std::size_t>(n);
  lit_value_.reserve(2 * count);
  saved_phase_.reserve(count);
  level_.reserve(count);
  reason_.reserve(count);
  activity_.reserve(count);
  seen_.reserve(count);
  watches_.reserve(2 * count);
  bin_offsets_.reserve(2 * count + 1);
  bin_overflow_.reserve(2 * count);
  bin_overflow_nonempty_.reserve(2 * count);
  trail_.Reserve(count);
  while (num_vars() < n) NewVar();
}

Var Solver::ReserveActivationVars(int hint) {
  if (activation_begin_ < 0) activation_begin_ = num_vars();
  if (hint > 0) EnsureVars(activation_begin_ + hint);
  return activation_begin_;
}

bool Solver::RetireActivationGroup(Var activation) {
  assert(IsActivationVar(activation));
  assert(DecisionLevel() == 0);
  if (!ok_) return false;
  const Lit off = Lit::Neg(activation);
  if (Value(off) == LBool::kTrue) return true;  // already retired
  if (!AddClause(&off, 1)) return false;
  ++stats_.retired_groups;
  return true;
}

Solver::ClauseRef Solver::AllocClause(const Clause& lits, bool learnt) {
  const std::uint32_t extra = learnt ? 3u : 1u;
  const ClauseRef cref = static_cast<ClauseRef>(arena_.size());
  assert(cref < kBinaryReasonBit && "arena exceeds the reason tag space");
  arena_.resize(arena_.size() + extra + lits.size());
  ClauseView c = View(cref);
  *c.header = (static_cast<std::uint32_t>(lits.size()) << 6) | (learnt ? 1u : 0u);
  if (learnt) {
    c.SetActivity(0.0f);
    c.Lbd() = static_cast<std::uint32_t>(lits.size());
  }
  for (std::size_t i = 0; i < lits.size(); ++i) {
    c[static_cast<std::uint32_t>(i)] = lits[i];
  }
  return cref;
}

void Solver::FreeClause(ClauseRef cref) {
  ClauseView c = View(cref);
  wasted_words_ += c.Words();
  c.MarkDeleted();
}

void Solver::AttachClause(ClauseRef cref) {
  ClauseView c = View(cref);
  assert(c.size() >= 3);
  watches_[static_cast<std::size_t>((~c[0]).code())].push_back(
      Watcher{cref, c[1]});
  watches_[static_cast<std::size_t>((~c[1]).code())].push_back(
      Watcher{cref, c[0]});
}

void Solver::DetachClause(ClauseRef cref) {
  ClauseView c = View(cref);
  for (int w = 0; w < 2; ++w) {
    auto& list = watches_[static_cast<std::size_t>((~c[w]).code())];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].cref == cref) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

void Solver::AttachBinary(Lit a, Lit b) {
  const auto code_a = static_cast<std::size_t>((~a).code());
  const auto code_b = static_cast<std::size_t>((~b).code());
  bin_overflow_[code_a].push_back(b);
  bin_overflow_[code_b].push_back(a);
  bin_overflow_nonempty_[code_a] = 1;
  bin_overflow_nonempty_[code_b] = 1;
  bin_overflow_entries_ += 2;
  ++num_binary_clauses_;
}

bool Solver::Locked(ClauseRef cref) {
  ClauseView c = View(cref);
  const Var v = c[0].var();
  return Value(c[0]) == LBool::kTrue &&
         reason_[static_cast<std::size_t>(v)] == cref;
}

void Solver::RemoveClause(ClauseRef cref) {
  DetachClause(cref);
  if (Locked(cref)) {
    ClauseView c = View(cref);
    reason_[static_cast<std::size_t>(c[0].var())] = kNoClause;
  }
  FreeClause(cref);
}

void Solver::RegisterLearnt(ClauseRef cref, std::uint32_t lbd) {
  ClauseView c = View(cref);
  c.Lbd() = lbd;
  const std::uint32_t tier = TierForLbd(lbd);
  c.SetTier(tier);
  // Fresh clauses count as used so they survive their first demotion round.
  c.SetUsed();
  TierList(tier).push_back(cref);
}

bool Solver::AddClause(Clause clause) {
  return AddClause(clause.data(), clause.size());
}

bool Solver::AddClause(const Lit* lits, std::size_t n) {
  assert(DecisionLevel() == 0);
  if (!ok_) return false;
  add_scratch_.assign(lits, lits + n);
  for (const Lit l : add_scratch_) {
    assert(l.IsValid() && l.var() < num_vars());
    (void)l;
  }
  // Simplify in place against the level-0 assignment; drop duplicates and
  // tautologies. The scratch buffer keeps its capacity across calls, so
  // streaming emission (SolverSink) adds clauses without heap traffic.
  std::sort(add_scratch_.begin(), add_scratch_.end());
  std::size_t out = 0;
  Lit previous = kUndefLit;
  for (std::size_t i = 0; i < add_scratch_.size(); ++i) {
    const Lit l = add_scratch_[i];
    const LBool value = Value(l);
    if (value == LBool::kTrue || l == ~previous) return true;  // satisfied
    if (value != LBool::kFalse && l != previous) {
      add_scratch_[out++] = l;
      previous = l;
    }
  }
  const bool strengthened = out < add_scratch_.size();
  add_scratch_.resize(out);
  // Strengthened clauses are RUP consequences of the database; log them so
  // the proof checker sees exactly what the solver will propagate on.
  if (proof_log_ && strengthened) {
    proof_log_->push_back(add_scratch_);
  }
  if (add_scratch_.empty()) {
    ok_ = false;
    return false;
  }
  if (add_scratch_.size() == 1) {
    UncheckedEnqueue(add_scratch_[0], kNoClause);
    ok_ = (Propagate() == kNoClause);
    if (!ok_ && proof_log_) proof_log_->push_back(Clause{});
    return ok_;
  }
  if (add_scratch_.size() == 2) {
    AttachBinary(add_scratch_[0], add_scratch_[1]);
    return true;
  }
  const ClauseRef cref = AllocClause(add_scratch_, /*learnt=*/false);
  clauses_.push_back(cref);
  AttachClause(cref);
  return true;
}

bool Solver::AddCnf(const Cnf& cnf) {
  EnsureVars(cnf.num_vars());
  for (const Clause& clause : cnf.clauses()) {
    if (!AddClause(clause)) return false;
  }
  return true;
}

bool Solver::AddImportedClause(const Clause& clause, std::uint32_t lbd) {
  assert(DecisionLevel() == 0);
  if (!ok_) return false;
  // Same level-0 simplification as AddClause, but survivors of size >= 3
  // enter the learnt database in the tier matching the sender's LBD
  // instead of the problem-clause list.
  add_scratch_ = clause;
  std::sort(add_scratch_.begin(), add_scratch_.end());
  std::size_t out = 0;
  Lit previous = kUndefLit;
  for (std::size_t i = 0; i < add_scratch_.size(); ++i) {
    const Lit l = add_scratch_[i];
    const LBool value = Value(l);
    if (value == LBool::kTrue || l == ~previous) return true;  // satisfied
    if (value != LBool::kFalse && l != previous) {
      add_scratch_[out++] = l;
      previous = l;
    }
  }
  add_scratch_.resize(out);
  if (add_scratch_.empty()) {
    ok_ = false;
    return false;
  }
  if (add_scratch_.size() == 1) {
    UncheckedEnqueue(add_scratch_[0], kNoClause);
    ok_ = (Propagate() == kNoClause);
    return ok_;
  }
  if (add_scratch_.size() == 2) {
    AttachBinary(add_scratch_[0], add_scratch_[1]);
    return true;
  }
  const ClauseRef cref = AllocClause(add_scratch_, /*learnt=*/true);
  const auto size = static_cast<std::uint32_t>(add_scratch_.size());
  RegisterLearnt(cref, std::min(std::max(lbd, 1u), size));
  AttachClause(cref);
  return true;
}

std::size_t Solver::ClauseMemoryBytes() const {
  std::size_t bytes = arena_.capacity() * sizeof(std::uint32_t);
  bytes += bin_offsets_.capacity() * sizeof(std::uint32_t);
  bytes += bin_flat_.capacity() * sizeof(Lit);
  for (const auto& list : bin_overflow_) {
    bytes += list.capacity() * sizeof(Lit);
  }
  for (const auto& list : watches_) {
    bytes += list.capacity() * sizeof(Watcher);
  }
  return bytes;
}

void Solver::UncheckedEnqueue(Lit p, ClauseRef from) {
  const std::size_t v = static_cast<std::size_t>(p.var());
  assert(Value(p.var()) == LBool::kUndef);
  lit_value_[static_cast<std::size_t>(p.code())] = LBool::kTrue;
  lit_value_[static_cast<std::size_t>((~p).code())] = LBool::kFalse;
  level_[v] = DecisionLevel();
  reason_[v] = from;
  trail_.push_back(p);
}

void Solver::UnassignForBacktrack(Lit p) {
  const std::size_t v = static_cast<std::size_t>(p.var());
  lit_value_[static_cast<std::size_t>(p.code())] = LBool::kUndef;
  lit_value_[static_cast<std::size_t>((~p).code())] = LBool::kUndef;
  if (options_.phase_saving) {
    saved_phase_[v] = !p.negated();
  }
  if (!order_.Contains(p.var())) order_.Insert(p.var());
}

Solver::ClauseRef Solver::Propagate() {
  // The blocker toggle is hoisted to a template parameter so the default
  // path carries no per-watcher branch for it.
  return options_.use_blocking_literals ? PropagateImpl<true>()
                                        : PropagateImpl<false>();
}

template <bool UseBlockers>
Solver::ClauseRef Solver::PropagateImpl() {
  ClauseRef conflict = kNoClause;
  // Counter deltas stay in registers during the loop and are flushed once
  // at the end — the stats struct is not touched per watcher or literal.
  std::uint64_t inspected = 0;
  std::uint64_t blocked = 0;
  std::uint64_t propagated = 0;
  std::uint64_t binary_propagated = 0;
  LBool* const lit_value = lit_value_.data();
  // The queue heads, trail cursor, and trail length all live in locals for
  // the duration of the loop: enqueueing inline through raw pointers means
  // no member store forces them back to memory, and the decision level is
  // constant for the whole call.
  Lit* const trail = trail_.data();
  std::size_t tsz = trail_.size();
  std::size_t head = qhead_;
  std::size_t bin_head = qhead_bin_;
  const int dl = DecisionLevel();
  // The containers themselves are stable for the whole call (only the
  // overflow lists and foreign watch lists grow, and never through these
  // pointers), so hoist the data pointers the compiler cannot prove
  // loop-invariant across the enqueue stores.
  const Lit* const bin_flat = bin_flat_.data();
  const std::uint32_t* const bin_offsets = bin_offsets_.data();
  const std::uint8_t* const overflow_nonempty = bin_overflow_nonempty_.data();
  const std::vector<Lit>* const bin_overflow = bin_overflow_.data();
  std::vector<Watcher>* const watches = watches_.data();
  const auto enqueue = [&](Lit q, ClauseRef from) {
    assert(lit_value[q.code()] == LBool::kUndef);
    const std::size_t v = static_cast<std::size_t>(q.var());
    lit_value[q.code()] = LBool::kTrue;
    lit_value[q.code() ^ 1] = LBool::kFalse;
    level_[v] = dl;
    reason_[v] = from;
    trail[tsz++] = q;
  };
  while (head < tsz) {
    // Binary fast path, drained to fixpoint before any long clause is
    // touched: the implied literal is stored inline (frozen CSR range plus
    // the overflow list of learnts added since the last compaction), so
    // the whole pass dereferences no clause memory and never edits a watch
    // list, and a conflict reachable through binaries alone skips the long
    // scans of every literal enqueued along the way.
    while (bin_head < tsz) {
      const Lit bp = trail[bin_head++];
      ++propagated;
      const std::size_t code = static_cast<std::size_t>(bp.code());
      // The frozen range is the common case; the overflow list is only
      // consulted when the cheap dense flag says it is non-empty (the
      // vector header itself would be a scattered cache line per literal).
      const Lit* it = bin_flat + bin_offsets[code];
      const Lit* end = bin_flat + bin_offsets[code + 1];
      const Lit* overflow_it = nullptr;
      const Lit* overflow_end = nullptr;
      if (overflow_nonempty[code] != 0) {
        overflow_it = bin_overflow[code].data();
        overflow_end = overflow_it + bin_overflow[code].size();
      }
      for (;;) {
        if (it == end) {
          if (overflow_it == overflow_end) break;
          it = overflow_it;
          end = overflow_end;
          overflow_it = overflow_end = nullptr;
          continue;
        }
        const Lit q = *it++;
        const LBool value = lit_value[q.code()];
        if (value == LBool::kTrue) continue;
        if (value == LBool::kFalse) {
          binary_conflict_[0] = q;
          binary_conflict_[1] = ~bp;
          bin_head = head = tsz;
          conflict = kBinaryConflict;
          break;
        }
        ++binary_propagated;
        enqueue(q, BinaryReason(~bp));
      }
      if (conflict != kNoClause) {
        goto done;
      }
    }
    // Every literal passes through the binary queue first, so the
    // propagation counter above has already seen p.
    const Lit p = trail[head++];
    auto& watch_list = watches[static_cast<std::size_t>(p.code())];
    // Pointer-based sweep: moving a watch appends to a *different* list
    // (the new watched literal can never share p's code), so this list
    // never reallocates mid-scan and the compiler needs no size reloads.
    Watcher* const begin = watch_list.data();
    Watcher* const end = begin + watch_list.size();
    Watcher* out = begin;
    const Lit false_lit = ~p;
    for (Watcher* in = begin; in != end; ++in) {
      const Watcher w = *in;
      if (in + 1 != end) {
        __builtin_prefetch(arena_.data() + (in + 1)->cref);
      }
      ++inspected;
      if (UseBlockers && lit_value[w.blocker.code()] == LBool::kTrue) {
        ++blocked;
        *out++ = w;
        continue;
      }
      ClauseView c = View(w.cref);
      if (c[0] == false_lit) {
        c[0] = c[1];
        c[1] = false_lit;
      }
      assert(c[1] == false_lit);
      const Lit first = c[0];
      // With blockers on, first == w.blocker was already tested upfront;
      // with them off the test must not be short-circuited away.
      if ((!UseBlockers || first != w.blocker) &&
          lit_value[first.code()] == LBool::kTrue) {
        *out++ = Watcher{w.cref, first};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      const std::uint32_t size = c.size();
      for (std::uint32_t k = 2; k < size; ++k) {
        if (lit_value[c[k].code()] != LBool::kFalse) {
          c[1] = c[k];
          c[k] = false_lit;
          watches[static_cast<std::size_t>((~c[1]).code())].push_back(
              Watcher{w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      *out++ = Watcher{w.cref, first};
      if (lit_value[first.code()] == LBool::kFalse) {
        conflict = w.cref;
        bin_head = head = tsz;
        for (++in; in != end; ++in) {
          *out++ = *in;
        }
        break;
      }
      enqueue(first, w.cref);
    }
    watch_list.resize(static_cast<std::size_t>(out - begin));
    if (conflict != kNoClause) break;
  }
done:
  trail_.SetSize(tsz);
  qhead_ = head;
  qhead_bin_ = bin_head;
  stats_.propagations += propagated;
  stats_.binary_propagations += binary_propagated;
  stats_.watch_inspections += inspected;
  stats_.blocker_hits += blocked;
  return conflict;
}

void Solver::BumpVarActivity(Var v) {
  if ((activity_[static_cast<std::size_t>(v)] += var_inc_) > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
    order_.RescaleKeys(1e-100);
  }
  order_.Update(v);
}

void Solver::BumpClauseActivity(ClauseView c) {
  const float bumped = c.Activity() + static_cast<float>(clause_inc_);
  c.SetActivity(bumped);
  if (bumped > 1e20f) {
    for (const std::vector<ClauseRef>* list :
         {&learnts_core_, &learnts_tier2_, &learnts_local_}) {
      for (const ClauseRef cref : *list) {
        ClauseView lc = View(cref);
        if (!lc.deleted()) lc.SetActivity(lc.Activity() * 1e-20f);
      }
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::UpdateLearntOnUse(ClauseView c) {
  // Glucose-style dynamic LBD: a clause that participates in conflict
  // analysis gets its LBD recomputed from the current levels; if the value
  // improved, retag towards core (the list move is deferred to the next
  // RebucketLearnts — the tag in the header is authoritative).
  // One recompute per clause per reduction round: the used bit doubles as
  // the "already refreshed" mark and ReduceDb clears it, so hot reasons do
  // not pay an O(size) level walk on every single conflict they feed.
  const bool first_use = !c.used();
  c.SetUsed();
  if (!options_.use_tiers || !first_use) return;
  // Core clauses cannot improve further and dominate the reason mix on
  // structured instances — skip the recompute for them.
  if (c.Lbd() <= options_.core_lbd_max) return;
  const std::uint32_t lbd = ComputeLbd(c.lits(), c.size());
  if (lbd >= c.Lbd()) return;
  c.Lbd() = lbd;
  const std::uint32_t tier = TierForLbd(lbd);
  if (tier < c.tier()) {
    c.SetTier(tier);
    ++stats_.tier_promotions;
    tiers_dirty_ = true;
  }
}

void Solver::Analyze(ClauseRef confl, Clause& out_learnt, int& out_btlevel,
                     std::uint32_t& out_lbd) {
  int path_count = 0;
  Lit p = kUndefLit;
  out_learnt.clear();
  out_learnt.push_back(kUndefLit);  // placeholder for the asserting literal
  int index = static_cast<int>(trail_.size()) - 1;

  do {
    assert(confl != kNoClause);
    // Fetch the literals of the conflict/reason. Binary reasons are packed
    // literals (the implied literal is p itself); the binary conflict's two
    // literals live in binary_conflict_. Neither touches the arena.
    Lit bin_lits[2];
    const Lit* lits;
    std::uint32_t size;
    if (confl == kBinaryConflict) {
      bin_lits[0] = binary_conflict_[0];
      bin_lits[1] = binary_conflict_[1];
      lits = bin_lits;
      size = 2;
    } else if (IsBinaryReason(confl)) {
      bin_lits[0] = p;
      bin_lits[1] = BinaryReasonLit(confl);
      lits = bin_lits;
      size = 2;
    } else {
      ClauseView c = View(confl);
      if (c.learnt()) {
        BumpClauseActivity(c);
        UpdateLearntOnUse(c);
      }
      lits = c.lits();
      size = c.size();
    }
    for (std::uint32_t j = (p == kUndefLit) ? 0 : 1; j < size; ++j) {
      const Lit q = lits[j];
      const std::size_t v = static_cast<std::size_t>(q.var());
      if (!seen_[v] && LevelOf(q.var()) > 0) {
        BumpVarActivity(q.var());
        seen_[v] = 1;
        if (LevelOf(q.var()) >= DecisionLevel()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    // Select the next implication to expand.
    while (!seen_[static_cast<std::size_t>(trail_[static_cast<std::size_t>(
        index--)].var())]) {
    }
    p = trail_[static_cast<std::size_t>(index + 1)];
    confl = reason_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest.
  analyze_toclear_ = out_learnt;
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    abstract_levels |= AbstractLevel(out_learnt[i].var());
  }
  std::size_t kept = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    const Lit l = out_learnt[i];
    if (reason_[static_cast<std::size_t>(l.var())] == kNoClause ||
        !LitRedundant(l, abstract_levels)) {
      out_learnt[kept++] = l;
    }
  }
  stats_.minimized_literals += out_learnt.size() - kept;
  out_learnt.resize(kept);

  // Find the backtrack level (highest level below the current one).
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (LevelOf(out_learnt[i].var()) > LevelOf(out_learnt[max_i].var())) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = LevelOf(out_learnt[1].var());
  }

  out_lbd = ComputeLbd(out_learnt);

  for (const Lit l : analyze_toclear_) {
    seen_[static_cast<std::size_t>(l.var())] = 0;
  }
}

bool Solver::LitRedundant(Lit p, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const std::size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit l = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef cref = reason_[static_cast<std::size_t>(l.var())];
    assert(cref != kNoClause);
    // The literals of the reason besides the implied one.
    Lit bin_other;
    const Lit* others;
    std::uint32_t count;
    if (IsBinaryReason(cref)) {
      bin_other = BinaryReasonLit(cref);
      others = &bin_other;
      count = 1;
    } else {
      ClauseView c = View(cref);
      others = c.lits() + 1;
      count = c.size() - 1;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      const Lit q = others[i];
      const std::size_t v = static_cast<std::size_t>(q.var());
      if (!seen_[v] && LevelOf(q.var()) > 0) {
        if (reason_[v] != kNoClause &&
            (AbstractLevel(q.var()) & abstract_levels) != 0) {
          seen_[v] = 1;
          analyze_stack_.push_back(q);
          analyze_toclear_.push_back(q);
        } else {
          for (std::size_t j = top; j < analyze_toclear_.size(); ++j) {
            seen_[static_cast<std::size_t>(analyze_toclear_[j].var())] = 0;
          }
          analyze_toclear_.resize(top);
          return false;
        }
      }
    }
  }
  return true;
}

std::uint32_t Solver::ComputeLbd(const Lit* lits, std::size_t size) {
  // Number of distinct decision levels in the clause (Glucose's metric).
  static thread_local std::vector<int> seen_levels;
  std::uint32_t lbd = 0;
  for (std::size_t i = 0; i < size; ++i) {
    const int lvl = LevelOf(lits[i].var());
    if (static_cast<std::size_t>(lvl) >= seen_levels.size()) {
      seen_levels.resize(static_cast<std::size_t>(lvl) + 1, 0);
    }
    if (seen_levels[static_cast<std::size_t>(lvl)] == 0) {
      seen_levels[static_cast<std::size_t>(lvl)] = 1;
      ++lbd;
    }
  }
  for (std::size_t i = 0; i < size; ++i) {
    seen_levels[static_cast<std::size_t>(LevelOf(lits[i].var()))] = 0;
  }
  return lbd;
}

void Solver::Backtrack(int target_level) {
  if (DecisionLevel() <= target_level) return;
  const int boundary = trail_lim_[static_cast<std::size_t>(target_level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= boundary; --i) {
    UnassignForBacktrack(trail_[static_cast<std::size_t>(i)]);
  }
  qhead_ = static_cast<std::size_t>(boundary);
  qhead_bin_ = static_cast<std::size_t>(boundary);
  trail_.resize(static_cast<std::size_t>(boundary));
  trail_lim_.resize(static_cast<std::size_t>(target_level));
}

Lit Solver::PickBranchLit() {
  // Occasional random decision for diversification.
  if (options_.random_decision_freq > 0.0 &&
      rng_.NextBool(options_.random_decision_freq) && !order_.Empty()) {
    const Var v = static_cast<Var>(rng_.NextBelow(
        static_cast<std::uint64_t>(num_vars())));
    if (Value(v) == LBool::kUndef) {
      return Lit::Make(v, !saved_phase_[static_cast<std::size_t>(v)]);
    }
  }
  while (!order_.Empty()) {
    const Var v = order_.RemoveMax();
    if (Value(v) == LBool::kUndef) {
      return Lit::Make(v, !saved_phase_[static_cast<std::size_t>(v)]);
    }
  }
  return kUndefLit;
}

void Solver::RemoveSatisfied(std::vector<ClauseRef>& list) {
  std::size_t keep = 0;
  for (const ClauseRef cref : list) {
    ClauseView c = View(cref);
    bool satisfied = false;
    std::uint32_t false_lits = 0;
    for (std::uint32_t i = 0; i < c.size(); ++i) {
      const LBool v = Value(c[i]);
      if (v == LBool::kTrue) {
        satisfied = true;
        break;
      }
      false_lits += v == LBool::kFalse;
    }
    if (satisfied) {
      RemoveClause(cref);
      ++stats_.removed;
      continue;
    }
    if (false_lits > 0 && !options_.deterministic) {
      // On-trail strengthening: literals false at level 0 can never be
      // satisfied again, so drop them in place. The watched literals
      // (positions 0 and 1) are non-false at a propagation fixpoint, so
      // they survive the compaction in place and the watch lists stay
      // valid; only the cached blockers need refreshing (a dropped
      // literal may be cached there).
      std::uint32_t out = 0;
      for (std::uint32_t i = 0; i < c.size(); ++i) {
        if (Value(c[i]) != LBool::kFalse) c[out++] = c[i];
      }
      assert(out >= 2 && "watched literals must survive L0 strengthening");
      if (proof_log_) {
        proof_log_->emplace_back(c.lits(), c.lits() + out);
      }
      ++stats_.clauses_strengthened;
      if (out == 2) {
        // Shrunk to a binary: migrate to the implication layer.
        DetachClause(cref);
        AttachBinary(c[0], c[1]);
        FreeClause(cref);
        continue;
      }
      wasted_words_ += c.size() - out;
      c.SetSize(out);
      if (c.learnt()) c.Lbd() = std::min(c.Lbd(), out);
      for (int w = 0; w < 2; ++w) {
        for (Watcher& watcher :
             watches_[static_cast<std::size_t>((~c[w]).code())]) {
          if (watcher.cref == cref) {
            watcher.blocker = c[1 - w];
            break;
          }
        }
      }
    }
    list[keep++] = cref;
  }
  list.resize(keep);
}

void Solver::CompactBinaryLayer(bool drop_satisfied) {
  // Rebuild the CSR from the frozen ranges plus the overflow lists. With
  // drop_satisfied (level 0 only), entries of dead clauses are skipped:
  // the list at code(p) holds the q of every clause (~p \/ q), which is
  // satisfied for good once p is false or q is true; each clause has one
  // entry in each of its two lists and both vanish under the same test.
  assert(!drop_satisfied || DecisionLevel() == 0);
  const std::size_t num_codes = 2 * static_cast<std::size_t>(num_vars());
  std::vector<Lit> new_flat;
  new_flat.reserve(bin_flat_.size() + bin_overflow_entries_);
  std::vector<std::uint32_t> new_offsets;
  new_offsets.reserve(num_codes + 1);
  new_offsets.push_back(0);
  std::uint64_t removed_entries = 0;
  for (std::size_t code = 0; code < num_codes; ++code) {
    const Lit p = Lit::Make(static_cast<Var>(code >> 1), (code & 1) != 0);
    const bool list_dead = drop_satisfied && Value(p) == LBool::kFalse;
    const Lit* ranges[2][2];
    ranges[0][0] = bin_flat_.data() + bin_offsets_[code];
    ranges[0][1] = bin_flat_.data() + bin_offsets_[code + 1];
    ranges[1][0] = bin_overflow_[code].data();
    ranges[1][1] = ranges[1][0] + bin_overflow_[code].size();
    for (int r = 0; r < 2; ++r) {
      for (const Lit* it = ranges[r][0]; it != ranges[r][1]; ++it) {
        if (list_dead || (drop_satisfied && Value(*it) == LBool::kTrue)) {
          ++removed_entries;
          continue;
        }
        new_flat.push_back(*it);
      }
    }
    bin_overflow_[code].clear();
    bin_overflow_nonempty_[code] = 0;
    new_offsets.push_back(static_cast<std::uint32_t>(new_flat.size()));
  }
  bin_flat_ = std::move(new_flat);
  bin_offsets_ = std::move(new_offsets);
  bin_overflow_entries_ = 0;
  const std::uint64_t removed_clauses = removed_entries / 2;
  num_binary_clauses_ -= removed_clauses;
  stats_.removed += removed_clauses;
}

void Solver::SimplifyAtLevelZero() {
  assert(DecisionLevel() == 0);
  if (!ok_) return;
  // Full database rescans only pay off once enough new top-level facts
  // have accumulated (the first call always runs — it freezes the input
  // binaries into the CSR).
  const auto trail_now = static_cast<std::int64_t>(trail_.size());
  if (simplify_trail_size_ >= 0 &&
      trail_now < simplify_trail_size_ + kSimplifyMinNewFacts) {
    return;
  }
  simplify_trail_size_ = trail_now;
  RebucketLearnts();
  RemoveSatisfied(learnts_core_);
  RemoveSatisfied(learnts_tier2_);
  RemoveSatisfied(learnts_local_);
  RemoveSatisfied(clauses_);
  CompactBinaryLayer(/*drop_satisfied=*/true);
  CollectGarbageIfNeeded();
}

void Solver::RebucketLearnts() {
  if (!tiers_dirty_) return;
  tiers_dirty_ = false;
  // Promotions only flip the header tag in the hot path; here the three
  // lists are rebuilt to match the tags again.
  static thread_local std::vector<ClauseRef> all;
  all.clear();
  for (std::vector<ClauseRef>* list :
       {&learnts_core_, &learnts_tier2_, &learnts_local_}) {
    all.insert(all.end(), list->begin(), list->end());
    list->clear();
  }
  for (const ClauseRef cref : all) {
    ClauseView c = View(cref);
    if (c.deleted()) continue;
    TierList(c.tier()).push_back(cref);
  }
}

void Solver::ReduceDb() {
  RebucketLearnts();
  // Tier2 clauses that went unused since the previous reduction drop to
  // local; the rest get their used bit cleared for the next round. Core
  // clauses are permanent and never scanned.
  if (options_.use_tiers) {
    std::size_t keep = 0;
    for (const ClauseRef cref : learnts_tier2_) {
      ClauseView c = View(cref);
      if (!c.used() && !Locked(cref)) {
        c.SetTier(kTierLocal);
        learnts_local_.push_back(cref);
        ++stats_.tier_demotions;
      } else {
        c.ClearUsed();
        learnts_tier2_[keep++] = cref;
      }
    }
    learnts_tier2_.resize(keep);
  }
  // Order local learnts worst-first: high LBD, then low activity. Binary
  // learnts never reach the arena (they live in the implication layer and
  // are kept forever), so every candidate here has >= 3 literals.
  // Each candidate carries a precomputed sort key — LBD in the high word,
  // inverted activity bits in the low word (non-negative floats compare
  // like their bit patterns) — so ordering never dereferences the arena,
  // and only the worst half needs separating, not a full sort.
  std::vector<std::pair<std::uint64_t, ClauseRef>> candidates;
  candidates.reserve(learnts_local_.size());
  for (const ClauseRef cref : learnts_local_) {
    ClauseView c = View(cref);
    if (c.Lbd() > 2 && !Locked(cref)) {
      const auto act_bits = std::bit_cast<std::uint32_t>(c.Activity());
      const std::uint64_t key = (static_cast<std::uint64_t>(c.Lbd()) << 32) |
                                (0xFFFFFFFFu - act_bits);
      candidates.emplace_back(key, cref);
    }
  }
  const std::size_t to_remove = candidates.size() / 2;
  std::nth_element(candidates.begin(), candidates.begin() + to_remove,
                   candidates.end(),
                   std::greater<std::pair<std::uint64_t, ClauseRef>>());
  for (std::size_t i = 0; i < to_remove; ++i) {
    RemoveClause(candidates[i].second);
    ++stats_.removed;
  }
  // Compact the local list (deleted clauses have their flag set).
  std::size_t keep = 0;
  for (const ClauseRef cref : learnts_local_) {
    if (!View(cref).deleted()) learnts_local_[keep++] = cref;
  }
  learnts_local_.resize(keep);
  max_learnts_ *= options_.learnt_size_inc;
  CollectGarbageIfNeeded();
}

void Solver::CollectGarbageIfNeeded() {
  if (!options_.gc_enabled || arena_.empty() ||
      wasted_words_ * 2 < arena_.size() ||
      arena_.size() < options_.gc_min_arena_words) {
    return;
  }
  CollectGarbage();
}

void Solver::CollectGarbage() {
  ++stats_.gc_runs;
  std::vector<std::uint32_t> new_arena;
  new_arena.reserve(arena_.size() - wasted_words_);
  const auto relocate = [&](ClauseRef old_ref) -> ClauseRef {
    ClauseView c = ClauseView{arena_.data() + old_ref};
    if (c.relocated()) return c.ForwardRef();
    assert(!c.deleted());
    const ClauseRef new_ref = static_cast<ClauseRef>(new_arena.size());
    const std::uint32_t words = c.Words();
    new_arena.insert(new_arena.end(), c.header, c.header + words);
    // Leave a forwarding reference behind; word1 of the stale copy is
    // repurposed (the live literals were copied out above).
    c.MarkRelocated(new_ref);
    return new_ref;
  };
  // Relocate in watch-traversal order: walking the watch lists in literal
  // order lays each clause next to the clauses Propagate will touch right
  // before and after it, so a watch-list scan walks forward through the
  // new arena instead of hopping in allocation order. Watcher entries are
  // redirected in place — blockers survive, nothing is rebuilt.
  for (auto& watch_list : watches_) {
    for (Watcher& w : watch_list) {
      w.cref = relocate(w.cref);
    }
  }
  // Every live clause is watched twice, so the list fix-ups below resolve
  // through the forwarding references left by the traversal above.
  for (std::vector<ClauseRef>* list :
       {&clauses_, &learnts_core_, &learnts_tier2_, &learnts_local_}) {
    for (ClauseRef& cref : *list) cref = relocate(cref);
  }
  // Remap reasons of currently assigned variables. Binary reasons are
  // packed literals, not arena references — they survive GC untouched.
  for (const Lit p : trail_) {
    ClauseRef& r = reason_[static_cast<std::size_t>(p.var())];
    if (r != kNoClause && !IsBinaryReason(r)) {
      r = relocate(r);
    }
  }
  arena_ = std::move(new_arena);
  wasted_words_ = 0;
}

void Solver::VivifyRound() {
  assert(DecisionLevel() == 0);
  if (!ok_ || options_.deterministic || !options_.vivify) return;
  RebucketLearnts();
  if (learnts_tier2_.empty()) return;
  // Budgeted pass over tier2 with a rolling cursor: every clause gets its
  // turn across successive rounds even when one round's propagation budget
  // runs out early.
  const std::uint64_t start = stats_.propagations;
  const auto budget =
      static_cast<std::uint64_t>(options_.vivify_propagation_budget);
  std::size_t examined = 0;
  while (examined < learnts_tier2_.size() &&
         stats_.propagations - start < budget) {
    if (vivify_cursor_ >= learnts_tier2_.size()) vivify_cursor_ = 0;
    const ClauseRef cref = learnts_tier2_[vivify_cursor_++];
    ++examined;
    if (View(cref).deleted()) continue;
    if (!VivifyClause(cref)) return;  // refuted the formula
  }
  // Vivified clauses may have left the arena (shrunk to binary/unit) or
  // been dropped as satisfied; compact the list.
  std::size_t keep = 0;
  for (const ClauseRef cref : learnts_tier2_) {
    if (!View(cref).deleted()) learnts_tier2_[keep++] = cref;
  }
  learnts_tier2_.resize(keep);
}

bool Solver::VivifyClause(ClauseRef cref) {
  ClauseView c = View(cref);
  if (Locked(cref)) return true;
  vivify_lits_.assign(c.lits(), c.lits() + c.size());
  // The clause itself must not take part in the propagations below (it
  // could otherwise "derive" its own literals), so detach it first.
  DetachClause(cref);
  vivify_kept_.clear();
  bool satisfied_at_root = false;
  for (const Lit l : vivify_lits_) {
    const LBool value = Value(l);
    if (value == LBool::kTrue) {
      if (LevelOf(l.var()) == 0) {
        // Satisfied at the root: the clause is dead weight either way.
        satisfied_at_root = true;
        break;
      }
      // The assumed negations imply l, so (kept \/ l) subsumes the
      // clause: keep l, drop the remaining tail.
      vivify_kept_.push_back(l);
      break;
    }
    if (value == LBool::kFalse) {
      // The assumed negations (or the root trail) imply ~l: under the
      // negation of (kept \/ tail-without-l), unit propagation falsifies
      // the original clause, so dropping l is a RUP strengthening.
      continue;
    }
    NewDecisionLevel();
    UncheckedEnqueue(~l, kNoClause);
    if (Propagate() != kNoClause) {
      // Conflict under ~kept, ~l: (kept \/ l) is a RUP consequence.
      vivify_kept_.push_back(l);
      break;
    }
    vivify_kept_.push_back(l);
  }
  Backtrack(0);
  if (satisfied_at_root) {
    FreeClause(cref);
    ++stats_.removed;
    return true;
  }
  if (vivify_kept_.size() == vivify_lits_.size()) {
    AttachClause(cref);
    return true;
  }
  ++stats_.clauses_vivified;
  stats_.lits_removed_vivify += vivify_lits_.size() - vivify_kept_.size();
  if (proof_log_) proof_log_->push_back(vivify_kept_);
  if (vivify_kept_.size() >= 3) {
    // Rewrite in place (already detached); the tail words become arena
    // garbage accounted to the GC trigger.
    wasted_words_ += c.size() - vivify_kept_.size();
    c.SetSize(static_cast<std::uint32_t>(vivify_kept_.size()));
    for (std::size_t i = 0; i < vivify_kept_.size(); ++i) {
      c[static_cast<std::uint32_t>(i)] = vivify_kept_[i];
    }
    const std::uint32_t lbd =
        std::min(c.Lbd(), static_cast<std::uint32_t>(vivify_kept_.size()));
    c.Lbd() = lbd;
    AttachClause(cref);
    return true;
  }
  FreeClause(cref);
  if (vivify_kept_.size() == 2) {
    AttachBinary(vivify_kept_[0], vivify_kept_[1]);
    return true;
  }
  if (vivify_kept_.size() == 1) {
    const LBool value = Value(vivify_kept_[0]);
    if (value == LBool::kTrue) return true;
    if (value == LBool::kFalse || !ok_) {
      ok_ = false;
    } else {
      UncheckedEnqueue(vivify_kept_[0], kNoClause);
      ok_ = (Propagate() == kNoClause);
    }
  } else {
    ok_ = false;  // every literal refuted at the root
  }
  if (!ok_ && proof_log_) proof_log_->push_back(Clause{});
  return ok_;
}

void Solver::ExportLearnt(const Clause& learnt, std::uint32_t lbd) {
  if (!exchange_) return;
  if (learnt.size() > 2 && lbd > options_.share_max_lbd) return;
  // Learnts over activation variables are local bookkeeping: a peer's
  // NumberingKey covers only the base layout, so a clause mentioning a
  // session's selector literal would be gibberish (or worse, unsound once
  // the group is retired here but alive there) on the other side.
  if (activation_begin_ >= 0) {
    for (const Lit l : learnt) {
      if (l.var() >= activation_begin_) {
        ++stats_.activation_blocked_exports;
        return;
      }
    }
  }
  // Remember the literal hash (it is identity under arena GC); a clause
  // this solver has already imported is not echoed back, and a clause it
  // exported will be recognized if the exchange ever offers it back.
  if (!exchange_seen_.insert(ClauseExchange::HashClause(learnt)).second) {
    return;
  }
  exchange_->Publish(exchange_participant_, learnt, lbd);
  ++stats_.exported_clauses;
}

std::size_t Solver::ImportClauses() {
  // Imports splice foreign derivations into the database, which a local
  // RUP log cannot justify — skip them whenever a proof is being recorded.
  if (!exchange_ || !ok_ || proof_log_) return 0;
  assert(DecisionLevel() == 0);
  std::vector<SharedClause> buffer;
  exchange_->Collect(exchange_participant_, &buffer);
  std::size_t imported = 0;
  for (const SharedClause& shared : buffer) {
    bool in_range = true;
    for (const Lit l : shared.lits) {
      if (!l.IsValid() || l.var() >= num_vars()) {
        in_range = false;
        break;
      }
    }
    if (!in_range) continue;
    // Deduplicate by literal hash: the exchange's own FIFO dedup set is
    // reset periodically, so a clause this solver exported (or already
    // imported) can come back under a fresh sequence number — and after a
    // GC its original has a different arena address, so no reference
    // comparison can catch that. The literal hash can.
    if (!exchange_seen_.insert(ClauseExchange::HashClause(shared.lits))
             .second) {
      ++stats_.import_duplicates;
      continue;
    }
    ++imported;
    if (!AddImportedClause(shared.lits, shared.lbd)) break;  // refuted
  }
  stats_.imported_clauses += imported;
  return imported;
}

double Solver::Luby(double y, int i) {
  // Find the finite subsequence containing index i, and its position.
  int size = 1;
  int seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

LBool Solver::Search(std::int64_t conflict_budget, const Deadline& deadline,
                     const mc::Atomic<bool>* stop) {
  std::int64_t conflicts_here = 0;
  Clause learnt;
  for (;;) {
    // Phase timing is observer-gated: without one attached, the loop pays
    // a couple of predictable branches per pass and zero clock reads.
    // Re-evaluated every pass (not hoisted) so an observer that detaches
    // itself mid-solve — e.g. from its own OnRestartSample callback —
    // stops the phase clocks immediately instead of at the next restart.
    const bool timed = observer_ != nullptr;
    ClauseRef confl;
    if (timed) {
      Stopwatch bcp_watch;
      confl = Propagate();
      stats_.bcp_seconds += bcp_watch.Seconds();
    } else {
      confl = Propagate();
    }
    if (confl != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (DecisionLevel() == 0) {
        if (proof_log_) proof_log_->push_back(Clause{});
        return LBool::kFalse;
      }
      int backtrack_level = 0;
      std::uint32_t lbd = 0;
      if (timed) {
        Stopwatch analyze_watch;
        Analyze(confl, learnt, backtrack_level, lbd);
        stats_.analyze_seconds += analyze_watch.Seconds();
      } else {
        Analyze(confl, learnt, backtrack_level, lbd);
      }
      if (proof_log_) proof_log_->push_back(learnt);
      ExportLearnt(learnt, lbd);
      Backtrack(backtrack_level);
      if (learnt.size() == 1) {
        UncheckedEnqueue(learnt[0], kNoClause);
      } else if (learnt.size() == 2) {
        // Binary learnts go straight to the implication layer: no arena
        // slot, no activity/LBD bookkeeping, never deleted.
        AttachBinary(learnt[0], learnt[1]);
        UncheckedEnqueue(learnt[0], BinaryReason(learnt[1]));
      } else {
        const ClauseRef cref = AllocClause(learnt, /*learnt=*/true);
        RegisterLearnt(cref, lbd);
        AttachClause(cref);
        BumpClauseActivity(View(cref));
        UncheckedEnqueue(learnt[0], cref);
      }
      ++stats_.learned;
      ++stats_.lbd_histogram[std::min<std::size_t>(
          lbd, SolverStats::kLbdHistogramSize - 1)];
      DecayVarActivity();
      DecayClauseActivity();
      if ((stats_.conflicts & 255u) == 0 &&
          (deadline.Expired() || (stop && stop->load(std::memory_order_relaxed)))) {
        budget_exhausted_ = true;
        return LBool::kUndef;
      }
    } else {
      if (conflicts_here >= conflict_budget) {
        Backtrack(0);
        return LBool::kUndef;  // restart
      }
      if (deadline.Expired() ||
          (stop && stop->load(std::memory_order_relaxed))) {
        budget_exhausted_ = true;
        return LBool::kUndef;
      }
      if (DecisionLevel() == 0) SimplifyAtLevelZero();
      if (static_cast<double>(learnts_local_.size()) -
              static_cast<double>(trail_.size()) >=
          max_learnts_) {
        if (timed) {
          Stopwatch reduce_watch;
          ReduceDb();
          stats_.inprocess_seconds += reduce_watch.Seconds();
        } else {
          ReduceDb();
        }
      }
      // Assert pending assumptions first, one decision level each.
      Lit next = kUndefLit;
      while (DecisionLevel() < static_cast<int>(assumptions_.size())) {
        const Lit p =
            assumptions_[static_cast<std::size_t>(DecisionLevel())];
        if (Value(p) == LBool::kTrue) {
          NewDecisionLevel();  // already satisfied: dummy level
        } else if (Value(p) == LBool::kFalse) {
          conflict_under_assumptions_ = true;
          return LBool::kFalse;
        } else {
          next = p;
          break;
        }
      }
      if (!next.IsValid()) {
        ++stats_.decisions;
        next = PickBranchLit();
        if (!next.IsValid()) return LBool::kTrue;  // all variables assigned
      }
      NewDecisionLevel();
      UncheckedEnqueue(next, kNoClause);
    }
  }
}

SolveResult Solver::Solve(Deadline deadline, const mc::Atomic<bool>* stop) {
  return SolveWithAssumptions({}, deadline, stop);
}

void Solver::EmitObserverSample(bool final_flush) {
  SolverRestartSample sample;
  sample.restart_index = stats_.restarts;
  sample.final_flush = final_flush;
  sample.window = stats_.Since(observer_baseline_);
  sample.tiers = TierSizes();
  observer_baseline_ = stats_;
  observer_->OnRestartSample(sample);
}

bool Solver::CheckInvariants(std::string* error) const {
  const auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = "solver invariant violated: " + std::move(message);
    }
    return false;
  };
  const std::size_t n = level_.size();

  // Per-variable and per-literal array sizes.
  if (level_.size() != n || reason_.size() != n || activity_.size() != n ||
      saved_phase_.size() != n || lit_value_.size() != 2 * n) {
    return fail("per-variable arrays disagree on the variable count");
  }
  if (watches_.size() != 2 * n || bin_overflow_.size() != 2 * n ||
      bin_overflow_nonempty_.size() != 2 * n ||
      bin_offsets_.size() != 2 * n + 1) {
    return fail("watch lists not sized to 2 * num_vars");
  }
  for (std::size_t code = 0; code < 2 * n; ++code) {
    if ((bin_overflow_nonempty_[code] != 0) != !bin_overflow_[code].empty()) {
      return fail("binary overflow non-empty flag out of sync for code " +
                  std::to_string(code));
    }
  }
  for (std::size_t code = 0; code + 1 < bin_offsets_.size(); ++code) {
    if (bin_offsets_[code] > bin_offsets_[code + 1] ||
        bin_offsets_[code + 1] > bin_flat_.size()) {
      return fail("binary CSR offsets are not a partition of the flat buffer");
    }
  }

  // The two per-literal value entries of every variable are exact
  // negations of each other (both are written on enqueue/unassign).
  for (std::size_t v = 0; v < n; ++v) {
    const LBool pos = lit_value_[2 * v];
    const LBool neg = lit_value_[2 * v + 1];
    const LBool expect_neg = pos == LBool::kUndef
                                 ? LBool::kUndef
                                 : (pos == LBool::kTrue ? LBool::kFalse
                                                        : LBool::kTrue);
    if (neg != expect_neg) {
      return fail("literal value entries disagree between polarities of x" +
                  std::to_string(v));
    }
  }

  // Trail: true literals, no repeats, level segments match trail_lim_.
  if (qhead_ > trail_.size() || qhead_bin_ > trail_.size()) {
    return fail("propagation head beyond the trail");
  }
  if (trail_.size() > n) return fail("trail longer than the variable count");
  std::size_t assigned = 0;
  for (std::size_t v = 0; v < n; ++v) assigned += Value(static_cast<Var>(v)) != LBool::kUndef;
  if (assigned != trail_.size()) {
    return fail("assigned variables (" + std::to_string(assigned) +
                ") != trail length (" + std::to_string(trail_.size()) + ")");
  }
  std::size_t previous_lim = 0;
  for (const int lim : trail_lim_) {
    if (lim < 0 || static_cast<std::size_t>(lim) > trail_.size() ||
        static_cast<std::size_t>(lim) < previous_lim) {
      return fail("trail_lim_ not a nondecreasing partition of the trail");
    }
    previous_lim = static_cast<std::size_t>(lim);
  }
  std::vector<char> on_trail(n, 0);
  std::size_t next_level = 0;
  for (std::size_t i = 0; i < trail_.size(); ++i) {
    const Lit p = trail_[i];
    if (!p.IsValid() || static_cast<std::size_t>(p.var()) >= n) {
      return fail("trail entry " + std::to_string(i) + " is invalid");
    }
    const std::size_t v = static_cast<std::size_t>(p.var());
    if (on_trail[v] != 0) {
      return fail("variable x" + std::to_string(p.var()) + " on trail twice");
    }
    on_trail[v] = 1;
    if (Value(p) != LBool::kTrue) {
      return fail("trail literal " + p.ToString() + " is not assigned true");
    }
    while (next_level < trail_lim_.size() &&
           static_cast<std::size_t>(trail_lim_[next_level]) == i) {
      ++next_level;
      if (reason_[v] != kNoClause) {
        return fail("decision literal " + p.ToString() + " has a reason");
      }
    }
    if (level_[v] != static_cast<int>(next_level)) {
      return fail("trail literal " + p.ToString() + " at level " +
                  std::to_string(level_[v]) + " inside segment " +
                  std::to_string(next_level));
    }
  }

  // Reason soundness for propagated (non-root) assignments. A stale arena
  // offset left behind by GC relocation surfaces here: the referenced
  // header would be deleted, relocated, or imply the wrong literal.
  for (std::size_t v = 0; v < n; ++v) {
    if (Value(static_cast<Var>(v)) == LBool::kUndef || level_[v] == 0) continue;
    const ClauseRef r = reason_[v];
    if (r == kNoClause) continue;  // decision (or reason nulled on removal)
    const Lit implied = Lit::Make(static_cast<Var>(v),
                                  Value(static_cast<Var>(v)) == LBool::kFalse);
    if (IsBinaryReason(r)) {
      const Lit other = BinaryReasonLit(r);
      if (!other.IsValid() || static_cast<std::size_t>(other.var()) >= n ||
          Value(other) != LBool::kFalse ||
          LevelOf(other.var()) > level_[v]) {
        return fail("binary reason of " + implied.ToString() +
                    " is not a false earlier literal");
      }
    } else {
      if (r >= arena_.size()) {
        return fail("reason of " + implied.ToString() +
                    " is a stale arena offset (out of bounds)");
      }
      const ClauseView c{const_cast<std::uint32_t*>(arena_.data()) + r};
      if (c.deleted() || c.relocated() || c.size() < 2 || c[0] != implied) {
        return fail("reason clause of " + implied.ToString() +
                    " is stale or does not imply it");
      }
      for (std::uint32_t i = 1; i < c.size(); ++i) {
        if (Value(c[i]) != LBool::kFalse || LevelOf(c[i].var()) > level_[v]) {
          return fail("reason clause of " + implied.ToString() +
                      " has a non-false tail literal");
        }
      }
    }
  }

  // Unassigned variables must be available to the decision heap.
  for (std::size_t v = 0; v < n; ++v) {
    if (Value(static_cast<Var>(v)) == LBool::kUndef && !order_.Contains(static_cast<Var>(v))) {
      return fail("unassigned variable x" + std::to_string(v) +
                  " missing from the decision heap");
    }
  }

  // Binary layer: every implication entry (frozen CSR range + overflow)
  // has its mirror, counts agree.
  std::uint64_t binary_entries = 0;
  std::uint64_t overflow_entries = 0;
  std::unordered_map<std::uint64_t, std::int64_t> mirror_balance;
  for (std::size_t code = 0; code < 2 * n; ++code) {
    const Lit* ranges[2][2];
    ranges[0][0] = bin_flat_.data() + bin_offsets_[code];
    ranges[0][1] = bin_flat_.data() + bin_offsets_[code + 1];
    ranges[1][0] = bin_overflow_[code].data();
    ranges[1][1] = ranges[1][0] + bin_overflow_[code].size();
    overflow_entries += bin_overflow_[code].size();
    for (int r = 0; r < 2; ++r) {
      for (const Lit* it = ranges[r][0]; it != ranges[r][1]; ++it) {
        const Lit q = *it;
        if (!q.IsValid() || static_cast<std::size_t>(q.var()) >= n) {
          return fail("binary implication list " + std::to_string(code) +
                      " holds an invalid literal");
        }
        ++binary_entries;
        // Entry q in list[p.code()] encodes clause (~p \/ q); its mirror
        // is entry ~p in list[(~q).code()]. Count each direction with
        // opposite signs under a direction-independent key.
        const auto pc = static_cast<std::uint64_t>(code);
        const auto qc = static_cast<std::uint64_t>(q.code());
        const std::uint64_t mc = qc ^ 1ull;  // mirror list index
        const std::uint64_t mq = pc ^ 1ull;  // mirror entry code
        const std::uint64_t forward = pc * 2 * n + qc;
        const std::uint64_t backward = mc * 2 * n + mq;
        if (forward <= backward) {
          ++mirror_balance[forward];
        } else {
          --mirror_balance[backward];
        }
      }
    }
  }
  if (overflow_entries != bin_overflow_entries_) {
    return fail("binary overflow entry counter out of sync");
  }
  if (binary_entries != 2 * num_binary_clauses_) {
    return fail("binary implication entries (" +
                std::to_string(binary_entries) +
                ") != 2 * num_binary_clauses_ (" +
                std::to_string(num_binary_clauses_) + " clauses)");
  }
  for (const auto& [key, balance] : mirror_balance) {
    if (balance != 0) {
      return fail("binary implication without its mirror entry (list " +
                  std::to_string(key / (2 * n)) + ", code " +
                  std::to_string(key % (2 * n)) + ")");
    }
  }

  // Arena clauses: live lists hold valid, undeleted, unrelocated clauses
  // with flags and tier tags consistent with their list and stored LBD,
  // each watched on exactly its first two literals.
  std::unordered_set<ClauseRef> live;
  std::uint64_t expected_watchers = 0;
  const std::vector<ClauseRef>* lists[4] = {&clauses_, &learnts_core_,
                                            &learnts_tier2_, &learnts_local_};
  for (int pass = 0; pass < 4; ++pass) {
    for (const ClauseRef cref : *lists[pass]) {
      if (cref >= arena_.size()) return fail("clause reference out of arena");
      const ClauseView c{const_cast<std::uint32_t*>(arena_.data()) + cref};
      if (static_cast<std::uint64_t>(cref) + c.Words() > arena_.size()) {
        return fail("clause overruns the arena");
      }
      if (c.deleted() || c.relocated()) {
        return fail("deleted/relocated clause still in a live list "
                    "(stale reference after GC)");
      }
      if (c.size() < 3) {
        return fail("arena clause of size " + std::to_string(c.size()) +
                    " (binaries belong to the binary layer)");
      }
      if (c.learnt() != (pass >= 1)) {
        return fail("clause learnt flag disagrees with its list");
      }
      if (c.learnt()) {
        // The tag is authoritative between rebuckets; once clean, the
        // holding list must match, and the tag must never be *better*
        // than the stored LBD warrants (demotion only moves down).
        if (!tiers_dirty_ &&
            c.tier() != static_cast<std::uint32_t>(pass - 1)) {
          return fail("learnt tier tag " + std::to_string(c.tier()) +
                      " disagrees with its tier list");
        }
        if (c.Lbd() == 0 || c.Lbd() > c.size()) {
          return fail("learnt clause stores LBD " + std::to_string(c.Lbd()) +
                      " outside [1, size]");
        }
        if (c.tier() < TierForLbd(c.Lbd())) {
          return fail("learnt tier tag " + std::to_string(c.tier()) +
                      " better than its stored LBD " +
                      std::to_string(c.Lbd()) + " warrants");
        }
      }
      if (!live.insert(cref).second) {
        return fail("clause listed twice");
      }
      for (std::uint32_t i = 0; i < c.size(); ++i) {
        if (!c[i].IsValid() || static_cast<std::size_t>(c[i].var()) >= n) {
          return fail("arena clause holds an invalid literal");
        }
      }
      for (int w = 0; w < 2; ++w) {
        const auto& watch_list =
            watches_[static_cast<std::size_t>((~c[w]).code())];
        const auto hits = std::count_if(
            watch_list.begin(), watch_list.end(),
            [cref](const Watcher& watcher) { return watcher.cref == cref; });
        const long expected = c[0] == c[1] ? 2 : 1;
        if (hits != expected) {
          return fail("clause watched " + std::to_string(hits) +
                      " time(s) on literal " + c[w].ToString() +
                      ", expected " + std::to_string(expected));
        }
      }
      expected_watchers += 2;
    }
  }
  std::uint64_t actual_watchers = 0;
  for (const auto& watch_list : watches_) {
    actual_watchers += watch_list.size();
    for (const Watcher& watcher : watch_list) {
      if (live.count(watcher.cref) == 0) {
        return fail("watcher holds a stale clause offset "
                    "(outside the live lists)");
      }
      // The blocking literal must belong to its clause; GC relocation and
      // in-place strengthening both preserve this.
      const ClauseView c{const_cast<std::uint32_t*>(arena_.data()) +
                         watcher.cref};
      bool member = false;
      for (std::uint32_t i = 0; i < c.size() && !member; ++i) {
        member = c[i] == watcher.blocker;
      }
      if (!member) {
        return fail("cached blocking literal " + watcher.blocker.ToString() +
                    " is not a literal of its clause");
      }
    }
  }
  if (actual_watchers != expected_watchers) {
    return fail("total watcher entries (" + std::to_string(actual_watchers) +
                ") != 2 * live clauses (" +
                std::to_string(expected_watchers / 2) + ")");
  }
  return true;
}

SolveResult Solver::SolveWithAssumptions(const std::vector<Lit>& assumptions,
                                         Deadline deadline,
                                         const mc::Atomic<bool>* stop) {
  Stopwatch stopwatch;
  model_.clear();
  budget_exhausted_ = false;
  conflict_under_assumptions_ = false;
  assumptions_ = assumptions;
  if (!ok_) return SolveResult::kUnsat;

  max_learnts_ =
      std::max(1000.0, static_cast<double>(clauses_.size() +
                                           num_binary_clauses_) *
                           options_.learnt_size_factor);
  LBool status = LBool::kUndef;
  int restarts = 0;
  while (status == LBool::kUndef && !budget_exhausted_) {
    Stopwatch inprocess_watch;
    // Restart boundary: the solver is at level 0, so the tier lists can be
    // rebucketed, shared clauses spliced into the database, and tier2
    // clauses vivified before the next descent.
    RebucketLearnts();
    // Learnt binaries accumulate in the scattered overflow lists; once
    // enough pile up, fold them into the frozen CSR so the propagation
    // fast path scans one contiguous range again.
    if (bin_overflow_entries_ > 1024) {
      CompactBinaryLayer(/*drop_satisfied=*/true);
    }
    if (options_.debug_check_invariants) {
      std::string violation;
      if (!CheckInvariants(&violation)) {
        std::fprintf(stderr, "%s (restart %d)\n", violation.c_str(),
                     restarts);
        std::abort();
      }
    }
    if (exchange_ != nullptr) {
      ImportClauses();
      if (!ok_) {
        status = LBool::kFalse;
        break;
      }
    }
    if (options_.vivify && !options_.deterministic && restarts > 0 &&
        options_.vivify_interval > 0 &&
        restarts % options_.vivify_interval == 0) {
      VivifyRound();
      if (!ok_) {
        status = LBool::kFalse;
        break;
      }
    }
    if (observer_ != nullptr) {
      stats_.inprocess_seconds += inprocess_watch.Seconds();
    }
    const double base =
        options_.luby_restarts
            ? Luby(2.0, restarts)
            : std::pow(options_.restart_growth, restarts);
    const auto budget = static_cast<std::int64_t>(
        base * static_cast<double>(options_.restart_base));
    status = Search(budget, deadline, stop);
    ++restarts;
    ++stats_.restarts;
    if (observer_ != nullptr && status == LBool::kUndef &&
        !budget_exhausted_) {
      EmitObserverSample(/*final_flush=*/false);
    }
  }
  stats_.solve_seconds += stopwatch.Seconds();
  // Flush the partial window since the last restart so observer-side
  // totals cover the whole solve (the telemetry-consistency pass depends
  // on the sum of windows equaling the stats delta exactly).
  if (observer_ != nullptr) EmitObserverSample(/*final_flush=*/true);

  if (status == LBool::kTrue) {
    model_.resize(static_cast<std::size_t>(num_vars()));
    for (int v = 0; v < num_vars(); ++v) {
      model_[static_cast<std::size_t>(v)] =
          (Value(static_cast<Var>(v)) == LBool::kTrue);
    }
    Backtrack(0);
    return SolveResult::kSat;
  }
  if (status == LBool::kFalse) {
    // A conflict among the assumptions leaves the solver reusable; a
    // top-level conflict refutes the formula outright.
    if (!conflict_under_assumptions_) ok_ = false;
    Backtrack(0);
    return SolveResult::kUnsat;
  }
  Backtrack(0);
  return SolveResult::kUnknown;
}

}  // namespace satfr::sat
