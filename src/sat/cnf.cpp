#include "sat/cnf.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace satfr::sat {

void Cnf::AddClause(Clause clause) {
  for (const Lit l : clause) {
    assert(l.IsValid());
    assert(l.var() < num_vars_ && "literal on unallocated variable");
    (void)l;
  }
  clauses_.push_back(std::move(clause));
}

void Cnf::Append(const Cnf& other, int var_offset) {
  EnsureVars(var_offset + other.num_vars());
  clauses_.reserve(clauses_.size() + other.clauses_.size());
  for (const Clause& clause : other.clauses_) {
    Clause shifted;
    shifted.reserve(clause.size());
    for (const Lit l : clause) {
      shifted.push_back(Lit::Make(l.var() + var_offset, l.negated()));
    }
    clauses_.push_back(std::move(shifted));
  }
}

std::size_t Cnf::num_literals() const {
  std::size_t total = 0;
  for (const Clause& clause : clauses_) total += clause.size();
  return total;
}

std::size_t Cnf::ApproxHeapBytes() const {
  std::size_t bytes = clauses_.capacity() * sizeof(Clause);
  for (const Clause& clause : clauses_) {
    bytes += clause.capacity() * sizeof(Lit);
  }
  return bytes;
}

std::size_t Cnf::NumClausesOfSize(std::size_t length) const {
  std::size_t count = 0;
  for (const Clause& clause : clauses_) count += clause.size() == length;
  return count;
}

std::vector<std::size_t> Cnf::ClauseLengthHistogram() const {
  std::vector<std::size_t> histogram;
  for (const Clause& clause : clauses_) {
    if (clause.size() >= histogram.size()) {
      histogram.resize(clause.size() + 1, 0);
    }
    ++histogram[clause.size()];
  }
  return histogram;
}

std::size_t Cnf::NormalizeClauses() {
  const std::size_t before = clauses_.size();
  std::set<Clause> unique;
  std::vector<Clause> kept;
  kept.reserve(clauses_.size());
  for (Clause& clause : clauses_) {
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    bool tautology = false;
    for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
      if (clause[i].var() == clause[i + 1].var()) {
        tautology = true;
        break;
      }
    }
    if (tautology) continue;
    if (unique.insert(clause).second) {
      kept.push_back(std::move(clause));
    }
  }
  clauses_ = std::move(kept);
  return before - clauses_.size();
}

bool Cnf::IsSatisfiedBy(const std::vector<bool>& assignment) const {
  for (const Clause& clause : clauses_) {
    bool satisfied = false;
    for (const Lit l : clause) {
      assert(static_cast<std::size_t>(l.var()) < assignment.size());
      if (assignment[static_cast<std::size_t>(l.var())] != l.negated()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::string Cnf::ToString() const {
  std::string out = "p cnf " + std::to_string(num_vars_) + " " +
                    std::to_string(clauses_.size()) + "\n";
  for (const Clause& clause : clauses_) {
    for (std::size_t i = 0; i < clause.size(); ++i) {
      if (i > 0) out.push_back(' ');
      out += clause[i].ToString();
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace satfr::sat
