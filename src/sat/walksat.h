// WalkSAT-style stochastic local search (Selman/Kautz style).
//
// The paper's routable configurations produce satisfiable formulas that
// modern solvers dispatch "in a fraction of a second"; the local-search
// line of work it cites (Selman et al. '92; Frisch & Peugniez; Prestwich)
// attacks exactly these instances. This solver complements the CDCL engine:
// it can only answer SAT (it is incomplete — kUnknown means "gave up", not
// UNSAT), so the flow layer uses it as an optional accelerator for
// routable-width queries and as an extra portfolio member.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/rng.h"
#include "mc/shim.h"
#include "common/stopwatch.h"
#include "sat/cnf.h"
#include "sat/solver.h"  // SolveResult

namespace satfr::sat {

struct WalkSatOptions {
  /// Probability of a random walk move (vs greedy min-break) on a variable
  /// from an unsatisfied clause.
  double noise = 0.5;
  /// Flips per try before restarting with a fresh random assignment.
  std::uint64_t flips_per_try = 100000;
  /// Number of random restarts; 0 means "until deadline".
  int max_tries = 0;
  std::uint64_t seed = 0xC0FFEE;
};

struct WalkSatStats {
  std::uint64_t flips = 0;
  std::uint64_t tries = 0;
  double solve_seconds = 0.0;
};

class WalkSat {
 public:
  explicit WalkSat(const Cnf& cnf, WalkSatOptions options = {});

  /// Runs local search. Returns kSat with a model, or kUnknown when the
  /// budget (tries/deadline/stop flag) is exhausted. Never returns kUnsat.
  SolveResult Solve(Deadline deadline = Deadline(),
                    const mc::Atomic<bool>* stop = nullptr);

  const std::vector<bool>& model() const { return assignment_; }
  const WalkSatStats& stats() const { return stats_; }

 private:
  void RandomizeAssignment();
  void RebuildState();
  /// Number of clauses that would become unsatisfied if v flipped.
  int BreakCount(Var v) const;
  void Flip(Var v);

  const Cnf& cnf_;
  WalkSatOptions options_;
  WalkSatStats stats_;
  Rng rng_;

  std::vector<bool> assignment_;
  // Clause bookkeeping.
  std::vector<int> true_literal_count_;       // per clause
  std::vector<std::size_t> unsat_clauses_;    // indices of unsat clauses
  std::vector<int> unsat_position_;           // clause -> index in ^ or -1
  std::vector<std::vector<std::size_t>> occurrences_;  // var -> clauses
};

}  // namespace satfr::sat
