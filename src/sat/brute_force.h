// Reference SAT decision procedures for testing.
//
// Two deliberately simple, obviously-correct procedures used to cross-check
// the CDCL engine in unit and property tests:
//   * SolveByEnumeration — tries all 2^n assignments (n <= 24).
//   * SolveByDpll        — plain recursive DPLL with unit propagation; no
//                          learning, no heuristics beyond first-unassigned.
#pragma once

#include <optional>
#include <vector>

#include "sat/cnf.h"

namespace satfr::sat {

/// Exhaustive check; returns a model if one exists, std::nullopt otherwise.
/// Precondition: cnf.num_vars() <= 24.
std::optional<std::vector<bool>> SolveByEnumeration(const Cnf& cnf);

/// Recursive DPLL; returns a model if one exists, std::nullopt otherwise.
/// Exponential worst case — intended for test-sized formulas only.
std::optional<std::vector<bool>> SolveByDpll(const Cnf& cnf);

}  // namespace satfr::sat
