#include "sat/preprocess.h"

#include <algorithm>
#include <cassert>

namespace satfr::sat {
namespace {

// Working clause set with alive flags and per-literal occurrence lists.
class Workset {
 public:
  Workset(const Cnf& cnf, std::vector<LBool>& forced,
          PreprocessStats& stats)
      : num_vars_(cnf.num_vars()), forced_(forced), stats_(stats) {
    clauses_.reserve(cnf.num_clauses());
    for (const Clause& clause : cnf.clauses()) {
      Clause sorted = clause;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      bool tautology = false;
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        if (sorted[i].var() == sorted[i + 1].var()) {
          tautology = true;
          break;
        }
      }
      if (tautology) continue;
      clauses_.push_back(std::move(sorted));
    }
    alive_.assign(clauses_.size(), true);
  }

  bool contradiction() const { return contradiction_; }

  LBool Value(Lit l) const {
    return LitValue(l, forced_[static_cast<std::size_t>(l.var())]);
  }

  void Force(Lit l) {
    const LBool current = Value(l);
    if (current == LBool::kTrue) return;
    if (current == LBool::kFalse) {
      contradiction_ = true;
      return;
    }
    forced_[static_cast<std::size_t>(l.var())] =
        l.negated() ? LBool::kFalse : LBool::kTrue;
    ++stats_.forced_units;
  }

  /// Applies the current forced assignment to every clause; derives new
  /// units to fixpoint. Returns true if anything changed.
  bool PropagateUnits() {
    bool changed_any = false;
    bool changed = true;
    while (changed && !contradiction_) {
      changed = false;
      for (std::size_t c = 0; c < clauses_.size(); ++c) {
        if (!alive_[c]) continue;
        Clause& clause = clauses_[c];
        bool satisfied = false;
        std::size_t keep = 0;
        for (const Lit l : clause) {
          const LBool v = Value(l);
          if (v == LBool::kTrue) {
            satisfied = true;
            break;
          }
          if (v == LBool::kUndef) clause[keep++] = l;
        }
        if (satisfied) {
          alive_[c] = false;
          ++stats_.removed_satisfied;
          changed = changed_any = true;
          continue;
        }
        if (keep != clause.size()) {
          clause.resize(keep);
          changed = changed_any = true;
        }
        if (clause.empty()) {
          contradiction_ = true;
          return true;
        }
        if (clause.size() == 1) {
          Force(clause[0]);
          alive_[c] = false;  // absorbed into `forced`
          changed = changed_any = true;
        }
      }
    }
    return changed_any;
  }

  void RebuildOccurrences() {
    occurrences_.assign(static_cast<std::size_t>(2 * num_vars_), {});
    for (std::size_t c = 0; c < clauses_.size(); ++c) {
      if (!alive_[c]) continue;
      for (const Lit l : clauses_[c]) {
        occurrences_[static_cast<std::size_t>(l.code())].push_back(c);
      }
    }
  }

  /// Clauses (ids) that might be supersets of `cube`: the occurrence list
  /// of its rarest literal.
  const std::vector<std::size_t>& CandidatesFor(const Clause& cube) const {
    const std::vector<std::size_t>* best = nullptr;
    for (const Lit l : cube) {
      const auto& list = occurrences_[static_cast<std::size_t>(l.code())];
      if (!best || list.size() < best->size()) best = &list;
    }
    static const std::vector<std::size_t> kEmpty;
    return best ? *best : kEmpty;
  }

  static bool IsSubset(const Clause& small, const Clause& big) {
    // Both sorted.
    std::size_t i = 0;
    for (const Lit l : big) {
      if (i == small.size()) return true;
      if (small[i] == l) ++i;
    }
    return i == small.size();
  }

  /// Removes every live clause strictly subsumed by another live clause.
  bool SubsumeAll() {
    RebuildOccurrences();
    bool changed = false;
    for (std::size_t c = 0; c < clauses_.size(); ++c) {
      if (!alive_[c] || clauses_[c].empty()) continue;
      for (const std::size_t d : CandidatesFor(clauses_[c])) {
        if (d == c || !alive_[d] || !alive_[c]) continue;
        if (clauses_[d].size() < clauses_[c].size()) continue;
        if (clauses_[d].size() == clauses_[c].size() && d < c) {
          continue;  // equal clauses: keep the earlier one
        }
        if (IsSubset(clauses_[c], clauses_[d])) {
          alive_[d] = false;
          ++stats_.removed_subsumed;
          changed = true;
        }
      }
    }
    return changed;
  }

  /// Self-subsuming resolution: if C with one literal flipped is a subset
  /// of D, the flipped literal can be deleted from D.
  bool StrengthenAll() {
    RebuildOccurrences();
    bool changed = false;
    for (std::size_t c = 0; c < clauses_.size(); ++c) {
      if (!alive_[c]) continue;
      const Clause base = clauses_[c];  // copy: clauses_[c] may shrink too
      for (const Lit l : base) {
        Clause flipped = base;
        auto it = std::find(flipped.begin(), flipped.end(), l);
        *it = ~l;
        std::sort(flipped.begin(), flipped.end());
        for (const std::size_t d :
             occurrences_[static_cast<std::size_t>((~l).code())]) {
          if (d == c || !alive_[d]) continue;
          if (clauses_[d].size() < flipped.size()) continue;
          if (IsSubset(flipped, clauses_[d])) {
            auto& target = clauses_[d];
            target.erase(std::find(target.begin(), target.end(), ~l));
            ++stats_.strengthened_literals;
            changed = true;
            if (target.empty()) {
              contradiction_ = true;
              return true;
            }
            if (target.size() == 1) {
              Force(target[0]);
              alive_[d] = false;
            }
          }
        }
        if (contradiction_) return true;
      }
    }
    return changed;
  }

  Cnf Export() const {
    Cnf out(num_vars_);
    if (contradiction_) {
      out.AddClause({});
      return out;
    }
    for (std::size_t c = 0; c < clauses_.size(); ++c) {
      if (alive_[c]) out.AddClause(clauses_[c]);
    }
    // Re-emit forced facts as units so the simplified formula is
    // self-contained (solvable without consulting `forced`).
    for (Var v = 0; v < num_vars_; ++v) {
      const LBool value = forced_[static_cast<std::size_t>(v)];
      if (value != LBool::kUndef) {
        out.AddUnit(Lit::Make(v, value == LBool::kFalse));
      }
    }
    return out;
  }

 private:
  int num_vars_;
  std::vector<LBool>& forced_;
  PreprocessStats& stats_;
  std::vector<Clause> clauses_;
  std::vector<bool> alive_;
  std::vector<std::vector<std::size_t>> occurrences_;
  bool contradiction_ = false;
};

}  // namespace

PreprocessResult Preprocess(const Cnf& cnf,
                            const PreprocessOptions& options) {
  PreprocessResult result;
  result.forced.assign(static_cast<std::size_t>(cnf.num_vars()),
                       LBool::kUndef);
  Workset work(cnf, result.forced, result.stats);

  for (int round = 0; round < options.max_rounds; ++round) {
    ++result.stats.rounds;
    bool changed = work.PropagateUnits();
    if (work.contradiction()) break;
    if (options.subsumption) changed |= work.SubsumeAll();
    if (options.self_subsumption && !work.contradiction()) {
      changed |= work.StrengthenAll();
    }
    if (work.contradiction() || !changed) break;
  }
  // Final cleanup pass so strengthening-derived units are applied.
  if (!work.contradiction()) work.PropagateUnits();

  result.contradiction = work.contradiction();
  result.simplified = work.Export();
  return result;
}

std::vector<bool> ReconstructModel(const PreprocessResult& result,
                                   const std::vector<bool>& simplified_model) {
  std::vector<bool> model = simplified_model;
  model.resize(result.forced.size(), false);
  for (std::size_t v = 0; v < result.forced.size(); ++v) {
    if (result.forced[v] != LBool::kUndef) {
      model[v] = (result.forced[v] == LBool::kTrue);
    }
  }
  return model;
}

}  // namespace satfr::sat
