#include "sat/clause_sink.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <ostream>

#include "sat/solver.h"

namespace satfr::sat {

// ---------------------------------------------------------------- SolverSink

SolverSink::SolverSink(Solver& solver) : solver_(solver) {
  num_vars_ = solver.num_vars();
}

void SolverSink::EnsureVars(int n) {
  ClauseSink::EnsureVars(n);
  solver_.EnsureVars(n);
}

void SolverSink::DoEmit(const Lit* lits, std::size_t n) {
  // Keep draining after a refutation: Solver::AddClause is a cheap no-op
  // once okay() is false, and encoders need not special-case mid-stream
  // unsatisfiability.
  ok_ = solver_.AddClause(lits, n) && ok_;
}

bool SolverSink::Finish() { return ok_ && solver_.okay(); }

// ------------------------------------------------------- StreamingDimacsSink

namespace {

// Width of the reserved header fields. 10 digits cover any var/clause count
// representable in the 32-bit literal encoding.
constexpr int kHeaderFieldWidth = 10;

void AppendInt(std::string& buffer, long long value) {
  char digits[24];
  const auto [end, ec] =
      std::to_chars(digits, digits + sizeof(digits), value);
  assert(ec == std::errc());
  (void)ec;
  buffer.append(digits, end);
}

}  // namespace

StreamingDimacsSink::StreamingDimacsSink(
    std::ostream& out, const std::vector<std::string>& comments)
    : out_(out) {
  for (const std::string& comment : comments) {
    out_ << "c " << comment << '\n';
  }
  header_pos_ = static_cast<std::streamoff>(out_.tellp());
  // Reserve a fixed-width header to back-patch in Finish(); DIMACS readers
  // skip the extra spaces.
  out_ << "p cnf ";
  for (int field = 0; field < 2; ++field) {
    for (int i = 0; i < kHeaderFieldWidth; ++i) out_.put(' ');
    out_.put(field == 0 ? ' ' : '\n');
  }
  buffer_.reserve(1 << 16);
}

void StreamingDimacsSink::DoEmit(const Lit* lits, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    AppendInt(buffer_, lits[i].ToDimacs());
    buffer_.push_back(' ');
  }
  buffer_.append("0\n");
  if (buffer_.size() >= (1u << 16)) FlushBuffer();
}

void StreamingDimacsSink::FlushBuffer() {
  out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  buffer_.clear();
}

bool StreamingDimacsSink::Finish() {
  assert(!finished_ && "Finish() must be called exactly once");
  finished_ = true;
  FlushBuffer();
  if (!out_ || header_pos_ < 0) return false;
  const std::streamoff end = static_cast<std::streamoff>(out_.tellp());
  // Back-patch the reserved header with the real counts, right-aligned
  // within the fixed-width fields.
  std::string header = "p cnf ";
  std::string field = std::to_string(num_vars_);
  assert(static_cast<int>(field.size()) <= kHeaderFieldWidth);
  header.append(static_cast<std::size_t>(kHeaderFieldWidth) - field.size(),
                ' ');
  header += field;
  header.push_back(' ');
  field = std::to_string(num_clauses_);
  assert(static_cast<int>(field.size()) <= kHeaderFieldWidth);
  header.append(static_cast<std::size_t>(kHeaderFieldWidth) - field.size(),
                ' ');
  header += field;
  out_.seekp(header_pos_);
  if (!out_) return false;  // unseekable stream (e.g. a pipe)
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.seekp(end);
  out_.flush();
  return static_cast<bool>(out_);
}

// ----------------------------------------------------------- SimplifyingSink

void SimplifyingSink::DoEmit(const Lit* lits, std::size_t n) {
  if (contradiction_) {
    // The empty clause already went downstream; everything after it is
    // subsumed.
    ++stats_.dropped_satisfied;
    return;
  }
  scratch_.assign(lits, lits + n);
  std::sort(scratch_.begin(), scratch_.end());
  std::size_t out = 0;
  Lit previous = kUndefLit;
  for (const Lit l : scratch_) {
    assert(l.IsValid() &&
           static_cast<std::size_t>(l.var()) < fixed_.size() &&
           "literal on undeclared variable");
    if (l == previous) {  // duplicate literal
      ++stats_.eliminated_literals;
      continue;
    }
    const LBool value = LitValue(l, fixed_[static_cast<std::size_t>(l.var())]);
    if (value == LBool::kTrue) {  // satisfied at level 0
      ++stats_.dropped_satisfied;
      return;
    }
    if (value == LBool::kFalse) {  // falsified at level 0
      ++stats_.eliminated_literals;
      previous = l;
      continue;
    }
    if (previous.IsValid() && l.var() == previous.var()) {
      // l and ~l, neither fixed (a fixed pair would have hit one of the
      // value branches above): tautology.
      ++stats_.dropped_tautologies;
      return;
    }
    scratch_[out++] = l;
    previous = l;
  }
  scratch_.resize(out);
  if (out == 1) {
    const Lit unit = scratch_[0];
    fixed_[static_cast<std::size_t>(unit.var())] =
        unit.negated() ? LBool::kFalse : LBool::kTrue;
    ++stats_.fixed_units;
  } else if (out == 0) {
    // All literals eliminated: the stream is unsatisfiable. Forward the
    // empty clause so downstream consumers reach the same verdict.
    contradiction_ = true;
  }
  down_.EmitClause(scratch_.data(), out);
}

}  // namespace satfr::sat
