// Core SAT types: variables, literals, clauses, three-valued logic.
//
// A Var is a 0-based index. A Lit packs a variable and a sign into one int
// (MiniSat convention: code = 2*var + sign, sign 1 == negated), so literals
// index arrays directly and negation is a single XOR.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace satfr::sat {

using Var = std::int32_t;

constexpr Var kUndefVar = -1;

class Lit {
 public:
  constexpr Lit() : code_(-2) {}

  /// Builds a literal on `v`; `negated` selects the negative phase.
  static constexpr Lit Make(Var v, bool negated) {
    Lit l;
    l.code_ = 2 * v + (negated ? 1 : 0);
    return l;
  }

  /// Positive literal on v.
  static constexpr Lit Pos(Var v) { return Make(v, false); }
  /// Negative literal on v.
  static constexpr Lit Neg(Var v) { return Make(v, true); }

  constexpr Var var() const { return code_ >> 1; }
  constexpr bool negated() const { return (code_ & 1) != 0; }
  constexpr int code() const { return code_; }
  constexpr bool IsValid() const { return code_ >= 0; }

  constexpr Lit operator~() const {
    Lit l;
    l.code_ = code_ ^ 1;
    return l;
  }

  friend constexpr bool operator==(Lit a, Lit b) {
    return a.code_ == b.code_;
  }
  friend constexpr bool operator!=(Lit a, Lit b) {
    return a.code_ != b.code_;
  }
  friend constexpr bool operator<(Lit a, Lit b) { return a.code_ < b.code_; }

  /// DIMACS integer: +/-(var+1).
  constexpr int ToDimacs() const {
    return negated() ? -(var() + 1) : (var() + 1);
  }

  /// Parses a DIMACS integer (must be non-zero).
  static constexpr Lit FromDimacs(int dimacs) {
    return Make(dimacs > 0 ? dimacs - 1 : -dimacs - 1, dimacs < 0);
  }

  std::string ToString() const {
    return (negated() ? "~x" : "x") + std::to_string(var());
  }

 private:
  int code_;
};

constexpr Lit kUndefLit;

using Clause = std::vector<Lit>;

/// Three-valued assignment state.
enum class LBool : std::uint8_t { kTrue = 0, kFalse = 1, kUndef = 2 };

/// Negation that keeps kUndef fixed. Branchless: flips the low bit for
/// kTrue/kFalse, leaves kUndef (bit 1 set) alone.
constexpr LBool Negate(LBool b) {
  const auto u = static_cast<std::uint8_t>(b);
  return static_cast<LBool>(u ^ (~(u >> 1) & 1u));
}

/// Value of a literal under a variable assignment (branchless; hot path of
/// unit propagation).
constexpr LBool LitValue(Lit l, LBool var_value) {
  const auto u = static_cast<std::uint8_t>(var_value);
  const auto sign = static_cast<std::uint8_t>(l.negated() ? 1u : 0u);
  return static_cast<LBool>(u ^ (sign & ~(u >> 1) & 1u));
}

}  // namespace satfr::sat
