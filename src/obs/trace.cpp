#include "obs/trace.h"

#include <atomic>
#include <fstream>

namespace satfr::obs {

TraceWriter::TraceWriter() = default;

std::uint64_t TraceWriter::NowMicros() const {
  return static_cast<std::uint64_t>(epoch_.Seconds() * 1e6);
}

std::uint64_t TraceWriter::CurrentTid() {
  static mc::Atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void TraceWriter::CompleteEvent(std::string name, std::string category,
                                std::uint64_t tid, std::uint64_t start_us,
                                std::uint64_t dur_us, TraceArgs args) {
  Event e;
  e.phase = 'X';
  e.name = std::move(name);
  e.category = std::move(category);
  e.tid = tid;
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.args = std::move(args);
  mc::MutexLock lock(mutex_);
  events_.push_back(std::move(e));
}

void TraceWriter::InstantEvent(std::string name, std::string category,
                               std::uint64_t tid, std::uint64_t ts_us,
                               TraceArgs args) {
  Event e;
  e.phase = 'i';
  e.name = std::move(name);
  e.category = std::move(category);
  e.tid = tid;
  e.ts_us = ts_us;
  e.args = std::move(args);
  mc::MutexLock lock(mutex_);
  events_.push_back(std::move(e));
}

void TraceWriter::SetThreadName(std::uint64_t tid, std::string name) {
  Event e;
  e.phase = 'M';
  e.name = std::move(name);
  e.tid = tid;
  mc::MutexLock lock(mutex_);
  events_.push_back(std::move(e));
}

std::size_t TraceWriter::event_count() const {
  mc::MutexLock lock(mutex_);
  return events_.size();
}

JsonValue TraceWriter::ToJson() const {
  mc::MutexLock lock(mutex_);
  JsonArray events;
  events.reserve(events_.size());
  for (const Event& e : events_) {
    JsonObject obj;
    if (e.phase == 'M') {
      obj.emplace_back("name", JsonValue("thread_name"));
      obj.emplace_back("ph", JsonValue("M"));
      obj.emplace_back("pid", JsonValue(1));
      obj.emplace_back("tid", JsonValue(e.tid));
      JsonObject args;
      args.emplace_back("name", JsonValue(e.name));
      obj.emplace_back("args", JsonValue(std::move(args)));
      events.emplace_back(std::move(obj));
      continue;
    }
    obj.emplace_back("name", JsonValue(e.name));
    obj.emplace_back("cat", JsonValue(e.category));
    obj.emplace_back("ph", JsonValue(std::string(1, e.phase)));
    obj.emplace_back("pid", JsonValue(1));
    obj.emplace_back("tid", JsonValue(e.tid));
    obj.emplace_back("ts", JsonValue(e.ts_us));
    if (e.phase == 'X') obj.emplace_back("dur", JsonValue(e.dur_us));
    if (e.phase == 'i') obj.emplace_back("s", JsonValue("t"));
    if (!e.args.empty()) {
      JsonObject args;
      for (const auto& [k, v] : e.args) args.emplace_back(k, v);
      obj.emplace_back("args", JsonValue(std::move(args)));
    }
    events.emplace_back(std::move(obj));
  }
  JsonObject doc;
  doc.emplace_back("traceEvents", JsonValue(std::move(events)));
  doc.emplace_back("displayTimeUnit", JsonValue("ms"));
  return JsonValue(std::move(doc));
}

bool TraceWriter::WriteFile(const std::string& path,
                            std::string* error) const {
  return WriteJsonFile(path, ToJson(), error);
}

namespace {
mc::Atomic<TraceWriter*> g_trace{nullptr};
}  // namespace

TraceWriter* GlobalTrace() {
  return g_trace.load(std::memory_order_acquire);
}

void SetGlobalTrace(TraceWriter* writer) {
  g_trace.store(writer, std::memory_order_release);
}

}  // namespace satfr::obs
