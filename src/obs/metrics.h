// Process-wide metrics registry: named counters, gauges, and log-bucketed
// histograms with per-thread sharded updates.
//
// Hot-path contract: Add/Observe take NO lock and touch NO shared cache
// line. Each thread owns a shard — a flat array of relaxed atomics, one slot
// per counter and one per histogram bucket — reached through a thread_local
// cache keyed by the registry's unique id. The registry mutex is taken only
// on the cold paths: metric registration, first touch of a registry by a
// thread (shard creation), and Snapshot (which sums the slot across every
// shard; relaxed loads are fine because a snapshot is a statistical reading,
// not a synchronization point).
//
// Histograms are log2-bucketed: bucket 0 holds the value 0, bucket i >= 1
// holds [2^(i-1), 2^i); values past the last boundary clamp into the final
// bucket. Merging per-thread histograms is bucket-wise addition, which is
// exactly what Snapshot does.
//
// Gauges are last-write-wins process-level atomics (a gauge is a level, not
// a flow — sharded summation would be meaningless for it).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "mc/annotations.h"
#include "mc/shim.h"
#include "obs/json.h"

namespace satfr::obs {

/// Handle for hot-path updates. Cheap to copy; invalid handles (default
/// constructed) are safely ignored by Add/Observe.
struct MetricId {
  static constexpr std::uint32_t kInvalidSlot = 0xFFFFFFFFu;
  // Gauge ids carry this bit: they index the registry-level gauge table,
  // not a shard slot.
  static constexpr std::uint32_t kGaugeBit = 0x80000000u;
  std::uint32_t slot = kInvalidSlot;
  bool valid() const { return slot != kInvalidSlot; }
};

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;              // counters
  std::int64_t gauge = 0;               // gauges
  std::vector<std::uint64_t> buckets;   // histograms (log2 buckets)
  std::uint64_t count = 0;              // histogram total observations

  /// Conservative percentile read off the log2 buckets: the inclusive upper
  /// bound (2^i - 1) of the bucket holding the ceil(p * count)-th smallest
  /// observation, 0 for bucket 0. At most 2x above the true percentile by
  /// construction (except in the final clamp bucket, where it is a floor of
  /// 2^32 - 1). Returns 0 on empty histograms and non-histogram metrics.
  std::uint64_t ApproxPercentile(double p) const;
};

struct MetricsSnapshot {
  std::vector<MetricSnapshot> metrics;

  /// Metric by name; nullptr when absent.
  const MetricSnapshot* Find(const std::string& name) const;

  /// JSON object keyed by metric name (histograms become
  /// {"count": N, "buckets": [...]}).
  JsonValue ToJson() const;
};

class MetricsRegistry {
 public:
  /// Number of log2 histogram buckets: bucket 0 = {0}, bucket i in [1, 32]
  /// = [2^(i-1), 2^i), with everything >= 2^32 clamped into bucket 32.
  static constexpr std::uint32_t kHistogramBuckets = 33;

  /// Fixed shard capacity in slots. Registration past this returns an
  /// invalid id (updates on it are dropped) rather than resizing live
  /// shards under concurrent writers.
  static constexpr std::uint32_t kShardSlots = 1024;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds — same name returns the same id) a metric.
  MetricId Counter(const std::string& name);
  MetricId Gauge(const std::string& name);
  MetricId Histogram(const std::string& name);

  /// Hot path: adds `delta` to a counter. Lock-free, relaxed.
  void Add(MetricId id, std::uint64_t delta = 1);

  /// Hot path: records one histogram observation. Lock-free, relaxed.
  void Observe(MetricId id, std::uint64_t value);

  /// Sets a gauge (process-level, last write wins).
  void SetGauge(MetricId id, std::int64_t value);

  /// Sums every shard into a point-in-time reading.
  MetricsSnapshot Snapshot() const;

  /// The log2 bucket index for `value` (exposed for the bucket tests).
  static std::uint32_t BucketFor(std::uint64_t value) {
    if (value == 0) return 0;
    const auto width = static_cast<std::uint32_t>(std::bit_width(value));
    return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
  }

  /// Inclusive lower bound of bucket `i` (0 for buckets 0 and 1).
  static std::uint64_t BucketLowerBound(std::uint32_t i) {
    return i <= 1 ? 0 : (std::uint64_t{1} << (i - 1));
  }

 private:
  struct Shard {
    // relaxed everywhere: slots are statistics, each written by one thread
    // and only folded together under the registry mutex in Snapshot.
    mc::Atomic<std::uint64_t> slots[kShardSlots];
    Shard() {
      for (auto& s : slots) s.store(0, std::memory_order_relaxed);
    }
  };

  struct Entry {
    std::string name;
    MetricKind kind;
    std::uint32_t first_slot;  // histograms span kHistogramBuckets slots
  };

  Shard* ShardForThisThread() SATFR_EXCLUDES(mutex_);
  MetricId Register(const std::string& name, MetricKind kind,
                    std::uint32_t slots_needed) SATFR_EXCLUDES(mutex_);

  const std::uint64_t id_;  // process-unique, never reused
  mutable mc::Mutex mutex_;
  std::vector<Entry> entries_ SATFR_GUARDED_BY(mutex_);
  // deque: gauges are registered while other threads store through stable
  // references, and deque growth never relocates existing elements. The
  // container is guarded; the atomics inside are written under the mutex
  // but may be read lock-free through stable references.
  std::deque<mc::Atomic<std::int64_t>> gauges_ SATFR_GUARDED_BY(mutex_);
  std::vector<std::string> gauge_names_ SATFR_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<Shard>> shards_ SATFR_GUARDED_BY(mutex_);
  std::uint32_t next_slot_ SATFR_GUARDED_BY(mutex_) = 0;
};

/// The process-wide registry all subsystems share. Always available;
/// snapshotting it is how `satfr --metrics-out` materializes a report.
MetricsRegistry& GlobalMetrics();

}  // namespace satfr::obs
