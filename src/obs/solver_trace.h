// Bridges the sat::SolverObserver restart hook into the telemetry layer.
//
// One SolverTelemetryObserver is attached per solver per solve window (the
// flow router, the incremental sweep, and each cube worker create their
// own). On every restart sample it
//   - lays the phase split out as three consecutive sub-spans (bcp /
//     analyze / inprocess) on the observer's trace track, so Perfetto shows
//     where each restart window's time went,
//   - bumps the global metrics counters (solver.propagations, .conflicts,
//     .restarts, .learned) and the per-window conflict histogram,
//   - accumulates an independent running total of the window deltas.
// The accumulated totals feed the run record's `observed` block; satlint's
// telemetry-consistency pass cross-checks them against the solver-window
// stats computed directly from SolverStats subtraction.
#pragma once

#include <cstdint>

#include "obs/run_report.h"
#include "obs/trace.h"
#include "sat/solver.h"

namespace satfr::obs {

class SolverTelemetryObserver : public sat::SolverObserver {
 public:
  /// `writer` may be null: counters and the observed totals still
  /// accumulate (the `--report`-only configuration). `tid` pins the spans
  /// to a trace track; 0 means the calling thread's track.
  explicit SolverTelemetryObserver(TraceWriter* writer,
                                   std::uint64_t tid = 0);

  void OnRestartSample(const sat::SolverRestartSample& sample) override;

  /// Running total of every window delta seen so far.
  const sat::SolverStats& observed() const { return observed_; }

  /// Tier sizes from the most recent sample.
  const sat::LearntTierSizes& last_tiers() const { return last_tiers_; }

  /// Copies the observed totals into `record`'s cross-check block.
  void FillRecord(RunRecord* record) const;

 private:
  TraceWriter* writer_;
  std::uint64_t tid_;
  std::uint64_t window_start_us_ = 0;
  sat::SolverStats observed_;
  sat::LearntTierSizes last_tiers_;
};

}  // namespace satfr::obs
