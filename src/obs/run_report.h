// Structured run reports: one JSONL record per solve.
//
// Every solve path — `flow::RouteDetailedOnGraph`, both min-width sweeps,
// the portfolio runner, the cube pool — appends a RunRecord to the writer
// installed via SetGlobalReport (the CLI's `--report FILE`). A record
// carries the verdict, stage timings, the solver-window stats (propagations
// / conflicts / restarts / learned over exactly the window this record
// covers), learnt-DB tier sizes, the LBD histogram, peak clause memory, and
// cube/exchange counters where applicable.
//
// Records additionally carry an `observed` block when a SolverTelemetryObserver
// was attached: counter totals accumulated restart-by-restart through the
// observer hook. The satlint `telemetry-consistency` pass cross-checks the
// observed totals against the solver-window stats — the two are computed by
// independent mechanisms over the same window, so drift means the observer
// hook (or a stats field) broke.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "mc/annotations.h"
#include "mc/shim.h"
#include "obs/json.h"
#include "sat/solver.h"

namespace satfr::obs {

struct RunRecord {
  // ---- context ----
  std::string instance;   // run label: MCNC circuit, .col file, "cnf", ...
  std::string phase;      // "route", "min_width", "incremental",
                          // "portfolio", "session"
  std::string encoding;
  std::string symmetry;
  int width = 0;
  int cube_workers = 0;

  // ---- outcome ----
  std::string verdict;  // "SAT" / "UNSAT" / "UNKNOWN"

  // ---- stage timings (seconds) ----
  double coloring_seconds = 0.0;
  double encode_seconds = 0.0;
  double solve_seconds = 0.0;
  double total_seconds = 0.0;

  // ---- formula shape ----
  std::uint64_t cnf_vars = 0;
  std::uint64_t cnf_clauses = 0;

  // ---- solver window (deltas covering exactly this record's solve) ----
  std::uint64_t propagations = 0;
  std::uint64_t binary_propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned = 0;
  std::uint64_t removed = 0;

  // ---- learnt database at end of window ----
  std::uint64_t learnts_core = 0;
  std::uint64_t learnts_tier2 = 0;
  std::uint64_t learnts_local = 0;
  std::vector<std::uint64_t> lbd_histogram;  // bucket i = learnts with LBD i
                                             // (last bucket clamps)
  std::uint64_t peak_clause_memory_bytes = 0;

  // ---- incremental session (zero unless phase == "session") ----
  // Rip-up/re-route deltas absorbed and net groups retired since the
  // previous record of the same session; the emission time of those deltas
  // is reported as encode_seconds (the session never re-encodes).
  std::uint64_t deltas_applied = 0;
  std::uint64_t groups_retired = 0;

  // ---- cube / exchange (zero unless the cube pool or portfolio ran) ----
  std::uint64_t cubes = 0;
  std::uint64_t cubes_stolen = 0;
  std::uint64_t exchange_exported = 0;
  std::uint64_t exchange_imported = 0;
  std::uint64_t exchange_dropped_full = 0;
  std::uint64_t exchange_torn_reads = 0;
  // Reader-side conservation ledger (ClauseExchange::Totals). The satlint
  // exchange-conservation pass asserts
  //   exchange_cursor_advanced == exchange_imported + exchange_torn_reads
  //       + exchange_self_skipped + exchange_incompatible_skipped
  //       + exchange_eviction_skipped
  // on every record that carries exchange traffic.
  std::uint64_t exchange_cursor_advanced = 0;
  std::uint64_t exchange_self_skipped = 0;
  std::uint64_t exchange_incompatible_skipped = 0;
  std::uint64_t exchange_eviction_skipped = 0;

  // ---- observer cross-check (present iff an observer was attached) ----
  bool has_observed = false;
  std::uint64_t observed_propagations = 0;
  std::uint64_t observed_conflicts = 0;
  std::uint64_t observed_restarts = 0;
  std::uint64_t observed_learned = 0;
  double observed_bcp_seconds = 0.0;
  double observed_analyze_seconds = 0.0;
  double observed_inprocess_seconds = 0.0;

  /// Fills the solver-window block from a stats delta (see
  /// sat::SolverStats::Since) and the LBD histogram carried on it.
  void SetSolverWindow(const sat::SolverStats& window);

  JsonValue ToJson() const;

  /// Parses a record previously produced by ToJson. Unknown keys are
  /// ignored (forward compatibility); missing keys keep their defaults.
  /// Returns false + `error` when `value` is not an object.
  static bool FromJson(const JsonValue& value, RunRecord* record,
                       std::string* error);
};

/// Thread-safe JSONL sink: one compact JSON object per line per Append.
class RunReportWriter {
 public:
  /// Opens `path` for writing (truncates). Check ok() before relying on it;
  /// Append on a failed writer is a no-op.
  explicit RunReportWriter(const std::string& path);

  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

  void Append(const RunRecord& record);

  std::size_t records_written() const;

 private:
  std::string path_;
  bool ok_ = false;
  mutable mc::Mutex mutex_;
  std::ofstream out_ SATFR_GUARDED_BY(mutex_);
  std::size_t records_ SATFR_GUARDED_BY(mutex_) = 0;
};

/// Loads a JSONL run report. Returns false + `error` on the first
/// unreadable line.
bool LoadRunReport(const std::string& path, std::vector<RunRecord>* records,
                   std::string* error);

/// Process-wide report sink; nullptr (the default) means reporting is off.
RunReportWriter* GlobalReport();
void SetGlobalReport(RunReportWriter* writer);

}  // namespace satfr::obs
