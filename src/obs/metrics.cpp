#include "obs/metrics.h"

#include <utility>

namespace satfr::obs {

namespace {

std::uint64_t NextRegistryId() {
  static mc::Atomic<std::uint64_t> next{1};
  // relaxed: the id only needs to be unique; it orders nothing.
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t MetricSnapshot::ApproxPercentile(double p) const {
  if (count == 0 || buckets.empty()) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(p * static_cast<double>(count) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      if (i == 0) return 0;
      if (i >= 64) return ~std::uint64_t{0};
      return (std::uint64_t{1} << i) - 1;
    }
  }
  // count > sum(buckets) would be a malformed snapshot; clamp to the top.
  return (std::uint64_t{1} << (buckets.size() - 1)) - 1;
}

const MetricSnapshot* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonObject out;
  for (const MetricSnapshot& m : metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        out.emplace_back(m.name, JsonValue(m.value));
        break;
      case MetricKind::kGauge:
        out.emplace_back(m.name, JsonValue(m.gauge));
        break;
      case MetricKind::kHistogram: {
        JsonArray buckets;
        buckets.reserve(m.buckets.size());
        for (const std::uint64_t b : m.buckets) buckets.emplace_back(b);
        JsonObject hist;
        hist.emplace_back("count", JsonValue(m.count));
        hist.emplace_back("buckets", JsonValue(std::move(buckets)));
        out.emplace_back(m.name, JsonValue(std::move(hist)));
        break;
      }
    }
  }
  return JsonValue(std::move(out));
}

MetricsRegistry::MetricsRegistry() : id_(NextRegistryId()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricId MetricsRegistry::Register(const std::string& name, MetricKind kind,
                                   std::uint32_t slots_needed) {
  mc::MutexLock lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.name == name) {
      // Same name, same kind: idempotent registration (several subsystems
      // may name the same counter). A kind clash returns invalid.
      if (e.kind != kind) return MetricId{};
      return MetricId{e.first_slot};
    }
  }
  // A gauge already owns this name: aliasing it would emit the key twice
  // in the snapshot JSON.
  for (const std::string& gauge : gauge_names_) {
    if (gauge == name) return MetricId{};
  }
  if (next_slot_ + slots_needed > kShardSlots) return MetricId{};
  const std::uint32_t slot = next_slot_;
  next_slot_ += slots_needed;
  entries_.push_back(Entry{name, kind, slot});
  return MetricId{slot};
}

MetricId MetricsRegistry::Counter(const std::string& name) {
  return Register(name, MetricKind::kCounter, 1);
}

MetricId MetricsRegistry::Histogram(const std::string& name) {
  return Register(name, MetricKind::kHistogram, kHistogramBuckets);
}

MetricId MetricsRegistry::Gauge(const std::string& name) {
  mc::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) {
      return MetricId{static_cast<std::uint32_t>(i) | MetricId::kGaugeBit};
    }
  }
  // Kind clash with a counter/histogram of the same name: invalid, same as
  // Register's check in the other direction.
  for (const Entry& e : entries_) {
    if (e.name == name) return MetricId{};
  }
  gauge_names_.push_back(name);
  gauges_.emplace_back(0);
  return MetricId{static_cast<std::uint32_t>(gauge_names_.size() - 1) |
                  MetricId::kGaugeBit};
}

MetricsRegistry::Shard* MetricsRegistry::ShardForThisThread() {
  struct Cached {
    std::uint64_t registry_id;
    Shard* shard;
  };
  // A thread touches few registries (the global one, plus per-test ones);
  // linear scan over a short vector beats any map. Registry ids are never
  // reused, so an entry for a destroyed registry simply never matches
  // again. FIFO-capped so pathological create/destroy loops cannot grow it
  // without bound — evicting a live entry only costs one extra shard.
  thread_local std::vector<Cached> cache;
  for (const Cached& c : cache) {
    if (c.registry_id == id_) return c.shard;
  }
  Shard* shard = nullptr;
  {
    mc::MutexLock lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    shard = shards_.back().get();
  }
  if (cache.size() >= 16) cache.erase(cache.begin());
  cache.push_back(Cached{id_, shard});
  return shard;
}

void MetricsRegistry::Add(MetricId id, std::uint64_t delta) {
  if (!id.valid() || (id.slot & MetricId::kGaugeBit) != 0) return;
  // relaxed: the slot is this thread's private tally; readers fold it at
  // quiescent points (Snapshot after join, or as a statistical reading).
  ShardForThisThread()->slots[id.slot].fetch_add(delta,
                                                 std::memory_order_relaxed);
}

void MetricsRegistry::Observe(MetricId id, std::uint64_t value) {
  if (!id.valid() || (id.slot & MetricId::kGaugeBit) != 0) return;
  const std::uint32_t slot = id.slot + BucketFor(value);
  // relaxed: same single-writer tally argument as Add.
  ShardForThisThread()->slots[slot].fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::SetGauge(MetricId id, std::int64_t value) {
  if (!id.valid() || (id.slot & MetricId::kGaugeBit) == 0) return;
  const std::uint32_t index = id.slot & ~MetricId::kGaugeBit;
  mc::MutexLock lock(mutex_);
  if (index < gauges_.size()) {
    // relaxed: the mutex already orders racing setters (last unlock wins);
    // lock-free snapshot readers only need *a* recent level, not ordering.
    gauges_[index].store(value, std::memory_order_relaxed);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  // All loads below are relaxed: a snapshot is a statistical reading, not
  // a synchronization point. Exactness is only promised at quiescent
  // points (writers joined), where happens-before already forces fresh
  // values — verified by the McMetricsLitmus conservation litmus.
  mc::MutexLock lock(mutex_);
  for (const Entry& e : entries_) {
    MetricSnapshot m;
    m.name = e.name;
    m.kind = e.kind;
    if (e.kind == MetricKind::kHistogram) {
      m.buckets.assign(kHistogramBuckets, 0);
      for (const auto& shard : shards_) {
        for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
          m.buckets[b] += shard->slots[e.first_slot + b].load(
              std::memory_order_relaxed);
        }
      }
      for (const std::uint64_t b : m.buckets) m.count += b;
    } else {
      for (const auto& shard : shards_) {
        m.value +=
            shard->slots[e.first_slot].load(std::memory_order_relaxed);
      }
    }
    snapshot.metrics.push_back(std::move(m));
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    MetricSnapshot m;
    m.name = gauge_names_[i];
    m.kind = MetricKind::kGauge;
    m.gauge = gauges_[i].load(std::memory_order_relaxed);
    snapshot.metrics.push_back(std::move(m));
  }
  return snapshot;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

}  // namespace satfr::obs
