#include "obs/solver_trace.h"

#include "obs/metrics.h"

namespace satfr::obs {

namespace {

struct SolverMetricIds {
  MetricId propagations = GlobalMetrics().Counter("solver.propagations");
  MetricId conflicts = GlobalMetrics().Counter("solver.conflicts");
  MetricId restarts = GlobalMetrics().Counter("solver.restarts");
  MetricId learned = GlobalMetrics().Counter("solver.learned");
  MetricId window_conflicts =
      GlobalMetrics().Histogram("solver.window_conflicts");
};

const SolverMetricIds& Ids() {
  static const SolverMetricIds ids;
  return ids;
}

}  // namespace

SolverTelemetryObserver::SolverTelemetryObserver(TraceWriter* writer,
                                                 std::uint64_t tid)
    : writer_(writer),
      tid_(tid != 0 ? tid : TraceWriter::CurrentTid()) {
  if (writer_ != nullptr) window_start_us_ = writer_->NowMicros();
}

void SolverTelemetryObserver::OnRestartSample(
    const sat::SolverRestartSample& sample) {
  observed_.Accumulate(sample.window);
  last_tiers_ = sample.tiers;

  const SolverMetricIds& ids = Ids();
  MetricsRegistry& metrics = GlobalMetrics();
  metrics.Add(ids.propagations, sample.window.propagations);
  metrics.Add(ids.conflicts, sample.window.conflicts);
  metrics.Add(ids.restarts, sample.window.restarts);
  metrics.Add(ids.learned, sample.window.learned);
  metrics.Observe(ids.window_conflicts, sample.window.conflicts);

  if (writer_ == nullptr) return;
  const std::uint64_t end_us = writer_->NowMicros();
  // Lay the measured phase times out back-to-back inside the window:
  // Perfetto then shows the bcp/analyze/inprocess proportions of each
  // restart window as adjacent blocks on this track. (Unattributed wall
  // time — decision heuristics, cache effects — is the gap to end_us.)
  std::uint64_t at = window_start_us_;
  const auto emit_phase = [&](const char* name, double seconds) {
    const auto dur = static_cast<std::uint64_t>(seconds * 1e6);
    if (dur == 0) return;
    writer_->CompleteEvent(name, "solver", tid_, at, dur,
                           {{"restart", JsonValue(sample.restart_index)}});
    at += dur;
  };
  emit_phase("bcp", sample.window.bcp_seconds);
  emit_phase("analyze", sample.window.analyze_seconds);
  emit_phase("inprocess", sample.window.inprocess_seconds);
  if (sample.final_flush) {
    TraceArgs args;
    args.emplace_back("restarts", JsonValue(observed_.restarts));
    args.emplace_back("conflicts", JsonValue(observed_.conflicts));
    writer_->InstantEvent("solve_end", "solver", tid_, end_us,
                          std::move(args));
  }
  window_start_us_ = end_us;
}

void SolverTelemetryObserver::FillRecord(RunRecord* record) const {
  record->has_observed = true;
  record->observed_propagations = observed_.propagations;
  record->observed_conflicts = observed_.conflicts;
  record->observed_restarts = observed_.restarts;
  record->observed_learned = observed_.learned;
  record->observed_bcp_seconds = observed_.bcp_seconds;
  record->observed_analyze_seconds = observed_.analyze_seconds;
  record->observed_inprocess_seconds = observed_.inprocess_seconds;
}

}  // namespace satfr::obs
