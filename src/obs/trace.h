// Span tracer emitting Chrome trace_event JSON, loadable in Perfetto or
// chrome://tracing.
//
// Events are the "complete" (ph "X"), "instant" (ph "i") and thread-name
// metadata (ph "M") flavors of the trace_event format: each carries a name,
// a category, a pid/tid pair, and microsecond timestamps relative to the
// writer's construction (steady clock — wall-clock skew cannot fold spans
// over each other). Cube workers and portfolio strategies run on their own
// tid tracks, named via SetThreadName, so the Perfetto timeline shows one
// swimlane per worker.
//
// Event frequency is coarse by design — per route stage, per restart window,
// per cube — so a single mutex-protected buffer is the right tradeoff; the
// lock-free machinery lives in MetricsRegistry where updates are per-event
// hot. Disabled tracing costs one null check: every emission site goes
// through a nullable TraceWriter* (see GlobalTrace) and the RAII TraceSpan
// no-ops on null.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mc/annotations.h"
#include "mc/shim.h"
#include "common/stopwatch.h"
#include "obs/json.h"

namespace satfr::obs {

/// Argument list attached to an event ("args" in the trace format).
using TraceArgs = std::vector<std::pair<std::string, JsonValue>>;

class TraceWriter {
 public:
  TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Microseconds since this writer was constructed (steady clock).
  std::uint64_t NowMicros() const;

  /// A small stable integer id for the calling thread (assigned on first
  /// use, cached thread_local). Chrome traces key tracks by integer tid.
  static std::uint64_t CurrentTid();

  /// Records a completed span [start_us, start_us + dur_us] on `tid`.
  void CompleteEvent(std::string name, std::string category,
                     std::uint64_t tid, std::uint64_t start_us,
                     std::uint64_t dur_us, TraceArgs args = {});

  /// Records an instant (zero-duration, thread-scoped) event at `ts_us`.
  void InstantEvent(std::string name, std::string category,
                    std::uint64_t tid, std::uint64_t ts_us,
                    TraceArgs args = {});

  /// Names a tid's track in the trace UI.
  void SetThreadName(std::uint64_t tid, std::string name);

  /// The whole trace as a {"traceEvents": [...]} JSON document.
  JsonValue ToJson() const;

  /// Writes the trace document to `path`. Returns false + `error` on I/O
  /// failure.
  bool WriteFile(const std::string& path, std::string* error) const;

  std::size_t event_count() const;

 private:
  struct Event {
    char phase;  // 'X', 'i', 'M'
    std::string name;
    std::string category;
    std::uint64_t tid = 0;
    std::uint64_t ts_us = 0;
    std::uint64_t dur_us = 0;
    TraceArgs args;
  };

  mutable mc::Mutex mutex_;
  Stopwatch epoch_;
  std::vector<Event> events_ SATFR_GUARDED_BY(mutex_);
};

/// RAII complete-event span. Null writer => every operation is a no-op, so
/// call sites stay unconditional:
///
///   obs::TraceSpan span(obs::GlobalTrace(), "encode", "flow");
///   ...
///   span.AddArg("clauses", n);   // fine even when tracing is off
class TraceSpan {
 public:
  TraceSpan(TraceWriter* writer, std::string name, std::string category)
      : writer_(writer) {
    if (writer_ == nullptr) return;
    name_ = std::move(name);
    category_ = std::move(category);
    tid_ = TraceWriter::CurrentTid();
    start_us_ = writer_->NowMicros();
  }

  /// Pins the span to an explicit tid track (cube workers trace onto their
  /// logical worker track, not the OS thread that happened to run them).
  TraceSpan(TraceWriter* writer, std::string name, std::string category,
            std::uint64_t tid)
      : TraceSpan(writer, std::move(name), std::move(category)) {
    tid_ = tid;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void AddArg(std::string key, JsonValue value) {
    if (writer_ == nullptr) return;
    args_.emplace_back(std::move(key), std::move(value));
  }

  /// Ends the span now (idempotent; the destructor calls it).
  void End() {
    if (writer_ == nullptr) return;
    const std::uint64_t end_us = writer_->NowMicros();
    writer_->CompleteEvent(std::move(name_), std::move(category_), tid_,
                           start_us_, end_us - start_us_, std::move(args_));
    writer_ = nullptr;
  }

  ~TraceSpan() { End(); }

 private:
  TraceWriter* writer_;
  std::string name_;
  std::string category_;
  std::uint64_t tid_ = 0;
  std::uint64_t start_us_ = 0;
  TraceArgs args_;
};

/// Process-wide trace sink; nullptr (the default) means tracing is off.
/// Emission sites pass GlobalTrace() straight into TraceSpan / guard on it
/// for manual events. The CLI installs a writer when `--trace-out` is set.
TraceWriter* GlobalTrace();
void SetGlobalTrace(TraceWriter* writer);

}  // namespace satfr::obs
