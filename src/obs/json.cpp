#include "obs/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace satfr::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void JsonEscape(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

namespace {

void DumpNumber(double d, std::string& out) {
  // Counters are the common case: print integers without a decimal point so
  // they round-trip textually (and byte-stably) through the parser.
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  if (!std::isfinite(d)) {  // JSON has no inf/nan; emit null
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int levels) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      DumpNumber(number_, out);
      break;
    case Kind::kString:
      out += '"';
      JsonEscape(string_, out);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(depth + 1);
        out += '"';
        JsonEscape(object_[i].first, out);
        out += pretty ? "\": " : "\":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(out);
  return out;
}

void JsonValue::DumpTo(std::string& out) const { DumpTo(out, 0, 0); }

std::string JsonValue::DumpPretty() const {
  std::string out;
  DumpTo(out, 2, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* value) {
    SkipWs();
    if (!ParseValue(value, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool Fail(const char* message) {
    if (error_ != nullptr) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word, JsonValue v, JsonValue* out) {
    const std::size_t n = std::strlen(word);
    if (text_.substr(pos_, n) != word) return Fail("invalid literal");
    pos_ += n;
    *out = std::move(v);
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        return Literal("null", JsonValue(), out);
      case 't':
        return Literal("true", JsonValue(true), out);
      case 'f':
        return Literal("false", JsonValue(false), out);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8-encode the BMP code point (surrogate pairs are not
          // expected in telemetry output; unpaired surrogates encode as-is).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("invalid number");
    *out = JsonValue(d);
    return true;
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonArray items;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      SkipWs();
      if (!ParseValue(&item, depth + 1)) return false;
      items.push_back(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') return Fail("expected ',' or ']'");
    }
    *out = JsonValue(std::move(items));
    return true;
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonObject fields;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue(std::move(fields));
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return Fail("expected ':'");
      }
      JsonValue v;
      SkipWs();
      if (!ParseValue(&v, depth + 1)) return false;
      fields.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') return Fail("expected ',' or '}'");
    }
    *out = JsonValue(std::move(fields));
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* value, std::string* error) {
  return Parser(text, error).Parse(value);
}

bool WriteJsonFile(const std::string& path, const JsonValue& value,
                   std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << value.DumpPretty() << '\n';
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

}  // namespace satfr::obs
