// A minimal self-contained JSON value model with a parser and serializer.
//
// The telemetry layer (trace files, run reports, metrics snapshots) needs to
// both emit and re-read JSON — the determinism test re-parses `--report`
// output, satlint's telemetry-consistency pass loads run-report JSONL, and
// the trace well-formedness test parses the emitted trace file. The repo
// takes no external dependencies, so this is the one JSON implementation
// everything shares (bench_util.h's hand-rolled fprintf emission dedupes
// onto it too).
//
// Objects preserve insertion order: serialization is deterministic, which is
// what makes run-report byte-stability (modulo timing fields) testable.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace satfr::obs {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
// Insertion-ordered object representation (deterministic serialization).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}  // NOLINT
  JsonValue(int i)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(std::int64_t i)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t u)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(u)) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT
  JsonValue(JsonArray a)  // NOLINT
      : kind_(Kind::kArray), array_(std::move(a)) {}
  JsonValue(JsonObject o)  // NOLINT
      : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  std::int64_t AsInt() const { return static_cast<std::int64_t>(number_); }
  std::uint64_t AsUint() const { return static_cast<std::uint64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const JsonArray& AsArray() const { return array_; }
  JsonArray& AsArray() { return array_; }
  const JsonObject& AsObject() const { return object_; }
  JsonObject& AsObject() { return object_; }

  /// Object lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Appends / overwrites a key (object values only; asserts kind).
  void Set(std::string key, JsonValue value);

  /// Serializes compactly (no whitespace). Number formatting: integers in
  /// the exactly-representable range print without a decimal point, so
  /// counters round-trip textually.
  std::string Dump() const;
  void DumpTo(std::string& out) const;

  /// Pretty-printed with two-space indentation (for human-facing reports).
  std::string DumpPretty() const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Parses one JSON document. Returns false and fills `error` (with a byte
/// offset) on malformed input; `value` is unspecified on failure.
bool ParseJson(std::string_view text, JsonValue* value, std::string* error);

/// Escapes `s` as the *contents* of a JSON string (no surrounding quotes).
void JsonEscape(std::string_view s, std::string& out);

/// Writes `value` to `path` followed by a newline. Returns false and fills
/// `error` on I/O failure.
bool WriteJsonFile(const std::string& path, const JsonValue& value,
                   std::string* error);

}  // namespace satfr::obs
