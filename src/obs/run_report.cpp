#include "obs/run_report.h"

#include <atomic>
#include <string_view>
#include <utility>

namespace satfr::obs {

namespace {

std::uint64_t GetU64(const JsonValue& obj, std::string_view key,
                     std::uint64_t fallback = 0) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->AsUint() : fallback;
}

double GetDouble(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : 0.0;
}

std::string GetString(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : std::string();
}

}  // namespace

void RunRecord::SetSolverWindow(const sat::SolverStats& window) {
  propagations = window.propagations;
  binary_propagations = window.binary_propagations;
  conflicts = window.conflicts;
  decisions = window.decisions;
  restarts = window.restarts;
  learned = window.learned;
  removed = window.removed;
  lbd_histogram.assign(window.lbd_histogram,
                       window.lbd_histogram +
                           sat::SolverStats::kLbdHistogramSize);
}

JsonValue RunRecord::ToJson() const {
  JsonObject o;
  o.emplace_back("instance", JsonValue(instance));
  o.emplace_back("phase", JsonValue(phase));
  o.emplace_back("encoding", JsonValue(encoding));
  o.emplace_back("symmetry", JsonValue(symmetry));
  o.emplace_back("width", JsonValue(width));
  o.emplace_back("cube_workers", JsonValue(cube_workers));
  o.emplace_back("verdict", JsonValue(verdict));
  o.emplace_back("coloring_seconds", JsonValue(coloring_seconds));
  o.emplace_back("encode_seconds", JsonValue(encode_seconds));
  o.emplace_back("solve_seconds", JsonValue(solve_seconds));
  o.emplace_back("total_seconds", JsonValue(total_seconds));
  o.emplace_back("cnf_vars", JsonValue(cnf_vars));
  o.emplace_back("cnf_clauses", JsonValue(cnf_clauses));

  JsonObject solver;
  solver.emplace_back("propagations", JsonValue(propagations));
  solver.emplace_back("binary_propagations", JsonValue(binary_propagations));
  solver.emplace_back("conflicts", JsonValue(conflicts));
  solver.emplace_back("decisions", JsonValue(decisions));
  solver.emplace_back("restarts", JsonValue(restarts));
  solver.emplace_back("learned", JsonValue(learned));
  solver.emplace_back("removed", JsonValue(removed));
  o.emplace_back("solver", JsonValue(std::move(solver)));

  JsonObject db;
  db.emplace_back("core", JsonValue(learnts_core));
  db.emplace_back("tier2", JsonValue(learnts_tier2));
  db.emplace_back("local", JsonValue(learnts_local));
  JsonArray lbd;
  lbd.reserve(lbd_histogram.size());
  for (const std::uint64_t b : lbd_histogram) lbd.emplace_back(b);
  db.emplace_back("lbd_histogram", JsonValue(std::move(lbd)));
  db.emplace_back("peak_clause_memory_bytes",
                  JsonValue(peak_clause_memory_bytes));
  o.emplace_back("learnt_db", JsonValue(std::move(db)));

  if (deltas_applied != 0 || groups_retired != 0 || phase == "session") {
    JsonObject session;
    session.emplace_back("deltas_applied", JsonValue(deltas_applied));
    session.emplace_back("groups_retired", JsonValue(groups_retired));
    o.emplace_back("session", JsonValue(std::move(session)));
  }

  JsonObject cube;
  cube.emplace_back("cubes", JsonValue(cubes));
  cube.emplace_back("stolen", JsonValue(cubes_stolen));
  JsonObject exchange;
  exchange.emplace_back("exported", JsonValue(exchange_exported));
  exchange.emplace_back("imported", JsonValue(exchange_imported));
  exchange.emplace_back("dropped_full", JsonValue(exchange_dropped_full));
  exchange.emplace_back("torn_reads", JsonValue(exchange_torn_reads));
  exchange.emplace_back("cursor_advanced", JsonValue(exchange_cursor_advanced));
  exchange.emplace_back("self_skipped", JsonValue(exchange_self_skipped));
  exchange.emplace_back("incompatible_skipped",
                        JsonValue(exchange_incompatible_skipped));
  exchange.emplace_back("eviction_skipped",
                        JsonValue(exchange_eviction_skipped));
  cube.emplace_back("exchange", JsonValue(std::move(exchange)));
  o.emplace_back("cube", JsonValue(std::move(cube)));

  if (has_observed) {
    JsonObject observed;
    observed.emplace_back("propagations", JsonValue(observed_propagations));
    observed.emplace_back("conflicts", JsonValue(observed_conflicts));
    observed.emplace_back("restarts", JsonValue(observed_restarts));
    observed.emplace_back("learned", JsonValue(observed_learned));
    observed.emplace_back("bcp_seconds", JsonValue(observed_bcp_seconds));
    observed.emplace_back("analyze_seconds",
                          JsonValue(observed_analyze_seconds));
    observed.emplace_back("inprocess_seconds",
                          JsonValue(observed_inprocess_seconds));
    o.emplace_back("observed", JsonValue(std::move(observed)));
  }
  return JsonValue(std::move(o));
}

bool RunRecord::FromJson(const JsonValue& value, RunRecord* record,
                         std::string* error) {
  if (!value.is_object()) {
    if (error != nullptr) *error = "run record is not a JSON object";
    return false;
  }
  RunRecord r;
  r.instance = GetString(value, "instance");
  r.phase = GetString(value, "phase");
  r.encoding = GetString(value, "encoding");
  r.symmetry = GetString(value, "symmetry");
  r.width = static_cast<int>(GetU64(value, "width"));
  r.cube_workers = static_cast<int>(GetU64(value, "cube_workers"));
  r.verdict = GetString(value, "verdict");
  r.coloring_seconds = GetDouble(value, "coloring_seconds");
  r.encode_seconds = GetDouble(value, "encode_seconds");
  r.solve_seconds = GetDouble(value, "solve_seconds");
  r.total_seconds = GetDouble(value, "total_seconds");
  r.cnf_vars = GetU64(value, "cnf_vars");
  r.cnf_clauses = GetU64(value, "cnf_clauses");
  if (const JsonValue* solver = value.Find("solver")) {
    r.propagations = GetU64(*solver, "propagations");
    r.binary_propagations = GetU64(*solver, "binary_propagations");
    r.conflicts = GetU64(*solver, "conflicts");
    r.decisions = GetU64(*solver, "decisions");
    r.restarts = GetU64(*solver, "restarts");
    r.learned = GetU64(*solver, "learned");
    r.removed = GetU64(*solver, "removed");
  }
  if (const JsonValue* db = value.Find("learnt_db")) {
    r.learnts_core = GetU64(*db, "core");
    r.learnts_tier2 = GetU64(*db, "tier2");
    r.learnts_local = GetU64(*db, "local");
    if (const JsonValue* lbd = db->Find("lbd_histogram");
        lbd != nullptr && lbd->is_array()) {
      for (const JsonValue& b : lbd->AsArray()) {
        r.lbd_histogram.push_back(b.is_number() ? b.AsUint() : 0);
      }
    }
    r.peak_clause_memory_bytes = GetU64(*db, "peak_clause_memory_bytes");
  }
  if (const JsonValue* session = value.Find("session")) {
    r.deltas_applied = GetU64(*session, "deltas_applied");
    r.groups_retired = GetU64(*session, "groups_retired");
  }
  if (const JsonValue* cube = value.Find("cube")) {
    r.cubes = GetU64(*cube, "cubes");
    r.cubes_stolen = GetU64(*cube, "stolen");
    if (const JsonValue* exchange = cube->Find("exchange")) {
      r.exchange_exported = GetU64(*exchange, "exported");
      r.exchange_imported = GetU64(*exchange, "imported");
      r.exchange_dropped_full = GetU64(*exchange, "dropped_full");
      r.exchange_torn_reads = GetU64(*exchange, "torn_reads");
      r.exchange_cursor_advanced = GetU64(*exchange, "cursor_advanced");
      r.exchange_self_skipped = GetU64(*exchange, "self_skipped");
      r.exchange_incompatible_skipped =
          GetU64(*exchange, "incompatible_skipped");
      r.exchange_eviction_skipped = GetU64(*exchange, "eviction_skipped");
    }
  }
  if (const JsonValue* observed = value.Find("observed")) {
    r.has_observed = true;
    r.observed_propagations = GetU64(*observed, "propagations");
    r.observed_conflicts = GetU64(*observed, "conflicts");
    r.observed_restarts = GetU64(*observed, "restarts");
    r.observed_learned = GetU64(*observed, "learned");
    r.observed_bcp_seconds = GetDouble(*observed, "bcp_seconds");
    r.observed_analyze_seconds = GetDouble(*observed, "analyze_seconds");
    r.observed_inprocess_seconds = GetDouble(*observed, "inprocess_seconds");
  }
  *record = std::move(r);
  return true;
}

RunReportWriter::RunReportWriter(const std::string& path)
    : path_(path), out_(path, std::ios::binary) {
  ok_ = static_cast<bool>(out_);
}

void RunReportWriter::Append(const RunRecord& record) {
  if (!ok_) return;
  const std::string line = record.ToJson().Dump();
  mc::MutexLock lock(mutex_);
  out_ << line << '\n';
  out_.flush();
  ++records_;
}

std::size_t RunReportWriter::records_written() const {
  mc::MutexLock lock(mutex_);
  return records_;
}

bool LoadRunReport(const std::string& path, std::vector<RunRecord>* records,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue value;
    std::string parse_error;
    if (!ParseJson(line, &value, &parse_error)) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_no) + ": " + parse_error;
      }
      return false;
    }
    RunRecord record;
    if (!RunRecord::FromJson(value, &record, &parse_error)) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_no) + ": " + parse_error;
      }
      return false;
    }
    records->push_back(std::move(record));
  }
  return true;
}

namespace {
mc::Atomic<RunReportWriter*> g_report{nullptr};
}  // namespace

RunReportWriter* GlobalReport() {
  return g_report.load(std::memory_order_acquire);
}

void SetGlobalReport(RunReportWriter* writer) {
  g_report.store(writer, std::memory_order_release);
}

}  // namespace satfr::obs
