#include "cube/cube_solver.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "cube/work_queue.h"
#include "encode/csp_to_cnf.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/solver_trace.h"
#include "obs/trace.h"
#include "sat/clause_sink.h"

namespace satfr::cube {

CubeWorkerPool::CubeWorkerPool(
    const sat::SolverOptions& solver_options, const CubePoolOptions& options,
    std::uint64_t numbering_key,
    const std::function<bool(int, sat::Solver&)>& setup)
    : options_(options) {
  const int n = std::max(1, options.num_workers);
  const bool share =
      options.share_clauses && !options.deterministic && n > 1;
  if (share) {
    exchange_.reset(new sat::ClauseExchange(options.exchange_capacity));
  }
  workers_.resize(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    sat::SolverOptions per_worker = solver_options;
    per_worker.share_max_lbd = options.share_max_lbd;
    if (w > 0) {
      // Decorrelate the random decisions/polarities so workers that steal
      // into the same region don't retrace each other's searches.
      per_worker.seed = solver_options.seed +
                        0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(w);
    }
    Worker& worker = workers_[static_cast<std::size_t>(w)];
    worker.solver.reset(new sat::Solver(per_worker));
    if (!setup(w, *worker.solver)) ok_ = false;
    if (share) {
      worker.participant =
          exchange_->Register(numbering_key, numbering_key);
      worker.solver->SetClauseExchange(exchange_.get(), worker.participant);
    }
  }
}

CubeWorkerPool::~CubeWorkerPool() = default;

CubeWorkerPool::BatchResult CubeWorkerPool::SolveBatch(
    const std::vector<std::vector<sat::Lit>>& cubes,
    const std::vector<sat::Lit>& base_assumptions, Deadline deadline,
    const mc::Atomic<bool>* external_stop) {
  BatchResult out;
  if (!ok_) {
    out.status = sat::SolveResult::kUnsat;
    out.refuted = true;
    return out;
  }
  if (cubes.empty()) {
    // The generator pruned every leaf; each pruned leaf is refuted by
    // emitted clauses, so the empty cover already proves UNSAT.
    out.status = sat::SolveResult::kUnsat;
    return out;
  }

  const int n = num_workers();
  const std::size_t per_worker =
      (cubes.size() + static_cast<std::size_t>(n) - 1) /
      static_cast<std::size_t>(n);

  // Round-robin seeding: cube i goes to deque i % n, pushed largest-index
  // first so the owner's LIFO pops walk its share in ascending generator
  // order (the deterministic-mode order guarantee).
  std::vector<std::unique_ptr<WorkStealingDeque>> deques;
  deques.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    deques.push_back(
        std::make_unique<WorkStealingDeque>(std::max<std::size_t>(
            per_worker, 1)));
  }
  for (std::int64_t i = static_cast<std::int64_t>(cubes.size()) - 1; i >= 0;
       --i) {
    deques[static_cast<std::size_t>(i) % static_cast<std::size_t>(n)]
        ->PushBottom(i);
  }

  mc::Atomic<bool> pool_stop{false};
  mc::Atomic<bool> found_sat{false};
  mc::Atomic<bool> refuted{false};
  mc::Atomic<std::size_t> resolved{0};
  mc::Atomic<std::size_t> stolen{0};
  mc::Mutex winner_mutex;

  // Telemetry plumbing. Each slot below is written only by its own worker
  // thread (and read after the join), so plain non-atomic storage is fine.
  obs::TraceWriter* const trace = obs::GlobalTrace();
  const bool telemetry = trace != nullptr || obs::GlobalReport() != nullptr;
  out.worker_loads.resize(static_cast<std::size_t>(n));
  std::vector<sat::SolverStats> observed_per_worker(
      static_cast<std::size_t>(n));

  const auto take_work = [&](int w, std::int64_t* idx, std::uint64_t tid) {
    if (deques[static_cast<std::size_t>(w)]->PopBottom(idx)) return true;
    if (options_.deterministic) return false;
    // Steal phase: scan the other deques until one yields work or all are
    // empty. A failed Steal can mean "lost a race", so emptiness of every
    // deque — not a single failed attempt — is the termination condition
    // (the cube supply is fixed; an empty deque never refills).
    while (!pool_stop.load(std::memory_order_relaxed)) {
      bool any_nonempty = false;
      for (int k = 1; k < n; ++k) {
        const int victim_index = (w + k) % n;
        WorkStealingDeque& victim =
            *deques[static_cast<std::size_t>(victim_index)];
        if (victim.Steal(idx)) {
          stolen.fetch_add(1, std::memory_order_relaxed);
          ++out.worker_loads[static_cast<std::size_t>(w)].steals;
          if (trace != nullptr) {
            trace->InstantEvent("steal", "cube", tid, trace->NowMicros(),
                                {{"cube", obs::JsonValue(*idx)},
                                 {"from", obs::JsonValue(victim_index)}});
          }
          return true;
        }
        if (!victim.Empty()) any_nonempty = true;
      }
      if (!any_nonempty) return false;
      std::this_thread::yield();
    }
    return false;
  };

  const auto run_worker = [&](int w) {
    sat::Solver& solver = *workers_[static_cast<std::size_t>(w)].solver;
    WorkerLoad& load = out.worker_loads[static_cast<std::size_t>(w)];
    const std::uint64_t tid = obs::TraceWriter::CurrentTid();
    if (trace != nullptr) {
      trace->SetThreadName(tid, "cube-worker " + std::to_string(w));
    }
    std::optional<obs::SolverTelemetryObserver> observer;
    if (telemetry) {
      observer.emplace(trace, tid);
      solver.SetObserver(&*observer);
    }
    std::vector<sat::Lit> assumptions;
    std::int64_t idx = 0;
    while (!pool_stop.load(std::memory_order_relaxed)) {
      if (external_stop != nullptr &&
          external_stop->load(std::memory_order_relaxed)) {
        pool_stop.store(true, std::memory_order_relaxed);
        break;
      }
      if (!take_work(w, &idx, tid)) break;
      assumptions = base_assumptions;
      const std::vector<sat::Lit>& cube =
          cubes[static_cast<std::size_t>(idx)];
      assumptions.insert(assumptions.end(), cube.begin(), cube.end());
      std::optional<obs::TraceSpan> cube_span;
      if (trace != nullptr) {
        cube_span.emplace(trace, "cube " + std::to_string(idx), "cube", tid);
      }
      Stopwatch busy_watch;
      const sat::SolveResult status =
          solver.SolveWithAssumptions(assumptions, deadline, &pool_stop);
      load.busy_seconds += busy_watch.Seconds();
      ++load.cubes;
      if (cube_span.has_value()) {
        cube_span->AddArg("verdict", obs::JsonValue(sat::ToString(status)));
        cube_span->End();
      }
      if (status == sat::SolveResult::kSat) {
        mc::MutexLock lock(winner_mutex);
        if (!found_sat.load(std::memory_order_relaxed)) {
          found_sat.store(true, std::memory_order_relaxed);
          out.winning_cube = static_cast<int>(idx);
          out.model = solver.model();
        }
        pool_stop.store(true, std::memory_order_relaxed);
        break;
      }
      if (status == sat::SolveResult::kUnsat) {
        if (!solver.okay()) {
          // Level-0 refutation: assumption-independent, the formula itself
          // is UNSAT. No need to look at the remaining cubes.
          refuted.store(true, std::memory_order_relaxed);
          pool_stop.store(true, std::memory_order_relaxed);
          break;
        }
        resolved.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      break;  // kUnknown: deadline hit or pool_stop raised mid-search
    }
    if (observer.has_value()) {
      // Detach before the observer goes out of scope: the solver outlives
      // this batch.
      solver.SetObserver(nullptr);
      observed_per_worker[static_cast<std::size_t>(w)] = observer->observed();
    }
  };

  // Workers poll pool_stop from inside SolveWithAssumptions, but only check
  // external_stop between cubes — a worker deep in a hard cube would never
  // see an external cancellation. The monitor bridges the two, so stopping
  // the pool (portfolio loss, CLI ^C path) interrupts mid-cube search.
  mc::Atomic<bool> batch_done{false};
  std::thread monitor;
  if (external_stop != nullptr) {
    monitor = std::thread([&] {
      while (!batch_done.load(std::memory_order_relaxed)) {
        if (external_stop->load(std::memory_order_relaxed)) {
          pool_stop.store(true, std::memory_order_relaxed);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  if (n == 1) {
    run_worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w) threads.emplace_back(run_worker, w);
    for (std::thread& t : threads) t.join();
  }
  batch_done.store(true, std::memory_order_relaxed);
  if (monitor.joinable()) monitor.join();

  out.cubes_resolved = resolved.load(std::memory_order_relaxed);
  out.cubes_stolen = stolen.load(std::memory_order_relaxed);
  if (telemetry) {
    out.has_observed = true;
    for (const sat::SolverStats& s : observed_per_worker) {
      out.observed.Accumulate(s);
    }
  }
  {
    struct CubeMetricIds {
      obs::MetricId resolved = obs::GlobalMetrics().Counter("cube.resolved");
      obs::MetricId stolen = obs::GlobalMetrics().Counter("cube.stolen");
      obs::MetricId batches = obs::GlobalMetrics().Counter("cube.batches");
    };
    static const CubeMetricIds ids;
    obs::MetricsRegistry& metrics = obs::GlobalMetrics();
    metrics.Add(ids.resolved,
                static_cast<std::uint64_t>(out.cubes_resolved));
    metrics.Add(ids.stolen, static_cast<std::uint64_t>(out.cubes_stolen));
    metrics.Add(ids.batches);
  }
  if (found_sat.load(std::memory_order_relaxed)) {
    out.status = sat::SolveResult::kSat;
  } else if (refuted.load(std::memory_order_relaxed)) {
    out.status = sat::SolveResult::kUnsat;
    out.refuted = true;
    ok_ = false;
  } else if (out.cubes_resolved == cubes.size()) {
    out.status = sat::SolveResult::kUnsat;
  }
  return out;
}

sat::SolverStats CubeWorkerPool::MergedStats() const {
  // Field-wise sum via the shared accumulator, so a SolverStats counter
  // added tomorrow is merged here without another hand-written line.
  // Summed solve_seconds is aggregate CPU seconds, not wall clock.
  sat::SolverStats merged;
  for (const Worker& w : workers_) merged.Accumulate(w.solver->stats());
  return merged;
}

sat::ClauseExchange::Totals CubeWorkerPool::exchange_totals() const {
  return exchange_ ? exchange_->totals() : sat::ClauseExchange::Totals{};
}

CubeSolveResult SolveColoringWithCubes(const graph::Graph& g, int num_colors,
                                       const encode::EncodingSpec& encoding,
                                       symmetry::Heuristic heuristic,
                                       const CubeSolveOptions& options) {
  Stopwatch stopwatch;
  CubeSolveResult result;
  obs::TraceWriter* const trace = obs::GlobalTrace();
  obs::RunReportWriter* const report = obs::GlobalReport();
  const char* const label =
      options.run_label.empty() ? "graph" : options.run_label.c_str();
  obs::TraceSpan solve_span(trace, "cube_solve", "cube");
  solve_span.AddArg("instance", obs::JsonValue(label));
  solve_span.AddArg("encoding", obs::JsonValue(encoding.name));
  solve_span.AddArg("width", obs::JsonValue(num_colors));

  const auto sequence =
      symmetry::SymmetrySequence(g, num_colors, heuristic);
  const encode::DomainEncoding domain =
      encode::EncodeDomain(encoding, num_colors);
  const std::uint64_t key =
      encode::NumberingKey(domain, num_colors, sequence);

  // Every worker loads the identical formula; worker 0's layout serves all
  // of them for decoding (same encoding + sequence => same numbering).
  encode::ColoringLayout layout;
  const auto setup = [&](int w, sat::Solver& solver) {
    sat::SolverSink sink(solver);
    encode::ColoringLayout built =
        encode::EncodeColoringToSink(g, num_colors, encoding, sequence, sink);
    if (w == 0) layout = std::move(built);
    return sink.Finish();
  };
  CubeWorkerPool pool(options.solver, options.pool, key, setup);

  const CubeSet cube_set =
      GenerateCubes(g, domain, num_colors, sequence, options.gen);
  result.num_cubes = cube_set.cubes.size();
  result.pruned_conflict = cube_set.pruned_conflict;
  result.pruned_symmetry = cube_set.pruned_symmetry;

  const Deadline deadline = options.timeout_seconds > 0.0
                                ? Deadline::After(options.timeout_seconds)
                                : Deadline::Infinite();
  // Loading the formula can already propagate top-level units, so the
  // batch's solver window is a stats DELTA, not the pool's lifetime total —
  // the telemetry-consistency pass compares it against the observer sums,
  // which only cover the batch.
  const sat::SolverStats pre_batch = pool.MergedStats();
  CubeWorkerPool::BatchResult batch =
      pool.SolveBatch(cube_set.cubes, {}, deadline, options.stop);

  result.status = batch.status;
  result.winning_cube = batch.winning_cube;
  result.cubes_resolved = batch.cubes_resolved;
  result.cubes_stolen = batch.cubes_stolen;
  result.worker_loads = std::move(batch.worker_loads);
  if (batch.status == sat::SolveResult::kSat) {
    std::vector<int> colors = encode::DecodeColoring(layout, batch.model);
    bool valid = static_cast<int>(colors.size()) == g.num_vertices() &&
                 g.IsProperColoring(colors);
    for (const int c : colors) {
      if (c < 0 || c >= num_colors) valid = false;
    }
    if (valid) {
      result.colors = std::move(colors);
      result.model_validated = true;
    } else {
      // A model that fails decoding/validation means a solver or encoding
      // bug: report kUnknown with an error instead of a false SAT verdict.
      result.status = sat::SolveResult::kUnknown;
      result.winning_cube = -1;
      result.error =
          "cube SAT model failed validation (improper coloring or color "
          "out of range)";
    }
  }
  result.solver_stats = pool.MergedStats();
  result.exchange_totals = pool.exchange_totals();
  result.wall_seconds = stopwatch.Seconds();
  solve_span.AddArg("verdict", obs::JsonValue(sat::ToString(result.status)));
  solve_span.AddArg("cubes",
                    obs::JsonValue(static_cast<std::uint64_t>(
                        result.num_cubes)));
  solve_span.End();

  if (report != nullptr) {
    obs::RunRecord record;
    record.instance = label;
    record.phase = "cube";
    record.encoding = encoding.name;
    record.symmetry = symmetry::ToString(heuristic);
    record.width = num_colors;
    record.cube_workers = pool.num_workers();
    record.verdict = sat::ToString(result.status);
    // solve_seconds follows the merged-stats convention: aggregate CPU
    // seconds over all workers (the observed phase split sums the same
    // way); wall clock lives in total_seconds.
    const sat::SolverStats window = result.solver_stats.Since(pre_batch);
    record.solve_seconds = window.solve_seconds;
    record.total_seconds = result.wall_seconds;
    record.cnf_vars = static_cast<std::uint64_t>(layout.num_vars);
    record.cnf_clauses =
        static_cast<std::uint64_t>(layout.stats.TotalEmitted());
    record.SetSolverWindow(window);
    record.cubes = static_cast<std::uint64_t>(result.num_cubes);
    record.cubes_stolen = static_cast<std::uint64_t>(result.cubes_stolen);
    const sat::ClauseExchange::Totals& ex = result.exchange_totals;
    record.exchange_exported = ex.published;
    record.exchange_imported = ex.collected;
    record.exchange_dropped_full = ex.evicted + ex.oversize_dropped;
    record.exchange_torn_reads = ex.torn_reads;
    record.exchange_cursor_advanced = ex.cursor_advanced;
    record.exchange_self_skipped = ex.self_skipped;
    record.exchange_incompatible_skipped = ex.incompatible_skipped;
    record.exchange_eviction_skipped = ex.eviction_skipped;
    if (batch.has_observed) {
      record.has_observed = true;
      record.observed_propagations = batch.observed.propagations;
      record.observed_conflicts = batch.observed.conflicts;
      record.observed_restarts = batch.observed.restarts;
      record.observed_learned = batch.observed.learned;
      record.observed_bcp_seconds = batch.observed.bcp_seconds;
      record.observed_analyze_seconds = batch.observed.analyze_seconds;
      record.observed_inprocess_seconds = batch.observed.inprocess_seconds;
    }
    report->Append(record);
  }
  return result;
}

}  // namespace satfr::cube
