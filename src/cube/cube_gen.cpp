#include "cube/cube_gen.h"

#include <algorithm>
#include <cstdint>

namespace satfr::cube {

namespace {

// One partial assignment of colors to the branch-vertex prefix.
struct Leaf {
  std::vector<int> colors;  // colors[i] = color of branch_vertices[i]
};

}  // namespace

CubeSet GenerateCubes(const graph::Graph& g,
                      const encode::DomainEncoding& domain, int branch_colors,
                      const std::vector<graph::VertexId>& symmetry_sequence,
                      const CubeGenOptions& options) {
  CubeSet out;
  const int n = g.num_vertices();
  const int colors = std::min(branch_colors, domain.domain_size);

  // Branch order: the symmetry sequence first (smallest domains, so the
  // early tree levels stay narrow and balanced), then every remaining
  // vertex by descending degree, ties by descending neighbor-degree sum,
  // then ascending id — the same key the s1 heuristic ranks by.
  std::vector<char> in_sequence(static_cast<std::size_t>(n), 0);
  std::vector<graph::VertexId> order;
  for (const graph::VertexId v : symmetry_sequence) {
    in_sequence[static_cast<std::size_t>(v)] = 1;
    order.push_back(v);
  }
  std::vector<graph::VertexId> rest;
  for (graph::VertexId v = 0; v < n; ++v) {
    if (!in_sequence[static_cast<std::size_t>(v)]) rest.push_back(v);
  }
  std::sort(rest.begin(), rest.end(),
            [&g](graph::VertexId a, graph::VertexId b) {
              if (g.Degree(a) != g.Degree(b)) return g.Degree(a) > g.Degree(b);
              if (g.NeighborDegreeSum(a) != g.NeighborDegreeSum(b)) {
                return g.NeighborDegreeSum(a) > g.NeighborDegreeSum(b);
              }
              return a < b;
            });
  order.insert(order.end(), rest.begin(), rest.end());

  // Expand the branch tree breadth-first, one vertex per level, until the
  // cube target or the vertex caps stop it. Colors == 1 vertices (the first
  // sequence vertex) don't split but still commit an assumption, which
  // seeds every worker's search with the forced prefix.
  std::vector<Leaf> leaves(1);
  std::vector<Leaf> next;
  for (const graph::VertexId v : order) {
    if (colors <= 0) break;
    if (static_cast<int>(out.branch_vertices.size()) >=
        options.max_branch_vertices) {
      break;
    }
    if (static_cast<int>(leaves.size()) >= options.target_cubes) break;

    const int position = static_cast<int>(out.branch_vertices.size());
    int limit = colors;
    if (in_sequence[static_cast<std::size_t>(v)]) {
      // Sequence vertex i (1-based) is restricted to colors < i.
      limit = std::min(colors, position + 1);
      out.pruned_symmetry +=
          leaves.size() * static_cast<std::size_t>(colors - limit);
    }

    next.clear();
    for (const Leaf& leaf : leaves) {
      for (int c = 0; c < limit; ++c) {
        bool conflict = false;
        for (int i = 0; i < position; ++i) {
          if (leaf.colors[static_cast<std::size_t>(i)] == c &&
              g.HasEdge(out.branch_vertices[static_cast<std::size_t>(i)],
                        v)) {
            conflict = true;
            break;
          }
        }
        if (conflict) {
          ++out.pruned_conflict;
          continue;
        }
        Leaf extended = leaf;
        extended.colors.push_back(c);
        next.push_back(std::move(extended));
      }
    }
    out.branch_vertices.push_back(v);
    leaves.swap(next);
    if (leaves.empty()) break;  // every leaf entailed-refuted: UNSAT cover
  }

  // Materialize assumption literals: for each committed (vertex, color),
  // assert every literal of the color's value cube shifted into the
  // vertex's variable block.
  out.cubes.reserve(leaves.size());
  for (const Leaf& leaf : leaves) {
    std::vector<sat::Lit> assumptions;
    for (std::size_t i = 0; i < leaf.colors.size(); ++i) {
      const graph::VertexId v = out.branch_vertices[i];
      const int offset = static_cast<int>(v) * domain.num_vars;
      const encode::Cube& value_cube =
          domain.value_cubes[static_cast<std::size_t>(leaf.colors[i])];
      for (const sat::Lit l : value_cube) {
        assumptions.push_back(sat::Lit::Make(l.var() + offset, l.negated()));
      }
    }
    out.cubes.push_back(std::move(assumptions));
  }
  return out;
}

}  // namespace satfr::cube
