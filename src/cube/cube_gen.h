// Lookahead-lite cube generation for cube-and-conquer coloring search.
//
// A cube is a set of assumption literals that commits a few branch vertices
// to concrete colors; the cube set partitions (more precisely: covers) the
// search space of one (instance, W) query, so the cubes can be refuted or
// satisfied independently on parallel workers. Instead of running a
// lookahead solver (the classic March-style generator), we exploit two
// structural properties of the coloring CSP:
//
//   * Every encoding's structural clauses entail "at least one value cube
//     is true" per vertex, so branching a vertex over its value cubes is an
//     exhaustive case split — any model satisfies at least one branch.
//   * The symmetry-broken sequence vertices v_1..v_m have domains clipped
//     to {0..i-1} by emitted restriction clauses, so branching them first
//     yields a naturally balanced 1 x 2 x 3 x ... split; after the sequence
//     we continue with the highest-degree remaining vertices, whose many
//     conflict edges make the per-cube subproblems maximally constrained.
//
// Two prunes drop cubes that emitted clauses already refute (skipping an
// entailed-UNSAT leaf is sound — even when it empties the cube set, which
// itself proves UNSAT):
//   * conflict pruning: two adjacent branch vertices with equal colors
//     violate a conflict clause;
//   * symmetry pruning is implicit: colors >= min(i, K) are never
//     enumerated for sequence vertex i (they violate its restriction
//     clauses), counted so throughput reports can show the split sizes.
//
// Generation is deterministic: branch-vertex order and color order are
// fixed functions of the graph, the sequence, and the options.
#ifndef SATFR_CUBE_CUBE_GEN_H_
#define SATFR_CUBE_CUBE_GEN_H_

#include <cstddef>
#include <vector>

#include "encode/hierarchical.h"
#include "graph/graph.h"
#include "sat/types.h"

namespace satfr::cube {

struct CubeGenOptions {
  /// Stop adding branch vertices once at least this many cubes exist.
  /// The final count can overshoot by up to one vertex's branching factor
  /// and undershoot when pruning or the vertex supply cuts the tree short.
  int target_cubes = 256;
  /// Hard cap on branch vertices (each multiplies the cube count by up to
  /// the color count; 12 vertices already allow millions of cubes).
  int max_branch_vertices = 12;
};

struct CubeSet {
  /// Assumption literal sets, one per cube, over the encoded formula's
  /// variables (vertex v's block at v * domain.num_vars). Deterministic
  /// order: lexicographic in (branch-vertex, color) enumeration order.
  std::vector<std::vector<sat::Lit>> cubes;
  /// Branch vertices, in branching order (sequence first, then by degree).
  std::vector<graph::VertexId> branch_vertices;
  /// Leaves dropped because two adjacent branch vertices shared a color.
  std::size_t pruned_conflict = 0;
  /// Leaves never enumerated because a sequence vertex's restriction
  /// clauses forbid the color.
  std::size_t pruned_symmetry = 0;
};

/// Builds cubes for the K-coloring of `g` encoded with `domain`, where K =
/// `branch_colors` is the number of colors a vertex may take (<=
/// domain.domain_size; smaller when a guard ladder restricts the encoded
/// K_max-domain formula to width W — see flow/incremental_min_width).
/// `symmetry_sequence` must be the exact sequence the formula was encoded
/// with (its restriction clauses are what make symmetry pruning sound).
CubeSet GenerateCubes(const graph::Graph& g,
                      const encode::DomainEncoding& domain, int branch_colors,
                      const std::vector<graph::VertexId>& symmetry_sequence,
                      const CubeGenOptions& options = {});

}  // namespace satfr::cube

#endif  // SATFR_CUBE_CUBE_GEN_H_
