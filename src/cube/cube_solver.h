// Cube-and-conquer execution: resident-solver worker pool and the one-shot
// coloring entry point.
//
// A CubeWorkerPool owns N sat::Solver instances, one per worker, each
// loaded once with the full formula by a caller-supplied setup callback.
// Every SolveBatch call then distributes a cube set over the workers
// (Chase-Lev deques, round-robin seeding, work stealing for the stragglers)
// and solves each cube with SolveWithAssumptions on the worker's RESIDENT
// solver — learnt clauses, VSIDS activities, phase saving, and learnt-tier
// state persist across cubes and across batches, which is where the
// approach beats fork-per-cube designs: each refuted cube strengthens the
// solver that will refute the next one. Workers optionally share unit and
// low-LBD learnts through the lock-free ClauseExchange (sound because
// learnt clauses are derived by resolution from formula clauses only —
// assumptions never act as axioms — so every learnt is formula-implied and
// valid in every other worker with the same variable numbering).
//
// Verdict aggregation is exact:
//   * any cube SAT            => kSat with that worker's model (callers
//                                decode and validate it against the graph);
//   * a worker's okay() drops => the formula itself is refuted (a level-0
//                                conflict is assumption-independent):
//                                kUnsat immediately, remaining cubes moot;
//   * every cube refuted      => kUnsat (the cube set covers the space:
//                                branching is over value cubes whose
//                                disjunction the encoding entails, and the
//                                generator only pruned entailed-UNSAT
//                                leaves — an EMPTY batch is therefore
//                                kUnsat too);
//   * otherwise               => kUnknown (deadline or external stop).
//
// Deterministic mode pins each worker's cube order (no stealing) and
// disables clause sharing, so a single-worker run visits cubes in exactly
// the generator's order with a bit-reproducible search.
#ifndef SATFR_CUBE_CUBE_SOLVER_H_
#define SATFR_CUBE_CUBE_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "cube/cube_gen.h"
#include "mc/shim.h"
#include "encode/registry.h"
#include "graph/graph.h"
#include "sat/clause_exchange.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"

namespace satfr::cube {

struct CubePoolOptions {
  int num_workers = 1;
  /// Pin per-worker cube order: no stealing, no clause sharing. With one
  /// worker the whole run is bit-reproducible and visits cubes in
  /// generator order.
  bool deterministic = false;
  /// Exchange unit/low-LBD learnts between workers (ignored when
  /// deterministic or single-worker).
  bool share_clauses = true;
  std::uint32_t share_max_lbd = 2;
  std::size_t exchange_capacity = sat::ClauseExchange::kDefaultCapacity;
};

class CubeWorkerPool {
 public:
  /// Creates the resident solvers and calls `setup(worker_index, solver)`
  /// on each to load the formula. A false return from setup means the
  /// formula was refuted while loading (e.g. SolverSink::Finish failed);
  /// the pool records it and every SolveBatch reports kUnsat/refuted.
  /// Worker 0 uses `solver_options` verbatim; workers 1..N-1 get decorrelated
  /// seeds (same search parameters otherwise). `numbering_key` is the
  /// encode::NumberingKey of the loaded formula, used to register workers
  /// with the clause exchange; pass 0 when sharing is off.
  CubeWorkerPool(const sat::SolverOptions& solver_options,
                 const CubePoolOptions& options, std::uint64_t numbering_key,
                 const std::function<bool(int, sat::Solver&)>& setup);
  ~CubeWorkerPool();

  CubeWorkerPool(const CubeWorkerPool&) = delete;
  CubeWorkerPool& operator=(const CubeWorkerPool&) = delete;

  /// Per-worker load figures for one batch (telemetry + the `satfr --cube`
  /// end-of-run summary).
  struct WorkerLoad {
    /// Wall time this worker spent inside SolveWithAssumptions.
    double busy_seconds = 0.0;
    /// Cubes this worker solved (own deque + stolen).
    std::size_t cubes = 0;
    /// Cubes this worker stole from other workers' deques.
    std::size_t steals = 0;
  };

  struct BatchResult {
    sat::SolveResult status = sat::SolveResult::kUnknown;
    /// Index into the batch's cube vector of the SAT cube; -1 otherwise.
    int winning_cube = -1;
    /// The winning worker's model (empty unless status == kSat).
    std::vector<bool> model;
    /// True when kUnsat came from a worker's okay() turning false (the
    /// formula itself is refuted, not just every cube).
    bool refuted = false;
    /// Cubes individually refuted in this batch.
    std::size_t cubes_resolved = 0;
    /// Cubes a worker took from another worker's deque.
    std::size_t cubes_stolen = 0;
    /// One entry per worker.
    std::vector<WorkerLoad> worker_loads;
    /// Counter totals accumulated through the per-worker SolverObserver
    /// hooks during this batch; all-zero (has_observed false) when
    /// telemetry is off. Cross-checked against MergedStats deltas by the
    /// telemetry-consistency pass.
    bool has_observed = false;
    sat::SolverStats observed;
  };

  /// Solves every cube (assumptions = base_assumptions + cube) and
  /// aggregates the verdict. Solver state persists into the next batch.
  /// `external_stop`, when non-null, cancels the batch (status kUnknown).
  BatchResult SolveBatch(const std::vector<std::vector<sat::Lit>>& cubes,
                         const std::vector<sat::Lit>& base_assumptions,
                         Deadline deadline = Deadline(),
                         const mc::Atomic<bool>* external_stop = nullptr);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  /// False once any worker's formula was refuted (at load or in a batch).
  bool okay() const { return ok_; }
  /// Counter sums over all resident solvers (cumulative across batches).
  sat::SolverStats MergedStats() const;
  /// All-zero when sharing is disabled.
  sat::ClauseExchange::Totals exchange_totals() const;

 private:
  struct Worker {
    std::unique_ptr<sat::Solver> solver;
    int participant = -1;
  };

  const CubePoolOptions options_;
  std::vector<Worker> workers_;
  std::unique_ptr<sat::ClauseExchange> exchange_;
  bool ok_ = true;
};

struct CubeSolveOptions {
  CubePoolOptions pool;
  CubeGenOptions gen;
  sat::SolverOptions solver = sat::SolverOptions::SiegeLike();
  /// Wall-clock budget for the whole solve; <= 0 means unlimited.
  double timeout_seconds = 0.0;
  /// Optional cooperative cancellation (portfolio member use).
  const mc::Atomic<bool>* stop = nullptr;
  /// Telemetry label (trace spans / run-report records); empty is fine.
  std::string run_label;
};

struct CubeSolveResult {
  sat::SolveResult status = sat::SolveResult::kUnknown;
  /// Proper coloring when status == kSat (decoded and validated here, not
  /// just trusted — see `model_validated`).
  std::vector<int> colors;
  /// True when the kSat model decoded to a proper coloring within the
  /// color bound. A kSat answer with model_validated == false is
  /// impossible: validation failure downgrades status to kUnknown and
  /// fills `error` instead.
  bool model_validated = false;
  /// Non-empty when internal validation failed (solver bug surfaced).
  std::string error;

  std::size_t num_cubes = 0;
  std::size_t cubes_resolved = 0;
  std::size_t cubes_stolen = 0;
  std::size_t pruned_conflict = 0;
  std::size_t pruned_symmetry = 0;
  /// Cube index that produced the model; -1 unless kSat.
  int winning_cube = -1;
  /// Counter sums over all workers.
  sat::SolverStats solver_stats;
  sat::ClauseExchange::Totals exchange_totals;
  /// Per-worker busy/steal figures (see CubeWorkerPool::WorkerLoad).
  std::vector<CubeWorkerPool::WorkerLoad> worker_loads;
  double wall_seconds = 0.0;
};

/// One-shot cube-and-conquer K-coloring solve: encodes (g, num_colors,
/// encoding, heuristic) into each worker's resident solver, generates the
/// cube set, runs one batch, and decodes/validates a SAT model.
CubeSolveResult SolveColoringWithCubes(const graph::Graph& g, int num_colors,
                                       const encode::EncodingSpec& encoding,
                                       symmetry::Heuristic heuristic,
                                       const CubeSolveOptions& options = {});

}  // namespace satfr::cube

#endif  // SATFR_CUBE_CUBE_SOLVER_H_
