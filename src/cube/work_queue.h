// Chase-Lev work-stealing deque over cube indices.
//
// Each cube worker owns one deque: the owner pushes and pops at the bottom
// (LIFO, so it walks its own cubes in the order they were enqueued when the
// coordinator pushes them in reverse), and idle workers steal from the top
// (FIFO, so a thief takes the cube its victim would have reached last —
// minimal interference with the victim's locality). The implementation is
// the C11-memory-model formulation of Lê, Pop, Cohen & Nardelli,
// "Correct and Efficient Work-Stealing for Weakly Ordered Memory Models"
// (PPoPP 2013), restricted to a fixed power-of-two capacity: the total cube
// count is known before any worker starts, so the dynamic buffer growth of
// the general algorithm is dead weight here.
//
// Thread-safety contract: PushBottom/PopBottom may only be called by the
// owning worker; Steal may be called by any thread. All operations are
// lock-free (Steal is obstruction-free in the standard Chase-Lev sense: a
// CAS failure means another thief or the owner got the element).
//
// All atomics go through the mc:: shim (src/mc/shim.h): plain std::atomic
// in normal builds, model-checked under SATFR_MODEL_CHECK. The "no cube
// lost or popped twice" property and every weakened memory_order below are
// verified by tests/mc_litmus_test.cpp; tests/mc_mutation_test.cpp proves
// the checker catches the seeded weakenings guarded by the SATFR_MC_MUTATE_*
// hooks.
#ifndef SATFR_CUBE_WORK_QUEUE_H_
#define SATFR_CUBE_WORK_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "mc/shim.h"

// Mutation hooks for the model-check mutation suite: each deliberately
// weakens one memory_order the litmus proofs depend on, so the checker must
// flag it. Never defined in production builds.
#if defined(SATFR_MC_MUTATE_DEQUE_POP_FENCE) || \
    defined(SATFR_MC_MUTATE_DEQUE_STEAL_BOTTOM)
#if !defined(SATFR_MODEL_CHECK)
#error "SATFR_MC_MUTATE_* requires SATFR_MODEL_CHECK"
#endif
#endif

namespace satfr::cube {

namespace detail {
#if defined(SATFR_MC_MUTATE_DEQUE_POP_FENCE)
inline constexpr std::memory_order kPopBottomFenceOrder =
    std::memory_order_relaxed;  // MUTATED: checker must catch a double-take
#else
inline constexpr std::memory_order kPopBottomFenceOrder =
    std::memory_order_seq_cst;
#endif
#if defined(SATFR_MC_MUTATE_DEQUE_STEAL_BOTTOM)
inline constexpr std::memory_order kStealBottomLoadOrder =
    std::memory_order_relaxed;  // MUTATED: checker must catch a stale element
#else
inline constexpr std::memory_order kStealBottomLoadOrder =
    std::memory_order_acquire;
#endif
}  // namespace detail

class WorkStealingDeque {
 public:
  /// Capacity is rounded up to a power of two. The caller must never hold
  /// more than `capacity` elements in the deque at once (checked in debug
  /// builds by the coordinator, which sizes the deque to its cube share).
  explicit WorkStealingDeque(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    buffer_.reset(new mc::Atomic<std::int64_t>[cap]);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. Enqueues `item` at the bottom.
  void PushBottom(std::int64_t item) {
    // relaxed: bottom_ is only written by the owner, so its own last value
    // is the current one; no other thread's writes need ordering here.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // relaxed: the slot write is published by the release fence below, not
    // by its own order.
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_relaxed);
    // Release fence + relaxed bottom store pairs with the thief's acquire
    // bottom load in Steal: a thief that observes the new bottom also
    // observes the element written above.
    mc::Fence(std::memory_order_release);
    // relaxed: publication ordering is carried by the fence above.
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. Dequeues the most recently pushed element into *item;
  /// false when the deque is empty. On the last element the owner races
  /// thieves through a CAS on top, exactly one party wins.
  bool PopBottom(std::int64_t* item) {
    // relaxed twice: owner-only variable, same as PushBottom.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    // seq_cst fence: orders the bottom decrement against the top load in
    // the single total order shared with the thief's seq_cst CAS — either a
    // concurrent thief sees the decrement (and finds the deque empty), or
    // we see its top increment (and race it with the CAS below). Weakening
    // this is the classic Chase-Lev double-take bug (mutation hook).
    mc::Fence(detail::kPopBottomFenceOrder);
    // relaxed: freshness is forced by the seq_cst fence above; top_ needs
    // no acquire because the owner never reads thief-written payload.
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Already empty: restore bottom. relaxed: only the owner reads it
      // without the Steal fence protocol.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    // relaxed: the owner wrote this slot itself (or synchronized with the
    // thief CAS that emptied it via seq_cst).
    *item = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: contend with thieves for it. seq_cst success keeps
      // the CAS in the same total order as the fences; relaxed failure is
      // enough because losing only leads to restoring bottom.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Any thread. Takes the oldest element into *item; false when the deque
  /// is empty or the element was lost to a concurrent pop/steal (callers
  /// treat both as "try elsewhere").
  bool Steal(std::int64_t* item) {
    // acquire: synchronizes with the release CAS of other thieves so the
    // bottom check below uses a bottom at least as fresh as top.
    std::int64_t t = top_.load(std::memory_order_acquire);
    // seq_cst fence: orders the top load before the bottom load in the
    // total order shared with PopBottom's fence (see there).
    mc::Fence(std::memory_order_seq_cst);
    // acquire: pairs with the owner's release fence in PushBottom — seeing
    // bottom > t guarantees the element at t is initialized (mutation hook:
    // weakening this lets a thief read a stale slot).
    const std::int64_t b = bottom_.load(detail::kStealBottomLoadOrder);
    if (t >= b) return false;
    // relaxed: the acquire bottom load above already ordered the slot
    // write before this read.
    const std::int64_t candidate =
        buffer_[static_cast<std::size_t>(t) & mask_].load(
            std::memory_order_relaxed);
    // seq_cst success: participates in the owner-vs-thief total order (see
    // PopBottom); relaxed failure: a lost race carries no data.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;  // lost the race; element taken by owner or other thief
    }
    *item = candidate;
    return true;
  }

  /// Approximate (racy) emptiness — a scheduling hint, never a correctness
  /// signal (hence relaxed on both loads).
  bool Empty() const {
    return top_.load(std::memory_order_relaxed) >=
           bottom_.load(std::memory_order_relaxed);
  }

  /// Approximate (racy) element count — same scheduling-hint contract as
  /// Empty(). The service scheduler uses it to keep PushBottom within
  /// capacity: called by the owner, it never under-reports the owner's own
  /// unpopped pushes (steals only shrink the true count).
  std::size_t ApproxSize() const {
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  /// Slots the constructor actually allocated (capacity rounded up).
  std::size_t Capacity() const { return mask_ + 1; }

 private:
  mc::Atomic<std::int64_t> top_{0};
  mc::Atomic<std::int64_t> bottom_{0};
  std::unique_ptr<mc::Atomic<std::int64_t>[]> buffer_;
  std::size_t mask_ = 0;
};

}  // namespace satfr::cube

#endif  // SATFR_CUBE_WORK_QUEUE_H_
