// Chase-Lev work-stealing deque over cube indices.
//
// Each cube worker owns one deque: the owner pushes and pops at the bottom
// (LIFO, so it walks its own cubes in the order they were enqueued when the
// coordinator pushes them in reverse), and idle workers steal from the top
// (FIFO, so a thief takes the cube its victim would have reached last —
// minimal interference with the victim's locality). The implementation is
// the C11-memory-model formulation of Lê, Pop, Cohen & Nardelli,
// "Correct and Efficient Work-Stealing for Weakly Ordered Memory Models"
// (PPoPP 2013), restricted to a fixed power-of-two capacity: the total cube
// count is known before any worker starts, so the dynamic buffer growth of
// the general algorithm is dead weight here.
//
// Thread-safety contract: PushBottom/PopBottom may only be called by the
// owning worker; Steal may be called by any thread. All operations are
// lock-free (Steal is obstruction-free in the standard Chase-Lev sense: a
// CAS failure means another thief or the owner got the element).
#ifndef SATFR_CUBE_WORK_QUEUE_H_
#define SATFR_CUBE_WORK_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace satfr::cube {

class WorkStealingDeque {
 public:
  /// Capacity is rounded up to a power of two. The caller must never hold
  /// more than `capacity` elements in the deque at once (checked in debug
  /// builds by the coordinator, which sizes the deque to its cube share).
  explicit WorkStealingDeque(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    buffer_.reset(new std::atomic<std::int64_t>[cap]);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. Enqueues `item` at the bottom.
  void PushBottom(std::int64_t item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_relaxed);
    // Release so a thief that observes the new bottom also observes the
    // element written above.
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. Dequeues the most recently pushed element into *item;
  /// false when the deque is empty. On the last element the owner races
  /// thieves through a CAS on top, exactly one party wins.
  bool PopBottom(std::int64_t* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    // The fence orders the bottom decrement against the top load: either a
    // concurrent thief sees the decrement (and finds the deque empty), or
    // we see its top increment (and race it with the CAS below).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Already empty: restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    *item = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: contend with thieves for it.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Any thread. Takes the oldest element into *item; false when the deque
  /// is empty or the element was lost to a concurrent pop/steal (callers
  /// treat both as "try elsewhere").
  bool Steal(std::int64_t* item) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    // Order the top load before the bottom load (mirrors the owner's fence
    // in PopBottom); acquire on bottom pairs with the owner's release fence
    // in PushBottom so the element read below is the one pushed.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    const std::int64_t candidate =
        buffer_[static_cast<std::size_t>(t) & mask_].load(
            std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;  // lost the race; element taken by owner or other thief
    }
    *item = candidate;
    return true;
  }

  /// Approximate (racy) emptiness — a scheduling hint, never a correctness
  /// signal.
  bool Empty() const {
    return top_.load(std::memory_order_relaxed) >=
           bottom_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::unique_ptr<std::atomic<std::int64_t>[]> buffer_;
  std::size_t mask_ = 0;
};

}  // namespace satfr::cube

#endif  // SATFR_CUBE_WORK_QUEUE_H_
