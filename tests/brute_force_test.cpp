#include <gtest/gtest.h>

#include "sat/brute_force.h"
#include "test_util.h"

namespace satfr::sat {
namespace {

TEST(BruteForceTest, TrivialSat) {
  Cnf cnf(1);
  cnf.AddUnit(Lit::Pos(0));
  const auto model = SolveByEnumeration(cnf);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE((*model)[0]);
  EXPECT_TRUE(SolveByDpll(cnf).has_value());
}

TEST(BruteForceTest, TrivialUnsat) {
  Cnf cnf(1);
  cnf.AddUnit(Lit::Pos(0));
  cnf.AddUnit(Lit::Neg(0));
  EXPECT_FALSE(SolveByEnumeration(cnf).has_value());
  EXPECT_FALSE(SolveByDpll(cnf).has_value());
}

TEST(BruteForceTest, EmptyFormulaIsSat) {
  Cnf cnf(3);
  EXPECT_TRUE(SolveByEnumeration(cnf).has_value());
  EXPECT_TRUE(SolveByDpll(cnf).has_value());
}

TEST(BruteForceTest, EmptyClauseIsUnsat) {
  Cnf cnf(2);
  cnf.AddClause({});
  EXPECT_FALSE(SolveByEnumeration(cnf).has_value());
  EXPECT_FALSE(SolveByDpll(cnf).has_value());
}

TEST(BruteForceTest, ModelsActuallySatisfy) {
  Rng rng(101);
  for (int i = 0; i < 50; ++i) {
    const Cnf cnf = testutil::RandomCnf(rng, 8, 16);
    const auto by_enum = SolveByEnumeration(cnf);
    if (by_enum) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(*by_enum));
    }
    const auto by_dpll = SolveByDpll(cnf);
    if (by_dpll) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(*by_dpll));
    }
  }
}

TEST(BruteForceTest, EnumerationAndDpllAgree) {
  Rng rng(202);
  int sat_count = 0;
  int unsat_count = 0;
  for (int i = 0; i < 100; ++i) {
    const Cnf cnf = testutil::RandomCnf(rng, 9, 25);
    const bool enum_sat = SolveByEnumeration(cnf).has_value();
    const bool dpll_sat = SolveByDpll(cnf).has_value();
    EXPECT_EQ(enum_sat, dpll_sat) << "iteration " << i;
    enum_sat ? ++sat_count : ++unsat_count;
  }
  // The generator must produce both outcomes or the test proves nothing.
  EXPECT_GT(sat_count, 0);
  EXPECT_GT(unsat_count, 0);
}

TEST(BruteForceTest, DpllHandlesPigeonhole) {
  const Cnf cnf = testutil::PigeonholeCnf(4);
  EXPECT_FALSE(SolveByDpll(cnf).has_value());
}

}  // namespace
}  // namespace satfr::sat
