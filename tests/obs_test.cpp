// Telemetry-layer tests: the JSON model, the metrics registry's bucket
// math and cross-thread merge, trace well-formedness (the emitted file must
// re-parse and carry the trace_event keys Perfetto requires), run-record
// round-tripping, byte-stable `--report` output modulo timing fields, and
// the satlint telemetry-consistency pass on a real solve.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/runner.h"
#include "flow/detailed_router.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/solver_trace.h"
#include "obs/trace.h"
#include "sat/solver.h"
#include "test_util.h"

namespace satfr::obs {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, RoundTripsStructure) {
  JsonObject object;
  object.emplace_back("s", JsonValue("a \"quoted\"\nline"));
  object.emplace_back("i", JsonValue(std::int64_t{-42}));
  object.emplace_back("u", JsonValue(std::uint64_t{1} << 40));
  object.emplace_back("d", JsonValue(0.5));
  object.emplace_back("b", JsonValue(true));
  object.emplace_back("n", JsonValue(nullptr));
  object.emplace_back("a", JsonValue(JsonArray{JsonValue(1), JsonValue(2)}));
  const JsonValue original{std::move(object)};

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(ParseJson(original.Dump(), &parsed, &error)) << error;
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.Find("s")->AsString(), "a \"quoted\"\nline");
  EXPECT_EQ(parsed.Find("i")->AsInt(), -42);
  EXPECT_EQ(parsed.Find("u")->AsUint(), std::uint64_t{1} << 40);
  EXPECT_DOUBLE_EQ(parsed.Find("d")->AsDouble(), 0.5);
  EXPECT_TRUE(parsed.Find("b")->AsBool());
  EXPECT_TRUE(parsed.Find("n")->is_null());
  ASSERT_EQ(parsed.Find("a")->AsArray().size(), 2u);
  // Dump of the reparse matches the original dump (ordered objects).
  EXPECT_EQ(parsed.Dump(), original.Dump());
}

TEST(JsonTest, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(JsonValue(std::uint64_t{12345}).Dump(), "12345");
  EXPECT_EQ(JsonValue(0).Dump(), "0");
  EXPECT_EQ(JsonValue(std::int64_t{-7}).Dump(), "-7");
}

TEST(JsonTest, RejectsMalformedInput) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson("{", &value, &error));
  EXPECT_FALSE(ParseJson("[1,]", &value, &error));
  EXPECT_FALSE(ParseJson("\"unterminated", &value, &error));
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing", &value, &error));
}

// ------------------------------------------------------------- metrics --

TEST(MetricsTest, BucketBoundaries) {
  // Bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i); last bucket clamps.
  EXPECT_EQ(MetricsRegistry::BucketFor(0), 0u);
  EXPECT_EQ(MetricsRegistry::BucketFor(1), 1u);
  EXPECT_EQ(MetricsRegistry::BucketFor(2), 2u);
  EXPECT_EQ(MetricsRegistry::BucketFor(3), 2u);
  EXPECT_EQ(MetricsRegistry::BucketFor(4), 3u);
  EXPECT_EQ(MetricsRegistry::BucketFor(7), 3u);
  EXPECT_EQ(MetricsRegistry::BucketFor(8), 4u);
  for (std::uint32_t i = 2; i < MetricsRegistry::kHistogramBuckets; ++i) {
    const std::uint64_t low = MetricsRegistry::BucketLowerBound(i);
    EXPECT_EQ(MetricsRegistry::BucketFor(low), i) << "bucket " << i;
    EXPECT_EQ(MetricsRegistry::BucketFor(low - 1), i - 1) << "bucket " << i;
  }
  // Everything past the last boundary clamps into the final bucket.
  EXPECT_EQ(MetricsRegistry::BucketFor(~std::uint64_t{0}),
            MetricsRegistry::kHistogramBuckets - 1);
}

TEST(MetricsTest, RegistrationIsIdempotentAndKindChecked) {
  MetricsRegistry registry;
  const MetricId a = registry.Counter("hits");
  const MetricId b = registry.Counter("hits");
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(a.slot, b.slot);
  // Same name, different kind: rejected rather than aliased.
  EXPECT_FALSE(registry.Histogram("hits").valid());
  EXPECT_FALSE(registry.Gauge("hits").valid());
}

TEST(MetricsTest, MergesShardsAcrossThreads) {
  MetricsRegistry registry;
  const MetricId counter = registry.Counter("work");
  const MetricId histogram = registry.Histogram("latency");
  const MetricId gauge = registry.Gauge("level");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, counter, histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.Add(counter);
        // Thread t observes values in bucket t+1 only.
        registry.Observe(histogram, std::uint64_t{1} << t);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  registry.SetGauge(gauge, -5);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricSnapshot* work = snapshot.Find("work");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->value, static_cast<std::uint64_t>(kThreads * kPerThread));
  const MetricSnapshot* latency = snapshot.Find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(latency->buckets[static_cast<std::size_t>(t) + 1],
              static_cast<std::uint64_t>(kPerThread))
        << "bucket " << t + 1;
  }
  const MetricSnapshot* level = snapshot.Find("level");
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->gauge, -5);
}

TEST(MetricsTest, InvalidIdsAreIgnored) {
  MetricsRegistry registry;
  registry.Add(MetricId{});          // must not crash
  registry.Observe(MetricId{}, 7);   // must not crash
  registry.SetGauge(MetricId{}, 7);  // must not crash
  EXPECT_TRUE(registry.Snapshot().metrics.empty());
}

// --------------------------------------------------------------- trace --

TEST(TraceTest, EmittedFileIsWellFormedTraceJson) {
  TraceWriter writer;
  writer.SetThreadName(TraceWriter::CurrentTid(), "main");
  {
    TraceSpan span(&writer, "outer", "test");
    span.AddArg("instance", JsonValue("t1"));
    TraceSpan inner(&writer, "inner", "test");
  }
  writer.InstantEvent("marker", "test", TraceWriter::CurrentTid(),
                      writer.NowMicros());
  ASSERT_EQ(writer.event_count(), 4u);

  const std::string path = TempPath("obs_trace_test.json");
  std::string error;
  ASSERT_TRUE(writer.WriteFile(path, &error)) << error;

  JsonValue parsed;
  ASSERT_TRUE(ParseJson(ReadFileOrDie(path), &parsed, &error)) << error;
  const JsonValue* events = parsed.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->AsArray().size(), 4u);
  for (const JsonValue& event : events->AsArray()) {
    ASSERT_TRUE(event.is_object());
    // The keys the trace_event format requires on every event.
    ASSERT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("ph"), nullptr);
    ASSERT_NE(event.Find("pid"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
    const std::string& phase = event.Find("ph")->AsString();
    if (phase == "X") {
      EXPECT_NE(event.Find("ts"), nullptr);
      EXPECT_NE(event.Find("dur"), nullptr);
    } else if (phase == "i") {
      EXPECT_NE(event.Find("ts"), nullptr);
    } else {
      EXPECT_EQ(phase, "M");
    }
  }
}

TEST(TraceTest, NullWriterSpansAreNoOps) {
  TraceSpan span(nullptr, "unused", "unused");
  span.AddArg("k", JsonValue(1));
  span.End();  // must not crash
}

// ---------------------------------------------------------- run report --

TEST(RunReportTest, RecordRoundTripsThroughJson) {
  RunRecord record;
  record.instance = "alu4";
  record.phase = "route";
  record.encoding = "ITE-linear-2+muldirect";
  record.symmetry = "s1";
  record.width = 7;
  record.cube_workers = 4;
  record.verdict = "UNSAT";
  record.coloring_seconds = 0.25;
  record.encode_seconds = 0.5;
  record.solve_seconds = 1.5;
  record.total_seconds = 2.25;
  record.cnf_vars = 1234;
  record.cnf_clauses = 56789;
  record.propagations = 111;
  record.binary_propagations = 22;
  record.conflicts = 33;
  record.decisions = 44;
  record.restarts = 5;
  record.learned = 33;
  record.removed = 6;
  record.learnts_core = 1;
  record.learnts_tier2 = 2;
  record.learnts_local = 3;
  record.lbd_histogram = {0, 10, 20, 3};
  record.peak_clause_memory_bytes = 4096;
  record.cubes = 128;
  record.cubes_stolen = 17;
  record.exchange_exported = 9;
  record.exchange_imported = 8;
  record.exchange_dropped_full = 7;
  record.exchange_torn_reads = 1;
  record.has_observed = true;
  record.observed_propagations = 111;
  record.observed_conflicts = 33;
  record.observed_restarts = 5;
  record.observed_learned = 33;
  record.observed_bcp_seconds = 1.0;
  record.observed_analyze_seconds = 0.25;
  record.observed_inprocess_seconds = 0.125;

  RunRecord reparsed;
  std::string error;
  ASSERT_TRUE(RunRecord::FromJson(record.ToJson(), &reparsed, &error))
      << error;
  EXPECT_EQ(reparsed.ToJson().Dump(), record.ToJson().Dump());
  EXPECT_EQ(reparsed.instance, "alu4");
  EXPECT_EQ(reparsed.width, 7);
  EXPECT_EQ(reparsed.lbd_histogram, record.lbd_histogram);
  EXPECT_TRUE(reparsed.has_observed);
  EXPECT_EQ(reparsed.observed_conflicts, 33u);
}

TEST(RunReportTest, WriterAppendsJsonl) {
  const std::string path = TempPath("obs_report_test.jsonl");
  {
    RunReportWriter writer(path);
    ASSERT_TRUE(writer.ok());
    RunRecord record;
    record.instance = "a";
    record.verdict = "SAT";
    writer.Append(record);
    record.instance = "b";
    writer.Append(record);
    EXPECT_EQ(writer.records_written(), 2u);
  }
  std::vector<RunRecord> records;
  std::string error;
  ASSERT_TRUE(LoadRunReport(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].instance, "a");
  EXPECT_EQ(records[1].instance, "b");
}

// Scoped install/teardown of the global report sink for solve tests.
class ScopedGlobalReport {
 public:
  explicit ScopedGlobalReport(const std::string& path) : writer_(path) {
    EXPECT_TRUE(writer_.ok());
    SetGlobalReport(&writer_);
  }
  ~ScopedGlobalReport() { SetGlobalReport(nullptr); }

 private:
  RunReportWriter writer_;
};

graph::Graph TestGraph() {
  Rng rng(417);
  return testutil::RandomGraph(rng, 14, 0.4);
}

std::string SolveAndReport(const std::string& path) {
  const graph::Graph g = TestGraph();
  {
    ScopedGlobalReport report(path);
    flow::DetailedRouteOptions options;
    options.run_label = "determinism-test";
    const flow::DetailedRouteResult result =
        flow::RouteDetailedOnGraph(g, 4, options);
    EXPECT_NE(result.status, sat::SolveResult::kUnknown);
  }
  return ReadFileOrDie(path);
}

// Recursively zeroes every key whose name ends in "_seconds" — the one
// permitted source of nondeterminism in a fixed-seed report.
void ZeroTimingFields(JsonValue* value) {
  if (value->is_object()) {
    for (auto& [key, child] : value->AsObject()) {
      const bool timing = key.size() >= 8 &&
                          key.compare(key.size() - 8, 8, "_seconds") == 0;
      if (timing && child.is_number()) {
        child = JsonValue(0);
      } else {
        ZeroTimingFields(&child);
      }
    }
  } else if (value->is_array()) {
    for (JsonValue& child : value->AsArray()) ZeroTimingFields(&child);
  }
}

std::string NormalizeReport(const std::string& jsonl) {
  std::string out;
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    JsonValue value;
    std::string error;
    EXPECT_TRUE(ParseJson(line, &value, &error)) << error;
    ZeroTimingFields(&value);
    out += value.Dump();
    out += '\n';
  }
  return out;
}

TEST(RunReportTest, FixedSeedReportIsByteStableModuloTimings) {
  const std::string first = SolveAndReport(TempPath("obs_det_a.jsonl"));
  const std::string second = SolveAndReport(TempPath("obs_det_b.jsonl"));
  // Raw bytes differ (timings); normalized bytes must not.
  EXPECT_EQ(NormalizeReport(first), NormalizeReport(second));
}

// ------------------------------------------- telemetry-consistency pass --

TEST(TelemetryConsistencyTest, RealSolveReportHasZeroFindings) {
  const std::string path = TempPath("obs_consistency.jsonl");
  SolveAndReport(path);
  std::vector<RunRecord> records;
  std::string error;
  ASSERT_TRUE(LoadRunReport(path, &records, &error)) << error;
  ASSERT_FALSE(records.empty());
  ASSERT_TRUE(records[0].has_observed);

  const analysis::AnalysisRunner runner = analysis::MakeDefaultRunner();
  analysis::AnalysisInput input;
  input.run_records = &records;
  const analysis::AnalysisReport report = runner.Run(input);
  EXPECT_TRUE(report.diagnostics.empty())
      << analysis::FormatText(report);
}

TEST(TelemetryConsistencyTest, CatchesObserverDrift) {
  const std::string path = TempPath("obs_drift.jsonl");
  SolveAndReport(path);
  std::vector<RunRecord> records;
  std::string error;
  ASSERT_TRUE(LoadRunReport(path, &records, &error)) << error;
  ASSERT_FALSE(records.empty());
  records[0].observed_propagations += 1;  // simulated hook drift

  const analysis::AnalysisRunner runner = analysis::MakeDefaultRunner();
  analysis::AnalysisInput input;
  input.run_records = &records;
  const analysis::AnalysisReport report = runner.Run(input);
  EXPECT_FALSE(report.diagnostics.empty());
}

// ------------------------------------------ exchange-conservation pass --

std::vector<std::string> PassesWithFindings(
    const std::vector<RunRecord>& records) {
  const analysis::AnalysisRunner runner = analysis::MakeDefaultRunner();
  analysis::AnalysisInput input;
  input.run_records = &records;
  const analysis::AnalysisReport report = runner.Run(input);
  std::vector<std::string> passes;
  for (const auto& d : report.diagnostics) passes.push_back(d.pass);
  return passes;
}

RunRecord BalancedExchangeRecord() {
  RunRecord r;
  r.verdict = "SAT";
  r.exchange_exported = 10;
  r.exchange_imported = 6;
  r.exchange_torn_reads = 1;
  r.exchange_self_skipped = 2;
  r.exchange_incompatible_skipped = 1;
  r.exchange_eviction_skipped = 3;
  r.exchange_cursor_advanced = 6 + 1 + 2 + 1 + 3;
  return r;
}

TEST(ExchangeConservationTest, BalancedLedgerPasses) {
  const std::vector<RunRecord> records = {BalancedExchangeRecord()};
  for (const std::string& pass : PassesWithFindings(records)) {
    EXPECT_NE(pass, "exchange-conservation");
  }
}

TEST(ExchangeConservationTest, CatchesUnclassifiedCursorSteps) {
  RunRecord r = BalancedExchangeRecord();
  r.exchange_cursor_advanced += 2;  // two tickets skipped unaccounted
  const std::vector<std::string> passes = PassesWithFindings({r});
  EXPECT_NE(std::find(passes.begin(), passes.end(), "exchange-conservation"),
            passes.end());
}

TEST(ExchangeConservationTest, CatchesImportWithoutExport) {
  RunRecord r = BalancedExchangeRecord();
  r.exchange_exported = 0;
  const std::vector<std::string> passes = PassesWithFindings({r});
  EXPECT_NE(std::find(passes.begin(), passes.end(), "exchange-conservation"),
            passes.end());
}

TEST(ExchangeConservationTest, RealCubePoolReportBalances) {
  // The end-to-end check: a real cube-pool solve's ledger must balance —
  // this is what CI's `satlint report` run asserts on every benchmark.
  const std::string path = TempPath("obs_exchange_ledger.jsonl");
  SolveAndReport(path);
  std::vector<RunRecord> records;
  std::string error;
  ASSERT_TRUE(LoadRunReport(path, &records, &error)) << error;
  for (const std::string& pass : PassesWithFindings(records)) {
    EXPECT_NE(pass, "exchange-conservation");
  }
}

// ----------------------------------------- observer detach mid-solve --

// Detaches itself from inside its own restart callback at the first
// sample, recording the solver stats at that instant. Because the solver
// resets the sample baseline before invoking the callback, that snapshot
// is a consistent cut: it equals the attach-time baseline plus every
// window delivered so far.
class DetachingObserver : public SolverTelemetryObserver {
 public:
  explicit DetachingObserver(sat::Solver* solver)
      : SolverTelemetryObserver(nullptr), solver_(solver) {}

  void OnRestartSample(const sat::SolverRestartSample& sample) override {
    SolverTelemetryObserver::OnRestartSample(sample);
    ++samples_;
    if (samples_ == 1) {
      cut_ = solver_->stats();
      solver_->SetObserver(nullptr);  // the sanctioned detach path
    }
  }

  sat::Solver* solver_;
  int samples_ = 0;
  sat::SolverStats cut_;
};

TEST(TelemetryConsistencyTest, ObserverDetachMidSolveStopsPhaseClocks) {
  sat::Solver solver;
  ASSERT_TRUE(solver.AddCnf(testutil::PigeonholeCnf(6)));
  const sat::SolverStats base = solver.stats();
  DetachingObserver observer(&solver);
  solver.SetObserver(&observer);
  ASSERT_EQ(solver.Solve(), sat::SolveResult::kUnsat);

  // The observer detached at the first restart boundary and saw exactly
  // one sample; the solve kept going without it.
  ASSERT_EQ(observer.samples_, 1);
  EXPECT_GT(solver.stats().restarts, observer.cut_.restarts);
  EXPECT_GT(solver.stats().conflicts, observer.cut_.conflicts);

  // The phase clocks stopped the instant the observer detached: timing is
  // re-gated on every search pass, so not a single tick lands afterwards
  // and the totals still equal the cut bit-for-bit at solve end.
  EXPECT_GT(observer.cut_.bcp_seconds, 0.0);
  EXPECT_EQ(solver.stats().bcp_seconds, observer.cut_.bcp_seconds);
  EXPECT_EQ(solver.stats().analyze_seconds, observer.cut_.analyze_seconds);
  EXPECT_EQ(solver.stats().inprocess_seconds,
            observer.cut_.inprocess_seconds);

  // And the cut is consistent: a record pairing the observer's running
  // totals with the solver window up to the detach point shows no drift
  // under the telemetry-consistency pass.
  RunRecord record;
  record.verdict = "UNSAT";
  record.SetSolverWindow(observer.cut_.Since(base));
  observer.FillRecord(&record);
  for (const std::string& pass : PassesWithFindings({record})) {
    EXPECT_NE(pass, "telemetry-consistency");
  }
}

}  // namespace
}  // namespace satfr::obs
