// Tests of hierarchical encoding composition (§4), including the Fig. 1.c/d
// examples and exhaustive exactly-one / at-least-one semantics checks across
// the full registry.
#include <gtest/gtest.h>

#include "encode/registry.h"
#include "sat/brute_force.h"

namespace satfr::encode {
namespace {

using sat::Lit;

// Figure 1.d: ITE-log-2+ITE-linear on 13 values. The paper spells out the
// cubes of v4, v5, v6 explicitly.
TEST(Figure1Test, IteLog2IteLinearCubesMatchPaper) {
  const DomainEncoding domain =
      EncodeDomain(GetEncoding("ITE-log-2+ITE-linear"), 13);
  EXPECT_EQ(domain.num_vars, 5);  // i0,i1 (top) + i2,i3,i4 (shared chain)
  ASSERT_EQ(domain.value_cubes.size(), 13u);
  // "v4 is selected ... when i0 & ~i1 & i2"
  EXPECT_EQ(domain.value_cubes[4],
            (Cube{Lit::Pos(0), Lit::Neg(1), Lit::Pos(2)}));
  // "v5 is selected when i0 & ~i1 & ~i2 & i3"
  EXPECT_EQ(domain.value_cubes[5],
            (Cube{Lit::Pos(0), Lit::Neg(1), Lit::Neg(2), Lit::Pos(3)}));
  // "v6 is selected when i0 & ~i1 & ~i2 & ~i3"
  EXPECT_EQ(domain.value_cubes[6],
            (Cube{Lit::Pos(0), Lit::Neg(1), Lit::Neg(2), Lit::Neg(3)}));
  EXPECT_TRUE(domain.exactly_one);
  EXPECT_TRUE(domain.structural.empty());  // pure ITE hierarchy
}

// §4's worked conflict clause: two adjacent variables both encoded as in
// Fig. 1.d must not both take v4; the clause is
// (~i0 | i1 | ~i2 | ~j0 | j1 | ~j2).
TEST(Figure1Test, ConflictClauseExample) {
  const DomainEncoding domain =
      EncodeDomain(GetEncoding("ITE-log-2+ITE-linear"), 13);
  const sat::Clause clause =
      ConflictClause(domain.value_cubes[4], 0, domain.value_cubes[4],
                     domain.num_vars);
  const sat::Clause expected{Lit::Neg(0), Lit::Pos(1), Lit::Neg(2),
                             Lit::Neg(5), Lit::Pos(6), Lit::Neg(7)};
  EXPECT_EQ(clause, expected);
}

TEST(Figure1Test, IteLog1IteLinearShape) {
  // Fig 1.c: one top variable, two linear subtrees over 7 and 6 values.
  const DomainEncoding domain =
      EncodeDomain(GetEncoding("ITE-log-1+ITE-linear"), 13);
  EXPECT_EQ(domain.num_vars, 1 + 6);  // top + chain for the 7-value half
  // First value of each half.
  EXPECT_EQ(domain.value_cubes[0], (Cube{Lit::Pos(0), Lit::Pos(1)}));
  EXPECT_EQ(domain.value_cubes[7], (Cube{Lit::Neg(0), Lit::Pos(1)}));
  // Last value of the smaller half uses only the first 5 chain variables.
  EXPECT_EQ(domain.value_cubes[12],
            (Cube{Lit::Neg(0), Lit::Neg(1), Lit::Neg(2), Lit::Neg(3),
                  Lit::Neg(4), Lit::Neg(5)}));
}

// Variable counts per encoding for a 13-value domain.
TEST(HierarchicalTest, VariableCounts) {
  const int k = 13;
  EXPECT_EQ(EncodeDomain(GetEncoding("log"), k).num_vars, 4);
  EXPECT_EQ(EncodeDomain(GetEncoding("direct"), k).num_vars, 13);
  EXPECT_EQ(EncodeDomain(GetEncoding("muldirect"), k).num_vars, 13);
  EXPECT_EQ(EncodeDomain(GetEncoding("ITE-linear"), k).num_vars, 12);
  EXPECT_EQ(EncodeDomain(GetEncoding("ITE-log"), k).num_vars, 4);
  EXPECT_EQ(EncodeDomain(GetEncoding("ITE-log-1+ITE-linear"), k).num_vars,
            7);
  EXPECT_EQ(EncodeDomain(GetEncoding("ITE-log-2+ITE-linear"), k).num_vars,
            5);
  EXPECT_EQ(EncodeDomain(GetEncoding("ITE-log-2+direct"), k).num_vars,
            2 + 4);
  EXPECT_EQ(EncodeDomain(GetEncoding("ITE-log-2+muldirect"), k).num_vars,
            2 + 4);
  EXPECT_EQ(EncodeDomain(GetEncoding("ITE-linear-2+direct"), k).num_vars,
            2 + 5);  // 3 subdomains of <=5 values
  EXPECT_EQ(EncodeDomain(GetEncoding("ITE-linear-2+muldirect"), k).num_vars,
            2 + 5);
  // "the number of Boolean variables used for the second-level muldirect
  // will be ceil(K/n)" (§4): n=3 -> ceil(13/3) = 5.
  EXPECT_EQ(EncodeDomain(GetEncoding("muldirect-3+muldirect"), k).num_vars,
            3 + 5);
  EXPECT_EQ(EncodeDomain(GetEncoding("direct-3+direct"), k).num_vars, 3 + 5);
}

// Semantic property sweep over every registered encoding and many domain
// sizes: enumerate all assignments to the indexing Booleans (they are few)
// and check that assignments satisfying the structural clauses select
// exactly one value (exactly_one encodings) or at least one value with no
// "phantom" value outside the domain (muldirect-style encodings).
class EncodingSemanticsTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(EncodingSemanticsTest, StructuralAssignmentsSelectValues) {
  const auto& [name, k] = GetParam();
  const DomainEncoding domain = EncodeDomain(GetEncoding(name), k);
  ASSERT_LE(domain.num_vars, 18) << "exhaustive sweep too large";
  int structural_models = 0;
  for (int bits = 0; bits < (1 << domain.num_vars); ++bits) {
    std::vector<bool> assignment(static_cast<std::size_t>(domain.num_vars));
    for (int i = 0; i < domain.num_vars; ++i) {
      assignment[static_cast<std::size_t>(i)] = ((bits >> i) & 1) != 0;
    }
    bool structural_ok = true;
    for (const sat::Clause& clause : domain.structural) {
      bool satisfied = false;
      for (const Lit l : clause) {
        if (assignment[static_cast<std::size_t>(l.var())] != l.negated()) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        structural_ok = false;
        break;
      }
    }
    if (!structural_ok) continue;
    ++structural_models;
    int selected = 0;
    for (const Cube& cube : domain.value_cubes) {
      if (CubeSatisfied(cube, 0, assignment)) ++selected;
    }
    if (domain.exactly_one) {
      EXPECT_EQ(selected, 1) << name << " k=" << k << " bits=" << bits;
    } else {
      EXPECT_GE(selected, 1) << name << " k=" << k << " bits=" << bits;
    }
  }
  // The encoding must admit at least one selecting assignment per value.
  EXPECT_GT(structural_models, 0) << name << " k=" << k;
  for (int value = 0; value < k; ++value) {
    // Build the assignment implied by the value's cube (others arbitrary
    // false) and check the cube is internally consistent.
    const Cube& cube = domain.value_cubes[static_cast<std::size_t>(value)];
    for (std::size_t i = 0; i < cube.size(); ++i) {
      for (std::size_t j = i + 1; j < cube.size(); ++j) {
        EXPECT_FALSE(cube[i].var() == cube[j].var() &&
                     cube[i].negated() != cube[j].negated())
            << name << " k=" << k << ": contradictory cube for value "
            << value;
      }
    }
  }
}

std::vector<std::tuple<std::string, int>> SemanticsCases() {
  std::vector<std::tuple<std::string, int>> cases;
  for (const EncodingSpec& spec : AllEncodings()) {
    for (const int k : {1, 2, 3, 4, 5, 7, 8, 12, 13}) {
      // Skip combos whose exhaustive sweep would exceed 2^18.
      const DomainEncoding domain = EncodeDomain(spec, k);
      if (domain.num_vars <= 18) cases.emplace_back(spec.name, k);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, EncodingSemanticsTest,
    ::testing::ValuesIn(SemanticsCases()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      std::string name = std::get<0>(info.param) + "_k" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

// Every value must be *reachable*: its cube extended with structural
// clauses must be satisfiable, and must decode back to that value.
class EncodingDecodabilityTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(EncodingDecodabilityTest, EveryValueIsSelectableAndDecodes) {
  const auto& [name, k] = GetParam();
  const DomainEncoding domain = EncodeDomain(GetEncoding(name), k);
  for (int value = 0; value < k; ++value) {
    sat::Cnf cnf(domain.num_vars);
    for (const sat::Clause& clause : domain.structural) {
      cnf.AddClause(clause);
    }
    for (const Lit l : domain.value_cubes[static_cast<std::size_t>(value)]) {
      cnf.AddUnit(l);
    }
    // For non-exactly-one encodings, also forbid all *other* values so the
    // decoder (which picks the smallest selected value) must return ours.
    for (int other = 0; other < k; ++other) {
      if (other != value) {
        cnf.AddClause(NegateCube(
            domain.value_cubes[static_cast<std::size_t>(other)], 0));
      }
    }
    const auto model = sat::SolveByDpll(cnf);
    ASSERT_TRUE(model.has_value())
        << name << " k=" << k << ": value " << value << " unreachable";
    EXPECT_EQ(DecodeValue(domain, 0, *model), value) << name << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, EncodingDecodabilityTest,
    ::testing::ValuesIn(SemanticsCases()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      std::string name = std::get<0>(info.param) + "_k" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

TEST(RegistryTest, CountsMatchPaper) {
  // 12 new + log + muldirect + direct = 15 paper encodings, plus the
  // extension set.
  EXPECT_EQ(AllEncodings().size(), 15u + ExtensionEncodingNames().size());
  EXPECT_EQ(NewEncodingNames().size(), 12u);   // "12 new encodings"
  EXPECT_EQ(EvaluatedEncodingNames().size(), 14u);  // "14 encodings compared"
  EXPECT_EQ(Table2EncodingNames().size(), 7u); // Table 2 columns
  EXPECT_EQ(ExtensionEncodingNames().size(), 5u);
}

TEST(RegistryTest, ExtensionNamesResolve) {
  for (const std::string& name : ExtensionEncodingNames()) {
    EXPECT_TRUE(FindEncoding(name).has_value()) << name;
  }
  // Three-level stacks really have three levels.
  EXPECT_EQ(GetEncoding("direct-2+direct-2+direct").levels.size(), 3u);
  EXPECT_EQ(GetEncoding("ITE-log-1+ITE-log-1+ITE-linear").levels.size(), 3u);
}

TEST(RegistryTest, LookupByName) {
  EXPECT_TRUE(FindEncoding("ITE-linear-2+muldirect").has_value());
  EXPECT_FALSE(FindEncoding("no-such-encoding").has_value());
  EXPECT_EQ(GetEncoding("log").levels.size(), 1u);
  EXPECT_EQ(GetEncoding("direct-3+muldirect").levels.size(), 2u);
  EXPECT_EQ(GetEncoding("direct-3+muldirect").levels[0].var_budget, 3);
}

TEST(RegistryTest, EveryEvaluatedNameResolves) {
  for (const std::string& name : EvaluatedEncodingNames()) {
    EXPECT_TRUE(FindEncoding(name).has_value()) << name;
  }
  for (const std::string& name : Table2EncodingNames()) {
    EXPECT_TRUE(FindEncoding(name).has_value()) << name;
  }
}

TEST(HierarchicalTest, DomainSmallerThanTopFanout) {
  // K=3 under ITE-log-2 (4 subdomains): one subdomain is empty and must be
  // forbidden; semantics stay exactly-one (covered by the sweep above, but
  // pin the var count here).
  const DomainEncoding domain =
      EncodeDomain(GetEncoding("ITE-log-2+direct"), 3);
  EXPECT_EQ(domain.num_vars, 2 + 1);
  EXPECT_EQ(domain.domain_size, 3);
}

TEST(HierarchicalTest, ThreeLevelNestingWorks) {
  // Not used by the paper's evaluation but supported by the composer:
  // direct-2 on top of direct-2 on top of muldirect.
  EncodingSpec spec;
  spec.name = "direct-2+direct-2+muldirect";
  spec.levels = {LevelSpec{LevelKind::kDirect, 2},
                 LevelSpec{LevelKind::kDirect, 2},
                 LevelSpec{LevelKind::kMuldirect, -1}};
  const DomainEncoding domain = EncodeDomain(spec, 8);
  EXPECT_EQ(domain.domain_size, 8);
  // 2 (top) + 2 (mid) + 2 (bottom muldirect over ceil(8/4)=2 values).
  EXPECT_EQ(domain.num_vars, 6);
  ASSERT_EQ(domain.value_cubes.size(), 8u);
}

}  // namespace
}  // namespace satfr::encode
