#include <gtest/gtest.h>

#include "route/global_routing.h"

namespace satfr::route {
namespace {

using fpga::Arch;

// Two blocks at (0,0) and (2,0) on a 3x3 grid, one net between them; a
// second net from (0,1) to (2,1).
struct Fixture {
  Arch arch{3};
  netlist::Netlist nets;
  netlist::Placement placement{3, 4};
  GlobalRouting routing;

  Fixture() {
    for (int i = 0; i < 4; ++i) nets.AddBlock("b" + std::to_string(i));
    placement.Place(0, 0, 0);
    placement.Place(1, 2, 0);
    placement.Place(2, 0, 1);
    placement.Place(3, 2, 1);
    nets.AddNet(netlist::Net{"n0", 0, {1}});
    nets.AddNet(netlist::Net{"n1", 2, {3}});
    routing.two_pin_nets = DecomposeToTwoPin(nets);
    // Straight horizontal routes.
    routing.routes = {
        {arch.HorizontalSegment(0, 0), arch.HorizontalSegment(1, 0)},
        {arch.HorizontalSegment(0, 1), arch.HorizontalSegment(1, 1)},
    };
  }
};

TEST(GlobalRoutingTest, ValidRoutingPasses) {
  Fixture f;
  std::string error;
  EXPECT_TRUE(ValidateGlobalRouting(f.arch, f.placement, f.routing, &error))
      << error;
}

TEST(GlobalRoutingTest, DisconnectedRouteFails) {
  Fixture f;
  f.routing.routes[0] = {f.arch.HorizontalSegment(0, 0),
                         f.arch.HorizontalSegment(0, 1)};  // not adjacent
  std::string error;
  EXPECT_FALSE(ValidateGlobalRouting(f.arch, f.placement, f.routing, &error));
  EXPECT_NE(error.find("disconnected"), std::string::npos);
}

TEST(GlobalRoutingTest, WrongEndpointFails) {
  Fixture f;
  f.routing.routes[0] = {f.arch.HorizontalSegment(0, 0)};  // stops early
  std::string error;
  EXPECT_FALSE(ValidateGlobalRouting(f.arch, f.placement, f.routing, &error));
  EXPECT_NE(error.find("does not end"), std::string::npos);
}

TEST(GlobalRoutingTest, CountMismatchFails) {
  Fixture f;
  f.routing.routes.pop_back();
  EXPECT_FALSE(ValidateGlobalRouting(f.arch, f.placement, f.routing));
}

TEST(GlobalRoutingTest, InvalidSegmentIdFails) {
  Fixture f;
  f.routing.routes[0] = {static_cast<fpga::SegmentIndex>(9999)};
  std::string error;
  EXPECT_FALSE(ValidateGlobalRouting(f.arch, f.placement, f.routing, &error));
  EXPECT_NE(error.find("invalid segment"), std::string::npos);
}

TEST(GlobalRoutingTest, UsageCountsDistinctParents) {
  Fixture f;
  // Route both nets over the same segments.
  f.routing.routes[1] = f.routing.routes[0];
  const auto usage = SegmentParentUsage(f.arch, f.routing);
  EXPECT_EQ(usage[static_cast<std::size_t>(f.arch.HorizontalSegment(0, 0))],
            2);
  EXPECT_EQ(PeakCongestion(f.arch, f.routing), 2);
}

TEST(GlobalRoutingTest, SameParentCountsOnce) {
  Fixture f;
  // Replace net n1's 2-pin with a second 2-pin of net n0 over the same
  // segments: distinct-parent usage must stay 1.
  f.routing.two_pin_nets[1].parent = 0;
  f.routing.routes[1] = f.routing.routes[0];
  EXPECT_EQ(PeakCongestion(f.arch, f.routing), 1);
}

TEST(GlobalRoutingTest, Wirelength) {
  Fixture f;
  EXPECT_EQ(f.routing.TotalWirelength(), 4u);
  EXPECT_EQ(f.routing.NumTwoPinNets(), 2u);
}

}  // namespace
}  // namespace satfr::route
