// Tests for the satlint analysis layer: the runner, the CNF defect battery
// (each hand-built defect is caught by exactly the intended pass), the
// encoding-contract passes against deliberately corrupted encodings, the
// graph/flow passes, and the end-to-end acceptance runs over the MCNC
// instances with every evaluated encoding.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "analysis/encoding_passes.h"
#include "analysis/runner.h"
#include "encode/csp_to_cnf.h"
#include "encode/cube.h"
#include "encode/registry.h"
#include "flow/conflict_graph.h"
#include "flow/detailed_router.h"
#include "fpga/device_graph.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"
#include "symmetry/symmetry.h"
#include "test_util.h"

namespace satfr::analysis {
namespace {

using sat::Cnf;
using sat::Lit;

AnalysisReport Lint(const AnalysisInput& input) {
  return MakeDefaultRunner().Run(input);
}

AnalysisReport LintCnf(const Cnf& cnf) {
  AnalysisInput input;
  input.cnf = &cnf;
  return Lint(input);
}

std::vector<Diagnostic> FindingsOf(const AnalysisReport& report,
                                   std::string_view pass) {
  std::vector<Diagnostic> found;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.pass == pass) {
      found.push_back(d);
    }
  }
  return found;
}

/// Asserts the report holds exactly one finding, from `pass`.
void ExpectOnlyFinding(const AnalysisReport& report, std::string_view pass) {
  ASSERT_EQ(report.diagnostics.size(), 1u)
      << FormatText(report) << "expected a single finding from " << pass;
  EXPECT_EQ(report.diagnostics[0].pass, pass);
}

graph::Graph Triangle() {
  graph::Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  return g;
}

// ---------------------------------------------------------------------------
// CNF defect battery: one hand-built defective CNF per pass.
// ---------------------------------------------------------------------------

TEST(CnfPassesTest, CleanCnfProducesNoFindings) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Neg(1));
  cnf.AddBinary(Lit::Neg(0), Lit::Pos(1));
  const AnalysisReport report = LintCnf(cnf);
  EXPECT_TRUE(report.diagnostics.empty()) << FormatText(report);
}

TEST(CnfPassesTest, TautologyCaughtByTautologyPassOnly) {
  Cnf cnf(3);
  cnf.AddTernary(Lit::Pos(0), Lit::Neg(0), Lit::Pos(1));
  cnf.AddBinary(Lit::Neg(1), Lit::Pos(2));
  cnf.AddBinary(Lit::Pos(1), Lit::Neg(2));
  const AnalysisReport report = LintCnf(cnf);
  ExpectOnlyFinding(report, "cnf-tautology");
  EXPECT_EQ(report.Count(Severity::kWarning), 1u);
}

TEST(CnfPassesTest, DuplicateClauseCaughtByDuplicatePassOnly) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  cnf.AddBinary(Lit::Neg(0), Lit::Neg(1));
  cnf.AddBinary(Lit::Pos(1), Lit::Pos(0));  // same multiset, reordered
  const AnalysisReport report = LintCnf(cnf);
  ExpectOnlyFinding(report, "cnf-duplicate-clause");
  EXPECT_NE(report.diagnostics[0].message.find("clause 0"),
            std::string::npos);
}

TEST(CnfPassesTest, OutOfRangeVariableCaughtByVarRangePassOnly) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Neg(1));
  cnf.AddBinary(Lit::Neg(0), Lit::Pos(1));
  cnf.AddClauseUnchecked({Lit::Pos(0), Lit::Pos(5)});
  const AnalysisReport report = LintCnf(cnf);
  ExpectOnlyFinding(report, "cnf-var-range");
  EXPECT_TRUE(report.HasErrors());
}

TEST(CnfPassesTest, UnusedVariableCaughtByUnusedPassOnly) {
  Cnf cnf(3);
  cnf.AddBinary(Lit::Pos(0), Lit::Neg(1));
  cnf.AddBinary(Lit::Neg(0), Lit::Pos(1));
  const AnalysisReport report = LintCnf(cnf);
  ExpectOnlyFinding(report, "cnf-unused-var");
  EXPECT_EQ(report.diagnostics[0].location, "var x2");
}

TEST(CnfPassesTest, PureVariableCaughtByPurePassOnly) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  cnf.AddBinary(Lit::Pos(0), Lit::Neg(1));
  const AnalysisReport report = LintCnf(cnf);
  ExpectOnlyFinding(report, "cnf-pure-var");
  EXPECT_EQ(report.diagnostics[0].location, "var x0");
}

TEST(CnfPassesTest, UnitSubsumptionCaughtBySubsumedPassOnly) {
  Cnf cnf(3);
  cnf.AddUnit(Lit::Pos(0));
  cnf.AddTernary(Lit::Pos(0), Lit::Pos(1), Lit::Neg(2));
  cnf.AddTernary(Lit::Neg(0), Lit::Neg(1), Lit::Pos(2));
  const AnalysisReport report = LintCnf(cnf);
  ExpectOnlyFinding(report, "cnf-subsumed-binary");
  EXPECT_EQ(report.diagnostics[0].location, "clause 1");
}

TEST(CnfPassesTest, BinarySubsumptionCaughtBySubsumedPassOnly) {
  Cnf cnf(3);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  cnf.AddTernary(Lit::Pos(0), Lit::Pos(1), Lit::Pos(2));
  cnf.AddTernary(Lit::Neg(0), Lit::Neg(1), Lit::Neg(2));
  const AnalysisReport report = LintCnf(cnf);
  ExpectOnlyFinding(report, "cnf-subsumed-binary");
  EXPECT_EQ(report.diagnostics[0].location, "clause 1");
}

// ---------------------------------------------------------------------------
// Runner behaviour: configuration, flood control, formatting.
// ---------------------------------------------------------------------------

TEST(RunnerTest, DisabledPassDoesNotRun) {
  Cnf cnf(2);
  cnf.AddTernary(Lit::Pos(0), Lit::Neg(0), Lit::Pos(1));
  cnf.AddBinary(Lit::Neg(1), Lit::Pos(0));
  cnf.AddBinary(Lit::Pos(1), Lit::Neg(0));
  AnalysisRunner runner = MakeDefaultRunner();
  PassConfig config;
  config.enabled = false;
  ASSERT_TRUE(runner.Configure("cnf-tautology", config));
  AnalysisInput input;
  input.cnf = &cnf;
  const AnalysisReport report = runner.Run(input);
  EXPECT_TRUE(FindingsOf(report, "cnf-tautology").empty());
  for (const PassOutcome& outcome : report.outcomes) {
    if (outcome.pass == "cnf-tautology") {
      EXPECT_FALSE(outcome.ran);
    }
  }
}

TEST(RunnerTest, SeverityOverridePromotesFindings) {
  Cnf cnf(2);
  cnf.AddTernary(Lit::Pos(0), Lit::Neg(0), Lit::Pos(1));
  cnf.AddBinary(Lit::Neg(1), Lit::Pos(0));
  cnf.AddBinary(Lit::Pos(1), Lit::Neg(0));
  AnalysisRunner runner = MakeDefaultRunner();
  PassConfig config;
  config.severity = Severity::kError;
  ASSERT_TRUE(runner.Configure("cnf-tautology", config));
  AnalysisInput input;
  input.cnf = &cnf;
  const AnalysisReport report = runner.Run(input);
  EXPECT_TRUE(report.HasErrors());
}

TEST(RunnerTest, UnknownPassNameRejected) {
  AnalysisRunner runner = MakeDefaultRunner();
  EXPECT_FALSE(runner.Configure("no-such-pass", PassConfig{}));
}

TEST(RunnerTest, FloodControlBoundsStoredFindings) {
  Cnf cnf(2);
  for (int i = 0; i < 151; ++i) cnf.AddBinary(Lit::Pos(0), Lit::Neg(1));
  cnf.AddBinary(Lit::Neg(0), Lit::Pos(1));
  const AnalysisReport report = LintCnf(cnf);
  const auto stored = FindingsOf(report, "cnf-duplicate-clause");
  // 150 duplicates found, 100 stored verbatim plus one summary line.
  EXPECT_EQ(stored.size(), DiagnosticSink::kMaxStoredPerPass + 1);
  for (const PassOutcome& outcome : report.outcomes) {
    if (outcome.pass == "cnf-duplicate-clause") {
      EXPECT_EQ(outcome.findings, 150u);
    }
  }
}

TEST(RunnerTest, JsonReportCarriesCountsAndEscapes) {
  Cnf cnf(1);
  cnf.AddClauseUnchecked({Lit::Pos(3)});
  const AnalysisReport report = LintCnf(cnf);
  const std::string json = FormatJson(report);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pass\": \"cnf-var-range\""), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Encoding-contract passes.
// ---------------------------------------------------------------------------

TEST(EncodingPassesTest, ExpectedShapeMatchesEncoderForAllEncodings) {
  for (const encode::EncodingSpec& spec : encode::AllEncodings()) {
    for (int k = 1; k <= 13; ++k) {
      const encode::DomainEncoding domain = encode::EncodeDomain(spec, k);
      const ExpectedDomainShape shape = ComputeExpectedDomainShape(spec, k);
      EXPECT_EQ(domain.num_vars, shape.num_vars)
          << spec.name << " K=" << k;
      EXPECT_EQ(domain.structural.size(), shape.structural_clauses)
          << spec.name << " K=" << k;
    }
  }
}

TEST(EncodingPassesTest, CleanEncodingsHaveNoErrors) {
  const graph::Graph g = Triangle();
  for (const std::string& name : encode::EvaluatedEncodingNames()) {
    const encode::EncodingSpec spec = encode::GetEncoding(name);
    for (int k = 2; k <= 5; ++k) {
      for (const char* sym : {"none", "b1", "s1"}) {
        const auto sequence = symmetry::SymmetrySequence(
            g, k, symmetry::HeuristicFromName(sym));
        const encode::EncodedColoring encoded =
            encode::EncodeColoring(g, k, spec, sequence);
        AnalysisInput input;
        input.cnf = &encoded.cnf;
        input.conflict_graph = &g;
        input.encoded = &encoded;
        input.spec = &spec;
        input.symmetry_sequence = &sequence;
        const AnalysisReport report = Lint(input);
        EXPECT_EQ(report.Count(Severity::kError), 0u)
            << name << " K=" << k << " sym=" << sym << "\n"
            << FormatText(report);
      }
    }
  }
}

/// Rebuilds `encoded.cnf` without the clause at `drop_index`.
void DropClause(encode::EncodedColoring& encoded, std::size_t drop_index) {
  Cnf pruned(encoded.cnf.num_vars());
  const auto& clauses = encoded.cnf.clauses();
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (i != drop_index) pruned.AddClause(clauses[i]);
  }
  encoded.cnf = std::move(pruned);
}

TEST(EncodingPassesTest, MissingConflictClauseDetected) {
  const graph::Graph g = Triangle();
  const encode::EncodingSpec spec = encode::GetEncoding("muldirect");
  encode::EncodedColoring encoded = encode::EncodeColoring(g, 3, spec);
  // Clause order is structural, conflict, symmetry: drop the first
  // conflict clause.
  DropClause(encoded, encoded.stats.structural_clauses);
  AnalysisInput input;
  input.cnf = &encoded.cnf;
  input.conflict_graph = &g;
  input.encoded = &encoded;
  input.spec = &spec;
  const AnalysisReport report = Lint(input);
  const auto findings = FindingsOf(report, "encoding-conflict-edges");
  ASSERT_FALSE(findings.empty()) << FormatText(report);
  EXPECT_NE(findings[0].message.find("missing"), std::string::npos);
  // The clause totals no longer match Table 1 either.
  EXPECT_FALSE(FindingsOf(report, "encoding-clause-counts").empty());
}

TEST(EncodingPassesTest, CrossVertexClauseOffTheGraphDetected) {
  graph::Graph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  const encode::EncodingSpec spec = encode::GetEncoding("muldirect");
  encode::EncodedColoring encoded = encode::EncodeColoring(path, 2, spec);
  // Forge a conflict clause between the non-adjacent vertices 0 and 2.
  encoded.cnf.AddClause(encode::ConflictClause(
      encoded.domain.value_cubes[0], encoded.vertex_offset[0],
      encoded.domain.value_cubes[0], encoded.vertex_offset[2]));
  AnalysisInput input;
  input.cnf = &encoded.cnf;
  input.conflict_graph = &path;
  input.encoded = &encoded;
  input.spec = &spec;
  const AnalysisReport report = Lint(input);
  const auto findings = FindingsOf(report, "encoding-conflict-edges");
  ASSERT_FALSE(findings.empty()) << FormatText(report);
  EXPECT_NE(findings[0].message.find("no conflict-graph edge"),
            std::string::npos);
}

TEST(EncodingPassesTest, MissingStructuralClauseDetected) {
  const graph::Graph g = Triangle();
  const encode::EncodingSpec spec = encode::GetEncoding("direct");
  encode::EncodedColoring encoded = encode::EncodeColoring(g, 3, spec);
  DropClause(encoded, 0);  // first structural clause of vertex 0
  AnalysisInput input;
  input.cnf = &encoded.cnf;
  input.conflict_graph = &g;
  input.encoded = &encoded;
  input.spec = &spec;
  const AnalysisReport report = Lint(input);
  const auto findings = FindingsOf(report, "encoding-vertex-structure");
  ASSERT_FALSE(findings.empty()) << FormatText(report);
  EXPECT_EQ(findings[0].location, "vertex 0");
}

TEST(EncodingPassesTest, StatsMismatchDetected) {
  const graph::Graph g = Triangle();
  const encode::EncodingSpec spec = encode::GetEncoding("log");
  encode::EncodedColoring encoded = encode::EncodeColoring(g, 3, spec);
  encoded.stats.conflict_clauses += 1;
  AnalysisInput input;
  input.cnf = &encoded.cnf;
  input.conflict_graph = &g;
  input.encoded = &encoded;
  input.spec = &spec;
  const AnalysisReport report = Lint(input);
  EXPECT_FALSE(FindingsOf(report, "encoding-clause-counts").empty())
      << FormatText(report);
}

TEST(EncodingPassesTest, ValidAssignmentGapDetected) {
  const graph::Graph g = Triangle();
  const encode::EncodingSpec spec = encode::GetEncoding("muldirect");
  encode::EncodedColoring encoded = encode::EncodeColoring(g, 3, spec);
  // Without its at-least-one clause, muldirect's all-false assignment
  // selects no value.
  encoded.domain.structural.clear();
  AnalysisInput input;
  input.encoded = &encoded;
  input.spec = &spec;
  const AnalysisReport report = Lint(input);
  const auto findings = FindingsOf(report, "encoding-domain-semantics");
  ASSERT_FALSE(findings.empty()) << FormatText(report);
  EXPECT_NE(findings[0].message.find("selects no value"), std::string::npos);
}

TEST(EncodingPassesTest, DuplicateValueCubeDetected) {
  const graph::Graph g = Triangle();
  const encode::EncodingSpec spec = encode::GetEncoding("direct");
  encode::EncodedColoring encoded = encode::EncodeColoring(g, 3, spec);
  encoded.domain.value_cubes[1] = encoded.domain.value_cubes[0];
  AnalysisInput input;
  input.encoded = &encoded;
  input.spec = &spec;
  const AnalysisReport report = Lint(input);
  const auto findings = FindingsOf(report, "encoding-domain-semantics");
  ASSERT_FALSE(findings.empty()) << FormatText(report);
  EXPECT_NE(findings[0].message.find("duplicates"), std::string::npos);
}

TEST(EncodingPassesTest, SymmetrySequenceMismatchDetected) {
  const graph::Graph g = Triangle();
  const encode::EncodingSpec spec = encode::GetEncoding("direct");
  const std::vector<graph::VertexId> encoded_seq = {0, 1};
  encode::EncodedColoring encoded =
      encode::EncodeColoring(g, 3, spec, encoded_seq);
  // Lint against a different sequence: vertex 2's restriction is absent.
  const std::vector<graph::VertexId> claimed_seq = {0, 2};
  AnalysisInput input;
  input.cnf = &encoded.cnf;
  input.conflict_graph = &g;
  input.encoded = &encoded;
  input.spec = &spec;
  input.symmetry_sequence = &claimed_seq;
  const AnalysisReport report = Lint(input);
  const auto findings = FindingsOf(report, "encoding-symmetry-prefix");
  ASSERT_FALSE(findings.empty()) << FormatText(report);
  EXPECT_NE(findings[0].message.find("missing restriction"),
            std::string::npos);
}

TEST(EncodingPassesTest, IllegalSymmetrySequencesDetected) {
  const graph::Graph g = Triangle();
  const encode::EncodingSpec spec = encode::GetEncoding("direct");
  const encode::EncodedColoring encoded = encode::EncodeColoring(g, 3, spec);
  AnalysisInput input;
  input.cnf = &encoded.cnf;
  input.conflict_graph = &g;
  input.encoded = &encoded;
  input.spec = &spec;

  const std::vector<graph::VertexId> too_long = {0, 1, 2};
  input.symmetry_sequence = &too_long;
  EXPECT_FALSE(FindingsOf(Lint(input), "encoding-symmetry-prefix").empty());

  const std::vector<graph::VertexId> out_of_range = {0, 7};
  input.symmetry_sequence = &out_of_range;
  EXPECT_FALSE(FindingsOf(Lint(input), "encoding-symmetry-prefix").empty());

  const std::vector<graph::VertexId> repeated = {1, 1};
  input.symmetry_sequence = &repeated;
  EXPECT_FALSE(FindingsOf(Lint(input), "encoding-symmetry-prefix").empty());
}

// ---------------------------------------------------------------------------
// Graph / flow passes.
// ---------------------------------------------------------------------------

route::GlobalRouting TwoNetRouting() {
  route::GlobalRouting routing;
  routing.two_pin_nets.resize(2);
  routing.two_pin_nets[0] = {/*parent=*/0, /*source=*/0, /*sink=*/1};
  routing.two_pin_nets[1] = {/*parent=*/1, /*source=*/2, /*sink=*/3};
  routing.routes = {{5, 6}, {6, 7}};  // share segment 6
  return routing;
}

TEST(GraphPassesTest, ConsistentRoutingAndGraphPass) {
  const route::GlobalRouting routing = TwoNetRouting();
  graph::Graph g(2);
  g.AddEdge(0, 1);
  AnalysisInput input;
  input.conflict_graph = &g;
  input.routing = &routing;
  const AnalysisReport report = Lint(input);
  EXPECT_TRUE(report.diagnostics.empty()) << FormatText(report);
}

TEST(GraphPassesTest, MissingConflictEdgeDetected) {
  const route::GlobalRouting routing = TwoNetRouting();
  const graph::Graph g(2);  // segment 6 is shared, but no edge
  AnalysisInput input;
  input.conflict_graph = &g;
  input.routing = &routing;
  const AnalysisReport report = Lint(input);
  const auto findings = FindingsOf(report, "flow-two-pin");
  ASSERT_FALSE(findings.empty()) << FormatText(report);
  EXPECT_NE(findings[0].message.find("no conflict edge"), std::string::npos);
}

TEST(GraphPassesTest, SameParentEdgeDetected) {
  route::GlobalRouting routing = TwoNetRouting();
  routing.two_pin_nets[1].parent = 0;  // now siblings: no edge allowed
  graph::Graph g(2);
  g.AddEdge(0, 1);
  AnalysisInput input;
  input.conflict_graph = &g;
  input.routing = &routing;
  const AnalysisReport report = Lint(input);
  const auto findings = FindingsOf(report, "flow-two-pin");
  ASSERT_FALSE(findings.empty()) << FormatText(report);
  EXPECT_NE(findings[0].message.find("multi-pin net"), std::string::npos);
}

TEST(GraphPassesTest, VacuousEdgeDetected) {
  route::GlobalRouting routing = TwoNetRouting();
  routing.routes[1] = {7};  // nothing shared any more
  graph::Graph g(2);
  g.AddEdge(0, 1);
  AnalysisInput input;
  input.conflict_graph = &g;
  input.routing = &routing;
  const AnalysisReport report = Lint(input);
  const auto findings = FindingsOf(report, "flow-two-pin");
  ASSERT_FALSE(findings.empty()) << FormatText(report);
  EXPECT_NE(findings[0].message.find("share no channel segment"),
            std::string::npos);
}

TEST(GraphPassesTest, VertexCountMismatchDetected) {
  const route::GlobalRouting routing = TwoNetRouting();
  graph::Graph g(3);
  g.AddEdge(0, 1);
  AnalysisInput input;
  input.conflict_graph = &g;
  input.routing = &routing;
  const AnalysisReport report = Lint(input);
  EXPECT_FALSE(FindingsOf(report, "flow-two-pin").empty())
      << FormatText(report);
}

// ---------------------------------------------------------------------------
// End-to-end: DetailedRouter selfcheck and the MCNC acceptance sweep.
// ---------------------------------------------------------------------------

TEST(SelfcheckTest, DetailedRouterSelfcheckPassesOnMcncTiny) {
  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark("tiny");
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  const int width = route::PeakCongestion(arch, routing);

  flow::DetailedRouteOptions options;
  options.selfcheck = true;
  const flow::DetailedRouteResult result =
      flow::RouteDetailed(arch, routing, width + 1, options);
  EXPECT_NE(result.status, sat::SolveResult::kUnknown);
  for (const Diagnostic& d : result.lint) {
    EXPECT_NE(d.severity, Severity::kError)
        << d.pass << " " << d.location << ": " << d.message;
  }
}

TEST(SelfcheckTest, AcceptanceAllEvaluatedEncodingsOnMcncInstances) {
  for (const char* bench_name : {"tiny", "9symml"}) {
    const netlist::McncBenchmark bench =
        netlist::GenerateMcncBenchmark(bench_name);
    const fpga::Arch arch(bench.params.grid_size);
    const fpga::DeviceGraph device(arch);
    const route::GlobalRouting routing =
        route::RouteGlobally(device, bench.netlist, bench.placement);
    const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);
    const int width = route::PeakCongestion(arch, routing);
    const auto sequence = symmetry::SymmetrySequence(
        conflict, width, symmetry::Heuristic::kS1);
    for (const std::string& name : encode::EvaluatedEncodingNames()) {
      const encode::EncodingSpec spec = encode::GetEncoding(name);
      const encode::EncodedColoring encoded =
          encode::EncodeColoring(conflict, width, spec, sequence);
      AnalysisInput input;
      input.cnf = &encoded.cnf;
      input.conflict_graph = &conflict;
      input.encoded = &encoded;
      input.spec = &spec;
      input.symmetry_sequence = &sequence;
      input.routing = &routing;
      const AnalysisReport report = Lint(input);
      EXPECT_EQ(report.Count(Severity::kError), 0u)
          << bench_name << " " << name << "\n" << FormatText(report);
    }
  }
}

// ---------------------------------------------------------------------------
// Cube pass.
// ---------------------------------------------------------------------------

TEST(CubePassesTest, CubeDeterminismRunsCleanOnConflictGraph) {
  Rng rng(2025);
  const graph::Graph g = testutil::RandomGraph(rng, 10, 0.4);
  AnalysisInput input;
  input.conflict_graph = &g;
  const AnalysisReport report = Lint(input);
  bool ran = false;
  for (const PassOutcome& outcome : report.outcomes) {
    if (outcome.pass == "cube-determinism") ran = outcome.ran;
  }
  EXPECT_TRUE(ran);
  EXPECT_TRUE(FindingsOf(report, "cube-determinism").empty())
      << FormatText(report);
}

TEST(CubePassesTest, CubeDeterminismNeedsAGraph) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  const AnalysisReport report = LintCnf(cnf);
  for (const PassOutcome& outcome : report.outcomes) {
    if (outcome.pass == "cube-determinism") {
      EXPECT_FALSE(outcome.ran);
    }
  }
}

// ---------------------------------------------------------------------------
// mc-coverage: the lock-free layers must route through the mc:: shim.
// ---------------------------------------------------------------------------

AnalysisReport LintSources(const std::vector<SourceFile>& sources) {
  AnalysisInput input;
  input.sources = &sources;
  return Lint(input);
}

TEST(McCoverageTest, ShimmedSourceIsClean) {
  const AnalysisReport report = LintSources(
      {{"src/cube/work_queue.h",
        "#include <atomic>\n"
        "#include \"mc/shim.h\"\n"
        "mc::Atomic<int> top_{0};\n"
        "mc::Fence(std::memory_order_release);\n"
        "int x = top_.load(std::memory_order_relaxed);\n"}});
  EXPECT_TRUE(FindingsOf(report, "mc-coverage").empty())
      << FormatText(report);
}

TEST(McCoverageTest, FlagsRawAtomicInScope) {
  const AnalysisReport report = LintSources(
      {{"src/cube/work_queue.h", "std::atomic<int> top_{0};\n"}});
  const auto findings = FindingsOf(report, "mc-coverage");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("mc::Atomic"), std::string::npos);
  EXPECT_NE(findings[0].location.find(":1"), std::string::npos);
}

TEST(McCoverageTest, FlagsRawMutexAndFence) {
  const AnalysisReport report = LintSources(
      {{"src/obs/metrics.h", "mutable std::mutex mutex_;\n"},
       {"src/sat/clause_exchange.cpp",
        "std::atomic_thread_fence(std::memory_order_acquire);\n"}});
  EXPECT_EQ(FindingsOf(report, "mc-coverage").size(), 2u);
}

TEST(McCoverageTest, IgnoresOutOfScopeAndShimItself) {
  const AnalysisReport report = LintSources(
      {{"src/sat/solver.cpp", "std::atomic<bool> stop{false};\n"},
       {"src/mc/shim.h", "std::atomic<T> value_;\n"}});
  EXPECT_TRUE(FindingsOf(report, "mc-coverage").empty())
      << FormatText(report);
}

TEST(McCoverageTest, IgnoresCommentText) {
  const AnalysisReport report = LintSources(
      {{"src/cube/work_queue.h",
        "// the old std::atomic<int> version locked up\n"
        "/* std::mutex was the bottleneck\n"
        "   std::atomic_thread_fence everywhere */\n"
        "mc::Atomic<int> top_{0};  // replaces std::atomic<int>\n"}});
  EXPECT_TRUE(FindingsOf(report, "mc-coverage").empty())
      << FormatText(report);
}

}  // namespace
}  // namespace satfr::analysis
